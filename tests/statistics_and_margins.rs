//! Integration: the statistical layers (device/wire populations, sensor
//! arrays) feeding the margin stack — the "worst device on the die" view
//! that design guardbands actually protect.

use deep_healing::bti::variability::DevicePopulation;
use deep_healing::circuit::ro_array::RoArray;
use deep_healing::em::population::{simulate_population, VariationModel};
use deep_healing::guardband::{frequency_margin_for_dvth, margin_stack};
use deep_healing::prelude::*;

#[test]
fn quantile_guardband_from_a_device_population() {
    // Stress a varied population and build the margin stack from its
    // 95th-percentile device, with and without sensor-array calibration.
    let mut population = DevicePopulation::sample(12, 600, 0.25, 7).unwrap();
    population.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
    let q95 = population.quantile_mv(0.95);
    assert!(
        q95 > 40.0,
        "accelerated stress should approach ~50 mV, q95 = {q95}"
    );

    let ro = RingOscillator::paper_75_stage();
    let array = RoArray::paper_4x4(42);
    let uncalibrated = margin_stack(&ro, q95, array.fresh_spread_fraction(), 1.0);
    let calibrated = margin_stack(&ro, q95, 0.0, 1.0);
    assert!(uncalibrated.total() > calibrated.total());
    // Wearout dominates the stack at accelerated levels.
    assert!(calibrated.wearout > 5.0 * calibrated.sensing);
}

#[test]
fn healing_the_population_shrinks_the_margin_stack() {
    let ro = RingOscillator::paper_75_stage();
    let mut population = DevicePopulation::sample(10, 600, 0.25, 9).unwrap();
    population.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
    let before = margin_stack(&ro, population.quantile_mv(0.95), 0.0, 1.0);
    population.recover(
        Seconds::from_hours(6.0),
        RecoveryCondition::ACTIVE_ACCELERATED,
    );
    let after = margin_stack(&ro, population.quantile_mv(0.95), 0.0, 1.0);
    assert!(
        after.wearout < 0.4 * before.wearout,
        "deep healing must collapse the wearout margin: {} -> {}",
        before.wearout,
        after.wearout
    );
}

#[test]
fn pde_population_and_black_model_tell_the_same_fleet_story() {
    // The physics-derived TTF distribution and the closed-form Black model
    // must agree on median scale and spread at the calibration point.
    let pop = simulate_population(
        24,
        CurrentDensity::from_ma_per_cm2(7.96),
        VariationModel::default(),
        Seconds::from_hours(48.0),
        17,
    );
    let median = pop.median().expect("all wires fail").as_hours();
    let black = BlackModel::calibrated_to_paper();
    let black_median = black
        .median_ttf(
            CurrentDensity::from_ma_per_cm2(7.96),
            Celsius::new(230.0).to_kelvin(),
        )
        .as_hours();
    assert!(
        (median - black_median).abs() / black_median < 0.4,
        "PDE median {median} h vs Black {black_median} h"
    );
    let sigma = pop.ln_sigma().expect("spread exists");
    assert!(
        (0.1..0.6).contains(&sigma),
        "ln-sigma {sigma} vs Black's 0.3"
    );
}

#[test]
fn sensor_array_infers_population_state_through_process_variation() {
    // End to end: age a device, read it through every (process-varied,
    // calibrated) array site — all sites must agree on the wearout.
    let mut device = BtiDevice::paper_calibrated();
    device.stress(Seconds::from_hours(12.0), StressCondition::ACCELERATED);
    let truth = device.delta_vth_mv();

    let array = RoArray::paper_4x4(3);
    for site in 0..array.len() {
        let raw = array.raw_reading(site, truth);
        let est = array.infer_dvth_mv(site, raw).expect("within range");
        assert!((est - truth).abs() < 0.05, "site {site}: {est} vs {truth}");
    }
    // And the frequency margin implied by the estimate matches the truth.
    let ro = RingOscillator::paper_75_stage();
    let m_est = frequency_margin_for_dvth(&ro, truth);
    assert!(m_est > 0.0 && m_est < 0.2);
}
