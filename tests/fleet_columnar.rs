//! The columnar fleet engine's bit-identity contract against the
//! per-chip reference path.
//!
//! The production engine steps shards as structure-of-arrays column
//! sweeps ([`dh_fleet`]'s `ChipStore` + `dispatch!` kernels); the
//! original per-chip implementation survives as a `#[doc(hidden)]`
//! reference oracle. These tests pin the two together:
//!
//! * property-tested over random population geometries, seeds, policy
//!   mixes, budgets, and sensor/poison fault plans, the columnar report
//!   and degraded-report fingerprints equal the reference's **bit for
//!   bit** (and the headline statistics agree to ≤ 1e-12, which bit
//!   identity makes trivial);
//! * the forced-scalar SIMD backend reproduces the same fingerprints as
//!   the autovectorized one (the `DH_SIMD=scalar` CI job runs the whole
//!   suite that way; this test flips the override at runtime).

use deep_healing::fault::FaultPlan;
use deep_healing::fleet::{
    run_fleet, run_fleet_reference, run_fleet_supervised, FleetConfig, FleetPolicy,
    MaintenanceBudget,
};
use dh_exec::RetryPolicy;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any population, any geometry, any (non-killing) fault plan: the
    /// columnar engine folds the exact bits the reference path folds.
    #[test]
    fn columnar_engine_matches_the_reference_path(
        devices in 1u64..160,
        group_size in 1u64..24,
        shard_groups in 1u64..4,
        seed in 0u64..1_000,
        policy_mix in 0usize..4,
        slots in 0u64..4,
        years in 0.05f64..0.3,
        plan_sel in 0usize..4,
    ) {
        let config = FleetConfig {
            devices,
            seed,
            years,
            shard_size: group_size * shard_groups,
            group_size,
            policies: match policy_mix {
                0 => vec![FleetPolicy::WorstFirst],
                1 => vec![FleetPolicy::Static],
                2 => vec![FleetPolicy::RoundRobin],
                _ => vec![
                    FleetPolicy::WorstFirst,
                    FleetPolicy::RoundRobin,
                    FleetPolicy::Static,
                ],
            },
            budget: MaintenanceBudget { slots_per_group: slots },
            ..FleetConfig::default()
        };
        // Sensor and poison faults only — kill/panic faults exercise the
        // retry machinery the serial reference deliberately lacks.
        let plan = match plan_sel {
            1 => Some(FaultPlan::parse("stuck-chip=3,stuck=0.05", seed).unwrap()),
            2 => Some(FaultPlan::parse("poison-chip=5,poison=0.3", seed).unwrap()),
            3 => Some(FaultPlan::parse("stuck=0.1,poison=0.2", seed).unwrap()),
            _ => None,
        };

        let (ref_report, ref_degraded) =
            run_fleet_reference(&config, plan.as_ref()).unwrap();
        let (col_report, col_degraded) =
            run_fleet_supervised(&config, plan.as_ref(), &RetryPolicy::immediate(1), None)
                .unwrap();

        prop_assert!(
            ref_report.fingerprint() == col_report.fingerprint(),
            "report fingerprints diverged:\n{}\nvs\n{}",
            ref_report.render(),
            col_report.render()
        );
        prop_assert!(ref_report.render() == col_report.render());
        prop_assert!(
            ref_degraded.fingerprint() == col_degraded.fingerprint(),
            "degraded fingerprints diverged:\n{}\nvs\n{}",
            ref_degraded.render(),
            col_degraded.render()
        );
        // The ≤ 1e-12 agreement the issue asks for is implied by bit
        // identity; assert it anyway so a future loosening of the
        // fingerprint comparison cannot silently weaken this bound.
        prop_assert!((ref_report.guardband.mean - col_report.guardband.mean).abs() <= 1e-12);
        prop_assert!((ref_report.guardband.max - col_report.guardband.max).abs() <= 1e-12);
    }
}

#[test]
fn forced_scalar_backend_reproduces_the_simd_fingerprint() {
    let config = FleetConfig {
        devices: 96,
        years: 0.25,
        shard_size: 16,
        group_size: 16,
        policies: vec![FleetPolicy::WorstFirst, FleetPolicy::RoundRobin],
        budget: MaintenanceBudget { slots_per_group: 2 },
        ..FleetConfig::default()
    };
    let native = run_fleet(&config).unwrap();
    dh_simd::force_scalar(true);
    let scalar = run_fleet(&config).unwrap();
    dh_simd::force_scalar(false);
    assert_eq!(
        native.fingerprint(),
        scalar.fingerprint(),
        "scalar and {} backends must agree bit for bit",
        dh_simd::backend_name()
    );
    assert_eq!(native.render(), scalar.render());
}
