//! End-to-end Table I reproduction: both BTI models, driven through the
//! public façade, must land on the paper's numbers.

use deep_healing::experiments;
use deep_healing::prelude::*;

#[test]
fn both_models_reproduce_table_one() {
    let t = experiments::table1();
    let paper_meas = [0.66, 16.7, 28.7, 72.4];
    let paper_model = [1.0, 14.4, 29.2, 72.7];
    for (i, row) in t.rows.iter().enumerate() {
        assert_eq!(row.condition_no, i + 1);
        assert!((row.paper_measurement - paper_meas[i]).abs() < 1e-9);
        assert!((row.paper_model - paper_model[i]).abs() < 1e-9);
        assert!(
            (row.simulated_measurement - paper_meas[i]).abs() < 1.5,
            "condition {}: ensemble {:.2}% vs paper {:.2}%",
            i + 1,
            row.simulated_measurement,
            paper_meas[i]
        );
        assert!(
            (row.simulated_model - paper_model[i]).abs() < 0.5,
            "condition {}: analytic {:.2}% vs paper {:.2}%",
            i + 1,
            row.simulated_model,
            paper_model[i]
        );
    }
}

#[test]
fn the_two_models_agree_with_each_other_on_novel_conditions() {
    // Cross-validation at conditions neither was directly calibrated to.
    let analytic = AnalyticBtiModel::paper_calibrated();
    let ensemble = TrapEnsemble::paper_calibrated(3000).unwrap();
    let stress = Seconds::from_hours(24.0);

    let mut analytic_rs = Vec::new();
    let mut ensemble_rs = Vec::new();
    for (v, t) in [(0.0, 85.0), (-0.15, 65.0), (-0.3, 65.0), (-0.2, 110.0)] {
        let cond = RecoveryCondition::new(Volts::new(v), Celsius::new(t));
        let r_analytic = analytic
            .recovery_fraction(stress, Seconds::from_hours(6.0), cond)
            .as_percent();

        let mut e = ensemble.clone();
        e.stress(stress, StressCondition::ACCELERATED);
        let w0 = e.delta_vth_mv();
        e.recover(Seconds::from_hours(6.0), cond);
        let r_ensemble = (w0 - e.delta_vth_mv()) / w0 * 100.0;

        // The two model families were calibrated only at the four Table I
        // corners; between them they interpolate differently (interaction
        // term vs CDF shape), so agreement within ~15 points is the
        // meaningful bound.
        assert!(
            (r_analytic - r_ensemble).abs() < 15.0,
            "({v} V, {t} °C): analytic {r_analytic:.1}% vs ensemble {r_ensemble:.1}%"
        );
        analytic_rs.push(r_analytic);
        ensemble_rs.push(r_ensemble);
    }
    // The conditions above are ordered from shallowest to deepest; both
    // models must rank them identically.
    for pair in analytic_rs.windows(2) {
        assert!(
            pair[1] > pair[0],
            "analytic ordering broke: {analytic_rs:?}"
        );
    }
    for pair in ensemble_rs.windows(2) {
        assert!(
            pair[1] > pair[0],
            "ensemble ordering broke: {ensemble_rs:?}"
        );
    }
}

#[test]
fn recovery_percentage_grows_with_each_knob_in_both_models() {
    let t = experiments::table1();
    let sim_m: Vec<f64> = t.rows.iter().map(|r| r.simulated_measurement).collect();
    let sim_a: Vec<f64> = t.rows.iter().map(|r| r.simulated_model).collect();
    for sims in [sim_m, sim_a] {
        assert!(sims[0] < sims[1], "active beats passive: {sims:?}");
        assert!(sims[0] < sims[2], "accelerated beats passive: {sims:?}");
        assert!(
            sims[1] < sims[3] && sims[2] < sims[3],
            "deep healing wins: {sims:?}"
        );
    }
}
