//! The reproduction certificate: every headline claim of the paper's
//! evaluation, asserted in one place against the public `experiments` API.
//!
//! Where EXPERIMENTS.md documents the numbers, this test *enforces* the
//! shapes — who wins, by roughly what factor, where the crossovers fall —
//! so a regression in any model shows up as a failed claim, not a silently
//! drifted table.

use deep_healing::experiments;

#[test]
fn claim_table1_recovery_is_activated_and_accelerated() {
    let t = experiments::table1();
    // Within-tolerance absolute agreement for both models, all conditions.
    let paper_meas = [0.66, 16.7, 28.7, 72.4];
    let paper_model = [1.0, 14.4, 29.2, 72.7];
    for (i, row) in t.rows.iter().enumerate() {
        assert!((row.simulated_measurement - paper_meas[i]).abs() < 1.5);
        assert!((row.simulated_model - paper_model[i]).abs() < 0.5);
    }
    // Shape: deep healing recovers two orders of magnitude more than
    // passive within the same window.
    assert!(t.rows[3].simulated_measurement > 50.0 * t.rows[0].simulated_measurement);
}

#[test]
fn claim_fig4_in_time_recovery_eliminates_the_permanent_component() {
    let f = experiments::fig4();
    let balanced = *f.final_permanent_mv.last().unwrap();
    // "Practically 0": below 1% of the continuous-stress reference.
    assert!(balanced < 0.01 * f.continuous_permanent_mv * 10.0);
    // Strictly monotone in the stress:recovery ratio.
    assert!(f.final_permanent_mv[0] > f.final_permanent_mv[1]);
    assert!(f.final_permanent_mv[1] > f.final_permanent_mv[2]);
}

#[test]
fn claim_fig5_active_recovery_beats_passive_by_an_order_of_magnitude() {
    let out = experiments::fig5();
    // Two-phase evolution with a ~200 min incubation.
    let nucleation = out
        .nucleation_time
        .expect("void must nucleate")
        .as_minutes();
    assert!(
        (140.0..=280.0).contains(&nucleation),
        "nucleation {nucleation} min"
    );
    // >70 % heal within 1/5 of the stress time; passive is near-flat.
    assert!(out.active_recovered_fraction > 0.7);
    assert!(out.passive_recovered_fraction.abs() < 0.1);
    // The permanent component survives.
    assert!(out.permanent_delta_r > 0.1);
}

#[test]
fn claim_fig6_early_recovery_is_full_and_over_recovery_reverses_the_damage() {
    let out = experiments::fig6();
    assert!(out.delta_r_after_recovery < 0.1 * out.delta_r_at_recovery_start);
    assert!(out.reverse_em_observed);
}

#[test]
fn claim_fig7_scheduled_recovery_delays_nucleation_and_extends_ttf() {
    let out = experiments::fig7();
    let delay = out.nucleation_delay_factor().expect("both nucleate");
    assert!((1.8..=8.0).contains(&delay), "delay factor {delay}");
    let ttf = out
        .ttf_extension_factor()
        .expect("both fail in the horizon");
    assert!(ttf > 1.3, "TTF extension {ttf}");
}

#[test]
fn claim_fig9_assist_circuit_implements_all_three_modes() {
    let f = experiments::fig9();
    // EM mode: reversed current, same magnitude, load unaffected.
    let ratio = -f.em.grid_current.value() / f.normal.grid_current.value();
    assert!((ratio - 1.0).abs() < 1e-6);
    // BTI mode: rails swapped, bias deeper than the bench −0.3 V.
    assert!(f.bti.load_vss.value() > 0.7 && f.bti.load_vdd.value() < 0.3);
    assert!(f.bti.bti_recovery_bias().value() < -0.5);
}

#[test]
fn claim_fig10_load_size_tradeoff() {
    let points = experiments::fig10();
    let last = points.last().unwrap();
    assert!(
        (1.5..=2.2).contains(&last.normalized_delay),
        "delay {}",
        last.normalized_delay
    );
    assert!(last.normalized_switching_time < 0.7);
}

#[test]
fn claim_fig11_local_grids_are_most_em_sensitive_and_protectable() {
    let f = experiments::fig11();
    let local = f
        .hazard
        .worst_in(deep_healing::pdn::grid::LayerClass::Local)
        .unwrap();
    let global = f
        .hazard
        .worst_in(deep_healing::pdn::grid::LayerClass::Global)
        .unwrap();
    assert!(local.median_ttf.as_years() * 100.0 < global.median_ttf.as_years());
    assert!(f.protected_extension > 1.3);
}

#[test]
fn claim_fig12_scheduling_reduces_the_guardband() {
    let outs = experiments::fig12(0.15).unwrap();
    let g = |n: &str| outs.iter().find(|o| o.policy == n).unwrap();
    // The paper's headline: deep healing keeps the system "refreshing".
    assert!(g("no-recovery").required_guardband > 10.0 * g("periodic-deep").required_guardband);
    // And eliminates the permanent component at the system level.
    assert!(g("periodic-deep").final_permanent_mv < 0.3 * g("no-recovery").final_permanent_mv);
    // EM lifetime extends under the reversal duty.
    let ttf = |n: &str| g(n).projected_em_ttf.unwrap().as_years();
    assert!(ttf("periodic-deep") > 1.2 * ttf("passive-idle"));
}
