//! Chaos acceptance: the fault-injection contract across the stack.
//!
//! * **Checkpoint hardening** (property-tested): flip a random bit of, or
//!   truncate, any retained checkpoint generation — the supervised resume
//!   falls back to the newest generation that validates, replays the lost
//!   shards, and the final report is **fingerprint-identical** to an
//!   uninterrupted run.
//! * **Supervised parity**: with no faults injected the supervised engine
//!   folds the exact same values in the exact same order as the strict
//!   one — reports are bit-identical, the degraded report is clean.
//! * **Graceful degradation**: killed shards are quarantined after the
//!   retry budget, poisoned samples are rejected at the fold, stuck
//!   sensors are flagged and reported — and in every case the run
//!   *completes* instead of aborting.
//! * **Determinism**: an identically-seeded chaos campaign produces
//!   bit-identical fleet *and* degraded fingerprints run to run.

use std::path::PathBuf;

use deep_healing::fault::{FaultPlan, SensorFaultKind};
use deep_healing::fleet::{
    run_fleet, run_fleet_supervised, run_fleet_supervised_with, CheckpointMode, CheckpointStore,
    FleetConfig, FleetPolicy, FleetRun, MaintenanceBudget, SENSOR_STALE_EPOCHS,
};
use dh_exec::RetryPolicy;
use dh_scenario::{
    run_pack, run_pack_supervised, ScenarioCheckpointStore, ScenarioPack, ScenarioRegistry,
    ScenarioRun,
};
use proptest::prelude::*;

fn small_fleet() -> FleetConfig {
    FleetConfig {
        devices: 96,
        years: 0.25,
        shard_size: 16,
        group_size: 16,
        policies: vec![FleetPolicy::WorstFirst, FleetPolicy::RoundRobin],
        budget: MaintenanceBudget { slots_per_group: 2 },
        ..FleetConfig::default()
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dh-fault-test-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Steps a run one shard at a time, checkpointing after each of the
/// first three shards, so the store holds three generations (newest at
/// cursor 3, oldest at cursor 1). The run is then dropped mid-flight.
fn seed_generations(config: &FleetConfig, store: &CheckpointStore) {
    let mut run = FleetRun::new(config.clone()).unwrap();
    for _ in 0..3 {
        assert!(!run.step(1).unwrap(), "three shards must not finish");
        store.write(&run.snapshot()).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Damage any one retained generation, any way: the resume still
    /// reproduces the uninterrupted run bit for bit, and records a
    /// fallback exactly when the newest generation was the victim.
    /// Resumes alternate between the sync and async checkpoint writers —
    /// multi-generation fallback must hold under both.
    #[test]
    fn corrupted_generations_fall_back_to_fingerprint_identical_resume(
        generation in 0usize..3,
        mode in 0u8..2,
        async_writer in 0u8..2,
        damage in 0u64..u64::MAX,
    ) {
        let truncate = mode == 1;
        let ckpt_mode = if async_writer == 1 { CheckpointMode::Async } else { CheckpointMode::Sync };
        let config = small_fleet();
        let baseline = run_fleet(&config).unwrap();

        let dir = fresh_dir("proptest");
        let store = CheckpointStore::new(dir.join("run.dhfl"), 3);
        seed_generations(&config, &store);

        // Damage the chosen generation on disk.
        let victim = store.generation_path(generation);
        let mut bytes = std::fs::read(&victim).unwrap();
        prop_assume!(!bytes.is_empty());
        if truncate {
            bytes.truncate((damage % bytes.len() as u64) as usize);
        } else {
            let byte = (damage % bytes.len() as u64) as usize;
            let bit = ((damage >> 8) % 8) as u8;
            bytes[byte] ^= 1 << bit;
        }
        std::fs::write(&victim, &bytes).unwrap();

        let (resumed, degraded) = run_fleet_supervised_with(
            &config,
            None,
            &RetryPolicy::immediate(1),
            Some((&store, 1)),
            ckpt_mode,
        )
        .unwrap();

        prop_assert!(
            resumed.fingerprint() == baseline.fingerprint(),
            "resume after damaging generation {} ({}): {:#018x} vs {:#018x}",
            generation,
            if truncate { "truncate" } else { "bit flip" },
            resumed.fingerprint(),
            baseline.fingerprint(),
        );
        prop_assert!(resumed.render() == baseline.render());

        if generation == 0 {
            // The newest generation was the victim: the resume must say
            // so, and must have skipped exactly that one.
            prop_assert!(degraded.checkpoint_fallbacks.len() == 1);
            prop_assert!(degraded.checkpoint_fallbacks[0].generation == 0);
        } else {
            // The newest generation still validates; older damage is
            // never even read.
            prop_assert!(degraded.checkpoint_fallbacks.is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

const BUILTIN_PACKS: [&str; 3] = ["sram-decoder", "dnn-weight-memory", "aged-multiplier"];

/// A shrunk copy of a built-in pack: same victim model, workload, and
/// maintenance policy, but few enough elements that a 24-case proptest
/// stays fast in debug builds.
fn small_pack(name: &str) -> ScenarioPack {
    let mut pack = ScenarioRegistry::builtin()
        .resolve(name)
        .expect("built-in pack");
    pack.epochs = 3;
    pack.shard_size = 64;
    for block in &mut pack.blocks {
        block.count = block.count.min(160);
    }
    pack.validate().expect("shrunk pack stays valid");
    pack
}

/// The DHSP twin of [`seed_generations`]: three one-shard steps, a
/// checkpoint after each, run dropped mid-flight.
fn seed_scenario_generations(pack: &ScenarioPack, store: &ScenarioCheckpointStore) {
    let mut run = ScenarioRun::new(pack.clone());
    for _ in 0..3 {
        assert!(!run.step(1).done, "three shards must not finish the run");
        store.write(&run).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The DHSP twin of the generation-damage property above, across
    /// all three built-in victim models: damage any retained scenario
    /// checkpoint generation, any way — the supervised resume falls
    /// back and still lands on the uninterrupted fingerprint.
    #[test]
    fn corrupted_scenario_generations_fall_back_to_fingerprint_identical_resume(
        pack_index in 0usize..3,
        generation in 0usize..3,
        mode in 0u8..2,
        damage in 0u64..u64::MAX,
    ) {
        let truncate = mode == 1;
        let name = BUILTIN_PACKS[pack_index];
        let pack = small_pack(name);
        let baseline = run_pack(pack.clone());

        let dir = fresh_dir(&format!("scenario-proptest-{name}"));
        let store = ScenarioCheckpointStore::new(dir.join("run.dhsp"), 3);
        seed_scenario_generations(&pack, &store);

        let victim = store.generation_path(generation);
        let mut bytes = std::fs::read(&victim).unwrap();
        prop_assume!(!bytes.is_empty());
        if truncate {
            bytes.truncate((damage % bytes.len() as u64) as usize);
        } else {
            let byte = (damage % bytes.len() as u64) as usize;
            let bit = ((damage >> 8) % 8) as u8;
            bytes[byte] ^= 1 << bit;
        }
        std::fs::write(&victim, &bytes).unwrap();

        let (resumed, degraded) = run_pack_supervised(
            pack.clone(),
            None,
            &RetryPolicy::immediate(1),
            Some((&store, 1)),
        )
        .unwrap();

        prop_assert!(
            resumed.fingerprint == baseline.fingerprint,
            "{name}: resume after damaging generation {} ({}): {:#018x} vs {:#018x}",
            generation,
            if truncate { "truncate" } else { "bit flip" },
            resumed.fingerprint,
            baseline.fingerprint,
        );
        prop_assert!(resumed.render() == baseline.render());

        if generation == 0 {
            prop_assert!(degraded.checkpoint_fallbacks.len() == 1);
            prop_assert!(degraded.checkpoint_fallbacks[0].generation == 0);
        } else {
            prop_assert!(degraded.checkpoint_fallbacks.is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// No plan and a no-op plan must fold the exact same sequence as
    /// the strict scenario engine — for every built-in victim model.
    #[test]
    fn supervised_scenario_without_faults_is_bit_identical_to_strict_run(
        pack_index in 0usize..3,
        epochs in 1u64..4,
    ) {
        let mut pack = small_pack(BUILTIN_PACKS[pack_index]);
        pack.epochs = epochs;
        let strict = run_pack(pack.clone());

        let noop = FaultPlan::parse("", 99).unwrap();
        for plan in [None, Some(&noop)] {
            let (report, degraded) =
                run_pack_supervised(pack.clone(), plan, &RetryPolicy::immediate(1), None).unwrap();
            prop_assert!(report.fingerprint == strict.fingerprint);
            prop_assert!(report.render() == strict.render());
            prop_assert!(!degraded.is_degraded(), "clean run must report clean");
        }
    }
}

#[test]
fn supervised_run_without_faults_is_bit_identical_to_strict_run() {
    let config = small_fleet();
    let strict = run_fleet(&config).unwrap();

    // No plan at all, and an explicitly empty (no-op) plan: both must
    // fold the exact same sequence as the strict engine.
    let noop = FaultPlan::parse("", 99).unwrap();
    for plan in [None, Some(&noop)] {
        let (report, degraded) =
            run_fleet_supervised(&config, plan, &RetryPolicy::immediate(1), None).unwrap();
        assert_eq!(report.fingerprint(), strict.fingerprint());
        assert_eq!(report.render(), strict.render());
        assert!(!degraded.is_degraded(), "clean run must report clean");
    }
}

#[test]
fn killed_shard_is_quarantined_and_the_run_still_completes() {
    let config = small_fleet();
    let plan = FaultPlan::parse("kill-shard=2", 7).unwrap();
    let (report, degraded) =
        run_fleet_supervised(&config, Some(&plan), &RetryPolicy::immediate(2), None).unwrap();

    assert_eq!(degraded.quarantined.len(), 1);
    assert_eq!(degraded.quarantined[0].shard, 2);
    assert_eq!(degraded.quarantined[0].attempts, 2);
    assert!(degraded.retries >= 1, "the kill must have been retried");
    // The quarantined shard's 16 chips are excluded, not fabricated.
    assert_eq!(report.devices, 96 - 16);
    assert!(report.guardband.mean.is_finite());
}

#[test]
fn poisoned_sample_is_rejected_at_the_fold() {
    let config = small_fleet();
    let plan = FaultPlan::parse("poison-chip=7", 7).unwrap();
    let (report, degraded) =
        run_fleet_supervised(&config, Some(&plan), &RetryPolicy::immediate(1), None).unwrap();

    assert_eq!(degraded.rejected_samples, 1);
    assert_eq!(report.devices, 95, "one chip rejected, the rest folded");
    assert!(
        report.guardband.mean.is_finite() && report.guardband.max.is_finite(),
        "the NaN must not reach the aggregates: {}",
        report.guardband.render("")
    );
}

#[test]
fn stuck_sensor_is_flagged_and_reported() {
    let config = small_fleet();
    let plan = FaultPlan::parse("stuck-chip=5", 7).unwrap();
    let (report, degraded) =
        run_fleet_supervised(&config, Some(&plan), &RetryPolicy::immediate(1), None).unwrap();

    assert_eq!(degraded.sensor_incidents.len(), 1);
    let incident = &degraded.sensor_incidents[0];
    assert_eq!(incident.chip, 5);
    assert_eq!(incident.kind, SensorFaultKind::Stuck);
    assert_eq!(incident.epoch, u64::from(SENSOR_STALE_EPOCHS));
    // The afflicted chip still folds (conservatively healed, not dropped).
    assert_eq!(report.devices, 96);
}

/// FNV-1a, re-implemented here so the test can forge a valid *file*
/// checksum around a corrupted slab (the wire helpers are crate-private
/// on purpose).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn slab_checksum_catches_corruption_the_file_checksum_misses() {
    let config = small_fleet();
    let baseline = run_fleet(&config).unwrap();
    let dir = fresh_dir("slab");
    let store = CheckpointStore::new(dir.join("run.dhfl"), 3);
    seed_generations(&config, &store);

    // Flip one bit inside the newest generation's accumulator slab body
    // (29-byte envelope header, then slab count + tag + body length),
    // then forge the file checksum so only the per-slab checksum can
    // object — the adversarial case DHFL v3 added the slab checksums for.
    let victim = store.generation_path(0);
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[29 + 24 + 4] ^= 0x08;
    let body_len = bytes.len() - 8;
    let sum = fnv1a(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&victim, &bytes).unwrap();

    let (resumed, degraded) =
        run_fleet_supervised(&config, None, &RetryPolicy::immediate(1), Some((&store, 1))).unwrap();
    assert_eq!(resumed.fingerprint(), baseline.fingerprint());
    assert_eq!(degraded.checkpoint_fallbacks.len(), 1);
    assert_eq!(degraded.checkpoint_fallbacks[0].generation, 0);
    assert!(
        degraded.checkpoint_fallbacks[0].reason.contains("slab"),
        "the slab checksum must be what rejected it: {}",
        degraded.checkpoint_fallbacks[0].reason
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// With instrumentation on (`--features dh-obs/enabled`), every new
/// failure path counts: retries, quarantines, checkpoint fallbacks,
/// injected disk faults, and the retention trims that absorb them —
/// on both the fleet (DHFL) and scenario (DHSP) engines.
#[test]
fn failure_path_counters_light_up_the_obs_snapshot() {
    if !deep_healing::obs::ENABLED {
        return; // uninstrumented build: the registry stays empty
    }
    // Fleet chaos: a killed shard, corrupt + missing generations, and
    // seeded disk faults under the checkpoint writer.
    let config = small_fleet();
    let dir = fresh_dir("obs-chaos-fleet");
    let store = CheckpointStore::new(dir.join("run.dhfl"), 3);
    std::fs::write(store.generation_path(0), b"not a checkpoint").unwrap();
    let plan = FaultPlan::parse("kill-shard=1,disk-full=0.5,disk-torn=2", 7).unwrap();
    run_fleet_supervised(
        &config,
        Some(&plan),
        &RetryPolicy::immediate(2),
        Some((&store, 1)),
    )
    .unwrap();

    // Scenario chaos, same shape, through the DHSP store.
    let pack = small_pack("sram-decoder");
    let sdir = fresh_dir("obs-chaos-scenario");
    let sstore = ScenarioCheckpointStore::new(sdir.join("run.dhsp"), 3);
    std::fs::write(sstore.generation_path(0), b"not a checkpoint").unwrap();
    let splan = FaultPlan::parse("panic=0.3,disk-full=0.5,disk-torn=2", 17).unwrap();
    run_pack_supervised(
        pack,
        Some(&splan),
        &RetryPolicy::immediate(8),
        Some((&sstore, 1)),
    )
    .unwrap();

    let snap = deep_healing::obs::snapshot();
    for counter in [
        "fleet.shards_quarantined",
        "fleet.checkpoint_fallbacks",
        "fleet.disk_fault_enospc",
        "fleet.disk_fault_torn",
        "fleet.retention_trims",
        "scenario.shard_retries",
        "scenario.checkpoint_fallbacks",
        "scenario.disk_fault_enospc",
        "scenario.disk_fault_torn",
        "scenario.retention_trims",
    ] {
        assert!(
            snap.counter(counter) >= 1,
            "{counter} must count at least one event: {}",
            snap.to_json()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&sdir);
}

#[test]
fn identically_seeded_chaos_campaigns_are_bit_identical() {
    let config = small_fleet();
    let run = |tag: &str| {
        let dir = fresh_dir(tag);
        let store = CheckpointStore::new(dir.join("run.dhfl"), 3);
        let plan = FaultPlan::parse("panic=0.35,ckpt-flip=2,stuck-chip=5", 99).unwrap();
        let out = run_fleet_supervised(
            &config,
            Some(&plan),
            &RetryPolicy::immediate(2),
            Some((&store, 1)),
        )
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        out
    };
    let (report_a, degraded_a) = run("campaign-a");
    let (report_b, degraded_b) = run("campaign-b");
    assert_eq!(report_a.fingerprint(), report_b.fingerprint());
    assert_eq!(degraded_a.fingerprint(), degraded_b.fingerprint());
    assert_eq!(degraded_a.render(), degraded_b.render());
}
