//! Integration: the EM wire driven through full Fig. 5/6/7-style
//! protocols via the public API, including PDN-derived stress levels.

use deep_healing::pdn::grid::{LayerClass, PdnConfig, PdnMesh};
use deep_healing::prelude::*;

const J: CurrentDensity = CurrentDensity::new(7.96e10);

#[test]
fn full_stress_heal_stress_cycle_extends_life() {
    // A wire that receives one mid-life healing session outlives an
    // identical wire under continuous stress.
    let mut healed = EmWire::paper_wire();
    let mut continuous = EmWire::paper_wire();

    let mut continuous_ttf = None;
    let mut healed_ttf = None;
    let step = Seconds::from_minutes(10.0);
    for minute in (0..(48 * 60)).step_by(10) {
        if continuous_ttf.is_none() {
            continuous.advance(step, J);
            if continuous.is_failed() {
                continuous_ttf = Some(minute);
            }
        }
        if healed_ttf.is_none() {
            // Healing session between minutes 400 and 520.
            let j = if (400..520).contains(&minute) { -J } else { J };
            healed.advance(step, j);
            if healed.is_failed() {
                healed_ttf = Some(minute);
            }
        }
        if continuous_ttf.is_some() && healed_ttf.is_some() {
            break;
        }
    }
    let c = continuous_ttf.expect("continuous stress kills the wire");
    let h = healed_ttf.expect("healed wire eventually fails too");
    assert!(
        h > c + 300,
        "healed wire failed at {h} min, continuous at {c} min — healing bought too little"
    );
}

#[test]
fn pdn_current_density_is_survivable_but_nonzero_wear() {
    // Close the loop: local-grid current density from the PDN solve, fed
    // into the Black model, must give a multi-year (but finite) lifetime —
    // the regime where scheduled recovery matters.
    let mesh = PdnMesh::new(PdnConfig::default_chip()).unwrap();
    let sol = mesh.solve_uniform_load(0.4e-3).unwrap();
    let j_local = sol.peak_density(LayerClass::Local);
    assert!(j_local.as_ma_per_cm2() > 0.3);

    let black = BlackModel::calibrated_to_paper();
    let ttf = black.median_ttf(j_local, Celsius::new(85.0).to_kelvin());
    assert!(
        ttf.as_years() > 3.0 && ttf.as_years() < 1.0e5,
        "local-grid TTF {} years",
        ttf.as_years()
    );
}

#[test]
fn accelerated_oven_conditions_map_to_use_conditions_consistently() {
    // The Black model's acceleration factor must be consistent with its
    // own TTFs (sanity for the scheduler's de-rating path).
    let black = BlackModel::calibrated_to_paper();
    let j_use = CurrentDensity::from_ma_per_cm2(1.2);
    let t_use = Celsius::new(85.0).to_kelvin();
    let t_oven = Celsius::new(230.0).to_kelvin();
    let af = black.acceleration_factor(j_use, t_use, J, t_oven);
    let ratio = black.median_ttf(j_use, t_use) / black.median_ttf(J, t_oven);
    assert!((af - ratio).abs() / ratio < 1e-9);
    assert!(
        af > 1000.0,
        "oven test must be strongly accelerated, af = {af}"
    );
}

#[test]
fn thermal_chamber_drives_the_wire_like_a_constant_oven() {
    // Replaying the oven's ±0.3 °C fluctuation through the wire changes
    // nothing macroscopic: nucleation time shifts by under 10 %.
    let chamber = ThermalChamber::paper(Celsius::new(230.0));
    let mut fluctuating = EmWire::paper_wire();
    let mut constant = EmWire::paper_wire();

    let mut fl_nuc = None;
    let mut ct_nuc = None;
    for minute in 1..=360 {
        fluctuating.set_temperature(chamber.temperature_at(Seconds::from_minutes(minute as f64)));
        fluctuating.advance(Seconds::from_minutes(1.0), J);
        constant.advance(Seconds::from_minutes(1.0), J);
        if fl_nuc.is_none() && fluctuating.has_void() {
            fl_nuc = Some(minute);
        }
        if ct_nuc.is_none() && constant.has_void() {
            ct_nuc = Some(minute);
        }
    }
    let (f, c) = (
        fl_nuc.expect("nucleates") as f64,
        ct_nuc.expect("nucleates") as f64,
    );
    assert!((f - c).abs() / c < 0.1, "fluctuating {f} vs constant {c}");
}
