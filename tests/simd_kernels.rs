//! SIMD kernel acceptance: the vectorized wear kernels agree with their
//! scalar references.
//!
//! * The `dh-simd` batched exponentials match libm to ≤ 1e-12 relative
//!   error over the whole wear-kernel domain, including the exact
//!   saturation cutoffs.
//! * The CET structure-of-arrays SIMD kernels reproduce the retained
//!   PR 2 libm kernels to ≤ 1e-12 relative occupancy error, property-
//!   tested across random trap ensembles, lane-remainder ensemble sizes
//!   (not multiples of [`deep_healing::simd::LANES`]), and stress times
//!   that straddle the saturated-exponent boundary.
//! * The AVX2 and forced-scalar backends are bit-identical through a
//!   full stress/recover cycle — the runtime dispatch can never change
//!   a trajectory.

use std::sync::{Mutex, MutexGuard, OnceLock};

use deep_healing::bti::{RecoveryCondition, StressCondition, TrapEnsemble};
use deep_healing::simd;
use deep_healing::units::rng::seeded_rng;
use deep_healing::units::{Kelvin, Seconds, Volts};
use proptest::prelude::*;

/// Serialises tests that flip the process-global scalar-backend switch.
fn dispatch_lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-30)
}

/// A random-but-calibrated ensemble: paper-fitted rates with per-trap
/// variation drawn from `seed`. `n_traps` deliberately ranges over
/// non-multiples of the SIMD lane width so remainder lanes are covered.
/// `None` when the Table I fit diverges at this size (too few traps to
/// hit the calibration tolerance) — callers skip those sizes.
fn random_ensemble(n_traps: usize, seed: u64) -> Option<TrapEnsemble> {
    let mut rng = seeded_rng(seed, "simd-kernel-acceptance");
    TrapEnsemble::paper_calibrated(n_traps)
        .ok()
        .map(|e| e.with_variation(0.3, &mut rng))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The SIMD stress/recover kernels track the PR 2 libm kernels to
    /// ≤ 1e-12 relative occupancy error over random ensembles, lane
    /// remainders, and stress times from seconds to days (the long end
    /// drives capture exponents across the saturation boundary).
    #[test]
    fn simd_kernels_match_scalar_reference_over_random_ensembles(
        n_traps in 128usize..400,
        seed in 0u64..1_000,
        stress_hours in 0.001f64..48.0,
        recover_minutes in 0.5f64..240.0,
    ) {
        let ensemble = random_ensemble(n_traps, seed);
        prop_assume!(ensemble.is_some());
        let mut fast = ensemble.unwrap();
        let mut reference = fast.clone();
        let stress = StressCondition::ACCELERATED;
        let recover = RecoveryCondition::ACTIVE_ACCELERATED;
        for _ in 0..3 {
            fast.stress(Seconds::from_hours(stress_hours), stress);
            fast.recover(Seconds::from_minutes(recover_minutes), recover);
            reference.stress_pr2(Seconds::from_hours(stress_hours), stress);
            reference.recover_pr2(Seconds::from_minutes(recover_minutes), recover);
        }
        let (soft_a, hard_a) = fast.occupancy_columns();
        let (soft_b, hard_b) = reference.occupancy_columns();
        for (i, (a, b)) in soft_a.iter().zip(soft_b).enumerate() {
            prop_assert!(
                rel_diff(*a, *b) <= 1e-12,
                "soft occupancy {i}: {a} vs {b} (n={n_traps})"
            );
        }
        for (i, (a, b)) in hard_a.iter().zip(hard_b).enumerate() {
            prop_assert!(
                rel_diff(*a, *b) <= 1e-12,
                "hard occupancy {i}: {a} vs {b} (n={n_traps})"
            );
        }
        prop_assert!(rel_diff(fast.delta_vth_mv(), reference.delta_vth_mv()) <= 1e-12);
    }

    /// The batched exponentials match libm to ≤ 1e-12 relative error,
    /// with extra density right at the saturated-exponent boundaries
    /// where the fast paths switch on.
    #[test]
    fn batched_exponentials_match_libm(
        x in 0.0f64..800.0,
        boundary_offset in -1e-9f64..1e-9,
    ) {
        prop_assert!(rel_diff(simd::exp_neg(x), (-x).exp()) <= 1e-12, "exp_neg({x})");
        prop_assert!(
            rel_diff(simd::one_minus_exp_neg(x), -(-x).exp_m1()) <= 1e-12,
            "one_minus_exp_neg({x})"
        );
        // Straddle the exact cutoffs: below them the polynomial runs,
        // at/above them the result is exactly 1.0 / 0.0.
        let near_sat = simd::ONE_MINUS_EXP_NEG_SATURATE + boundary_offset;
        let v = simd::one_minus_exp_neg(near_sat);
        prop_assert!((v - 1.0).abs() <= f64::EPSILON, "near saturation: {v}");
        if near_sat >= simd::ONE_MINUS_EXP_NEG_SATURATE {
            prop_assert!(v == 1.0, "at/after the cutoff the result is exact");
        }
        let near_under = simd::EXP_NEG_UNDERFLOW + boundary_offset;
        let u = simd::exp_neg(near_under);
        prop_assert!((0.0..=1e-300).contains(&u), "near underflow: {u}");
        if near_under >= simd::EXP_NEG_UNDERFLOW {
            prop_assert!(u == 0.0);
        }
    }
}

#[test]
fn dispatch_backends_are_bit_identical_through_a_wear_cycle() {
    let _g = dispatch_lock();
    let run = |force_scalar: bool| {
        simd::force_scalar(force_scalar);
        // 203 = 50 lane groups of 4 plus a 3-lane remainder.
        let mut e = random_ensemble(203, 77).expect("calibration converges");
        for _ in 0..4 {
            e.stress(Seconds::from_hours(6.0), StressCondition::ACCELERATED);
            e.recover(
                Seconds::from_minutes(30.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
        }
        simd::force_scalar(false);
        let (soft, hard) = e.occupancy_columns();
        let bits: Vec<(u64, u64)> = soft
            .iter()
            .zip(hard)
            .map(|(s, h)| (s.to_bits(), h.to_bits()))
            .collect();
        (bits, e.delta_vth_mv().to_bits())
    };
    let auto = run(false);
    let scalar = run(true);
    assert_eq!(
        auto,
        scalar,
        "backend dispatch must never change a trajectory ({})",
        simd::backend_name()
    );
}

#[test]
fn saturated_fast_path_is_a_rounding_identity() {
    let _g = dispatch_lock();
    // A two-day accelerated stress drives every capture exponent far past
    // the saturation cutoff: the group fast path handles whole lanes.
    // The PR 2 kernel saturates per element; ≤ 1e-12 agreement here means
    // the lane-granular decision changed nothing.
    let mut fast = random_ensemble(128, 5).expect("calibration converges");
    let mut reference = fast.clone();
    let two_days = Seconds::from_hours(48.0);
    fast.stress(two_days, StressCondition::ACCELERATED);
    reference.stress_pr2(two_days, StressCondition::ACCELERATED);
    let (soft_a, _) = fast.occupancy_columns();
    let (soft_b, _) = reference.occupancy_columns();
    for (a, b) in soft_a.iter().zip(soft_b) {
        assert!(rel_diff(*a, *b) <= 1e-12, "{a} vs {b}");
    }

    // An artificial condition right at the knee: weak overdrive and a
    // short step leave most exponents *below* the cutoff; both kernels
    // must still agree (the fast path simply never fires).
    let knee = StressCondition {
        gate_voltage: Volts::new(0.4),
        temperature: Kelvin::new(25.0 + 273.15),
    };
    let mut fast = random_ensemble(299, 9).expect("calibration converges");
    let mut reference = fast.clone();
    fast.stress(Seconds::new(2.0), knee);
    reference.stress_pr2(Seconds::new(2.0), knee);
    let (soft_a, _) = fast.occupancy_columns();
    let (soft_b, _) = reference.occupancy_columns();
    for (a, b) in soft_a.iter().zip(soft_b) {
        assert!(rel_diff(*a, *b) <= 1e-12, "{a} vs {b}");
    }
}
