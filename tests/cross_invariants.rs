//! Property-based invariants across the public API (proptest).

use deep_healing::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recovery fraction is always a valid fraction and monotone in
    /// recovery time, for any stress/recovery condition in a wide range.
    #[test]
    fn bti_recovery_fraction_is_bounded_and_monotone(
        stress_h in 0.5f64..200.0,
        rec_h in 0.1f64..100.0,
        bias_mv in 0.0f64..800.0,
        temp_c in -20.0f64..180.0,
    ) {
        let model = AnalyticBtiModel::paper_calibrated();
        let cond = RecoveryCondition::new(Volts::new(-bias_mv / 1000.0), Celsius::new(temp_c));
        let stress = Seconds::from_hours(stress_h);
        let r1 = model.recovery_fraction(stress, Seconds::from_hours(rec_h), cond);
        let r2 = model.recovery_fraction(stress, Seconds::from_hours(rec_h * 2.0), cond);
        prop_assert!(r1.value() >= 0.0 && r1.value() <= 1.0);
        prop_assert!(r2 >= r1, "doubling recovery time reduced recovery: {r1} -> {r2}");
    }

    /// Deeper conditions never recover less.
    #[test]
    fn bti_recovery_is_monotone_in_condition_depth(
        bias_mv in 0.0f64..500.0,
        temp_c in 20.0f64..150.0,
    ) {
        let model = AnalyticBtiModel::paper_calibrated();
        let stress = Seconds::from_hours(24.0);
        let rec = Seconds::from_hours(6.0);
        let base = model.recovery_fraction(
            stress, rec, RecoveryCondition::new(Volts::new(-bias_mv / 1000.0), Celsius::new(temp_c)));
        let more_bias = model.recovery_fraction(
            stress, rec, RecoveryCondition::new(Volts::new(-(bias_mv + 50.0) / 1000.0), Celsius::new(temp_c)));
        let more_heat = model.recovery_fraction(
            stress, rec, RecoveryCondition::new(Volts::new(-bias_mv / 1000.0), Celsius::new(temp_c + 20.0)));
        prop_assert!(more_bias >= base);
        prop_assert!(more_heat >= base);
    }

    /// The BTI device never reports negative wearout and its permanent
    /// component never exceeds the total, under arbitrary schedules.
    #[test]
    fn bti_device_pools_stay_consistent(ops in proptest::collection::vec((0u8..2, 1u32..48), 1..24)) {
        let mut device = BtiDevice::paper_calibrated();
        for (op, half_hours) in ops {
            let dt = Seconds::from_hours(f64::from(half_hours) * 0.5);
            if op == 0 {
                device.stress(dt, StressCondition::ACCELERATED);
            } else {
                device.recover(dt, RecoveryCondition::ACTIVE_ACCELERATED);
            }
            prop_assert!(device.delta_vth_mv() >= -1e-9);
            prop_assert!(device.permanent_mv() <= device.delta_vth_mv() + 1e-9);
            prop_assert!(device.hard_permanent_mv() <= device.permanent_mv() + 1e-9);
        }
    }

    /// The ring oscillator sensor inverts its own frequency map exactly
    /// over the full usable range.
    #[test]
    fn ro_sensor_round_trips(dvth in 0.0f64..400.0) {
        let ro = RingOscillator::paper_75_stage();
        let f = ro.frequency(dvth);
        if f.value() > 0.0 {
            let est = ro.infer_delta_vth_mv(f).unwrap();
            prop_assert!((est - dvth).abs() < 0.05, "dvth {dvth} est {est}");
        }
    }

    /// EM wire resistance is finite and at least the fresh baseline until
    /// failure, for any mix of stress and recovery intervals.
    #[test]
    fn em_wire_resistance_bounded(ops in proptest::collection::vec((0u8..3, 5u32..120), 1..12)) {
        let mut wire = EmWire::paper_wire();
        let baseline = wire.resistance().value();
        for (op, minutes) in ops {
            let j = match op {
                0 => CurrentDensity::from_ma_per_cm2(7.96),
                1 => CurrentDensity::from_ma_per_cm2(-7.96),
                _ => CurrentDensity::ZERO,
            };
            wire.advance(Seconds::from_minutes(f64::from(minutes)), j);
            if wire.is_failed() {
                break;
            }
            let r = wire.resistance().value();
            prop_assert!(r.is_finite());
            prop_assert!(r >= baseline - 1e-9, "resistance fell below fresh: {r} < {baseline}");
        }
    }

    /// The Korhonen PDE conserves matter for any pre-nucleation stress
    /// pattern: the control-volume integral of σ stays ≈0 under blocked
    /// boundaries, whatever current sequence is applied.
    #[test]
    fn em_pde_conserves_stress_integral(ops in proptest::collection::vec((0u8..3, 5u32..40), 1..6)) {
        let mut wire = EmWire::paper_wire();
        for (op, minutes) in ops {
            let j = match op {
                0 => CurrentDensity::from_ma_per_cm2(5.0),
                1 => CurrentDensity::from_ma_per_cm2(-5.0),
                _ => CurrentDensity::ZERO,
            };
            wire.advance(Seconds::from_minutes(f64::from(minutes)), j);
        }
        prop_assume!(!wire.has_void());
        let profile = wire.stress_profile();
        // Uniform trapezoid weights are enough for the invariant check.
        let mut integral = 0.0;
        let mut scale = 0.0;
        for pair in profile.windows(2) {
            let dx = pair[1].0 - pair[0].0;
            let avg = 0.5 * (pair[0].1 + pair[1].1);
            integral += avg * dx;
            scale += avg.abs() * dx;
        }
        prop_assert!(
            integral.abs() <= 1e-6 * scale.max(1e-300) + 1e-12,
            "∫σ = {integral:.3e}, scale {scale:.3e}"
        );
    }

    /// Black's model: TTF is monotone decreasing in stress and quantiles
    /// are ordered, across the full operating envelope.
    #[test]
    fn black_ttf_monotone(j1 in 0.2f64..5.0, dj in 0.1f64..3.0, t_c in 25.0f64..250.0) {
        let black = BlackModel::calibrated_to_paper();
        let t = Celsius::new(t_c).to_kelvin();
        let lo = black.median_ttf(CurrentDensity::from_ma_per_cm2(j1), t);
        let hi = black.median_ttf(CurrentDensity::from_ma_per_cm2(j1 + dj), t);
        prop_assert!(hi < lo);
        let q10 = black.ttf_quantile(CurrentDensity::from_ma_per_cm2(j1), t, 0.1);
        let q90 = black.ttf_quantile(CurrentDensity::from_ma_per_cm2(j1), t, 0.9);
        prop_assert!(q10 < lo && lo < q90);
    }

    /// The thermal grid's settled temperatures always sit between ambient
    /// and ambient + P_total·R_vertical (maximum-principle bound).
    #[test]
    fn thermal_grid_respects_bounds(powers in proptest::collection::vec(0.0f64..4.0, 16)) {
        let mut grid = ThermalGrid::new(GridConfig::manycore_4x4()).unwrap();
        grid.settle(&powers).unwrap();
        let ambient = 45.0;
        let p_max = powers.iter().cloned().fold(0.0, f64::max);
        for t in grid.temperatures() {
            let c = t.to_celsius().value();
            prop_assert!(c >= ambient - 1e-6);
            // No tile can exceed the hottest tile's own worst-case rise.
            prop_assert!(c <= ambient + p_max * 20.0 + 1e-6, "t = {c}");
        }
    }

    /// Duty-cycled BTI stress: for any duty and period, the outcome is a
    /// valid state (total ≥ permanent ≥ 0) and never exceeds the DC
    /// worst case at the same cumulative stress time.
    #[test]
    fn bti_duty_cycle_bounded_by_dc(
        duty in 0.1f64..1.0,
        period_h in 0.5f64..12.0,
    ) {
        use deep_healing::bti::ac::duty_cycle_run;
        use deep_healing::bti::analytic::AnalyticBtiModel;
        let model = AnalyticBtiModel::paper_calibrated();
        let out = duty_cycle_run(
            model,
            StressCondition::ACCELERATED,
            RecoveryCondition::ACTIVE_ACCELERATED,
            Seconds::from_hours(period_h),
            duty,
            Seconds::from_hours(12.0),
        );
        prop_assert!(out.total_mv >= 0.0);
        prop_assert!(out.permanent_mv >= 0.0);
        prop_assert!(out.permanent_mv <= out.total_mv + 1e-9);
        // DC reference with the same cumulative ON time.
        let mut dc = BtiDevice::new(model);
        dc.stress(Seconds::from_hours(12.0), StressCondition::ACCELERATED);
        prop_assert!(
            out.total_mv <= dc.delta_vth_mv() * 1.05,
            "duty-cycled {} must not exceed DC {}",
            out.total_mv,
            dc.delta_vth_mv()
        );
    }

    /// EM network: segment currents always satisfy KCL at the source for
    /// any (possibly asymmetric) two-branch topology.
    #[test]
    fn em_network_conserves_current(
        len_a_um in 60.0f64..300.0,
        len_b_um in 60.0f64..300.0,
        supply_ma in 1.0f64..30.0,
    ) {
        use deep_healing::em::material::EmMaterial;
        use deep_healing::units::Amperes;
        let net = EmNetwork::new(
            2,
            &[(0, 1, len_a_um * 1e-6), (0, 1, len_b_um * 1e-6)],
            0.4e-6,
            0.35e-6,
            EmMaterial::damascene_copper(),
            Celsius::new(230.0).to_kelvin(),
            0,
            1,
        ).expect("valid topology");
        let supply = Amperes::new(supply_ma * 1e-3);
        let currents = net.segment_currents(supply).expect("connected");
        let total: f64 = currents.iter().map(|c| c.value()).sum();
        prop_assert!((total - supply.value()).abs() / supply.value() < 1e-9);
        // The shorter branch carries at least as much current.
        let (short_idx, long_idx) = if len_a_um <= len_b_um { (0, 1) } else { (1, 0) };
        prop_assert!(currents[short_idx].value() >= currents[long_idx].value() - 1e-15);
    }

    /// Assist circuit: for any header width and sane loads, EM mode always
    /// reverses the grid current at equal magnitude.
    #[test]
    fn assist_em_mode_symmetry(width in 0.5f64..8.0, load in 500.0f64..10_000.0) {
        let c = AssistCircuit::paper_28nm()
            .with_header_width(width)
            .with_load_active(Ohms::new(load));
        let normal = c.solve(Mode::Normal).unwrap();
        let em = c.solve(Mode::EmActiveRecovery).unwrap();
        prop_assert!(normal.grid_current.value() > 0.0);
        prop_assert!(em.grid_current.value() < 0.0);
        let ratio = -em.grid_current.value() / normal.grid_current.value();
        prop_assert!((ratio - 1.0).abs() < 1e-6, "asymmetry ratio {ratio}");
    }
}
