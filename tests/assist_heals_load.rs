//! Integration: the assist circuitry's solved BTI-recovery bias actually
//! heals a BTI device faster than the paper's −0.3 V experimental knob —
//! closing the loop between the circuit (Figs. 8–9) and device (Table I)
//! halves of the paper.

use deep_healing::prelude::*;

fn stressed_device() -> BtiDevice {
    let mut d = BtiDevice::paper_calibrated();
    d.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
    d
}

#[test]
fn assist_bias_outheals_the_experimental_bias() {
    let assist = AssistCircuit::paper_28nm();
    let bias = assist
        .solve(Mode::BtiActiveRecovery)
        .unwrap()
        .bti_recovery_bias();
    assert!(bias < Volts::new(-0.5), "assist bias {bias}");

    let hot = Celsius::new(110.0);
    let mut via_assist = stressed_device();
    via_assist.recover(Seconds::from_hours(2.0), RecoveryCondition::new(bias, hot));

    let mut via_bench = stressed_device();
    via_bench.recover(
        Seconds::from_hours(2.0),
        RecoveryCondition::new(Volts::new(-0.3), hot),
    );

    assert!(
        via_assist.delta_vth_mv() < via_bench.delta_vth_mv(),
        "assist {:.2} mV vs bench-supply {:.2} mV",
        via_assist.delta_vth_mv(),
        via_bench.delta_vth_mv()
    );
}

#[test]
fn neighbour_heating_accelerates_recovery_of_a_dark_core() {
    // Fig. 12(a): a dark core surrounded by busy neighbours recovers
    // faster than one on an idle chip — temperature is a healing knob.
    let mut grid = ThermalGrid::new(GridConfig::manycore_4x4()).unwrap();
    let mut busy_power = vec![2.0; 16];
    busy_power[5] = 0.0; // the dark, recovering core
    grid.settle(&busy_power).unwrap();
    let warm = grid.temperature(1, 1);

    let mut idle_grid = ThermalGrid::new(GridConfig::manycore_4x4()).unwrap();
    idle_grid.settle(&[0.0; 16]).unwrap();
    let cool = idle_grid.temperature(1, 1);
    assert!(warm > cool);

    let bias = Volts::new(-0.3);
    let mut warm_core = stressed_device();
    warm_core.recover(
        Seconds::from_hours(2.0),
        RecoveryCondition {
            gate_voltage: bias,
            temperature: warm,
        },
    );
    let mut cool_core = stressed_device();
    cool_core.recover(
        Seconds::from_hours(2.0),
        RecoveryCondition {
            gate_voltage: bias,
            temperature: cool,
        },
    );
    assert!(
        warm_core.delta_vth_mv() < cool_core.delta_vth_mv(),
        "warm {:.2} mV vs cool {:.2} mV",
        warm_core.delta_vth_mv(),
        cool_core.delta_vth_mv()
    );
}

#[test]
fn aged_load_slows_the_ring_oscillator_and_healing_restores_it() {
    let ro = RingOscillator::paper_75_stage();
    let mut device = stressed_device();
    let f_aged = ro.frequency(device.delta_vth_mv());
    device.recover(
        Seconds::from_hours(6.0),
        RecoveryCondition::ACTIVE_ACCELERATED,
    );
    let f_healed = ro.frequency(device.delta_vth_mv());
    let f_fresh = ro.frequency(0.0);
    assert!(f_aged < f_healed && f_healed < f_fresh);
    // Deep healing restores most of the lost frequency.
    let restored = (f_healed.value() - f_aged.value()) / (f_fresh.value() - f_aged.value());
    assert!(
        restored > 0.6,
        "restored {restored:.2} of the frequency loss"
    );
}

#[test]
fn em_recovery_mode_does_not_break_the_load_supply() {
    // In EM active recovery the load must keep functioning (the paper
    // schedules it during operation).
    let c = AssistCircuit::paper_28nm();
    let normal = c.solve(Mode::Normal).unwrap();
    let em = c.solve(Mode::EmActiveRecovery).unwrap();
    let v_n = (normal.load_vdd - normal.load_vss).value();
    let v_e = (em.load_vdd - em.load_vss).value();
    assert!(
        (v_n - v_e).abs() < 1e-9,
        "load supply changed: {v_n} vs {v_e}"
    );
    assert!(v_e > 0.4, "load must stay functional, got {v_e} V");
}
