//! Integration: protocol-level replays that tie modules together the way
//! the paper's deployment story does.

use deep_healing::em::schedule::condition_matrix;
use deep_healing::experiments;
use deep_healing::prelude::*;
use deep_healing::sched::migration::{price_schedule, StateStrategy};

#[test]
fn em_condition_matrix_mirrors_table_one_structure() {
    let outs = condition_matrix(
        CurrentDensity::from_ma_per_cm2(7.96),
        Seconds::from_minutes(500.0),
        Seconds::from_minutes(100.0),
    );
    // Condition order and knob flags follow Fig. 2(b).
    assert_eq!(outs.map(|o| o.condition_no), [1, 2, 3, 4]);
    assert_eq!(outs.map(|o| o.reverse_current), [false, true, false, true]);
    // Deep (condition 4) wins decisively, like Table I's 72.4 %.
    let r: Vec<f64> = outs.iter().map(|o| o.recovered_fraction).collect();
    assert!(
        r[3] > 0.5 && r[3] > r[0] && r[3] > r[1] && r[3] > r[2],
        "{r:?}"
    );
}

#[test]
fn migration_cost_uses_the_actual_assist_switching_time() {
    // Close the loop between the Fig. 10 circuit model and the scheduler's
    // cost accounting: the electrical mode-switch time comes from the
    // solved sweep, not an assumed constant.
    let sweep = experiments::fig10();
    let electrical = sweep[0].switching_time;
    // The RC rail swap is tens of nanoseconds — the paper's "small
    // switching overhead".
    assert!(
        electrical < Seconds::new(1.0e-6),
        "switch {} s",
        electrical.value()
    );

    let report = price_schedule(
        StateStrategy::typical_migration(),
        4.0,
        Seconds::from_hours(0.9),
        electrical,
        10.0,
    );
    assert!(report.downtime_fraction.value() < 1.0e-6);

    // Retention with the same electrical switch: downtime is pure
    // electronics, thousands of times smaller again.
    let retention = price_schedule(
        StateStrategy::typical_retention(),
        4.0,
        Seconds::from_hours(0.9),
        electrical,
        10.0,
    );
    assert!(retention.total_downtime < report.total_downtime);
}

#[test]
fn one_hour_one_hour_keeps_a_device_fresh_through_the_rig() {
    // The Fig. 4 headline replayed on the virtual measurement rig: after a
    // day of 1 h : 1 h cycling, the device's permanent component is
    // practically zero and its frequency is near fresh.
    use deep_healing::rig::MeasurementRig;
    let mut rig = MeasurementRig::paper_setup(21);
    rig.set_chamber(Celsius::new(110.0));
    for _ in 0..12 {
        rig.run_stress(Volts::new(1.2), Seconds::from_hours(1.0));
        rig.run_recovery(Volts::new(-0.3), Seconds::from_hours(1.0));
    }
    let device = rig.device();
    assert!(
        device.permanent_mv() < 0.6,
        "permanent after balanced cycling: {} mV",
        device.permanent_mv()
    );
    // Frequency at the end of the last recovery is within a few percent of
    // fresh.
    let fresh = rig.trace().first().unwrap().value;
    let last = rig.trace().last().unwrap().value;
    assert!(last > 0.95 * fresh, "fresh {fresh} MHz vs final {last} MHz");
}

#[test]
fn guardbands_from_the_lifetime_sim_price_into_supply_boost() {
    // Margin currencies are interchangeable: the no-recovery lifetime's
    // guardband, expressed as a VDD boost, costs measurable power; the
    // healed lifetime's boost is negligible.
    use deep_healing::guardband::compensation_power_overhead;
    let outcomes = experiments::fig12(0.1).unwrap();
    let worst_mv = |name: &str| {
        let o = outcomes.iter().find(|o| o.policy == name).unwrap();
        // Invert the frequency guardband into mV via the reference RO.
        let ro = RingOscillator::paper_75_stage();
        let f = ro.frequency(0.0) * (1.0 - o.required_guardband);
        ro.infer_delta_vth_mv(f).unwrap_or(0.0)
    };
    let device = deep_healing::circuit::Mosfet::n28();
    let none = compensation_power_overhead(&device, Volts::new(0.9), worst_mv("no-recovery"));
    let deep = compensation_power_overhead(&device, Volts::new(0.9), worst_mv("periodic-deep"));
    assert!(none > 5.0 * deep, "none {none} vs deep {deep}");
}
