//! The workspace determinism contract: every Monte-Carlo path routed
//! through `dh-exec` must produce **bit-identical** results at any thread
//! count, and the same seed must always reproduce the same result.
//!
//! Each test runs the same computation pinned to one worker and at the
//! default worker count, then compares `f64` bit patterns (not approximate
//! equality). A process-wide lock serialises the tests because the thread
//! cap is global state.

use std::sync::{Mutex, MutexGuard, OnceLock};

use deep_healing::circuit::ro_array::RoArray;
use deep_healing::em::population::{simulate_population, TtfPopulation, VariationModel};
use deep_healing::prelude::*;
use deep_healing::sched::lifetime::monte_carlo_guardband;
use proptest::prelude::*;

/// Serialises tests that touch the global thread cap.
fn lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` with the engine pinned to `threads` workers (`None` restores
/// the default count), resetting the cap afterwards.
fn with_threads<T>(threads: Option<usize>, f: impl FnOnce() -> T) -> T {
    dh_exec::set_max_threads(threads);
    let out = f();
    dh_exec::set_max_threads(None);
    out
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs: {x} vs {y}"
        );
    }
}

fn population() -> TtfPopulation {
    simulate_population(
        16,
        CurrentDensity::from_ma_per_cm2(7.96),
        VariationModel::default(),
        Seconds::from_hours(48.0),
        2024,
    )
}

#[test]
fn em_population_is_thread_count_invariant_and_repeatable() {
    let _g = lock();
    let serial = with_threads(Some(1), population);
    let parallel = with_threads(None, population);
    let again = with_threads(None, population);

    let bits = |p: &TtfPopulation| p.ttfs.iter().map(|t| t.value()).collect::<Vec<_>>();
    assert_bits_eq(
        &bits(&serial),
        &bits(&parallel),
        "TTFs, 1 thread vs default",
    );
    assert_eq!(serial.censored, parallel.censored);
    assert_bits_eq(&bits(&parallel), &bits(&again), "TTFs, same seed twice");
}

#[test]
fn guardband_monte_carlo_is_thread_count_invariant_and_repeatable() {
    let _g = lock();
    let config = LifetimeConfig {
        years: 0.05,
        sample_every: 4,
        ..LifetimeConfig::default()
    };
    let run = || {
        monte_carlo_guardband(&config, Policy::PassiveIdle, 40..44)
            .unwrap()
            .iter()
            .map(|o| o.guardband)
            .collect::<Vec<_>>()
    };

    let serial = with_threads(Some(1), run);
    let parallel = with_threads(None, run);
    let again = with_threads(None, run);
    assert_bits_eq(&serial, &parallel, "guardbands, 1 thread vs default");
    assert_bits_eq(&parallel, &again, "guardbands, same seeds twice");
}

#[test]
fn cet_stress_and_recover_are_thread_count_invariant() {
    let _g = lock();
    let run = || {
        let mut e = TrapEnsemble::paper_calibrated(2000).unwrap();
        let mut marks = Vec::new();
        for _ in 0..3 {
            e.stress(Seconds::from_hours(2.0), StressCondition::ACCELERATED);
            marks.push(e.delta_vth_mv());
            e.recover(
                Seconds::from_hours(1.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
            marks.push(e.delta_vth_mv());
            marks.push(e.permanent_mv());
        }
        marks
    };

    let serial = with_threads(Some(1), run);
    let parallel = with_threads(None, run);
    let again = with_threads(None, run);
    assert_bits_eq(&serial, &parallel, "CET trajectory, 1 thread vs default");
    assert_bits_eq(&parallel, &again, "CET trajectory, repeated");
}

/// One random stress/recover schedule: op 0 stresses, op 1 recovers, each
/// for the given number of minutes.
fn run_schedule(ops: &[(u8, u32)], kernel: bool) -> Vec<f64> {
    let mut e = TrapEnsemble::paper_calibrated(600).unwrap();
    let mut marks = Vec::with_capacity(ops.len() * 2);
    for &(op, minutes) in ops {
        let dt = Seconds::from_minutes(minutes as f64);
        match (op, kernel) {
            (0, true) => e.stress(dt, StressCondition::ACCELERATED),
            (0, false) => e.stress_reference(dt, StressCondition::ACCELERATED),
            (_, true) => e.recover(dt, RecoveryCondition::ACTIVE_ACCELERATED),
            (_, false) => e.recover_reference(dt, RecoveryCondition::ACTIVE_ACCELERATED),
        }
        marks.push(e.delta_vth_mv());
        marks.push(e.permanent_mv());
    }
    marks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any random stress/recover schedule through the SoA kernels is
    /// bit-identical at 1 worker and at the default worker count, and the
    /// aggregates stay within 1e-12 relative of the scalar reference path.
    #[test]
    fn random_cet_schedules_are_deterministic_and_match_the_reference(
        ops in proptest::collection::vec((0u8..2, 1u32..600), 1..10),
    ) {
        let _g = lock();
        let serial = with_threads(Some(1), || run_schedule(&ops, true));
        let parallel = with_threads(None, || run_schedule(&ops, true));
        prop_assert!(serial.len() == parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "mark {} differs across thread counts: {} vs {}",
                i, a, b
            );
        }
        let reference = with_threads(None, || run_schedule(&ops, false));
        for (i, (k, r)) in serial.iter().zip(&reference).enumerate() {
            let rel = (k - r).abs() / r.abs().max(1e-12);
            prop_assert!(
                rel <= 1e-12,
                "mark {} drifts from the reference: kernel {} vs reference {} (rel {:e})",
                i, k, r, rel
            );
        }
    }
}

#[test]
fn ro_array_sites_are_thread_count_invariant() {
    let _g = lock();
    let build = || RoArray::paper_4x4(77);
    let serial = with_threads(Some(1), build);
    let parallel = with_threads(None, build);
    assert_eq!(serial, parallel, "RO array must not depend on worker count");

    let factors = |a: &RoArray| {
        a.sites()
            .iter()
            .map(|s| s.process_factor)
            .collect::<Vec<_>>()
    };
    assert_bits_eq(&factors(&serial), &factors(&parallel), "process factors");
}
