//! The fleet subsystem's acceptance contract:
//!
//! * streaming one-pass aggregates agree with exact whole-population
//!   statistics (property-tested over random populations);
//! * the fleet report is **bit-identical** across thread counts and shard
//!   partitionings — a 1-shard serial run equals an N-shard parallel run;
//! * a run killed mid-flight and resumed from its checkpoint produces a
//!   byte-identical final report.
//!
//! Byte identity is compared through [`FleetReport::fingerprint`] (an
//! FNV-1a hash of every field's exact bit pattern — derived `==` would
//! reject the NaN quantiles of an empty TTF distribution) plus the full
//! rendered report text.

use std::sync::{Mutex, MutexGuard, OnceLock};

use deep_healing::fleet::{
    run_fleet_checkpointed, run_fleet_checkpointed_with, AsyncCheckpointer, CheckpointMode,
    CheckpointStore, FleetConfig, FleetPolicy, FleetReport, FleetRun, MaintenanceBudget, Snapshot,
    StreamingSummary,
};
use deep_healing::prelude::*;
use proptest::prelude::*;

/// Serialises tests that touch the global thread cap.
fn lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` with the engine pinned to `threads` workers (`None` restores
/// the default count), resetting the cap afterwards.
fn with_threads<T>(threads: Option<usize>, f: impl FnOnce() -> T) -> T {
    dh_exec::set_max_threads(threads);
    let out = f();
    dh_exec::set_max_threads(None);
    out
}

fn assert_reports_identical(a: &FleetReport, b: &FleetReport, what: &str) {
    assert_eq!(a.fingerprint(), b.fingerprint(), "{what}: fingerprints");
    assert_eq!(a.render(), b.render(), "{what}: rendered reports");
}

fn small_fleet() -> FleetConfig {
    FleetConfig {
        devices: 96,
        years: 0.25,
        shard_size: 16,
        group_size: 16,
        policies: vec![FleetPolicy::WorstFirst, FleetPolicy::RoundRobin],
        budget: MaintenanceBudget { slots_per_group: 2 },
        ..FleetConfig::default()
    }
}

/// Exact whole-population quantile by linear interpolation on the sorted
/// sample.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let t = rank - lo as f64;
    sorted[lo] * (1.0 - t) + sorted[hi] * t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any population streamed through the one-pass summary matches the
    /// exact two-pass statistics: moments to numerical precision, P²
    /// quantile estimates to well within the spread of the data.
    #[test]
    fn streaming_summary_matches_exact_population_statistics(
        values in proptest::collection::vec(0.0f64..1.0, 1..400),
    ) {
        let mut summary = StreamingSummary::new();
        for &v in &values {
            summary.push(v);
        }
        let stats = summary.finalize();
        let n = values.len() as f64;

        let mean = values.iter().sum::<f64>() / n;
        prop_assert!(stats.count == values.len() as u64);
        prop_assert!((stats.mean - mean).abs() < 1e-10, "mean {} vs {}", stats.mean, mean);
        if values.len() >= 2 {
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!(
                (stats.std_dev - var.sqrt()).abs() < 1e-8,
                "std {} vs {}", stats.std_dev, var.sqrt()
            );
        }

        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        prop_assert!(stats.min.to_bits() == sorted[0].to_bits());
        prop_assert!(stats.max.to_bits() == sorted[sorted.len() - 1].to_bits());

        // Quantile estimates always stay inside the observed range, are
        // exact for ≤5 observations, and track the exact quantiles once
        // the markers have data to work with.
        for (est, q) in [(stats.p50, 0.5), (stats.p90, 0.9), (stats.p99, 0.99)] {
            let exact = exact_quantile(&sorted, q);
            prop_assert!(
                stats.min <= est && est <= stats.max,
                "p{} estimate {} outside [{}, {}]", q * 100.0, est, stats.min, stats.max
            );
            if values.len() <= 5 {
                prop_assert!(
                    est == exact,
                    "p{} estimate {} must be the exact order statistic {} for n={}",
                    q * 100.0, est, exact, values.len()
                );
            }
            if values.len() >= 50 {
                prop_assert!(
                    (est - exact).abs() < 0.25,
                    "p{} estimate {} far from exact {} (n={})",
                    q * 100.0, est, exact, values.len()
                );
            }
        }
    }
}

#[test]
fn fleet_report_is_identical_serial_one_shard_vs_parallel_many_shards() {
    let _g = lock();
    // One shard holding the whole fleet, folded on a single worker...
    let one_shard = FleetConfig {
        shard_size: 96,
        ..small_fleet()
    };
    let serial = with_threads(Some(1), || run_fleet(&one_shard).unwrap());
    // ...versus six shards raced across the default worker count.
    let parallel = with_threads(None, || run_fleet(&small_fleet()).unwrap());
    let again = with_threads(None, || run_fleet(&small_fleet()).unwrap());

    assert_reports_identical(&serial, &parallel, "1-shard serial vs N-shard parallel");
    assert_reports_identical(&parallel, &again, "same config twice");
    assert_eq!(serial.devices, 96);
}

#[test]
fn killed_and_resumed_run_reports_byte_identically() {
    let _g = lock();
    let config = small_fleet();
    let uninterrupted = run_fleet(&config).unwrap();

    let dir = std::env::temp_dir().join("dh-fleet-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.dhfl");
    let _ = std::fs::remove_file(&path);

    // "Kill" a run partway: fold two of the six shards, checkpoint, and
    // drop the run without finishing it.
    {
        let mut run = FleetRun::new(config.clone()).unwrap();
        assert!(
            !run.step(2).unwrap(),
            "two of six shards must not finish the run"
        );
        run.snapshot().write(&path).unwrap();
    }
    let snap = Snapshot::read(&path).unwrap();
    assert_eq!(snap.cursor, 2, "checkpoint records the shard boundary");

    // A fresh process resumes from the file and finishes.
    let resumed = run_fleet_checkpointed(&config, &path, 1).unwrap();
    assert_reports_identical(&uninterrupted, &resumed, "uninterrupted vs killed+resumed");

    // The final checkpoint left on disk is the completed run.
    let final_snap = Snapshot::read(&path).unwrap();
    assert_eq!(final_snap.cursor, config.shard_count());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checkpoint_mode_is_invisible_to_kill_and_resume() {
    let _g = lock();
    let config = small_fleet();
    let uninterrupted = run_fleet(&config).unwrap();

    let dir = std::env::temp_dir().join("dh-fleet-resume-mode-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.dhfl");
    let _ = std::fs::remove_file(&path);

    // "Kill" mid-run with the checkpoint written through the async
    // writer thread (submit + drop — the drop drains the queue, like a
    // process that dies after its last write landed)...
    {
        let mut run = FleetRun::new(config.clone()).unwrap();
        assert!(!run.step(2).unwrap());
        let mut writer = AsyncCheckpointer::spawn(CheckpointStore::new(&path, 1), None);
        writer.submit(run.snapshot()).unwrap();
        writer.finish().unwrap();
    }
    // ...then resume with the sync writer: the modes must be fully
    // interchangeable across the kill boundary.
    let resumed_sync =
        run_fleet_checkpointed_with(&config, &path, 1, CheckpointMode::Sync).unwrap();
    assert_reports_identical(&uninterrupted, &resumed_sync, "async kill, sync resume");
    let after_sync = std::fs::read(&path).unwrap();

    // The reverse: sync mid-kill write, async resume.
    let _ = std::fs::remove_file(&path);
    {
        let mut run = FleetRun::new(config.clone()).unwrap();
        assert!(!run.step(2).unwrap());
        run.snapshot().write(&path).unwrap();
    }
    let resumed_async =
        run_fleet_checkpointed_with(&config, &path, 1, CheckpointMode::Async).unwrap();
    assert_reports_identical(&uninterrupted, &resumed_async, "sync kill, async resume");
    let after_async = std::fs::read(&path).unwrap();
    assert_eq!(
        after_sync, after_async,
        "final checkpoint bytes must not depend on the writer mode"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn legacy_v2_checkpoint_fixture_resumes_to_the_pinned_report() {
    let _g = lock();
    let config = small_fleet();
    // The fixture was generated from exactly this config by a DHFL v2
    // build; if the config fingerprint drifts the fixture must be
    // regenerated, not the assertion loosened.
    assert_eq!(
        config.fingerprint(),
        0xc13c_bfe2_456c_6849,
        "fixture config drifted"
    );
    let fixture =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/fleet_v2.dhfl");
    let snap = Snapshot::read(&fixture).expect("checked-in v2 checkpoint decodes");
    assert_eq!(snap.cursor, 2, "fixture holds two of six folded shards");

    let mut run = FleetRun::resume(config.clone(), snap).unwrap();
    while !run.step(1).unwrap() {}
    let resumed = run.report().unwrap();
    let whole = run_fleet(&config).unwrap();
    assert_reports_identical(&whole, &resumed, "v2 fixture resume vs fresh run");
    assert_eq!(
        resumed.fingerprint(),
        0x14f3_6d23_87f3_7887,
        "pinned v2-resume report fingerprint"
    );
}

#[test]
fn resume_is_thread_count_invariant() {
    let _g = lock();
    let config = small_fleet();
    let dir = std::env::temp_dir().join("dh-fleet-resume-threads-test");
    std::fs::create_dir_all(&dir).unwrap();

    // Start serially, checkpoint, then resume on the full worker pool —
    // the partitioning of work before and after the kill is irrelevant.
    let path = dir.join("run.dhfl");
    let _ = std::fs::remove_file(&path);
    with_threads(Some(1), || {
        let mut run = FleetRun::new(config.clone()).unwrap();
        run.step(3).unwrap();
        run.snapshot().write(&path).unwrap();
    });
    let resumed = with_threads(None, || run_fleet_checkpointed(&config, &path, 2).unwrap());
    let whole = with_threads(None, || run_fleet(&config).unwrap());
    assert_reports_identical(&whole, &resumed, "serial start, parallel finish");
    std::fs::remove_file(&path).unwrap();
}
