//! Integration: multi-month lifetime runs across the whole stack
//! (workloads → thermal → BTI/EM → sensors → policy).

use deep_healing::experiments;
use deep_healing::prelude::*;

#[test]
fn policy_ladder_is_ordered_end_to_end() {
    let outcomes = experiments::fig12(0.2).unwrap();
    let g = |name: &str| {
        outcomes
            .iter()
            .find(|o| o.policy == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .required_guardband
    };
    assert!(
        g("no-recovery") > g("passive-idle"),
        "passive must beat none"
    );
    assert!(
        g("passive-idle") > g("periodic-deep"),
        "deep must beat passive"
    );
    // Periodic deep healing wins big (the Fig. 12(b) story).
    assert!(g("no-recovery") > 5.0 * g("periodic-deep"));
    // Adaptive matches passive's worst case: its sensor lags one epoch, so
    // the first-epoch transient (which sets the max) is identical; thermal
    // coupling adds at most a few percent of noise around that.
    assert!(g("adaptive") <= g("passive-idle") * 1.05);
}

#[test]
fn degradation_series_stays_bounded_and_starts_fresh() {
    let config = LifetimeConfig {
        years: 0.1,
        ..LifetimeConfig::default()
    };
    let out = run_lifetime(&config, Policy::periodic_deep_default(), 9).unwrap();
    let first = out.degradation_series.first().unwrap();
    assert!(first.value < 0.05, "first sample {first:?}");
    assert!(out.degradation_series.max_value().unwrap() <= out.required_guardband + 1e-12);
    assert!(out.required_guardband < 0.15);
}

#[test]
fn deep_policy_prevents_permanent_accumulation_at_system_level() {
    let config = LifetimeConfig {
        years: 0.3,
        ..LifetimeConfig::default()
    };
    let none = run_lifetime(&config, Policy::NoRecovery, 2).unwrap();
    let deep = run_lifetime(&config, Policy::periodic_deep_default(), 2).unwrap();
    assert!(
        deep.final_permanent_mv < none.final_permanent_mv,
        "deep {:.3} mV vs none {:.3} mV permanent",
        deep.final_permanent_mv,
        none.final_permanent_mv
    );
}

#[test]
fn longer_lifetimes_never_shrink_the_required_guardband() {
    let mk = |years: f64| {
        let config = LifetimeConfig {
            years,
            ..LifetimeConfig::default()
        };
        run_lifetime(&config, Policy::PassiveIdle, 4)
            .unwrap()
            .required_guardband
    };
    let short = mk(0.05);
    let long = mk(0.15);
    assert!(long >= short, "guardband shrank: {short} → {long}");
}

#[test]
fn em_duty_reduces_system_level_damage() {
    let config = LifetimeConfig {
        years: 0.2,
        ..LifetimeConfig::default()
    };
    let passive = run_lifetime(&config, Policy::PassiveIdle, 6).unwrap();
    let deep = run_lifetime(&config, Policy::periodic_deep_default(), 6).unwrap();
    assert!(deep.final_em_damage < passive.final_em_damage);
    let (p, d) = (
        passive.projected_em_ttf.expect("wear accumulated"),
        deep.projected_em_ttf.expect("wear accumulated"),
    );
    assert!(
        d > p,
        "projected TTF: deep {} y vs passive {} y",
        d.as_years(),
        p.as_years()
    );
}
