//! Workspace-level observability contract.
//!
//! The `dh-obs` layer must be invisible by default — a full simulation
//! leaves the registry empty when the `obs` feature is off — and must
//! capture the cross-crate story (scheduler modes, thermal solves, CET
//! kernels, memoization) when it is on. The always-on [`MetricsReport`]
//! carried by every lifetime outcome works either way.
//!
//! Run the instrumented half with `cargo test --features obs`.

use deep_healing::prelude::*;

fn short_lifetime() -> LifetimeConfig {
    LifetimeConfig {
        years: 0.05,
        ..LifetimeConfig::default()
    }
}

#[test]
fn metrics_report_rides_every_outcome_regardless_of_features() {
    let deep = run_lifetime(&short_lifetime(), Policy::periodic_deep_default(), 9).unwrap();
    let m = &deep.metrics;
    assert!(m.epochs > 0);
    assert_eq!(m.core_epochs, m.epochs * 16);
    assert_eq!(
        m.epochs_normal + m.epochs_em_ar + m.epochs_bti_ar,
        m.core_epochs
    );
    assert!(m.bti_recovery_seconds > 0.0);
    assert!(m.bti_healed_mv > 0.0);
    assert!(m.mode_transitions() >= 16, "one power-on entry per core");
}

#[test]
fn snapshot_json_is_always_well_formed() {
    let json = deep_healing::obs::snapshot().to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"counters\""));
    assert!(json.contains("\"histograms\""));
}

// The two halves below guard on the runtime `ENABLED` constant rather than
// a cfg: feature unification can flip `dh-obs/enabled` from any crate in
// the build (e.g. `--features dh-obs/enabled`), and the constant is the
// ground truth for what this binary actually compiled.

#[test]
fn a_full_simulation_leaves_the_registry_empty_when_disabled() {
    if deep_healing::obs::ENABLED {
        return; // instrumented build: covered by the test below
    }
    let mut system = ManyCoreSystem::new(SystemConfig::default())
        .unwrap()
        .with_trap_monitor(200)
        .unwrap();
    for _ in 0..4 {
        system.step(Policy::periodic_deep_default()).unwrap();
    }
    let snap = deep_healing::obs::snapshot();
    assert_eq!(snap.counters.len(), 0);
    assert_eq!(snap.histograms.len(), 0);
    assert_eq!(snap.labels.len(), 0);
    assert_eq!(
        snap.to_json(),
        "{\"counters\": {}, \"histograms\": {}, \"labels\": {}}"
    );
}

/// One end-to-end run, then every layer's instrumentation is checked
/// against the same snapshot. A single test keeps the global registry
/// free of cross-test interleaving.
#[test]
fn one_run_is_visible_across_every_layer_when_enabled() {
    if !deep_healing::obs::ENABLED {
        return; // uninstrumented build: covered by the test above
    }
    let mut system = ManyCoreSystem::new(SystemConfig::default())
        .unwrap()
        .with_trap_monitor(400)
        .unwrap();
    let epochs = 6u64;
    for _ in 0..epochs {
        system.step(Policy::periodic_deep_default()).unwrap();
    }

    let snap = deep_healing::obs::snapshot();
    // Scheduler: per-policy mode accounting mirrors the MetricsReport.
    assert!(snap.counter("sched.periodic-deep.epochs") >= epochs);
    assert!(snap.counter("sched.periodic-deep.transitions_to_bti_ar") >= 16);
    assert!(snap.counter("sched.periodic-deep.core_epochs_bti_ar") >= epochs * 16);
    // Thermal: one LU settle per epoch.
    assert!(snap.counter("thermal.settle.lu_solves") >= epochs);
    // BTI: the trap monitor drives the CET kernels.
    assert!(snap.counter("bti.cet.stress_calls") >= epochs);
    assert!(snap.counter("bti.cet.sub_steps") >= epochs);
    assert!(snap.counter("bti.cet.traps_stressed") >= epochs * 400);
    // Exec: calibrating the monitor went through the bounded memo.
    assert!(snap.counter("exec.memo.hits") + snap.counter("exec.memo.misses") >= 1);
    // Timing histograms recorded real durations.
    let steps = snap
        .histogram("bti.cet.step_seconds")
        .expect("stress records step sizes");
    assert!(steps.count >= epochs);
    assert!(steps.sum > 0.0);
    // And the prefix-sum helper sees the per-policy family.
    assert!(snap.counter_sum("sched.periodic-deep.") > 0);
}
