//! Thermal substrate for the `deep-healing` workspace.
//!
//! Two pieces of the paper's experimental and system context live here:
//!
//! * [`chamber::ThermalChamber`] — the oven used for every accelerated
//!   measurement in the paper ("temperature in both test cases is controlled
//!   by a thermal chamber which allows fluctuation of ±0.3 °C");
//! * [`grid::ThermalGrid`] — an RC thermal network over a floorplan of
//!   tiles, used for the paper's system-level proposal that *dark-silicon*
//!   resources can be healed faster by scheduling them next to hot active
//!   neighbours ("the generated heat from the neighboring logic can be
//!   utilized to accelerate the BTI recovery", Fig. 12a).
//!
//! # Example: neighbour heating of a dark core
//!
//! ```
//! use dh_thermal::grid::{GridConfig, ThermalGrid};
//!
//! let mut grid = ThermalGrid::new(GridConfig::manycore_4x4()).unwrap();
//! // Power everything except tile (1,1), which is dark and recovering.
//! let mut power = vec![1.5; 16];
//! power[5] = 0.0;
//! grid.settle(&power).unwrap();
//! let dark = grid.temperature(1, 1).to_celsius().value();
//! assert!(dark > 55.0); // usefully heated above the 45 °C ambient
//! ```

#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > 0.0)` deliberately catches NaN
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chamber;
pub mod error;
pub mod grid;

pub use chamber::ThermalChamber;
pub use error::ThermalError;
pub use grid::{GridConfig, ThermalGrid};
