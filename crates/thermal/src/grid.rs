//! RC thermal grid over a floorplan of tiles.
//!
//! Each tile (core or block) has a heat capacity, a vertical thermal
//! resistance to ambient (package/heatsink path), and lateral resistances to
//! its four neighbours (silicon spreading). This is the standard compact
//! thermal model (a coarse HotSpot-style network) — enough to study the
//! paper's Fig. 12(a) proposal of healing dark cores with neighbour heat.

use dh_units::{Celsius, Kelvin, Seconds};

use crate::error::ThermalError;

/// Configuration of a rectangular tile grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConfig {
    /// Number of tile rows.
    pub rows: usize,
    /// Number of tile columns.
    pub cols: usize,
    /// Ambient (heatsink) temperature.
    pub ambient: Celsius,
    /// Vertical thermal resistance tile→ambient, K/W.
    pub r_vertical_k_per_w: f64,
    /// Lateral thermal resistance tile→tile, K/W.
    pub r_lateral_k_per_w: f64,
    /// Tile heat capacity, J/K.
    pub capacity_j_per_k: f64,
}

impl GridConfig {
    /// A 4×4 many-core floorplan with laptop-class packaging: ~20 K/W to
    /// ambient per tile, strong lateral spreading, 45 °C ambient (inside the
    /// case).
    pub fn manycore_4x4() -> Self {
        Self {
            rows: 4,
            cols: 4,
            ambient: Celsius::new(45.0),
            r_vertical_k_per_w: 20.0,
            r_lateral_k_per_w: 8.0,
            capacity_j_per_k: 0.15,
        }
    }

    /// Total number of tiles.
    pub fn tiles(&self) -> usize {
        self.rows * self.cols
    }
}

/// An RC thermal network over a rectangular grid of tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalGrid {
    config: GridConfig,
    /// Tile temperatures, kelvin, row-major.
    temp: Vec<f64>,
}

impl ThermalGrid {
    /// Creates a grid with every tile at ambient.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidGrid`] for zero dimensions or
    /// non-positive resistances/capacity.
    pub fn new(config: GridConfig) -> Result<Self, ThermalError> {
        if config.rows == 0 || config.cols == 0 {
            return Err(ThermalError::InvalidGrid(format!(
                "grid must be non-empty, got {}x{}",
                config.rows, config.cols
            )));
        }
        for (name, v) in [
            ("vertical resistance", config.r_vertical_k_per_w),
            ("lateral resistance", config.r_lateral_k_per_w),
            ("capacity", config.capacity_j_per_k),
        ] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(ThermalError::InvalidGrid(format!("{name} must be positive, got {v}")));
            }
        }
        let ambient_k = config.ambient.to_kelvin().value();
        Ok(Self { config, temp: vec![ambient_k; config.tiles()] })
    }

    /// The grid configuration.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// Temperature of tile (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn temperature(&self, row: usize, col: usize) -> Kelvin {
        assert!(row < self.config.rows && col < self.config.cols, "tile out of range");
        Kelvin::new(self.temp[row * self.config.cols + col])
    }

    /// All tile temperatures, row-major.
    pub fn temperatures(&self) -> Vec<Kelvin> {
        self.temp.iter().map(|&t| Kelvin::new(t)).collect()
    }

    /// The hottest tile temperature.
    pub fn peak(&self) -> Kelvin {
        Kelvin::new(self.temp.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }

    fn validate_power(&self, power_w: &[f64]) -> Result<(), ThermalError> {
        if power_w.len() != self.temp.len() {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.temp.len(),
                got: power_w.len(),
            });
        }
        if let Some(&bad) = power_w.iter().find(|p| !p.is_finite() || **p < 0.0) {
            return Err(ThermalError::InvalidPower(bad));
        }
        Ok(())
    }

    /// Advances the network by `dt` with per-tile power dissipation
    /// `power_w` (watts, row-major).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError`] if the power vector has the wrong length or
    /// contains negative/non-finite entries.
    pub fn step(&mut self, dt: Seconds, power_w: &[f64]) -> Result<(), ThermalError> {
        self.validate_power(power_w)?;
        if dt.value() <= 0.0 {
            return Ok(());
        }
        let c = &self.config;
        let ambient = c.ambient.to_kelvin().value();
        // Explicit integration, sub-stepped well below the smallest RC
        // product for stability.
        let g_total_max = 1.0 / c.r_vertical_k_per_w + 4.0 / c.r_lateral_k_per_w;
        let dt_stable = 0.2 * c.capacity_j_per_k / g_total_max;
        let mut remaining = dt.value();
        while remaining > 0.0 {
            let h = remaining.min(dt_stable);
            let prev = self.temp.clone();
            for r in 0..c.rows {
                for col in 0..c.cols {
                    let i = r * c.cols + col;
                    let mut q = power_w[i] + (ambient - prev[i]) / c.r_vertical_k_per_w;
                    let mut neighbours = |rr: isize, cc: isize| {
                        if rr >= 0 && cc >= 0 && (rr as usize) < c.rows && (cc as usize) < c.cols {
                            let ni = rr as usize * c.cols + cc as usize;
                            q += (prev[ni] - prev[i]) / c.r_lateral_k_per_w;
                        }
                    };
                    neighbours(r as isize - 1, col as isize);
                    neighbours(r as isize + 1, col as isize);
                    neighbours(r as isize, col as isize - 1);
                    neighbours(r as isize, col as isize + 1);
                    self.temp[i] = prev[i] + h * q / c.capacity_j_per_k;
                }
            }
            remaining -= h;
        }
        Ok(())
    }

    /// Runs the network to steady state under a constant power map.
    ///
    /// # Errors
    ///
    /// Same as [`ThermalGrid::step`].
    pub fn settle(&mut self, power_w: &[f64]) -> Result<(), ThermalError> {
        self.validate_power(power_w)?;
        // Gauss–Seidel on the steady-state balance equations.
        let c = self.config;
        let ambient = c.ambient.to_kelvin().value();
        let gv = 1.0 / c.r_vertical_k_per_w;
        let gl = 1.0 / c.r_lateral_k_per_w;
        for _ in 0..10_000 {
            let mut max_delta: f64 = 0.0;
            for r in 0..c.rows {
                for col in 0..c.cols {
                    let i = r * c.cols + col;
                    let mut g_sum = gv;
                    let mut flow = power_w[i] + gv * ambient;
                    let neighbours = |rr: isize, cc: isize, flow: &mut f64, g: &mut f64| {
                        if rr >= 0 && cc >= 0 && (rr as usize) < c.rows && (cc as usize) < c.cols {
                            let ni = rr as usize * c.cols + cc as usize;
                            *flow += gl * self.temp[ni];
                            *g += gl;
                        }
                    };
                    neighbours(r as isize - 1, col as isize, &mut flow, &mut g_sum);
                    neighbours(r as isize + 1, col as isize, &mut flow, &mut g_sum);
                    neighbours(r as isize, col as isize - 1, &mut flow, &mut g_sum);
                    neighbours(r as isize, col as isize + 1, &mut flow, &mut g_sum);
                    let new = flow / g_sum;
                    max_delta = max_delta.max((new - self.temp[i]).abs());
                    self.temp[i] = new;
                }
            }
            if max_delta < 1e-9 {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ThermalGrid {
        ThermalGrid::new(GridConfig::manycore_4x4()).unwrap()
    }

    #[test]
    fn idle_grid_sits_at_ambient() {
        let mut g = grid();
        g.settle(&[0.0; 16]).unwrap();
        for t in g.temperatures() {
            assert!((t.to_celsius().value() - 45.0).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_power_gives_uniform_rise() {
        let mut g = grid();
        g.settle(&[1.0; 16]).unwrap();
        // Uniform power: no lateral flow; rise = P · R_vertical = 20 K.
        for t in g.temperatures() {
            assert!((t.to_celsius().value() - 65.0).abs() < 1e-6, "t = {t}");
        }
    }

    #[test]
    fn dark_tile_is_heated_by_neighbours() {
        // The paper's Fig. 12(a) dark-silicon healing scenario.
        let mut g = grid();
        let mut power = vec![1.5; 16];
        power[5] = 0.0; // tile (1,1) is dark
        g.settle(&power).unwrap();
        let dark = g.temperature(1, 1).to_celsius().value();
        assert!(dark > 58.0, "dark tile at {dark} °C should be well above 45 °C ambient");
        // But cooler than its active neighbours.
        let hot = g.temperature(1, 2).to_celsius().value();
        assert!(dark < hot);
    }

    #[test]
    fn transient_approaches_steady_state() {
        let mut transient = grid();
        let mut steady = grid();
        let power = vec![2.0; 16];
        steady.settle(&power).unwrap();
        // RC ≈ 0.15 J/K × ~4.4 K/W effective: a couple of seconds settles.
        transient.step(Seconds::new(30.0), &power).unwrap();
        for (a, b) in transient.temperatures().iter().zip(steady.temperatures()) {
            assert!((a.value() - b.value()).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn transient_is_monotone_towards_steady_state() {
        let mut g = grid();
        let power = vec![2.0; 16];
        let mut prev = g.temperature(0, 0).value();
        for _ in 0..10 {
            g.step(Seconds::new(0.2), &power).unwrap();
            let now = g.temperature(0, 0).value();
            assert!(now >= prev - 1e-9);
            prev = now;
        }
    }

    #[test]
    fn corner_tiles_run_hotter_than_uniform_only_with_non_uniform_power() {
        let mut g = grid();
        // Only the corner is powered: it is the hottest.
        let mut power = vec![0.0; 16];
        power[0] = 3.0;
        g.settle(&power).unwrap();
        let corner = g.temperature(0, 0).value();
        assert_eq!(g.peak().value(), corner);
    }

    #[test]
    fn power_validation() {
        let mut g = grid();
        assert!(matches!(
            g.step(Seconds::new(1.0), &[0.0; 4]),
            Err(ThermalError::PowerLengthMismatch { expected: 16, got: 4 })
        ));
        let mut bad = vec![0.0; 16];
        bad[3] = -1.0;
        assert!(matches!(g.settle(&bad), Err(ThermalError::InvalidPower(_))));
        bad[3] = f64::NAN;
        assert!(g.settle(&bad).is_err());
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut c = GridConfig::manycore_4x4();
        c.rows = 0;
        assert!(ThermalGrid::new(c).is_err());
        let mut c = GridConfig::manycore_4x4();
        c.r_vertical_k_per_w = 0.0;
        assert!(ThermalGrid::new(c).is_err());
        let mut c = GridConfig::manycore_4x4();
        c.capacity_j_per_k = f64::NAN;
        assert!(ThermalGrid::new(c).is_err());
    }

    #[test]
    fn zero_dt_step_is_a_no_op() {
        let mut g = grid();
        let before = g.temperatures();
        g.step(Seconds::ZERO, &[5.0; 16]).unwrap();
        assert_eq!(
            before.iter().map(|t| t.value()).collect::<Vec<_>>(),
            g.temperatures().iter().map(|t| t.value()).collect::<Vec<_>>()
        );
    }
}
