//! RC thermal grid over a floorplan of tiles.
//!
//! Each tile (core or block) has a heat capacity, a vertical thermal
//! resistance to ambient (package/heatsink path), and lateral resistances to
//! its four neighbours (silicon spreading). This is the standard compact
//! thermal model (a coarse HotSpot-style network) — enough to study the
//! paper's Fig. 12(a) proposal of healing dark cores with neighbour heat.

use dh_units::{Celsius, Kelvin, Seconds};

use crate::error::ThermalError;

/// Configuration of a rectangular tile grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConfig {
    /// Number of tile rows.
    pub rows: usize,
    /// Number of tile columns.
    pub cols: usize,
    /// Ambient (heatsink) temperature.
    pub ambient: Celsius,
    /// Vertical thermal resistance tile→ambient, K/W.
    pub r_vertical_k_per_w: f64,
    /// Lateral thermal resistance tile→tile, K/W.
    pub r_lateral_k_per_w: f64,
    /// Tile heat capacity, J/K.
    pub capacity_j_per_k: f64,
}

impl GridConfig {
    /// A 4×4 many-core floorplan with laptop-class packaging: ~20 K/W to
    /// ambient per tile, strong lateral spreading, 45 °C ambient (inside the
    /// case).
    pub fn manycore_4x4() -> Self {
        Self {
            rows: 4,
            cols: 4,
            ambient: Celsius::new(45.0),
            r_vertical_k_per_w: 20.0,
            r_lateral_k_per_w: 8.0,
            capacity_j_per_k: 0.15,
        }
    }

    /// Total number of tiles.
    pub fn tiles(&self) -> usize {
        self.rows * self.cols
    }
}

/// Largest tile count for which the steady-state conductance matrix is
/// LU-factored at construction (O(n³) once). Bigger grids fall back to
/// Gauss–Seidel per settle.
const MAX_DIRECT_TILES: usize = 256;

/// Dense LU factors (partial pivoting) of the steady-state conductance
/// matrix. The matrix depends only on the grid topology and resistances,
/// so it is factored once per grid and every [`ThermalGrid::settle`]
/// reduces to two triangular solves.
#[derive(Debug, Clone, PartialEq)]
struct LuFactors {
    n: usize,
    /// Combined `L\U` storage, row-major (unit lower diagonal implied).
    lu: Vec<f64>,
    /// Row swapped with row `k` at elimination step `k`.
    piv: Vec<usize>,
}

impl LuFactors {
    /// Factors a dense row-major `n × n` matrix. The conductance matrix is
    /// strictly diagonally dominant, so pivots never vanish.
    fn new(mut a: Vec<f64>, n: usize) -> Self {
        let mut piv = Vec::with_capacity(n);
        for k in 0..n {
            let mut p = k;
            for r in k + 1..n {
                if a[r * n + k].abs() > a[p * n + k].abs() {
                    p = r;
                }
            }
            piv.push(p);
            if p != k {
                for c in 0..n {
                    a.swap(k * n + c, p * n + c);
                }
            }
            let pivot = a[k * n + k];
            for r in k + 1..n {
                let m = a[r * n + k] / pivot;
                a[r * n + k] = m;
                for c in k + 1..n {
                    a[r * n + c] -= m * a[k * n + c];
                }
            }
        }
        Self { n, lu: a, piv }
    }

    /// Solves `A x = b` in place.
    #[allow(clippy::needless_range_loop)] // strided matrix access reads clearest indexed
    fn solve(&self, b: &mut [f64]) {
        let n = self.n;
        for k in 0..n {
            b.swap(k, self.piv[k]);
            let bk = b[k];
            for r in k + 1..n {
                b[r] -= self.lu[r * n + k] * bk;
            }
        }
        for k in (0..n).rev() {
            let mut x = b[k];
            for c in k + 1..n {
                x -= self.lu[k * n + c] * b[c];
            }
            b[k] = x / self.lu[k * n + k];
        }
    }
}

/// An RC thermal network over a rectangular grid of tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalGrid {
    config: GridConfig,
    /// Tile temperatures, kelvin, row-major.
    temp: Vec<f64>,
    /// Pre-factored steady-state matrix (`None` for very large grids).
    factors: Option<LuFactors>,
    /// Forces the iterative reference solver (baseline measurements only).
    use_reference: bool,
}

impl ThermalGrid {
    /// Creates a grid with every tile at ambient.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidGrid`] for zero dimensions or
    /// non-positive resistances/capacity.
    pub fn new(config: GridConfig) -> Result<Self, ThermalError> {
        if config.rows == 0 || config.cols == 0 {
            return Err(ThermalError::InvalidGrid(format!(
                "grid must be non-empty, got {}x{}",
                config.rows, config.cols
            )));
        }
        for (name, v) in [
            ("vertical resistance", config.r_vertical_k_per_w),
            ("lateral resistance", config.r_lateral_k_per_w),
            ("capacity", config.capacity_j_per_k),
        ] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(ThermalError::InvalidGrid(format!(
                    "{name} must be positive, got {v}"
                )));
            }
        }
        let ambient_k = config.ambient.to_kelvin().value();
        let factors = (config.tiles() <= MAX_DIRECT_TILES)
            .then(|| LuFactors::new(Self::conductance_matrix(&config), config.tiles()));
        Ok(Self {
            config,
            temp: vec![ambient_k; config.tiles()],
            factors,
            use_reference: false,
        })
    }

    /// The steady-state conductance matrix: `A T = P + g_v · T_ambient`,
    /// with `A[i][i]` the total conductance out of tile `i` and
    /// `A[i][j] = −g_l` for each lateral neighbour `j`.
    fn conductance_matrix(c: &GridConfig) -> Vec<f64> {
        let n = c.tiles();
        let gv = 1.0 / c.r_vertical_k_per_w;
        let gl = 1.0 / c.r_lateral_k_per_w;
        let mut a = vec![0.0; n * n];
        for r in 0..c.rows {
            for col in 0..c.cols {
                let i = r * c.cols + col;
                let mut g_sum = gv;
                let mut neighbour = |rr: isize, cc: isize| {
                    if rr >= 0 && cc >= 0 && (rr as usize) < c.rows && (cc as usize) < c.cols {
                        let ni = rr as usize * c.cols + cc as usize;
                        a[i * n + ni] = -gl;
                        g_sum += gl;
                    }
                };
                neighbour(r as isize - 1, col as isize);
                neighbour(r as isize + 1, col as isize);
                neighbour(r as isize, col as isize - 1);
                neighbour(r as isize, col as isize + 1);
                a[i * n + i] = g_sum;
            }
        }
        a
    }

    /// The grid configuration.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// Temperature of tile (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn temperature(&self, row: usize, col: usize) -> Kelvin {
        assert!(
            row < self.config.rows && col < self.config.cols,
            "tile out of range"
        );
        Kelvin::new(self.temp[row * self.config.cols + col])
    }

    /// All tile temperatures, row-major.
    pub fn temperatures(&self) -> Vec<Kelvin> {
        self.temp.iter().map(|&t| Kelvin::new(t)).collect()
    }

    /// The hottest tile temperature.
    pub fn peak(&self) -> Kelvin {
        Kelvin::new(self.temp.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }

    fn validate_power(&self, power_w: &[f64]) -> Result<(), ThermalError> {
        if power_w.len() != self.temp.len() {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.temp.len(),
                got: power_w.len(),
            });
        }
        if let Some(&bad) = power_w.iter().find(|p| !p.is_finite() || **p < 0.0) {
            return Err(ThermalError::InvalidPower(bad));
        }
        Ok(())
    }

    /// Advances the network by `dt` with per-tile power dissipation
    /// `power_w` (watts, row-major).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError`] if the power vector has the wrong length or
    /// contains negative/non-finite entries.
    pub fn step(&mut self, dt: Seconds, power_w: &[f64]) -> Result<(), ThermalError> {
        self.validate_power(power_w)?;
        if dt.value() <= 0.0 {
            return Ok(());
        }
        let c = &self.config;
        let ambient = c.ambient.to_kelvin().value();
        // Explicit integration, sub-stepped well below the smallest RC
        // product for stability.
        let g_total_max = 1.0 / c.r_vertical_k_per_w + 4.0 / c.r_lateral_k_per_w;
        let dt_stable = 0.2 * c.capacity_j_per_k / g_total_max;
        let mut remaining = dt.value();
        while remaining > 0.0 {
            let h = remaining.min(dt_stable);
            let prev = self.temp.clone();
            for r in 0..c.rows {
                for col in 0..c.cols {
                    let i = r * c.cols + col;
                    let mut q = power_w[i] + (ambient - prev[i]) / c.r_vertical_k_per_w;
                    let mut neighbours = |rr: isize, cc: isize| {
                        if rr >= 0 && cc >= 0 && (rr as usize) < c.rows && (cc as usize) < c.cols {
                            let ni = rr as usize * c.cols + cc as usize;
                            q += (prev[ni] - prev[i]) / c.r_lateral_k_per_w;
                        }
                    };
                    neighbours(r as isize - 1, col as isize);
                    neighbours(r as isize + 1, col as isize);
                    neighbours(r as isize, col as isize - 1);
                    neighbours(r as isize, col as isize + 1);
                    self.temp[i] = prev[i] + h * q / c.capacity_j_per_k;
                }
            }
            remaining -= h;
        }
        Ok(())
    }

    /// Runs the network to steady state under a constant power map.
    ///
    /// The steady state is the solution of a fixed linear system, so for
    /// grids up to 256 tiles this is an exact direct solve against the
    /// conductance matrix factored at construction — no iteration.
    ///
    /// # Errors
    ///
    /// Same as [`ThermalGrid::step`].
    pub fn settle(&mut self, power_w: &[f64]) -> Result<(), ThermalError> {
        self.validate_power(power_w)?;
        let Some(factors) = self.factors.as_ref().filter(|_| !self.use_reference) else {
            return self.settle_reference(power_w);
        };
        dh_obs::counter!("thermal.settle.lu_solves").incr();
        let c = self.config;
        let ambient = c.ambient.to_kelvin().value();
        let gv = 1.0 / c.r_vertical_k_per_w;
        for (t, &p) in self.temp.iter_mut().zip(power_w) {
            *t = p + gv * ambient;
        }
        factors.solve(&mut self.temp);
        Ok(())
    }

    /// Routes [`ThermalGrid::settle`] through the Gauss–Seidel reference
    /// solver regardless of grid size. Baseline measurements only.
    #[doc(hidden)]
    pub fn set_reference_solver(&mut self, on: bool) {
        self.use_reference = on;
    }

    /// The pre-factorization Gauss–Seidel settle (iterated to 1 nK): kept
    /// as the measured baseline for `perf_snapshot` and as the fallback
    /// for grids too large to factor. Not part of the API.
    #[doc(hidden)]
    pub fn settle_reference(&mut self, power_w: &[f64]) -> Result<(), ThermalError> {
        self.validate_power(power_w)?;
        dh_obs::counter!("thermal.settle.gauss_seidel_solves").incr();
        // Gauss–Seidel on the steady-state balance equations.
        let c = self.config;
        let ambient = c.ambient.to_kelvin().value();
        let gv = 1.0 / c.r_vertical_k_per_w;
        let gl = 1.0 / c.r_lateral_k_per_w;
        let mut sweeps: u64 = 0;
        for _ in 0..10_000 {
            sweeps += 1;
            let mut max_delta: f64 = 0.0;
            for r in 0..c.rows {
                for col in 0..c.cols {
                    let i = r * c.cols + col;
                    let mut g_sum = gv;
                    let mut flow = power_w[i] + gv * ambient;
                    let neighbours = |rr: isize, cc: isize, flow: &mut f64, g: &mut f64| {
                        if rr >= 0 && cc >= 0 && (rr as usize) < c.rows && (cc as usize) < c.cols {
                            let ni = rr as usize * c.cols + cc as usize;
                            *flow += gl * self.temp[ni];
                            *g += gl;
                        }
                    };
                    neighbours(r as isize - 1, col as isize, &mut flow, &mut g_sum);
                    neighbours(r as isize + 1, col as isize, &mut flow, &mut g_sum);
                    neighbours(r as isize, col as isize - 1, &mut flow, &mut g_sum);
                    neighbours(r as isize, col as isize + 1, &mut flow, &mut g_sum);
                    let new = flow / g_sum;
                    max_delta = max_delta.max((new - self.temp[i]).abs());
                    self.temp[i] = new;
                }
            }
            if max_delta < 1e-9 {
                break;
            }
        }
        dh_obs::counter!("thermal.settle.gauss_seidel_iterations").add(sweeps);
        dh_obs::histogram!("thermal.settle.iterations_per_solve").record(sweeps as f64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ThermalGrid {
        ThermalGrid::new(GridConfig::manycore_4x4()).unwrap()
    }

    #[test]
    fn direct_solve_matches_gauss_seidel_reference() {
        let mut direct = grid();
        let mut reference = grid();
        for pattern in 0..5_u32 {
            let powers: Vec<f64> = (0..16)
                .map(|i| 0.2 + 1.3 * f64::from((i as u32 ^ pattern) % 4) / 3.0)
                .collect();
            direct.settle(&powers).unwrap();
            reference.settle_reference(&powers).unwrap();
            for (d, r) in direct.temp.iter().zip(&reference.temp) {
                assert!((d - r).abs() < 1e-6, "direct {d} vs Gauss-Seidel {r}");
            }
        }
    }

    #[test]
    fn idle_grid_sits_at_ambient() {
        let mut g = grid();
        g.settle(&[0.0; 16]).unwrap();
        for t in g.temperatures() {
            assert!((t.to_celsius().value() - 45.0).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_power_gives_uniform_rise() {
        let mut g = grid();
        g.settle(&[1.0; 16]).unwrap();
        // Uniform power: no lateral flow; rise = P · R_vertical = 20 K.
        for t in g.temperatures() {
            assert!((t.to_celsius().value() - 65.0).abs() < 1e-6, "t = {t}");
        }
    }

    #[test]
    fn dark_tile_is_heated_by_neighbours() {
        // The paper's Fig. 12(a) dark-silicon healing scenario.
        let mut g = grid();
        let mut power = vec![1.5; 16];
        power[5] = 0.0; // tile (1,1) is dark
        g.settle(&power).unwrap();
        let dark = g.temperature(1, 1).to_celsius().value();
        assert!(
            dark > 58.0,
            "dark tile at {dark} °C should be well above 45 °C ambient"
        );
        // But cooler than its active neighbours.
        let hot = g.temperature(1, 2).to_celsius().value();
        assert!(dark < hot);
    }

    #[test]
    fn transient_approaches_steady_state() {
        let mut transient = grid();
        let mut steady = grid();
        let power = vec![2.0; 16];
        steady.settle(&power).unwrap();
        // RC ≈ 0.15 J/K × ~4.4 K/W effective: a couple of seconds settles.
        transient.step(Seconds::new(30.0), &power).unwrap();
        for (a, b) in transient.temperatures().iter().zip(steady.temperatures()) {
            assert!((a.value() - b.value()).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn transient_is_monotone_towards_steady_state() {
        let mut g = grid();
        let power = vec![2.0; 16];
        let mut prev = g.temperature(0, 0).value();
        for _ in 0..10 {
            g.step(Seconds::new(0.2), &power).unwrap();
            let now = g.temperature(0, 0).value();
            assert!(now >= prev - 1e-9);
            prev = now;
        }
    }

    #[test]
    fn corner_tiles_run_hotter_than_uniform_only_with_non_uniform_power() {
        let mut g = grid();
        // Only the corner is powered: it is the hottest.
        let mut power = vec![0.0; 16];
        power[0] = 3.0;
        g.settle(&power).unwrap();
        let corner = g.temperature(0, 0).value();
        assert_eq!(g.peak().value(), corner);
    }

    #[test]
    fn power_validation() {
        let mut g = grid();
        assert!(matches!(
            g.step(Seconds::new(1.0), &[0.0; 4]),
            Err(ThermalError::PowerLengthMismatch {
                expected: 16,
                got: 4
            })
        ));
        let mut bad = vec![0.0; 16];
        bad[3] = -1.0;
        assert!(matches!(g.settle(&bad), Err(ThermalError::InvalidPower(_))));
        bad[3] = f64::NAN;
        assert!(g.settle(&bad).is_err());
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut c = GridConfig::manycore_4x4();
        c.rows = 0;
        assert!(ThermalGrid::new(c).is_err());
        let mut c = GridConfig::manycore_4x4();
        c.r_vertical_k_per_w = 0.0;
        assert!(ThermalGrid::new(c).is_err());
        let mut c = GridConfig::manycore_4x4();
        c.capacity_j_per_k = f64::NAN;
        assert!(ThermalGrid::new(c).is_err());
    }

    #[test]
    fn zero_dt_step_is_a_no_op() {
        let mut g = grid();
        let before = g.temperatures();
        g.step(Seconds::ZERO, &[5.0; 16]).unwrap();
        assert_eq!(
            before.iter().map(|t| t.value()).collect::<Vec<_>>(),
            g.temperatures()
                .iter()
                .map(|t| t.value())
                .collect::<Vec<_>>()
        );
    }
}
