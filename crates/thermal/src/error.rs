//! Error types for the thermal models.

use core::fmt;

/// Error returned by thermal model construction and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// Grid dimensions or parameters are degenerate.
    InvalidGrid(String),
    /// A power vector of the wrong length was supplied.
    PowerLengthMismatch {
        /// Expected number of tiles.
        expected: usize,
        /// Number of powers supplied.
        got: usize,
    },
    /// A power value was negative or non-finite.
    InvalidPower(f64),
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidGrid(why) => write!(f, "invalid thermal grid: {why}"),
            Self::PowerLengthMismatch { expected, got } => {
                write!(
                    f,
                    "power vector length {got} does not match tile count {expected}"
                )
            }
            Self::InvalidPower(p) => write!(f, "power must be finite and non-negative, got {p}"),
        }
    }
}

impl std::error::Error for ThermalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(ThermalError::InvalidGrid("x".into())
            .to_string()
            .contains("grid"));
        let e = ThermalError::PowerLengthMismatch {
            expected: 16,
            got: 4,
        };
        assert!(e.to_string().contains("16") && e.to_string().contains('4'));
        assert!(ThermalError::InvalidPower(-1.0).to_string().contains("-1"));
    }
}
