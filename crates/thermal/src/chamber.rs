//! Thermal chamber (oven) model.
//!
//! All accelerated measurements in the paper run inside a thermal chamber
//! "which allows fluctuation of ±0.3 °C". The model is a setpoint plus a
//! bounded fluctuation composed of a slow sinusoidal control ripple and a
//! seeded random component, so repeated experiment runs are reproducible.

use rand::Rng;

use dh_units::rng::seeded_rng;
use dh_units::{Celsius, Kelvin, Seconds};

/// A setpoint-controlled thermal chamber with bounded fluctuation.
#[derive(Debug, Clone)]
pub struct ThermalChamber {
    setpoint: Celsius,
    fluctuation: Celsius,
    ripple_period: Seconds,
    noise: Vec<f64>,
}

impl ThermalChamber {
    /// Number of precomputed noise taps (interpolated cyclically).
    const NOISE_TAPS: usize = 256;

    /// Creates a chamber at `setpoint` with the paper's ±0.3 °C fluctuation
    /// bound.
    pub fn paper(setpoint: Celsius) -> Self {
        Self::new(setpoint, Celsius::new(0.3), 42)
    }

    /// Creates a chamber with an explicit fluctuation bound and noise seed.
    pub fn new(setpoint: Celsius, fluctuation: Celsius, seed: u64) -> Self {
        let mut rng = seeded_rng(seed, "thermal-chamber");
        let noise = (0..Self::NOISE_TAPS)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        Self {
            setpoint,
            fluctuation: fluctuation.abs(),
            ripple_period: Seconds::from_minutes(7.0),
            noise,
        }
    }

    /// The chamber setpoint.
    pub fn setpoint(&self) -> Celsius {
        self.setpoint
    }

    /// The fluctuation bound (half-width).
    pub fn fluctuation(&self) -> Celsius {
        self.fluctuation
    }

    /// Changes the setpoint (oven programs between stress and recovery runs
    /// happen instantaneously at the model's granularity).
    pub fn set_setpoint(&mut self, setpoint: Celsius) {
        self.setpoint = setpoint;
    }

    /// The chamber temperature at elapsed time `t`: setpoint plus a bounded
    /// fluctuation. Deterministic in `t` for a given seed.
    pub fn temperature_at(&self, t: Seconds) -> Kelvin {
        // Half the budget to the control ripple, half to noise: the sum
        // stays within the bound.
        let half = self.fluctuation.value() / 2.0;
        let phase = 2.0 * std::f64::consts::PI * t.value() / self.ripple_period.value();
        let ripple = half * phase.sin();

        let pos = (t.value() / 30.0).rem_euclid(Self::NOISE_TAPS as f64);
        let i = pos as usize % Self::NOISE_TAPS;
        let j = (i + 1) % Self::NOISE_TAPS;
        let w = pos.fract();
        let noise = half * ((1.0 - w) * self.noise[i] + w * self.noise[j]);

        Celsius::new(self.setpoint.value() + ripple + noise).to_kelvin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluctuation_stays_within_the_paper_bound() {
        let chamber = ThermalChamber::paper(Celsius::new(230.0));
        for i in 0..5000 {
            let t = Seconds::new(i as f64 * 13.7);
            let c = chamber.temperature_at(t).to_celsius().value();
            assert!(
                (c - 230.0).abs() <= 0.3 + 1e-12,
                "t={} °C at {} s exceeds ±0.3",
                c,
                t.value()
            );
        }
    }

    #[test]
    fn fluctuation_actually_fluctuates() {
        let chamber = ThermalChamber::paper(Celsius::new(110.0));
        let a = chamber.temperature_at(Seconds::new(60.0)).value();
        let b = chamber.temperature_at(Seconds::new(180.0)).value();
        assert!((a - b).abs() > 1e-6, "chamber output is constant");
    }

    #[test]
    fn same_seed_is_reproducible() {
        let a = ThermalChamber::new(Celsius::new(230.0), Celsius::new(0.3), 7);
        let b = ThermalChamber::new(Celsius::new(230.0), Celsius::new(0.3), 7);
        for i in 0..100 {
            let t = Seconds::new(i as f64 * 97.0);
            assert_eq!(a.temperature_at(t), b.temperature_at(t));
        }
    }

    #[test]
    fn setpoint_can_be_reprogrammed() {
        let mut chamber = ThermalChamber::paper(Celsius::new(230.0));
        chamber.set_setpoint(Celsius::new(20.0));
        let c = chamber
            .temperature_at(Seconds::new(500.0))
            .to_celsius()
            .value();
        assert!((c - 20.0).abs() <= 0.3 + 1e-12);
        assert_eq!(chamber.setpoint(), Celsius::new(20.0));
    }

    #[test]
    fn negative_fluctuation_bound_is_normalised() {
        let chamber = ThermalChamber::new(Celsius::new(100.0), Celsius::new(-0.5), 1);
        assert_eq!(chamber.fluctuation(), Celsius::new(0.5));
    }
}
