//! End-to-end daemon tests over real sockets: backpressure, cancel,
//! SSE lifecycle, validation, checkpoint resume byte-identity, and the
//! fault-injection path. Every test runs its own server on an
//! OS-assigned port with its own data directory.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use dh_fleet::{run_fleet, FleetConfig, FleetPolicy, MaintenanceBudget};
use dh_serve::client::{request, sse, Response};
use dh_serve::{ServeConfig, Server};

static NEXT_DIR: AtomicU32 = AtomicU32::new(0);

fn temp_data_dir(tag: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dh-serve-test-{}-{tag}-{n}", std::process::id()))
}

fn start(tag: &str, tweak: impl FnOnce(&mut ServeConfig)) -> (Server, SocketAddr, PathBuf) {
    let data_dir = temp_data_dir(tag);
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: data_dir.clone(),
        ..ServeConfig::default()
    };
    tweak(&mut config);
    let server = Server::start(config).expect("server should bind");
    let addr = server.local_addr();
    (server, addr, data_dir)
}

/// A job body matching [`test_config`]: 256 devices in 8 shards of 32,
/// short horizon, fixed shard size so the report's checkpoint cursor is
/// machine-independent.
fn job_body(extra: &str) -> String {
    format!(
        "{{\"config\": {{\"devices\": 256, \"years\": 0.2, \"shard_size\": 32, \
         \"group_size\": 16, \"budget\": 2, \"seed\": 11}}{extra}}}"
    )
}

fn test_config() -> FleetConfig {
    FleetConfig {
        devices: 256,
        years: 0.2,
        shard_size: 32,
        group_size: 16,
        budget: MaintenanceBudget { slots_per_group: 2 },
        seed: 11,
        policies: vec![FleetPolicy::WorstFirst],
        ..FleetConfig::default()
    }
}

fn submit(addr: SocketAddr, body: &str) -> Response {
    request(addr, "POST", "/jobs", Some(body)).expect("submit request should complete")
}

fn job_field(body: &str, field: &str) -> String {
    // Fish a scalar field out of a status document without a JSON dep
    // in the test: `"field": value` with value ending at `,` or `}`.
    let needle = format!("\"{field}\": ");
    let at = body.find(&needle).unwrap_or_else(|| {
        panic!("no field {field:?} in {body}");
    }) + needle.len();
    body[at..]
        .split([',', '}'])
        .next()
        .expect("split yields at least one piece")
        .trim()
        .trim_matches('"')
        .to_string()
}

fn wait_for<T>(what: &str, timeout: Duration, mut poll: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(v) = poll() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn wait_status(addr: SocketAddr, id: &str, wanted: &str) -> String {
    wait_for(
        &format!("job {id} to reach {wanted}"),
        Duration::from_secs(30),
        || {
            let r = request(addr, "GET", &format!("/jobs/{id}"), None).ok()?;
            (job_field(&r.body, "status") == wanted).then_some(r.body)
        },
    )
}

#[test]
fn health_and_unknown_routes() {
    let (server, addr, _) = start("health", |_| {});
    let ok = request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(ok.status, 200);
    assert!(ok.body.contains("ok"));

    let missing = request(addr, "GET", "/nowhere", None).unwrap();
    assert_eq!(missing.status, 404);
    let wrong_method = request(addr, "DELETE", "/healthz", None).unwrap();
    assert_eq!(wrong_method.status, 405);
    let no_such_job = request(addr, "GET", "/jobs/999", None).unwrap();
    assert_eq!(no_such_job.status, 404);
    let bad_id = request(addr, "GET", "/jobs/banana", None).unwrap();
    assert_eq!(bad_id.status, 400);
    server.shutdown();
}

#[test]
fn submissions_are_validated_with_typed_errors() {
    let (server, addr, _) = start("validate", |_| {});
    let zero_devices = submit(addr, "{\"config\": {\"devices\": 0}}");
    assert_eq!(zero_devices.status, 422);
    assert_eq!(job_field(&zero_devices.body, "error"), "invalid_config");

    let malformed = submit(addr, "this is not json");
    assert_eq!(malformed.status, 400);
    assert_eq!(job_field(&malformed.body, "error"), "bad_request");

    let unknown_field = submit(addr, "{\"config\": {\"devices\": 64}, \"spline\": 1}");
    assert_eq!(unknown_field.status, 400);
    assert!(unknown_field.body.contains("spline"));

    let nan_corner = submit(
        addr,
        "{\"config\": {\"devices\": 64, \"fail_guardband\": 0.0}}",
    );
    assert_eq!(nan_corner.status, 422);
    server.shutdown();
}

#[test]
fn a_job_streams_events_and_completes() {
    let (server, addr, _) = start("sse", |c| c.step_shards = 2);
    let accepted = submit(addr, &job_body(""));
    assert_eq!(accepted.status, 202);
    let id = job_field(&accepted.body, "id");

    // The SSE stream replays from the first event, tails to the
    // terminal one, and then the server hangs up (read-to-EOF returns).
    let frames = sse(addr, &format!("/jobs/{id}/events")).unwrap();
    assert_eq!(frames.first().map(|(e, _)| e.as_str()), Some("started"));
    assert_eq!(frames.last().map(|(e, _)| e.as_str()), Some("completed"));
    let progress: Vec<&(String, String)> = frames.iter().filter(|(e, _)| e == "progress").collect();
    // 8 shards in steps of 2.
    assert_eq!(progress.len(), 4, "frames: {frames:?}");
    assert!(progress[0].1.contains("\"shards_done\": 2"));
    assert!(progress.last().unwrap().1.contains("\"devices_done\": 256"));

    // The status document agrees with the in-process engine.
    let status = request(addr, "GET", &format!("/jobs/{id}"), None).unwrap();
    assert_eq!(job_field(&status.body, "status"), "completed");
    let expected = run_fleet(&test_config()).unwrap().fingerprint();
    assert_eq!(
        job_field(&status.body, "fingerprint"),
        format!("{expected:#018x}"),
    );
    server.shutdown();
}

#[test]
fn a_full_queue_backpressures_with_429_not_a_crash() {
    let (server, addr, _) = start("backpressure", |c| {
        c.concurrency = 1;
        c.queue_capacity = 1;
        c.step_shards = 1;
        c.pace = Duration::from_millis(150);
    });
    // Job 1 occupies the single worker (8 shards x 150 ms pace), job 2
    // fills the one queue slot, job 3 must bounce.
    let first = submit(addr, &job_body(""));
    assert_eq!(first.status, 202);
    wait_status(addr, &job_field(&first.body, "id"), "running");
    let second = submit(addr, &job_body(""));
    assert_eq!(second.status, 202);
    let third = submit(addr, &job_body(""));
    assert_eq!(third.status, 429);
    assert_eq!(job_field(&third.body, "error"), "queue_full");
    let retry_after: u64 = third
        .header("Retry-After")
        .expect("429 must carry Retry-After")
        .parse()
        .expect("Retry-After must be integral seconds");
    assert!(retry_after >= 1);

    // The daemon is still fully alive behind the 429.
    assert_eq!(request(addr, "GET", "/healthz", None).unwrap().status, 200);
    server.shutdown();
}

#[test]
fn cancelling_a_running_job_releases_its_slot() {
    let (server, addr, _) = start("cancel", |c| {
        c.concurrency = 1;
        c.queue_capacity = 2;
        c.step_shards = 1;
        c.pace = Duration::from_millis(150);
    });
    let slow = submit(addr, &job_body(""));
    let slow_id = job_field(&slow.body, "id");
    wait_status(addr, &slow_id, "running");
    let queued = submit(addr, &job_body(""));
    assert_eq!(queued.status, 202);
    let queued_id = job_field(&queued.body, "id");

    let cancelled = request(addr, "DELETE", &format!("/jobs/{slow_id}"), None).unwrap();
    assert_eq!(cancelled.status, 200);
    wait_status(addr, &slow_id, "cancelled");
    // The worker slot freed: the queued job runs to completion.
    let final_status = wait_status(addr, &queued_id, "completed");
    assert_ne!(job_field(&final_status, "fingerprint"), "null");

    // Cancelling a queued job removes it before it ever runs.
    let third = submit(addr, &job_body(""));
    let fourth = submit(addr, &job_body(""));
    let fourth_id = job_field(&fourth.body, "id");
    let _ = request(addr, "DELETE", &format!("/jobs/{fourth_id}"), None).unwrap();
    wait_status(addr, &fourth_id, "cancelled");
    wait_status(addr, &job_field(&third.body, "id"), "completed");
    server.shutdown();
}

#[test]
fn resume_from_checkpoint_matches_the_uninterrupted_fingerprint() {
    let (server, addr, data_dir) = start("resume", |c| {
        c.concurrency = 1;
        c.step_shards = 1;
        c.pace = Duration::from_millis(120);
    });
    let body = job_body(
        ", \"checkpoint\": \"resume-me.dhfl\", \"checkpoint_every\": 1, \
         \"checkpoint_mode\": \"sync\", \"keep\": 3",
    );

    // Kill the first attempt mid-run, after at least one checkpoint.
    let first = submit(addr, &body);
    let first_id = job_field(&first.body, "id");
    wait_for("a checkpointed shard", Duration::from_secs(30), || {
        let r = request(addr, "GET", &format!("/jobs/{first_id}"), None).ok()?;
        let done: u64 = job_field(&r.body, "shards_done").parse().ok()?;
        (done >= 2).then_some(())
    });
    let _ = request(addr, "DELETE", &format!("/jobs/{first_id}"), None).unwrap();
    let killed = wait_status(addr, &first_id, "cancelled");
    let done_at_kill: u64 = job_field(&killed, "shards_done").parse().unwrap();
    assert!(
        done_at_kill < 8,
        "the job finished before it could be killed; raise the pace"
    );
    assert!(data_dir.join("resume-me.dhfl").exists());

    // Resubmit the identical body: the daemon resumes from disk...
    let second = submit(addr, &body);
    let second_id = job_field(&second.body, "id");
    let frames = sse(addr, &format!("/jobs/{second_id}/events")).unwrap();
    let started = &frames.first().expect("started frame").1;
    let resumed_from: u64 = job_field(started, "resumed_from").parse().unwrap();
    assert!(resumed_from > 0, "second attempt did not resume: {started}");
    assert_eq!(frames.last().unwrap().0, "completed");

    // ...and the stitched run's report is byte-identical to an
    // uninterrupted in-process run of the same config.
    let expected = run_fleet(&test_config()).unwrap().fingerprint();
    assert_eq!(
        job_field(&frames.last().unwrap().1, "fingerprint"),
        format!("{expected:#018x}"),
    );
    server.shutdown();
}

#[test]
fn injected_shard_kills_degrade_the_job_not_the_daemon() {
    let (server, addr, _) = start("chaos", |c| c.step_shards = 4);
    // kill-shard=1 makes one shard panic on every attempt: it must end
    // quarantined while the other 7 shards complete.
    let accepted = submit(
        addr,
        &job_body(", \"inject\": \"kill-shard=1\", \"retry\": 2, \"inject_seed\": 99"),
    );
    assert_eq!(accepted.status, 202);
    let id = job_field(&accepted.body, "id");
    let frames = sse(addr, &format!("/jobs/{id}/events")).unwrap();
    let (last_event, last_data) = frames.last().unwrap();
    // A run that survived faults ends on the `degraded` terminal frame
    // (same payload as `completed`), and the status document agrees.
    assert_eq!(last_event, "degraded", "frames: {frames:?}");
    assert_eq!(job_field(last_data, "degraded"), "true");
    assert_eq!(job_field(last_data, "quarantined_shards"), "1");
    assert_eq!(job_field(last_data, "devices"), "224");
    let status = request(addr, "GET", &format!("/jobs/{id}"), None).unwrap();
    assert_eq!(job_field(&status.body, "status"), "degraded");
    assert_ne!(job_field(&status.body, "fingerprint"), "null");

    // The daemon shrugged it off: health is green and a clean job still
    // produces the engine's exact fingerprint.
    assert_eq!(request(addr, "GET", "/healthz", None).unwrap().status, 200);
    let clean = submit(addr, &job_body(""));
    let clean_done = wait_status(addr, &job_field(&clean.body, "id"), "completed");
    let expected = run_fleet(&test_config()).unwrap().fingerprint();
    assert_eq!(
        job_field(&clean_done, "fingerprint"),
        format!("{expected:#018x}"),
    );
    server.shutdown();
}

/// A small scenario pack (a shrunk `sram-decoder`) written to a temp
/// `--scenario-dir` so the daemon tests stay fast. Shadows nothing.
fn write_test_pack(dir: &std::path::Path) -> PathBuf {
    std::fs::create_dir_all(dir).expect("scenario dir");
    let path = dir.join("mini-sram.json");
    std::fs::write(
        &path,
        r#"{
            "name": "mini-sram",
            "description": "shrunk sram-decoder pack for daemon tests",
            "seed": 1101,
            "epochs": 12,
            "epoch_hours": 730.0,
            "shard_size": 256,
            "fail_threshold_mv": 45.0,
            "workload": {"trace": [0.95, 0.7, 0.5, 0.85]},
            "maintenance": {"policy": "invert", "interval_epochs": 4, "recovery_bias_v": 0.3},
            "blocks": [
                {"model": "sram-decoder", "count": 1024, "vdd_v": 0.95,
                 "temperature_c": 85.0, "variability": 0.08, "skew": 1.1},
                {"model": "sram-decoder", "count": 512, "vdd_v": 0.9,
                 "temperature_c": 70.0, "variability": 0.1, "skew": 1.6}
            ]
        }"#,
    )
    .expect("write test pack");
    path
}

#[test]
fn scenario_jobs_list_run_and_match_the_engine() {
    let scenario_dir = temp_data_dir("scenario-packs");
    let pack_path = write_test_pack(&scenario_dir);
    let (server, addr, _) = start("scenario", |c| {
        c.scenario_dir = Some(scenario_dir.clone());
        c.step_shards = 3;
    });

    // The registry endpoint lists built-ins plus the directory pack.
    let listed = request(addr, "GET", "/scenarios", None).unwrap();
    assert_eq!(listed.status, 200);
    for name in ["sram-decoder", "dnn-weight-memory", "aged-multiplier"] {
        assert!(
            listed.body.contains(name),
            "{name} missing: {}",
            listed.body
        );
    }
    assert!(listed.body.contains("\"mini-sram\""));
    assert!(listed.body.contains("\"source\": \"directory\""));

    let accepted = submit(addr, "{\"scenario\": \"mini-sram\"}");
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let id = job_field(&accepted.body, "id");
    assert_eq!(job_field(&accepted.body, "scenario"), "mini-sram");

    // SSE frames identify the pack, and the final fingerprint matches
    // an in-process integration of the same file.
    let frames = sse(addr, &format!("/jobs/{id}/events")).unwrap();
    let (first_event, first_data) = frames.first().expect("started frame");
    assert_eq!(first_event, "started");
    assert_eq!(job_field(first_data, "scenario"), "mini-sram");
    let progress: Vec<_> = frames.iter().filter(|(e, _)| e == "progress").collect();
    assert!(!progress.is_empty());
    assert_eq!(job_field(&progress[0].1, "scenario"), "mini-sram");
    let (last_event, last_data) = frames.last().unwrap();
    assert_eq!(last_event, "completed", "frames: {frames:?}");
    let pack = dh_scenario::load_pack_file(&pack_path).unwrap();
    let expected = dh_scenario::run_pack(pack).fingerprint;
    assert_eq!(
        job_field(last_data, "fingerprint"),
        format!("{expected:#018x}"),
    );
    let _ = std::fs::remove_dir_all(&scenario_dir);
    server.shutdown();
}

#[test]
fn scenario_submissions_are_validated_with_typed_errors() {
    let (server, addr, _) = start("scenario-validate", |_| {});
    let unknown = submit(addr, "{\"scenario\": \"no-such-pack\"}");
    assert_eq!(unknown.status, 422);
    assert_eq!(job_field(&unknown.body, "error"), "invalid_config");
    let both = submit(
        addr,
        "{\"scenario\": \"sram-decoder\", \"config\": {\"devices\": 64}}",
    );
    assert_eq!(both.status, 400);
    // Fault injection is supported for scenario jobs now, but the spec
    // string is still parse-checked at submit time...
    let bad_inject = submit(
        addr,
        "{\"scenario\": \"sram-decoder\", \"inject\": \"gremlins=1\"}",
    );
    assert_eq!(bad_inject.status, 422);
    // ...and the async fleet checkpoint writer still has no scenario twin.
    let bad_mode = submit(
        addr,
        "{\"scenario\": \"sram-decoder\", \"checkpoint_mode\": \"async\"}",
    );
    assert_eq!(bad_mode.status, 422);
    server.shutdown();
}

#[test]
fn scenario_kill_resume_lands_on_the_uninterrupted_fingerprint() {
    let scenario_dir = temp_data_dir("scenario-resume-packs");
    let pack_path = write_test_pack(&scenario_dir);
    let (server, addr, data_dir) = start("scenario-resume", |c| {
        c.scenario_dir = Some(scenario_dir.clone());
        c.concurrency = 1;
        c.pace = Duration::from_millis(60);
    });
    let body = "{\"scenario\": \"mini-sram\", \"checkpoint\": \"mini.dhsp\", \
                \"checkpoint_every\": 2}";

    // Kill the first attempt mid-run, after a checkpoint past the first
    // epoch boundary (6 shards per epoch in the test pack).
    let first = submit(addr, body);
    let first_id = job_field(&first.body, "id");
    wait_for("a second-epoch checkpoint", Duration::from_secs(30), || {
        let r = request(addr, "GET", &format!("/jobs/{first_id}"), None).ok()?;
        let done: u64 = job_field(&r.body, "shards_done").parse().ok()?;
        (done >= 8).then_some(())
    });
    let _ = request(addr, "DELETE", &format!("/jobs/{first_id}"), None).unwrap();
    let killed = wait_status(addr, &first_id, "cancelled");
    let done_at_kill: u64 = job_field(&killed, "shards_done").parse().unwrap();
    let total: u64 = job_field(&killed, "shard_count").parse().unwrap();
    assert!(
        done_at_kill < total,
        "the job finished before it could be killed; raise the pace"
    );
    assert!(data_dir.join("mini.dhsp").exists());

    // The resubmitted body resumes from the checkpoint and stitches to
    // the same fingerprint as an uninterrupted in-process run.
    let second = submit(addr, body);
    let second_id = job_field(&second.body, "id");
    let frames = sse(addr, &format!("/jobs/{second_id}/events")).unwrap();
    let started = &frames.first().expect("started frame").1;
    let resumed_epoch: u64 = job_field(started, "resumed_epoch").parse().unwrap();
    assert!(
        resumed_epoch > 0,
        "second attempt did not resume: {started}"
    );
    let (last_event, last_data) = frames.last().unwrap();
    assert_eq!(last_event, "completed", "frames: {frames:?}");
    let pack = dh_scenario::load_pack_file(&pack_path).unwrap();
    let expected = dh_scenario::run_pack(pack).fingerprint;
    assert_eq!(
        job_field(last_data, "fingerprint"),
        format!("{expected:#018x}"),
    );
    let _ = std::fs::remove_dir_all(&scenario_dir);
    server.shutdown();
}

#[test]
fn a_restarted_daemon_reports_previous_jobs_instead_of_404() {
    let data_dir = temp_data_dir("restart");
    let scenario_dir = temp_data_dir("restart-packs");
    write_test_pack(&scenario_dir);
    let tweak = |c: &mut ServeConfig| {
        c.scenario_dir = Some(scenario_dir.clone());
    };

    // Life 1: one completed fleet job, one checkpointing scenario job
    // cancelled mid-run (the stand-in for "interrupted").
    let (completed_fp, cancelled_id, completed_id) = {
        let mut config = ServeConfig {
            addr: "127.0.0.1:0".into(),
            data_dir: data_dir.clone(),
            concurrency: 1,
            pace: Duration::from_millis(60),
            ..ServeConfig::default()
        };
        tweak(&mut config);
        let server = Server::start(config).expect("server should bind");
        let addr = server.local_addr();
        let done = submit(addr, &job_body(""));
        let done_id = job_field(&done.body, "id");
        let done_body = wait_status(addr, &done_id, "completed");
        let fp = job_field(&done_body, "fingerprint");

        let body = "{\"scenario\": \"mini-sram\", \"checkpoint\": \"restart.dhsp\", \
                    \"checkpoint_every\": 2}";
        let interrupted = submit(addr, body);
        let interrupted_id = job_field(&interrupted.body, "id");
        wait_for("a checkpointed batch", Duration::from_secs(30), || {
            let r = request(addr, "GET", &format!("/jobs/{interrupted_id}"), None).ok()?;
            let done: u64 = job_field(&r.body, "shards_done").parse().ok()?;
            (done >= 2).then_some(())
        });
        let _ = request(addr, "DELETE", &format!("/jobs/{interrupted_id}"), None).unwrap();
        wait_status(addr, &interrupted_id, "cancelled");
        server.shutdown();
        (fp, interrupted_id, done_id)
    };
    // A crashed daemon leaves a meta file still saying "running"; fake
    // one to cover the crash arm alongside the clean-cancel arm.
    std::fs::write(
        data_dir.join("job-9.meta.json"),
        "{\"id\": 9, \"status\": \"running\", \"shards_done\": 3, \"fingerprint\": null, \
         \"error\": null, \"spec\": \"{\\\"scenario\\\": \\\"mini-sram\\\", \
         \\\"checkpoint\\\": \\\"crash.dhsp\\\"}\"}",
    )
    .unwrap();

    // Life 2: same data dir, fresh process.
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: data_dir.clone(),
        ..ServeConfig::default()
    };
    tweak(&mut config);
    let server = Server::start(config).expect("restart should bind");
    let addr = server.local_addr();

    let done = request(addr, "GET", &format!("/jobs/{completed_id}"), None).unwrap();
    assert_eq!(done.status, 200);
    assert_eq!(job_field(&done.body, "status"), "completed");
    assert_eq!(job_field(&done.body, "fingerprint"), completed_fp);

    // Cancelled with a checkpoint on disk, and crashed mid-run: both
    // resumable, not 404.
    let interrupted = request(addr, "GET", &format!("/jobs/{cancelled_id}"), None).unwrap();
    assert_eq!(interrupted.status, 200);
    assert_eq!(job_field(&interrupted.body, "status"), "resumable");
    assert_eq!(job_field(&interrupted.body, "scenario"), "mini-sram");
    let crashed = request(addr, "GET", "/jobs/9", None).unwrap();
    assert_eq!(crashed.status, 200);
    assert_eq!(job_field(&crashed.body, "status"), "resumable");

    // New submissions never collide with restored ids.
    let fresh = submit(addr, &job_body(""));
    let fresh_id: u64 = job_field(&fresh.body, "id").parse().unwrap();
    assert!(fresh_id >= 10, "id {fresh_id} collides with restored jobs");
    let _ = std::fs::remove_dir_all(&scenario_dir);
    server.shutdown();
}

#[test]
fn the_watchdog_degrades_a_stalled_job_and_frees_its_slot() {
    let (server, addr, _) = start("watchdog", |c| {
        c.concurrency = 1;
        // Un-checkpointed jobs fold all 8 shards in one batch and never
        // hit the pace sleep; the checkpointing job below batches per
        // shard and stalls 2 s between batches against a 150 ms
        // heartbeat deadline.
        c.step_shards = 8;
        c.pace = Duration::from_millis(2_000);
        c.job_deadline = Some(Duration::from_millis(150));
    });
    let hung = submit(
        addr,
        &job_body(", \"checkpoint\": \"hang.dhfl\", \"checkpoint_every\": 1"),
    );
    assert_eq!(hung.status, 202);
    let hung_id = job_field(&hung.body, "id");

    // The watchdog declares the job degraded well before the runner
    // would have finished (8 shards x 2 s), and the SSE stream ends on
    // the terminal `degraded` frame naming the watchdog.
    let status = wait_status(addr, &hung_id, "degraded");
    assert_eq!(job_field(&status, "status"), "degraded");
    let frames = sse(addr, &format!("/jobs/{hung_id}/events")).unwrap();
    let (last_event, last_data) = frames.last().unwrap();
    assert_eq!(last_event, "degraded", "frames: {frames:?}");
    assert!(last_data.contains("watchdog"), "{last_data}");

    // The slot was freed: a fresh job runs to completion on the
    // replacement worker while the stalled runner is still asleep.
    let fresh = submit(addr, &job_body(""));
    let fresh_done = wait_status(addr, &job_field(&fresh.body, "id"), "completed");
    assert_ne!(job_field(&fresh_done, "fingerprint"), "null");

    // And /healthz counts the fire.
    let health = request(addr, "GET", "/healthz", None).unwrap();
    let fires: u64 = job_field(&health.body, "watchdog_fires").parse().unwrap();
    assert!(fires >= 1, "{}", health.body);
    server.shutdown();
}

#[test]
fn scenario_chaos_degrades_the_job_and_healthz_reports_the_disk() {
    let scenario_dir = temp_data_dir("scenario-chaos-packs");
    let pack_path = write_test_pack(&scenario_dir);
    let (server, addr, _) = start("scenario-chaos", |c| {
        c.scenario_dir = Some(scenario_dir.clone());
    });

    // Before any disk incident the health document says the disk is ok.
    let health = request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(job_field(&health.body, "disk"), "ok");

    // Recoverable chaos only: panics are retried away, disk faults are
    // absorbed by generation fallback — the fingerprint must match a
    // clean in-process run of the same pack.
    let body = "{\"scenario\": \"mini-sram\", \"checkpoint\": \"chaos.dhsp\", \
                \"checkpoint_every\": 1, \"keep\": 3, \"retry\": 8, \
                \"inject\": \"panic=0.1,ckpt-flip=3,disk-full=0.4,disk-torn=3\", \
                \"inject_seed\": 42}";
    let accepted = submit(addr, body);
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let id = job_field(&accepted.body, "id");
    let frames = sse(addr, &format!("/jobs/{id}/events")).unwrap();
    let (last_event, last_data) = frames.last().unwrap();
    assert_eq!(last_event, "degraded", "frames: {frames:?}");
    assert_eq!(job_field(last_data, "quarantined_shards"), "0");
    let incidents: u64 = job_field(last_data, "disk_incidents").parse().unwrap();
    assert!(incidents > 0, "{last_data}");
    let pack = dh_scenario::load_pack_file(&pack_path).unwrap();
    let expected = dh_scenario::run_pack(pack).fingerprint;
    assert_eq!(
        job_field(last_data, "fingerprint"),
        format!("{expected:#018x}"),
    );

    // The daemon is alive, but the health document now carries the
    // degraded-disk signal for the operator.
    let health = request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(job_field(&health.body, "disk"), "degraded");
    let _ = std::fs::remove_dir_all(&scenario_dir);
    server.shutdown();
}

#[test]
fn shutdown_endpoint_stops_the_daemon() {
    let (server, addr, _) = start("shutdown", |_| {});
    let r = request(addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(r.status, 200);
    server.wait_for_shutdown();
    server.shutdown();
    // New submissions are refused once the registry is gone; the socket
    // may or may not still accept before the listener thread exits, so
    // the strong assertion is just that wait_for_shutdown returned.
}
