//! # dh-serve: fleet reliability simulation as a daemon
//!
//! A small HTTP service wrapping the `dh-fleet` engine: operators
//! submit fleet/guardband jobs as JSON, the daemon runs them on a
//! bounded worker pool with the same supervised, checkpointed semantics
//! as the `fleet` CLI, and progress streams back over server-sent
//! events. The intended deployment is one daemon per reliability lab
//! box behind a reverse proxy; there is no auth, TLS, or multi-tenancy
//! here by design.
//!
//! ```text
//! POST   /jobs             submit (202, body echoes the job id)
//!                          400 malformed | 422 invalid config
//!                          429 + Retry-After when the queue is full
//! GET    /jobs             list every known job
//! GET    /jobs/{id}        status document
//! GET    /jobs/{id}/events SSE: started/progress/completed/failed/cancelled
//! DELETE /jobs/{id}        cancel (queued: immediate; running: next batch)
//! GET    /scenarios        the scenario registry (built-ins + --scenario-dir)
//! GET    /healthz          liveness
//! POST   /shutdown         graceful stop (CI smoke uses this)
//! ```
//!
//! Jobs come in two shapes: a `config` object runs the fleet engine, a
//! `{"scenario": "<name>"}` reference runs a `dh-scenario` pack from
//! the registry. Both checkpoint under `--data-dir`, and the daemon
//! records each job's outcome in a meta file there, so a restarted
//! daemon still answers `GET /jobs/{id}` for its previous life — an
//! interrupted checkpointing job reports `resumable` instead of 404.
//!
//! Everything is hand-rolled on `std::net` — the build vendors no HTTP
//! or JSON dependency — and every fault-tolerance property of the
//! engine carries through: injected shard panics degrade the job (the
//! `completed` event says what it survived), they never kill the
//! daemon, and a cancelled checkpointing job can be resubmitted to
//! resume from disk with a byte-identical final fingerprint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod job;
/// The JSON codec the daemon speaks, re-exported from [`dh_json`] (it
/// moved there so `dh-scenario` could parse packs without linking the
/// HTTP daemon).
pub use dh_json as json;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use api::{parse_job_spec, ServeError};
use http::{read_request, respond_json, Request, SseWriter};
use job::{JobRegistry, RunnerSettings};

/// Everything the daemon needs to start.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Queued-job bound; submissions beyond it get a 429.
    pub queue_capacity: usize,
    /// Worker threads running jobs concurrently.
    pub concurrency: usize,
    /// Shards folded between progress events for non-checkpointing jobs.
    pub step_shards: u64,
    /// Artificial delay between batches (tests; zero in production).
    pub pace: Duration,
    /// Directory holding job checkpoint files (created on start).
    pub data_dir: PathBuf,
    /// Extra scenario packs loaded from `*.json` files in this
    /// directory (they shadow same-named built-ins).
    pub scenario_dir: Option<PathBuf>,
    /// How long a running job may go without a heartbeat before the
    /// watchdog declares it `degraded` and frees its worker slot.
    /// `None` disables the watchdog.
    pub job_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7477".into(),
            queue_capacity: 16,
            concurrency: 2,
            step_shards: 4,
            pace: Duration::ZERO,
            data_dir: PathBuf::from("dh-serve-data"),
            scenario_dir: None,
            job_deadline: None,
        }
    }
}

/// A running daemon: the listener, its worker pool, and the shared job
/// registry.
pub struct Server {
    addr: SocketAddr,
    registry: Arc<JobRegistry>,
    accept_stop: Arc<AtomicBool>,
    shutdown_signal: Arc<(Mutex<bool>, Condvar)>,
    accept_handle: Option<JoinHandle<()>>,
    watchdog_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// Socket bind / data-dir creation failures.
    pub fn start(config: ServeConfig) -> io::Result<Self> {
        std::fs::create_dir_all(&config.data_dir)?;
        let scenarios = match &config.scenario_dir {
            Some(dir) => dh_scenario::ScenarioRegistry::with_dir(dir)
                .map_err(|e| io::Error::other(e.to_string()))?,
            None => dh_scenario::ScenarioRegistry::builtin(),
        };
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(JobRegistry::new(RunnerSettings {
            queue_capacity: config.queue_capacity,
            step_shards: config.step_shards,
            pace: config.pace,
            data_dir: config.data_dir.clone(),
            scenarios: Arc::new(scenarios),
            job_deadline: config.job_deadline,
        }));
        let shutdown_signal = Arc::new((Mutex::new(false), Condvar::new()));
        let accept_stop = Arc::new(AtomicBool::new(false));

        let worker_handles = (0..config.concurrency.max(1))
            .map(|i| {
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("dh-serve-worker-{i}"))
                    .spawn(move || registry.worker_loop())
                    .expect("failed to spawn worker thread")
            })
            .collect();

        let accept_handle = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&accept_stop);
            let signal = Arc::clone(&shutdown_signal);
            std::thread::Builder::new()
                .name("dh-serve-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let registry = Arc::clone(&registry);
                        let signal = Arc::clone(&signal);
                        // Thread per connection: every request is one
                        // short exchange (or a job-lifetime SSE tail),
                        // and the operator population is tiny.
                        let _ = std::thread::Builder::new()
                            .name("dh-serve-conn".into())
                            .spawn(move || handle_connection(stream, &registry, &signal));
                    }
                })
                .expect("failed to spawn accept thread")
        };

        // The watchdog: a supervisor thread that periodically scans for
        // running jobs whose runner stopped heartbeating, marks them
        // `degraded` (terminal SSE frame), and spawns one replacement
        // worker per fire so the stalled runner's slot is not lost —
        // the hung thread itself is left to die on its own (it cannot
        // be killed safely), but the daemon's concurrency recovers.
        let watchdog_handle = config.job_deadline.map(|deadline| {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&accept_stop);
            let tick = (deadline / 4).max(Duration::from_millis(5));
            std::thread::Builder::new()
                .name("dh-serve-watchdog".into())
                .spawn(move || {
                    let mut replacements = Vec::new();
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(tick);
                        for _ in 0..registry.watchdog_scan(deadline) {
                            let registry = Arc::clone(&registry);
                            if let Ok(handle) = std::thread::Builder::new()
                                .name("dh-serve-worker-r".into())
                                .spawn(move || registry.worker_loop())
                            {
                                replacements.push(handle);
                            }
                        }
                    }
                    // Shutdown: the registry has been (or is being)
                    // drained; replacement workers exit on its signal.
                    for handle in replacements {
                        let _ = handle.join();
                    }
                })
                .expect("failed to spawn watchdog thread")
        });

        Ok(Self {
            addr,
            registry,
            accept_stop,
            shutdown_signal,
            accept_handle: Some(accept_handle),
            watchdog_handle,
            worker_handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared registry (tests poke it directly).
    pub fn registry(&self) -> &Arc<JobRegistry> {
        &self.registry
    }

    /// Blocks until some client POSTs `/shutdown`.
    pub fn wait_for_shutdown(&self) {
        let (flag, cond) = &*self.shutdown_signal;
        let mut requested = flag.lock().unwrap_or_else(PoisonError::into_inner);
        while !*requested {
            requested = cond.wait(requested).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops accepting, cancels queued work, asks running jobs to stop,
    /// and joins every thread the server owns.
    pub fn shutdown(mut self) {
        self.accept_stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.registry.shutdown();
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        // After registry.shutdown(): replacement workers need the
        // shutdown signal to exit before the watchdog can join them.
        if let Some(handle) = self.watchdog_handle.take() {
            let _ = handle.join();
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    registry: &Arc<JobRegistry>,
    shutdown_signal: &Arc<(Mutex<bool>, Condvar)>,
) {
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(why) => {
            let err = ServeError::BadRequest(why);
            respond_json(&mut stream, err.status(), &[], &err.to_json());
            return;
        }
    };
    match route(&request, registry, &mut stream) {
        Ok(Routed::Done) => {}
        Ok(Routed::Shutdown) => {
            let (flag, cond) = &**shutdown_signal;
            *flag.lock().unwrap_or_else(PoisonError::into_inner) = true;
            cond.notify_all();
        }
        Err(err) => {
            let extra: Vec<(&str, String)> = match &err {
                ServeError::QueueFull { retry_after } => {
                    vec![("Retry-After", retry_after.to_string())]
                }
                _ => Vec::new(),
            };
            respond_json(&mut stream, err.status(), &extra, &err.to_json());
        }
    }
}

enum Routed {
    Done,
    Shutdown,
}

fn route(
    request: &Request,
    registry: &Arc<JobRegistry>,
    stream: &mut TcpStream,
) -> Result<Routed, ServeError> {
    let method = request.method.as_str();
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => {
            // Liveness plus the degraded-disk signal: once any job has
            // survived a disk incident, operators should check the
            // data-dir volume even though the daemon itself is fine.
            let disk = if registry.disk_degraded() {
                "degraded"
            } else {
                "ok"
            };
            respond_json(
                stream,
                200,
                &[],
                &format!(
                    "{{\"status\": \"ok\", \"disk\": \"{disk}\", \"watchdog_fires\": {}}}",
                    registry.watchdog_fire_count(),
                ),
            );
            Ok(Routed::Done)
        }
        ("POST", ["shutdown"]) => {
            respond_json(stream, 200, &[], "{\"status\": \"shutting down\"}");
            Ok(Routed::Shutdown)
        }
        ("POST", ["jobs"]) => {
            let spec = parse_job_spec(
                &request.body,
                dh_exec::max_threads(),
                &registry.settings().scenarios,
            )?;
            let job = registry.submit(spec)?;
            respond_json(stream, 202, &[], &job.status_json());
            Ok(Routed::Done)
        }
        ("GET", ["jobs"]) => {
            respond_json(stream, 200, &[], &registry.list_json());
            Ok(Routed::Done)
        }
        ("GET", ["jobs", id]) => {
            let job = registry
                .get(parse_id(id)?)
                .ok_or_else(|| ServeError::NotFound(format!("no job {id}")))?;
            respond_json(stream, 200, &[], &job.status_json());
            Ok(Routed::Done)
        }
        ("DELETE", ["jobs", id]) => {
            let job = registry.cancel(parse_id(id)?)?;
            respond_json(stream, 200, &[], &job.status_json());
            Ok(Routed::Done)
        }
        ("GET", ["jobs", id, "events"]) => {
            let job = registry
                .get(parse_id(id)?)
                .ok_or_else(|| ServeError::NotFound(format!("no job {id}")))?;
            let mut sse = SseWriter::begin(stream);
            let mut index = 0usize;
            while let Some((event, data)) = job.next_event(index) {
                sse.event(&event, &data);
                if sse.is_broken() {
                    break;
                }
                index += 1;
            }
            Ok(Routed::Done)
        }
        ("GET", ["scenarios"]) => {
            respond_json(
                stream,
                200,
                &[],
                &scenarios_json(&registry.settings().scenarios),
            );
            Ok(Routed::Done)
        }
        (
            _,
            ["healthz"]
            | ["shutdown"]
            | ["scenarios"]
            | ["jobs"]
            | ["jobs", _]
            | ["jobs", _, "events"],
        ) => Err(ServeError::MethodNotAllowed(format!(
            "{method} is not supported here"
        ))),
        _ => Err(ServeError::NotFound(format!(
            "no route for {}",
            request.path
        ))),
    }
}

fn parse_id(raw: &str) -> Result<u64, ServeError> {
    raw.parse()
        .map_err(|_| ServeError::BadRequest(format!("bad job id {raw:?}")))
}

/// The `GET /scenarios` body: one row per registered pack.
fn scenarios_json(registry: &dh_scenario::ScenarioRegistry) -> String {
    let rows: Vec<String> = registry
        .entries()
        .iter()
        .map(|entry| {
            format!(
                "{{\"name\": \"{}\", \"description\": \"{}\", \"source\": \"{}\", \
                 \"epochs\": {}, \"elements\": {}, \"blocks\": {}}}",
                json::escape(&entry.pack.name),
                json::escape(&entry.pack.description),
                entry.source.name(),
                entry.pack.epochs,
                entry.pack.total_elements(),
                entry.pack.blocks.len(),
            )
        })
        .collect();
    format!("{{\"scenarios\": [{}]}}", rows.join(", "))
}
