//! A small, strict HTTP/1.1 server-side codec over `std::net`.
//!
//! The daemon serves a handful of fixed routes to trusted operators, so
//! this implements exactly the slice of HTTP it needs: one request per
//! connection (`Connection: close` on every response), bounded header
//! and body sizes, and a server-sent-events writer for the progress
//! stream. No keep-alive, no chunked bodies, no TLS — those belong to a
//! reverse proxy, not to a simulation daemon.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request line + headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body; job specs are a few hundred bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// A connection that stalls mid-request is dropped after this long.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed request: method, percent-unaware path, and the raw body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, …, uppercased by the client already.
    pub method: String,
    /// The request target, query string stripped.
    pub path: String,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

/// Reads one request off `stream`, enforcing the size and time bounds.
///
/// # Errors
///
/// A short description suitable for a 400 response (or for a log line
/// when the connection is already unusable).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);

    let mut line = String::new();
    let mut head_bytes = 0usize;
    read_line_bounded(&mut reader, &mut line, &mut head_bytes)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_string())?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| "request line missing a target".to_string())?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    loop {
        line.clear();
        read_line_bounded(&mut reader, &mut line, &mut head_bytes)?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {:?}", value.trim()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("short body: {e}"))?;
    Ok(Request { method, path, body })
}

fn read_line_bounded(
    reader: &mut BufReader<&mut TcpStream>,
    line: &mut String,
    head_bytes: &mut usize,
) -> Result<(), String> {
    let n = reader
        .read_line(line)
        .map_err(|e| format!("read failed: {e}"))?;
    if n == 0 {
        return Err("connection closed mid-request".into());
    }
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(format!(
            "request head exceeds the {MAX_HEAD_BYTES}-byte limit"
        ));
    }
    Ok(())
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

/// Writes a complete JSON response (with optional extra headers) and
/// flushes. Errors are swallowed: the peer hanging up mid-response is
/// its problem, not the daemon's.
pub fn respond_json(stream: &mut TcpStream, status: u16, extra: &[(&str, String)], body: &str) {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// An in-progress server-sent-events response. Construct with
/// [`SseWriter::begin`] (which sends the header), push frames with
/// [`SseWriter::event`], then drop it; the `Connection: close` contract
/// means end-of-stream is simply EOF.
pub struct SseWriter<'a> {
    stream: &'a mut TcpStream,
    broken: bool,
}

impl<'a> SseWriter<'a> {
    /// Sends the SSE response head.
    pub fn begin(stream: &'a mut TcpStream) -> Self {
        let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
        let broken = stream.write_all(head.as_bytes()).is_err();
        Self { stream, broken }
    }

    /// Sends one `event:`/`data:` frame. `data` must be a single line
    /// (the daemon's event payloads are single-line JSON).
    pub fn event(&mut self, event: &str, data: &str) {
        if self.broken {
            return;
        }
        let frame = format!("event: {event}\ndata: {data}\n\n");
        self.broken =
            self.stream.write_all(frame.as_bytes()).is_err() || self.stream.flush().is_err();
    }

    /// Whether the peer has gone away (writes started failing).
    pub fn is_broken(&self) -> bool {
        self.broken
    }
}
