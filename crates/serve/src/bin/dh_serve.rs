//! The `dh-serve` daemon binary: bind, serve fleet jobs, exit cleanly
//! when a client POSTs `/shutdown`.
//!
//! ```text
//! dh-serve --addr 127.0.0.1:7477 --data-dir /var/lib/dh-serve
//! curl -s localhost:7477/healthz
//! ```

use std::process::ExitCode;
use std::time::Duration;

use dh_serve::{ServeConfig, Server};

const USAGE: &str = "\
usage: dh-serve [flags]
  --addr HOST:PORT   bind address                        (default 127.0.0.1:7477)
  --queue N          queued-job bound before 429s        (default 16)
  --concurrency N    jobs running at once                (default 2)
  --step-shards N    shards folded between progress events (default 4)
  --pace-ms N        artificial delay between batches    (default 0)
  --data-dir PATH    checkpoint directory                (default dh-serve-data)
  --scenario-dir DIR extra scenario packs (*.json; shadow built-ins)
  --job-deadline-ms N mark a job degraded after N ms without a heartbeat
                     (default: watchdog off)
";

fn parse_args() -> Result<ServeConfig, String> {
    let mut config = ServeConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("{flag} {value}: {e}");
        match flag.as_str() {
            "--addr" => config.addr = value,
            "--queue" => config.queue_capacity = value.parse().map_err(|e| bad(&e))?,
            "--concurrency" => config.concurrency = value.parse().map_err(|e| bad(&e))?,
            "--step-shards" => config.step_shards = value.parse().map_err(|e| bad(&e))?,
            "--pace-ms" => config.pace = Duration::from_millis(value.parse().map_err(|e| bad(&e))?),
            "--data-dir" => config.data_dir = value.into(),
            "--scenario-dir" => config.scenario_dir = Some(value.into()),
            "--job-deadline-ms" => {
                config.job_deadline =
                    Some(Duration::from_millis(value.parse().map_err(|e| bad(&e))?));
            }
            _ => return Err(format!("unknown flag {flag}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(why) => {
            if !why.is_empty() {
                eprintln!("error: {why}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(u8::from(!why.is_empty()) * 2);
        }
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(why) => {
            eprintln!("error: {why}");
            return ExitCode::FAILURE;
        }
    };
    println!("dh-serve listening on {}", server.local_addr());
    server.wait_for_shutdown();
    println!("dh-serve shutting down");
    server.shutdown();
    ExitCode::SUCCESS
}
