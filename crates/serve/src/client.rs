//! A tiny blocking HTTP client for the daemon's own tests, benches, and
//! smoke scripts. Hidden from docs: it speaks exactly the dialect the
//! server emits (`Connection: close`, one exchange per connection) and
//! nothing more — it is a test fixture, not an SDK.
#![doc(hidden)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A fully-read response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one request and reads the whole response (the server closes
/// the connection after each exchange).
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: dh-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line {line:?}")))?;
    let mut headers = Vec::new();
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Opens `GET {path}` as an SSE stream and reads it to EOF, returning
/// the `(event, data)` frames in order. Blocks until the server hangs
/// up — for the daemon that means the job reached a terminal state.
pub fn sse(addr: SocketAddr, path: &str) -> std::io::Result<Vec<(String, String)>> {
    let response = request(addr, "GET", path, None)?;
    if response.status != 200 {
        return Err(std::io::Error::other(format!(
            "SSE request got {}: {}",
            response.status, response.body
        )));
    }
    let mut frames = Vec::new();
    let mut event = String::new();
    for line in response.body.lines() {
        if let Some(name) = line.strip_prefix("event: ") {
            event = name.to_string();
        } else if let Some(data) = line.strip_prefix("data: ") {
            frames.push((std::mem::take(&mut event), data.to_string()));
        }
    }
    Ok(frames)
}
