//! Jobs, the bounded queue, and the runner that executes them.
//!
//! A job is a [`JobSpec`] plus observable state: a status, a progress
//! cursor, and an append-only event log that the SSE endpoint replays
//! and tails. The registry holds every job ever submitted (the daemon
//! is an operator tool, not a public service; completed jobs stay
//! queryable until shutdown) and a bounded pending queue drained by a
//! fixed worker pool — the submit path refuses with a 429 rather than
//! queueing unboundedly.
//!
//! The runner is deliberately a re-statement of
//! [`dh_fleet::run_fleet_supervised_with`]'s loop with the daemon's
//! concerns woven between batches: cancel checks, progress events, and
//! the same checkpoint write-index sequence, so a job that is killed
//! and resubmitted resumes from disk and lands on a report
//! byte-identical to an uninterrupted run.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use dh_exec::RetryPolicy;
use dh_fault::DegradedReport;
use dh_fleet::{AsyncCheckpointer, CheckpointMode, CheckpointStore, FleetRun};
use dh_scenario::{ScenarioCheckpointStore, ScenarioPack, ScenarioRegistry, ScenarioRun};

use crate::api::{parse_job_spec, retry_after_hint, JobSpec, ServeError};
use crate::json::{escape, num, Json};

/// At most this many per-shard summaries ride on one progress event;
/// a 100k-device run should not emit megabyte frames.
const MAX_SHARD_VIEWS: usize = 8;

/// A simulation job runs panic-supervised, so a poisoned lock means a
/// sibling died mid-section, not that the data is bad — recover the
/// guard, same as the fleet layer's slab pool.
fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting for a worker slot.
    Queued,
    /// A worker is stepping it.
    Running,
    /// Finished; the fingerprint is final.
    Completed,
    /// Finished in a degraded state: the run survived injected or real
    /// faults (quarantined shards, disk incidents, checkpoint
    /// fallbacks), or the watchdog gave up on a stalled runner. The
    /// fingerprint, when present, is final.
    Degraded,
    /// Aborted on an error (I/O, config mismatch on resume, …).
    Failed,
    /// Stopped by `DELETE /jobs/{id}` (or daemon shutdown).
    Cancelled,
    /// Restored from a previous daemon life's meta file: interrupted
    /// (or cancelled with a checkpoint on disk), so resubmitting the
    /// same spec resumes it. Terminal in this life — a restored job is
    /// a record, not a runnable.
    Resumable,
}

impl JobStatus {
    /// The stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Completed => "completed",
            Self::Degraded => "degraded",
            Self::Failed => "failed",
            Self::Cancelled => "cancelled",
            Self::Resumable => "resumable",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            Self::Completed | Self::Degraded | Self::Failed | Self::Cancelled | Self::Resumable
        )
    }
}

#[derive(Debug)]
struct JobInner {
    status: JobStatus,
    shards_done: u64,
    shard_count: u64,
    /// Set once on completion.
    fingerprint: Option<u64>,
    /// Set once on failure.
    error: Option<String>,
    /// Disk incidents the runner survived (injected or real); the
    /// registry's `/healthz` disk signal is fed from this.
    disk_incidents: u64,
    /// Last sign of life from the runner; the watchdog compares this
    /// against the job deadline.
    heartbeat: Instant,
    /// `(event name, single-line JSON data)`, append-only.
    events: Vec<(String, String)>,
}

/// One submitted job and everything observable about it.
#[derive(Debug)]
pub struct Job {
    /// Daemon-unique id, assigned at submit.
    pub id: u64,
    /// The validated submission.
    pub spec: JobSpec,
    cancel: AtomicBool,
    inner: Mutex<JobInner>,
    /// Signals event-log growth and terminal transitions.
    cond: Condvar,
}

impl Job {
    fn new(id: u64, spec: JobSpec) -> Self {
        // Scenario jobs sweep every shard once per epoch, so the
        // progress denominator is the full run, not one pass.
        let shard_count = match &spec.scenario {
            Some(pack) => pack.shard_count().saturating_mul(pack.epochs),
            None => spec.shard_count(),
        };
        Self {
            id,
            spec,
            cancel: AtomicBool::new(false),
            inner: Mutex::new(JobInner {
                status: JobStatus::Queued,
                shards_done: 0,
                shard_count,
                fingerprint: None,
                error: None,
                disk_incidents: 0,
                heartbeat: Instant::now(),
                events: Vec::new(),
            }),
            cond: Condvar::new(),
        }
    }

    /// Asks the runner to stop at the next batch boundary. Idempotent.
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// The job's current status.
    pub fn status(&self) -> JobStatus {
        lock(&self.inner).status
    }

    fn set_running(&self) {
        let mut inner = lock(&self.inner);
        inner.status = JobStatus::Running;
        inner.heartbeat = Instant::now();
    }

    /// Disk incidents the runner recorded (terminal jobs only).
    pub fn disk_incidents(&self) -> u64 {
        lock(&self.inner).disk_incidents
    }

    /// How long since the runner last showed a sign of life.
    pub fn heartbeat_elapsed(&self) -> Duration {
        lock(&self.inner).heartbeat.elapsed()
    }

    /// Appends an event and wakes every SSE tail. Every event doubles
    /// as a heartbeat. No-op once terminal: a runner the watchdog
    /// already gave up on must not reanimate the stream.
    fn push_event(&self, event: &str, data: String) {
        let mut inner = lock(&self.inner);
        if inner.status.is_terminal() {
            return;
        }
        inner.heartbeat = Instant::now();
        inner.events.push((event.to_string(), data));
        self.cond.notify_all();
    }

    /// Transitions to a terminal status with its terminal event. First
    /// writer wins: a late finish from a runner the watchdog already
    /// declared dead (or a watchdog racing a clean completion) is
    /// dropped.
    fn finish(&self, status: JobStatus, event: &str, data: String) {
        let mut inner = lock(&self.inner);
        if inner.status.is_terminal() {
            return;
        }
        inner.status = status;
        inner.events.push((event.to_string(), data));
        self.cond.notify_all();
    }

    /// Returns event `index`, blocking until it exists. `None` means the
    /// job reached a terminal state and the log is fully drained — the
    /// SSE handler's signal to hang up.
    pub fn next_event(&self, index: usize) -> Option<(String, String)> {
        let mut inner = lock(&self.inner);
        loop {
            if let Some(frame) = inner.events.get(index) {
                return Some(frame.clone());
            }
            if inner.status.is_terminal() {
                return None;
            }
            inner = self
                .cond
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until the job reaches a terminal state and returns it.
    pub fn wait_terminal(&self) -> JobStatus {
        let mut inner = lock(&self.inner);
        while !inner.status.is_terminal() {
            inner = self
                .cond
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        inner.status
    }

    /// The job's status document (the `GET /jobs/{id}` body).
    pub fn status_json(&self) -> String {
        let inner = lock(&self.inner);
        let fingerprint = match inner.fingerprint {
            Some(fp) => format!("\"{fp:#018x}\""),
            None => "null".to_string(),
        };
        let error = match &inner.error {
            Some(e) => format!("\"{}\"", escape(e)),
            None => "null".to_string(),
        };
        let scenario = match &self.spec.scenario {
            Some(pack) => format!("\"{}\"", escape(&pack.name)),
            None => "null".to_string(),
        };
        format!(
            "{{\"id\": {}, \"status\": \"{}\", \"shards_done\": {}, \"shard_count\": {}, \
             \"devices\": {}, \"scenario\": {}, \"fingerprint\": {}, \"error\": {}}}",
            self.id,
            inner.status.name(),
            inner.shards_done,
            inner.shard_count,
            self.spec.devices(),
            scenario,
            fingerprint,
            error,
        )
    }
}

/// Knobs the runner and queue need from the server configuration.
#[derive(Debug, Clone)]
pub struct RunnerSettings {
    /// Queued-job bound; the submit path 429s beyond it.
    pub queue_capacity: usize,
    /// Shards folded per batch when the job does not checkpoint
    /// (checkpointing jobs batch by their `checkpoint_every`).
    pub step_shards: u64,
    /// Artificial delay between batches. Zero in production; tests use
    /// it to hold jobs observably in-flight.
    pub pace: Duration,
    /// Directory for job checkpoint and meta files.
    pub data_dir: PathBuf,
    /// The scenario registry `{"scenario": …}` submissions resolve
    /// against.
    pub scenarios: Arc<ScenarioRegistry>,
    /// How long a running job may go without a heartbeat before the
    /// watchdog declares it degraded and frees its slot. `None`
    /// disables the watchdog.
    pub job_deadline: Option<Duration>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    jobs: Vec<Arc<Job>>,
    pending: VecDeque<Arc<Job>>,
    next_id: u64,
    shutdown: bool,
}

/// Every job the daemon knows about, plus the bounded pending queue.
#[derive(Debug)]
pub struct JobRegistry {
    settings: RunnerSettings,
    inner: Mutex<RegistryInner>,
    /// Wakes workers when the queue grows or shutdown begins.
    queue_cond: Condvar,
    /// Times the watchdog declared a stalled job degraded.
    watchdog_fires: AtomicU64,
    /// Set once any job records a disk incident; `/healthz` reports it.
    disk_degraded: AtomicBool,
}

impl JobRegistry {
    /// A registry primed with every job recorded in the data dir's meta
    /// files — a restarted daemon answers `GET /jobs/{id}` for its
    /// previous life's jobs (`resumable` where a checkpoint allows it)
    /// instead of 404ing.
    pub fn new(settings: RunnerSettings) -> Self {
        let jobs = restore_jobs(&settings);
        let next_id = jobs.iter().map(|j| j.id).max().unwrap_or(0) + 1;
        Self {
            settings,
            inner: Mutex::new(RegistryInner {
                jobs,
                next_id,
                ..RegistryInner::default()
            }),
            queue_cond: Condvar::new(),
            watchdog_fires: AtomicU64::new(0),
            disk_degraded: AtomicBool::new(false),
        }
    }

    /// The runner/queue settings this registry was built with.
    pub fn settings(&self) -> &RunnerSettings {
        &self.settings
    }

    /// Accepts a job into the queue, or refuses: 429 when the pending
    /// queue is at capacity (running jobs do not count — their slots are
    /// the concurrency bound, not the queue bound), 409 during shutdown.
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<Job>, ServeError> {
        let mut inner = lock(&self.inner);
        if inner.shutdown {
            return Err(ServeError::Conflict("daemon is shutting down".into()));
        }
        if inner.pending.len() >= self.settings.queue_capacity {
            return Err(ServeError::QueueFull {
                retry_after: retry_after_hint(self.settings.pace),
            });
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let job = Arc::new(Job::new(id, spec));
        inner.jobs.push(Arc::clone(&job));
        inner.pending.push_back(Arc::clone(&job));
        self.queue_cond.notify_one();
        drop(inner);
        write_meta(&job, &self.settings.data_dir);
        Ok(job)
    }

    /// Looks a job up by id.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        lock(&self.inner).jobs.iter().find(|j| j.id == id).cloned()
    }

    /// Cancels a job: a queued job is removed from the queue and goes
    /// terminal immediately; a running one stops at its next batch
    /// boundary. Terminal jobs are left untouched (cancel is
    /// idempotent). Returns the job for a status body.
    pub fn cancel(&self, id: u64) -> Result<Arc<Job>, ServeError> {
        let job = self
            .get(id)
            .ok_or_else(|| ServeError::NotFound(format!("no job {id}")))?;
        job.request_cancel();
        let mut inner = lock(&self.inner);
        if let Some(at) = inner.pending.iter().position(|j| j.id == id) {
            let queued = inner.pending.remove(at).expect("position just found");
            drop(inner);
            queued.finish(
                JobStatus::Cancelled,
                "cancelled",
                format!("{{\"job\": {id}, \"shards_done\": 0}}"),
            );
            write_meta(&queued, &self.settings.data_dir);
        }
        Ok(job)
    }

    /// The `GET /jobs` body.
    pub fn list_json(&self) -> String {
        let jobs = lock(&self.inner).jobs.clone();
        let rows: Vec<String> = jobs.iter().map(|j| j.status_json()).collect();
        format!("{{\"jobs\": [{}]}}", rows.join(", "))
    }

    /// Begins shutdown: refuses new submissions, cancels queued jobs,
    /// asks running jobs to stop, and releases every worker.
    pub fn shutdown(&self) {
        let drained: Vec<Arc<Job>> = {
            let mut inner = lock(&self.inner);
            inner.shutdown = true;
            let drained = inner.pending.drain(..).collect();
            for job in &inner.jobs {
                job.request_cancel();
            }
            self.queue_cond.notify_all();
            drained
        };
        for job in drained {
            job.finish(
                JobStatus::Cancelled,
                "cancelled",
                format!("{{\"job\": {}, \"shards_done\": 0}}", job.id),
            );
            write_meta(&job, &self.settings.data_dir);
        }
    }

    /// One worker thread's life: claim, run, repeat, exit on shutdown.
    pub fn worker_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut inner = lock(&self.inner);
                loop {
                    if let Some(job) = inner.pending.pop_front() {
                        break job;
                    }
                    if inner.shutdown {
                        return;
                    }
                    inner = self
                        .queue_cond
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            run_job(&job, &self.settings);
            if job.disk_incidents() > 0 {
                self.disk_degraded.store(true, Ordering::Relaxed);
            }
            write_meta(&job, &self.settings.data_dir);
        }
    }

    /// One watchdog pass: every running job whose heartbeat is older
    /// than the deadline goes terminal-degraded (its runner is asked to
    /// cancel, in case it is merely slow rather than dead). Returns the
    /// jobs fired on, so the server can spawn replacement workers for
    /// the slots their runners still occupy.
    pub fn watchdog_scan(&self, deadline: Duration) -> usize {
        let stalled: Vec<Arc<Job>> = lock(&self.inner)
            .jobs
            .iter()
            .filter(|j| j.status() == JobStatus::Running && j.heartbeat_elapsed() > deadline)
            .cloned()
            .collect();
        for job in &stalled {
            job.request_cancel();
            self.watchdog_fires.fetch_add(1, Ordering::Relaxed);
            dh_obs::counter!("serve.watchdog_fires").incr();
            job.finish(
                JobStatus::Degraded,
                "degraded",
                format!(
                    "{{\"job\": {}, \"reason\": \"watchdog: no heartbeat in {} ms\"}}",
                    job.id,
                    deadline.as_millis(),
                ),
            );
            write_meta(job, &self.settings.data_dir);
        }
        stalled.len()
    }

    /// Times the watchdog has fired since boot.
    pub fn watchdog_fire_count(&self) -> u64 {
        self.watchdog_fires.load(Ordering::Relaxed)
    }

    /// Whether any job has recorded a disk incident since boot.
    pub fn disk_degraded(&self) -> bool {
        self.disk_degraded.load(Ordering::Relaxed)
    }
}

/// Persists a job's observable outcome to `job-{id}.meta.json` under
/// the data dir (tmp + atomic rename, best-effort: a meta write failure
/// never fails the job, it only costs post-restart visibility).
fn write_meta(job: &Job, data_dir: &Path) {
    let (status, shards_done, fingerprint, error) = {
        let inner = lock(&job.inner);
        (
            inner.status,
            inner.shards_done,
            inner.fingerprint,
            inner.error.clone(),
        )
    };
    let fingerprint = match fingerprint {
        Some(fp) => format!("\"{fp:#018x}\""),
        None => "null".to_string(),
    };
    let error = match error {
        Some(e) => format!("\"{}\"", escape(&e)),
        None => "null".to_string(),
    };
    let body = format!(
        "{{\"id\": {}, \"status\": \"{}\", \"shards_done\": {}, \"fingerprint\": {}, \
         \"error\": {}, \"spec\": \"{}\"}}",
        job.id,
        status.name(),
        shards_done,
        fingerprint,
        error,
        escape(&job.spec.raw),
    );
    let path = data_dir.join(format!("job-{}.meta.json", job.id));
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, body).is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    }
}

/// Rebuilds the job list from the data dir's meta files on boot.
/// Unreadable or stale files (bad JSON, a spec whose scenario left the
/// registry) are skipped, not fatal — boot must always succeed.
fn restore_jobs(settings: &RunnerSettings) -> Vec<Arc<Job>> {
    let Ok(entries) = std::fs::read_dir(&settings.data_dir) else {
        return Vec::new();
    };
    let mut jobs = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(id) = name
            .strip_prefix("job-")
            .and_then(|rest| rest.strip_suffix(".meta.json"))
            .and_then(|rest| rest.parse::<u64>().ok())
        else {
            continue;
        };
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        if let Some(job) = restore_job(id, &text, settings) {
            jobs.push(Arc::new(job));
        }
    }
    jobs.sort_by_key(|j| j.id);
    jobs
}

fn restore_job(id: u64, text: &str, settings: &RunnerSettings) -> Option<Job> {
    let doc = Json::parse(text).ok()?;
    let raw = doc.get("spec")?.as_str()?;
    let spec = parse_job_spec(raw.as_bytes(), dh_exec::max_threads(), &settings.scenarios).ok()?;
    let status = match doc.get("status")?.as_str()? {
        "completed" => JobStatus::Completed,
        "degraded" => JobStatus::Degraded,
        "failed" => JobStatus::Failed,
        // A cancel with a checkpoint on disk is resumable by design;
        // without one the cancel is final.
        "cancelled" if spec.checkpoint.is_some() => JobStatus::Resumable,
        "cancelled" => JobStatus::Cancelled,
        // Queued or running when the previous daemon died: interrupted,
        // and a resubmission of the same spec picks the work back up.
        _ => JobStatus::Resumable,
    };
    let fingerprint = doc
        .get("fingerprint")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok());
    let error = doc.get("error").and_then(Json::as_str).map(str::to_string);
    let shards_done = doc
        .get("shards_done")
        .and_then(Json::as_u64)
        .unwrap_or_default();
    let job = Job::new(id, spec);
    {
        let mut inner = lock(&job.inner);
        inner.status = status;
        inner.shards_done = shards_done;
        inner.fingerprint = fingerprint;
        inner.error = error;
    }
    Some(job)
}

/// The checkpoint writer a job threads its snapshots through — the same
/// write-index discipline as `run_fleet_supervised_with`, so injected
/// `ckpt-flip=N` corruption hits the same generations whether a run
/// goes through the CLI or the daemon.
enum Writer {
    None,
    Sync {
        store: CheckpointStore,
        write_index: u64,
        scratch: Vec<u8>,
        disk: DegradedReport,
    },
    Async(AsyncCheckpointer),
}

impl Writer {
    fn open(spec: &JobSpec, store: Option<&CheckpointStore>) -> Self {
        match (store, spec.checkpoint_mode) {
            (None, _) => Self::None,
            (Some(store), CheckpointMode::Sync) => Self::Sync {
                store: store.clone(),
                write_index: 0,
                scratch: Vec::new(),
                disk: DegradedReport::default(),
            },
            (Some(store), CheckpointMode::Async) => {
                Self::Async(AsyncCheckpointer::spawn(store.clone(), spec.fault_plan()))
            }
        }
    }

    fn write(&mut self, run: &FleetRun, spec: &JobSpec) -> Result<(), dh_fleet::FleetError> {
        match self {
            Self::None => Ok(()),
            Self::Sync {
                store,
                write_index,
                scratch,
                disk,
            } => {
                let outcome = store.write_injected_with(
                    &run.snapshot(),
                    spec.fault_plan().as_ref(),
                    *write_index,
                    scratch,
                )?;
                disk.absorb(outcome.disk);
                *write_index += 1;
                Ok(())
            }
            Self::Async(writer) => writer.submit(run.snapshot()),
        }
    }

    /// Drains the writer and returns the disk incidents it survived.
    fn finish(self) -> Result<DegradedReport, dh_fleet::FleetError> {
        match self {
            Self::None => Ok(DegradedReport::default()),
            Self::Sync { disk, .. } => Ok(disk),
            Self::Async(writer) => writer.finish(),
        }
    }
}

fn progress_event(job: &Job, run: &FleetRun) -> String {
    let p = run.progress();
    let shards = run.with_store_views(|views| {
        let rows: Vec<String> = views
            .iter()
            .filter(|v| !v.is_empty())
            .take(MAX_SHARD_VIEWS)
            .map(|v| {
                format!(
                    "{{\"lo\": {}, \"chips\": {}, \"alive\": {}, \"failed\": {}, \
                     \"worst_guardband\": {}, \"mean_guardband\": {}}}",
                    v.lo(),
                    v.len(),
                    v.alive(),
                    v.failed(),
                    num(v.worst_guardband()),
                    num(v.mean_guardband()),
                )
            })
            .collect();
        rows.join(", ")
    });
    let obs = if dh_obs::ENABLED {
        format!(", \"obs\": {}", dh_obs::snapshot().to_json())
    } else {
        String::new()
    };
    format!(
        "{{\"job\": {}, \"shards_done\": {}, \"shard_count\": {}, \"devices_done\": {}, \
         \"failed\": {}, \"guardband\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \
         \"p90\": {}, \"p99\": {}}}, \"shards\": [{}]{}}}",
        job.id,
        p.shards_done,
        p.shard_count,
        p.devices_done,
        p.failed,
        p.guardband.count,
        num(p.guardband.mean),
        num(p.guardband.p50),
        num(p.guardband.p90),
        num(p.guardband.p99),
        shards,
        obs,
    )
}

fn fail_job(job: &Job, why: String) {
    let mut inner = lock(&job.inner);
    if inner.status.is_terminal() {
        return;
    }
    inner.status = JobStatus::Failed;
    inner.error = Some(why.clone());
    inner.events.push((
        "failed".to_string(),
        format!("{{\"job\": {}, \"error\": \"{}\"}}", job.id, escape(&why)),
    ));
    job.cond.notify_all();
}

/// Executes one job start to finish on the calling worker thread. Every
/// outcome — completion, failure, cancellation — lands as a terminal
/// event; nothing here panics the worker (the shard loop underneath is
/// the supervised one).
fn run_job(job: &Arc<Job>, settings: &RunnerSettings) {
    job.set_running();
    if let Some(pack) = job.spec.scenario.clone() {
        run_scenario_job(job, settings, pack);
        return;
    }
    let spec = &job.spec;
    let config = spec
        .config
        .clone()
        .expect("non-scenario jobs carry a config");
    let plan = spec.fault_plan();
    let retry = RetryPolicy {
        max_attempts: spec.retry,
        ..RetryPolicy::default()
    };
    let store = spec
        .checkpoint
        .as_ref()
        .map(|name| CheckpointStore::new(settings.data_dir.join(name), spec.keep));

    let opened = match &store {
        Some(store) => FleetRun::resume_from_store(config, store),
        None => FleetRun::new(config),
    };
    let mut run = match opened {
        Ok(run) => run,
        Err(e) => {
            fail_job(job, e.to_string());
            return;
        }
    };
    {
        let mut inner = lock(&job.inner);
        inner.shards_done = run.cursor();
    }
    job.push_event(
        "started",
        format!(
            "{{\"job\": {}, \"resumed_from\": {}, \"shard_count\": {}, \"checkpoint_fallbacks\": {}}}",
            job.id,
            run.cursor(),
            run.config().shard_count(),
            run.degraded().checkpoint_fallbacks.len(),
        ),
    );

    // Checkpointing jobs batch by their write stride (mirroring the CLI
    // engine); others by the server's progress granularity.
    let step = match &store {
        Some(_) => spec.checkpoint_every,
        None => settings.step_shards,
    }
    .max(1);
    let mut writer = Writer::open(spec, store.as_ref());

    let mut done = run.is_done();
    while !done {
        if job.cancel_requested() {
            match writer.finish() {
                Ok(disk) => record_disk(job, &disk),
                Err(e) => {
                    fail_job(job, e.to_string());
                    return;
                }
            }
            job.finish(
                JobStatus::Cancelled,
                "cancelled",
                format!("{{\"job\": {}, \"shards_done\": {}}}", job.id, run.cursor()),
            );
            return;
        }
        done = run.step_supervised(step, plan.as_ref(), &retry);
        if let Err(e) = writer.write(&run, spec) {
            fail_job(job, e.to_string());
            return;
        }
        {
            let mut inner = lock(&job.inner);
            inner.shards_done = run.cursor();
        }
        job.push_event("progress", progress_event(job, &run));
        if !done && !settings.pace.is_zero() {
            std::thread::sleep(settings.pace);
        }
    }
    let disk = match writer.finish() {
        Ok(disk) => disk,
        Err(e) => {
            fail_job(job, e.to_string());
            return;
        }
    };
    record_disk(job, &disk);

    let report = match run.report() {
        Ok(report) => report,
        Err(e) => {
            fail_job(job, e.to_string());
            return;
        }
    };
    let fingerprint = report.fingerprint();
    let mut degraded = run.degraded().clone();
    degraded.absorb(disk);
    {
        let mut inner = lock(&job.inner);
        inner.fingerprint = Some(fingerprint);
    }
    finish_run(
        job,
        &degraded,
        format!(
            "{{\"job\": {}, \"fingerprint\": \"{:#018x}\", \"devices\": {}, \"failed\": {}, \
             \"degraded\": {}, \"quarantined_shards\": {}, \"retries\": {}, \
             \"rejected_samples\": {}, \"checkpoint_fallbacks\": {}, \"disk_incidents\": {}}}",
            job.id,
            fingerprint,
            report.devices,
            report.failed,
            degraded.is_degraded(),
            degraded.quarantined.len(),
            degraded.retries,
            degraded.rejected_samples,
            degraded.checkpoint_fallbacks.len(),
            degraded.disk_incidents.len(),
        ),
    );
}

/// Records the disk incidents a writer survived on the job.
fn record_disk(job: &Job, disk: &DegradedReport) {
    if !disk.disk_incidents.is_empty() {
        lock(&job.inner).disk_incidents += disk.disk_incidents.len() as u64;
    }
}

/// The shared terminal transition for a run that finished: `completed`
/// when it was clean, `degraded` (same payload) when it survived
/// faults along the way — callers already folded writer disk incidents
/// into `degraded`.
fn finish_run(job: &Job, degraded: &DegradedReport, data: String) {
    if degraded.is_degraded() {
        job.finish(JobStatus::Degraded, "degraded", data);
    } else {
        job.finish(JobStatus::Completed, "completed", data);
    }
}

fn scenario_progress_event(job: &Job, run: &ScenarioRun) -> String {
    let p = run.progress();
    let obs = if dh_obs::ENABLED {
        format!(", \"obs\": {}", dh_obs::snapshot().to_json())
    } else {
        String::new()
    };
    format!(
        "{{\"job\": {}, \"scenario\": \"{}\", \"epoch\": {}, \"total_epochs\": {}, \
         \"shard_cursor\": {}, \"shards\": {}{}}}",
        job.id,
        escape(&run.pack().name),
        p.epoch,
        p.total_epochs,
        p.shard_cursor,
        p.shards,
        obs,
    )
}

/// The scenario twin of the fleet path below: same cancel points (batch
/// boundaries), same supervision (the spec's fault plan and retry
/// budget thread through [`ScenarioRun::step_supervised`]), and the
/// same checkpoint discipline — writes go through the disk-fault
/// injecting [`ScenarioCheckpointStore`] with an incrementing write
/// index, and a corrupt newest generation falls back on resume, so a
/// kill resumes from the last boundary and still lands on the
/// byte-identical final state the determinism tests pin.
fn run_scenario_job(job: &Arc<Job>, settings: &RunnerSettings, pack: ScenarioPack) {
    let spec = &job.spec;
    if dh_obs::ENABLED {
        dh_obs::label("scenario", &pack.name);
        dh_obs::label("scenario.blocks", &pack.blocks.len().to_string());
        dh_obs::label("scenario.elements", &pack.total_elements().to_string());
    }
    let plan = spec.fault_plan();
    let retry = RetryPolicy {
        max_attempts: spec.retry,
        ..RetryPolicy::default()
    };
    let store = spec
        .checkpoint
        .as_ref()
        .map(|name| ScenarioCheckpointStore::new(settings.data_dir.join(name), spec.keep));
    let opened = match &store {
        Some(store) => store
            .read_newest_valid(pack.clone())
            .map(|(found, fallbacks)| {
                let mut run = found.unwrap_or_else(|| ScenarioRun::new(pack.clone()));
                run.degraded.checkpoint_fallbacks.extend(fallbacks);
                run
            }),
        None => Ok(ScenarioRun::new(pack.clone())),
    };
    let mut run = match opened {
        Ok(run) => run,
        Err(e) => {
            fail_job(job, e.to_string());
            return;
        }
    };
    let per_epoch = run.progress().shards as u64;
    let sync_progress = |run: &ScenarioRun| {
        let p = run.progress();
        let done = p.epoch * per_epoch + p.shard_cursor as u64;
        lock(&job.inner).shards_done = done;
        done
    };
    sync_progress(&run);
    job.push_event(
        "started",
        format!(
            "{{\"job\": {}, \"scenario\": \"{}\", \"pack_fingerprint\": \"{:#018x}\", \
             \"resumed_epoch\": {}, \"total_epochs\": {}, \"shards\": {}, \
             \"checkpoint_fallbacks\": {}}}",
            job.id,
            escape(&pack.name),
            run.pack_fingerprint(),
            run.progress().epoch,
            pack.epochs,
            per_epoch,
            run.degraded.checkpoint_fallbacks.len(),
        ),
    );

    let step = match &store {
        Some(_) => spec.checkpoint_every,
        None => settings.step_shards,
    }
    .max(1) as usize;

    // Disk incidents stay out of `run.degraded` until the run is over,
    // so no checkpoint embeds this process's own disk-fault history (a
    // resume would otherwise double-count replayed writes).
    let mut disk = DegradedReport::default();
    let mut write_index = 0u64;
    while !run.progress().done {
        if job.cancel_requested() {
            record_disk(job, &disk);
            let done = sync_progress(&run);
            job.finish(
                JobStatus::Cancelled,
                "cancelled",
                format!("{{\"job\": {}, \"shards_done\": {done}}}", job.id),
            );
            return;
        }
        let p = run.step_supervised(step, plan.as_ref(), &retry);
        if let Some(store) = &store {
            match store.write_injected(&run, plan.as_ref(), write_index) {
                Ok(outcome) => {
                    disk.absorb(outcome.disk);
                    write_index += 1;
                }
                Err(e) => {
                    fail_job(job, e.to_string());
                    return;
                }
            }
        }
        sync_progress(&run);
        job.push_event("progress", scenario_progress_event(job, &run));
        if !p.done && !settings.pace.is_zero() {
            std::thread::sleep(settings.pace);
        }
    }
    record_disk(job, &disk);

    let report = run.report();
    {
        let mut inner = lock(&job.inner);
        inner.fingerprint = Some(report.fingerprint);
    }
    let mut degraded = run.degraded.clone();
    degraded.absorb(disk);
    let failed: u64 = report.groups.iter().map(|g| g.failed).sum();
    finish_run(
        job,
        &degraded,
        format!(
            "{{\"job\": {}, \"scenario\": \"{}\", \"fingerprint\": \"{:#018x}\", \
             \"elements\": {}, \"failed\": {}, \"epochs\": {}, \"degraded\": {}, \
             \"quarantined_shards\": {}, \"retries\": {}, \"rejected_samples\": {}, \
             \"checkpoint_fallbacks\": {}, \"disk_incidents\": {}}}",
            job.id,
            escape(&report.scenario),
            report.fingerprint,
            pack.total_elements(),
            failed,
            report.epochs_run,
            degraded.is_degraded(),
            degraded.quarantined.len(),
            degraded.retries,
            degraded.rejected_samples,
            degraded.checkpoint_fallbacks.len(),
            degraded.disk_incidents.len(),
        ),
    );
}
