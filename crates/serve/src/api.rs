//! Request/response vocabulary: typed errors and the job spec parser.
//!
//! A job submission is either a `FleetConfig`-shaped JSON document or a
//! `{"scenario": "<name>"}` reference into the scenario registry, plus
//! execution knobs (fault injection, retry, checkpointing). Parsing is
//! strict in both directions: unknown fields are a 400 (a typo'd knob
//! silently ignored is a mis-run, the worst failure mode a reliability
//! service can have), and structurally valid configs still pass through
//! [`FleetConfig::validate`] so a zero-device or NaN-cornered job is
//! rejected at submit time with a 422 naming the field — never accepted
//! and then failed asynchronously.

use std::time::Duration;

use dh_fault::FaultPlan;
use dh_fleet::{CheckpointMode, FleetConfig, FleetPolicy, MaintenanceBudget};
use dh_scenario::{ScenarioPack, ScenarioRegistry};
use dh_units::{CurrentDensity, Fraction, Kelvin, Seconds, Volts};

use crate::json::{escape, Json};

/// Everything the HTTP layer can refuse a request with. Each variant
/// maps to exactly one status code, and the body always carries
/// `{"error": name, "message": …}` so clients can branch without
/// parsing prose.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// 400 — the request itself is malformed (bad JSON, unknown field,
    /// wrong type).
    BadRequest(String),
    /// 422 — well-formed, but the config it describes is invalid.
    InvalidConfig(String),
    /// 429 — the job queue is full; retry after the hinted seconds.
    QueueFull {
        /// The `Retry-After` hint, seconds.
        retry_after: u64,
    },
    /// 404 — no such job (or route).
    NotFound(String),
    /// 405 — the route exists but not for this method.
    MethodNotAllowed(String),
    /// 409 — the request races the daemon's lifecycle (submit during
    /// shutdown).
    Conflict(String),
}

impl ServeError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            Self::BadRequest(_) => 400,
            Self::InvalidConfig(_) => 422,
            Self::QueueFull { .. } => 429,
            Self::NotFound(_) => 404,
            Self::MethodNotAllowed(_) => 405,
            Self::Conflict(_) => 409,
        }
    }

    /// The stable machine-readable name carried in the body.
    pub fn name(&self) -> &'static str {
        match self {
            Self::BadRequest(_) => "bad_request",
            Self::InvalidConfig(_) => "invalid_config",
            Self::QueueFull { .. } => "queue_full",
            Self::NotFound(_) => "not_found",
            Self::MethodNotAllowed(_) => "method_not_allowed",
            Self::Conflict(_) => "conflict",
        }
    }

    /// The human-readable half of the body.
    pub fn message(&self) -> String {
        match self {
            Self::BadRequest(m)
            | Self::InvalidConfig(m)
            | Self::NotFound(m)
            | Self::MethodNotAllowed(m)
            | Self::Conflict(m) => m.clone(),
            Self::QueueFull { retry_after } => {
                format!("job queue is full; retry after {retry_after} s")
            }
        }
    }

    /// The JSON error body.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"error\": \"{}\", \"message\": \"{}\"}}",
            self.name(),
            escape(&self.message())
        )
    }
}

/// A validated job submission: the fleet config (or scenario pack) plus
/// execution knobs, ready for the runner.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The validated fleet configuration (fleet jobs).
    pub config: Option<FleetConfig>,
    /// The resolved scenario pack (scenario jobs). Exactly one of
    /// `config` / `scenario` is set.
    pub scenario: Option<ScenarioPack>,
    /// The original request body, persisted to the job's meta file so a
    /// restarted daemon can rebuild the spec.
    pub raw: String,
    /// Fault-injection spec (already parse-checked at submit).
    pub inject: Option<String>,
    /// Seed for the fault stream (defaults to the config seed).
    pub inject_seed: u64,
    /// Attempts per shard before quarantine.
    pub retry: u32,
    /// Checkpoint file name (sanitized; lives under the daemon's data
    /// dir). `None` disables checkpointing.
    pub checkpoint: Option<String>,
    /// Shards folded between checkpoint writes (also the progress-event
    /// granularity while checkpointing).
    pub checkpoint_every: u64,
    /// Checkpoint generations retained.
    pub keep: usize,
    /// Sync or async checkpoint writer.
    pub checkpoint_mode: CheckpointMode,
}

impl JobSpec {
    /// Builds the job's fault plan (`None` when no injection was
    /// requested). Cannot fail: the spec string was parse-checked at
    /// submit time.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.inject
            .as_ref()
            .map(|spec| FaultPlan::parse(spec, self.inject_seed).expect("spec checked at submit"))
    }

    /// Elements the job simulates: fleet devices or scenario elements.
    pub fn devices(&self) -> u64 {
        match (&self.config, &self.scenario) {
            (Some(config), _) => config.devices,
            (None, Some(pack)) => pack.total_elements(),
            (None, None) => 0,
        }
    }

    /// The job's shard count (the progress denominator for fleet jobs;
    /// scenario jobs step `shard_count` shards per epoch).
    pub fn shard_count(&self) -> u64 {
        match (&self.config, &self.scenario) {
            (Some(config), _) => config.shard_count(),
            (None, Some(pack)) => pack.shard_count(),
            (None, None) => 0,
        }
    }
}

fn bad(why: impl Into<String>) -> ServeError {
    ServeError::BadRequest(why.into())
}

fn invalid(why: impl Into<String>) -> ServeError {
    ServeError::InvalidConfig(why.into())
}

fn need_f64(v: &Json, field: &str) -> Result<f64, ServeError> {
    v.as_f64()
        .ok_or_else(|| bad(format!("`{field}` must be a number")))
}

fn need_u64(v: &Json, field: &str) -> Result<u64, ServeError> {
    v.as_u64()
        .ok_or_else(|| bad(format!("`{field}` must be a non-negative integer")))
}

fn fraction(v: f64, field: &str) -> Result<Fraction, ServeError> {
    Fraction::new(v).map_err(|e| invalid(format!("`{field}`: {e}")))
}

/// Parses the `config` object into a [`FleetConfig`]. `shard_size: 0`
/// (or absent) means "size shards automatically for this machine".
fn parse_config(obj: &Json, workers: usize) -> Result<FleetConfig, ServeError> {
    let mut config = FleetConfig::default();
    let mut shard_size_given = false;
    let fields = obj
        .as_obj()
        .ok_or_else(|| bad("`config` must be an object"))?;
    for (key, value) in fields {
        match key.as_str() {
            "devices" => config.devices = need_u64(value, key)?,
            "seed" => config.seed = need_u64(value, key)?,
            "years" => config.years = need_f64(value, key)?,
            "epoch_hours" => config.epoch = Seconds::from_hours(need_f64(value, key)?),
            "shard_size" => {
                config.shard_size = need_u64(value, key)?;
                shard_size_given = config.shard_size != 0;
            }
            "group_size" => config.group_size = need_u64(value, key)?,
            "policies" => {
                let names = value
                    .as_arr()
                    .ok_or_else(|| bad("`policies` must be an array of policy names"))?;
                config.policies = names
                    .iter()
                    .map(|n| {
                        let name = n
                            .as_str()
                            .ok_or_else(|| bad("`policies` entries must be strings"))?;
                        FleetPolicy::parse(name)
                            .ok_or_else(|| invalid(format!("unknown policy {name:?}")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "budget" => {
                config.budget = MaintenanceBudget {
                    slots_per_group: need_u64(value, key)?,
                }
            }
            "heal_fraction" => config.heal_fraction = fraction(need_f64(value, key)?, key)?,
            "recovery_bias_v" => config.recovery_bias = Volts::new(need_f64(value, key)?),
            "em_reversal_duty" => config.em_reversal_duty = fraction(need_f64(value, key)?, key)?,
            "em_heal_efficiency" => {
                config.em_heal_efficiency = fraction(need_f64(value, key)?, key)?
            }
            "em_pinned_floor" => config.em_pinned_floor = fraction(need_f64(value, key)?, key)?,
            "vdd_v" => config.vdd = Volts::new(need_f64(value, key)?),
            "base_temperature_k" => config.base_temperature = Kelvin::new(need_f64(value, key)?),
            "j_local_ma_cm2" => {
                config.j_local = CurrentDensity::from_ma_per_cm2(need_f64(value, key)?)
            }
            "fail_guardband" => config.fail_guardband = need_f64(value, key)?,
            other => return Err(bad(format!("unknown config field `{other}`"))),
        }
    }
    if !shard_size_given {
        config.shard_size = config.auto_shard_size(workers);
    }
    config.validate().map_err(|e| invalid(e.to_string()))?;
    Ok(config)
}

/// Checkpoint names become file names under the daemon's data dir, so
/// only a conservative character set is allowed — no separators, no
/// dotfiles, nothing that could escape the directory.
fn parse_checkpoint_name(name: &str) -> Result<String, ServeError> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(name.to_string())
    } else {
        Err(bad(format!(
            "`checkpoint` name {name:?} must be 1-128 chars of [A-Za-z0-9._-] and not start with a dot"
        )))
    }
}

/// Parses a `POST /jobs` body into a validated [`JobSpec`].
///
/// The body carries either a `config` object (fleet job) or a
/// `scenario` name resolved against `scenarios` (scenario job) —
/// exactly one of the two.
///
/// # Errors
///
/// [`ServeError::BadRequest`] for malformed JSON / unknown fields /
/// type mismatches; [`ServeError::InvalidConfig`] when the described
/// run is semantically invalid (zero devices, NaN corners, bad policy
/// or fault spec values, unknown scenario, knobs a scenario job does
/// not support).
pub fn parse_job_spec(
    body: &[u8],
    workers: usize,
    scenarios: &ScenarioRegistry,
) -> Result<JobSpec, ServeError> {
    let text = std::str::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
    let doc = Json::parse(text).map_err(|e| bad(format!("bad JSON: {e}")))?;
    let fields = doc
        .as_obj()
        .ok_or_else(|| bad("body must be a JSON object"))?;

    let mut config = None;
    let mut scenario: Option<ScenarioPack> = None;
    let mut inject: Option<String> = None;
    let mut inject_seed = None;
    let mut retry = 3u32;
    let mut checkpoint = None;
    let mut checkpoint_every = 8u64;
    let mut keep = 3usize;
    let mut checkpoint_mode = None;

    for (key, value) in fields {
        match key.as_str() {
            "config" => config = Some(parse_config(value, workers)?),
            "scenario" => {
                let name = value
                    .as_str()
                    .ok_or_else(|| bad("`scenario` must be a registered scenario name"))?;
                let pack = scenarios
                    .get(name)
                    .ok_or_else(|| {
                        invalid(format!(
                            "unknown scenario {name:?}; try GET /scenarios for the registry"
                        ))
                    })?
                    .pack
                    .clone();
                scenario = Some(pack);
            }
            "inject" => {
                let spec = value
                    .as_str()
                    .ok_or_else(|| bad("`inject` must be a fault-spec string"))?;
                inject = Some(spec.to_string());
            }
            "inject_seed" => inject_seed = Some(need_u64(value, key)?),
            "retry" => {
                retry = u32::try_from(need_u64(value, key)?)
                    .map_err(|_| bad("`retry` is out of range"))?;
                if retry == 0 {
                    return Err(invalid("`retry` must be at least 1"));
                }
            }
            "checkpoint" => {
                let name = value
                    .as_str()
                    .ok_or_else(|| bad("`checkpoint` must be a file-name string"))?;
                checkpoint = Some(parse_checkpoint_name(name)?);
            }
            "checkpoint_every" => {
                checkpoint_every = need_u64(value, key)?.max(1);
            }
            "keep" => {
                keep = need_u64(value, key)?.max(1) as usize;
            }
            "checkpoint_mode" => {
                let name = value
                    .as_str()
                    .ok_or_else(|| bad("`checkpoint_mode` must be \"sync\" or \"async\""))?;
                checkpoint_mode = Some(
                    CheckpointMode::parse(name)
                        .ok_or_else(|| bad(format!("unknown checkpoint_mode {name:?}")))?,
                );
            }
            other => return Err(bad(format!("unknown field `{other}`"))),
        }
    }

    if config.is_some() && scenario.is_some() {
        return Err(bad("`config` and `scenario` are mutually exclusive"));
    }
    if scenario.is_some() {
        // Scenario jobs run supervised (inject/inject_seed/retry are
        // honored), but the async fleet checkpoint writer has no
        // scenario twin — silently ignoring its knob would mis-run the
        // request.
        if checkpoint_mode.is_some() {
            return Err(invalid(
                "`checkpoint_mode` is not supported for scenario jobs",
            ));
        }
    }
    let seed = match (&config, &scenario) {
        (Some(config), _) => config.seed,
        (None, Some(pack)) => pack.seed,
        (None, None) => return Err(bad("missing required field `config` (or `scenario`)")),
    };
    let inject_seed = inject_seed.unwrap_or(seed);
    if let Some(spec) = &inject {
        FaultPlan::parse(spec, inject_seed)
            .map_err(|e| invalid(format!("`inject` {spec:?}: {e}")))?;
    }
    Ok(JobSpec {
        config,
        scenario,
        raw: text.to_string(),
        inject,
        inject_seed,
        retry,
        checkpoint,
        checkpoint_every,
        keep,
        checkpoint_mode: checkpoint_mode.unwrap_or_default(),
    })
}

/// How long a 429'd client should wait before retrying: one pace of the
/// queue, floored at a second.
pub fn retry_after_hint(pace: Duration) -> u64 {
    pace.as_secs().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> Result<JobSpec, ServeError> {
        parse_job_spec(body.as_bytes(), 4, &ScenarioRegistry::builtin())
    }

    #[test]
    fn a_minimal_submission_fills_defaults() {
        let spec = parse(r#"{"config": {"devices": 256, "years": 0.2}}"#).unwrap();
        let config = spec.config.as_ref().unwrap();
        assert_eq!(config.devices, 256);
        assert_eq!(config.years, 0.2);
        // Auto shard sizing kicked in and respects group alignment.
        assert!(config.shard_size > 0);
        assert_eq!(config.shard_size % config.group_size, 0);
        assert_eq!(spec.retry, 3);
        assert!(spec.inject.is_none() && spec.checkpoint.is_none());
        assert!(spec.scenario.is_none());
        assert_eq!(spec.devices(), 256);
    }

    #[test]
    fn the_full_knob_surface_round_trips() {
        let spec = parse(
            r#"{
              "config": {
                "devices": 512, "seed": 11, "years": 0.5, "epoch_hours": 84,
                "shard_size": 128, "group_size": 32,
                "policies": ["round-robin", "static"], "budget": 4,
                "heal_fraction": 0.2, "recovery_bias_v": -0.25,
                "em_reversal_duty": 0.3, "em_heal_efficiency": 0.8,
                "em_pinned_floor": 0.1, "vdd_v": 0.85,
                "base_temperature_k": 350.0, "j_local_ma_cm2": 5.0,
                "fail_guardband": 0.12
              },
              "inject": "panic=0.5", "inject_seed": 99, "retry": 5,
              "checkpoint": "job-a.dhfl", "checkpoint_every": 2, "keep": 4,
              "checkpoint_mode": "sync"
            }"#,
        )
        .unwrap();
        let config = spec.config.as_ref().unwrap();
        assert_eq!(config.policies.len(), 2);
        assert_eq!(config.shard_size, 128);
        assert_eq!(spec.inject.as_deref(), Some("panic=0.5"));
        assert_eq!(spec.inject_seed, 99);
        assert!(spec.fault_plan().is_some());
        assert_eq!(spec.checkpoint.as_deref(), Some("job-a.dhfl"));
        assert_eq!((spec.checkpoint_every, spec.keep), (2, 4));
        assert_eq!(spec.checkpoint_mode, CheckpointMode::Sync);
    }

    #[test]
    fn malformed_requests_are_400s() {
        for body in [
            "not json",
            "[]",
            r#"{"config": {"devices": 64}, "tpyo": 1}"#,
            r#"{"config": {"devicez": 64}}"#,
            r#"{"config": {"devices": -3}}"#,
            r#"{"config": {"devices": 64}, "checkpoint": "../escape"}"#,
            r#"{"config": {"devices": 64}, "checkpoint": ".hidden"}"#,
            r#"{}"#,
        ] {
            let err = parse(body).unwrap_err();
            assert_eq!(err.status(), 400, "body {body:?} gave {err:?}");
        }
    }

    #[test]
    fn invalid_configs_are_422s() {
        for body in [
            r#"{"config": {"devices": 0}}"#,
            r#"{"config": {"devices": 64, "years": 0}}"#,
            r#"{"config": {"devices": 64, "heal_fraction": 1.5}}"#,
            r#"{"config": {"devices": 64, "fail_guardband": 0}}"#,
            r#"{"config": {"devices": 64, "shard_size": 100, "group_size": 64}}"#,
            r#"{"config": {"devices": 64, "policies": ["best-effort"]}}"#,
            r#"{"config": {"devices": 64}, "inject": "gremlins=1"}"#,
            r#"{"config": {"devices": 64}, "retry": 0}"#,
        ] {
            let err = parse(body).unwrap_err();
            assert_eq!(err.status(), 422, "body {body:?} gave {err:?}");
        }
    }

    #[test]
    fn scenario_jobs_resolve_against_the_registry() {
        let spec = parse(r#"{"scenario": "sram-decoder", "checkpoint": "s.dhsp"}"#).unwrap();
        assert!(spec.config.is_none());
        let pack = spec.scenario.as_ref().unwrap();
        assert_eq!(pack.name, "sram-decoder");
        assert_eq!(spec.devices(), pack.total_elements());
        assert_eq!(spec.shard_count(), pack.shard_count());
        assert_eq!(spec.checkpoint.as_deref(), Some("s.dhsp"));
        // The seed defaulting falls through to the pack seed.
        assert_eq!(spec.inject_seed, pack.seed);
    }

    #[test]
    fn scenario_jobs_reject_fleet_only_knobs() {
        for body in [
            r#"{"scenario": "no-such-pack"}"#,
            r#"{"scenario": "sram-decoder", "checkpoint_mode": "sync"}"#,
            r#"{"scenario": "sram-decoder", "inject": "gremlins=1"}"#,
        ] {
            let err = parse(body).unwrap_err();
            assert_eq!(err.status(), 422, "body {body:?} gave {err:?}");
        }
        let err = parse(r#"{"scenario": "sram-decoder", "config": {"devices": 4}}"#).unwrap_err();
        assert_eq!(err.status(), 400);
        let err = parse(r#"{"scenario": 3}"#).unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn scenario_jobs_accept_fault_injection_knobs() {
        let spec = parse(
            r#"{"scenario": "sram-decoder", "inject": "panic=0.2,disk-full=0.3",
                "inject_seed": 7, "retry": 5, "checkpoint": "s.dhsp", "keep": 4}"#,
        )
        .unwrap();
        assert_eq!(spec.inject.as_deref(), Some("panic=0.2,disk-full=0.3"));
        assert_eq!(spec.inject_seed, 7);
        assert!(spec.fault_plan().is_some());
        assert_eq!((spec.retry, spec.keep), (5, 4));
    }

    #[test]
    fn error_bodies_are_machine_readable() {
        let err = parse(r#"{"config": {"devices": 0}}"#).unwrap_err();
        let body = Json::parse(&err.to_json()).unwrap();
        assert_eq!(body.get("error").unwrap().as_str(), Some("invalid_config"));
        assert!(body
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("devices"));
    }
}
