//! Vectorizable transcendental kernels and runtime SIMD dispatch.
//!
//! The wear-model hot loops (CET capture/emission, EM stencil) spend most
//! of their time in `exp(−x)`-shaped math. libm's `exp`/`exp_m1` are
//! accurate but scalar: one call per trap-step, unvectorizable. This crate
//! provides
//!
//! * [`exp_neg`] / [`one_minus_exp_neg`] — branch-free polynomial
//!   evaluations of `exp(−x)` and `1 − exp(−x)` built from plain
//!   mul/add/bit ops only (no FMA, no table lookups, no libm), so LLVM can
//!   auto-vectorize a loop of them, **and** so the scalar and AVX2
//!   compilations of the same source produce bit-identical results
//!   (neither rustc nor LLVM contracts or reassociates IEEE float ops
//!   without explicit fast-math, which this crate never enables);
//! * [`dispatch!`] — a macro that compiles a kernel body twice, once
//!   plainly and once under `#[target_feature(enable = "avx2")]`, and
//!   picks the AVX2 copy at runtime when the CPU supports it;
//! * [`use_simd`] / [`force_scalar`] — the runtime switch behind the
//!   dispatch: cargo feature `simd` compiles the AVX2 copies in,
//!   `is_x86_feature_detected!("avx2")` gates them at startup, the
//!   `DH_SIMD=scalar` environment variable disables them per process, and
//!   `force_scalar` toggles them per call site (benches compare backends
//!   inside one process with it).
//!
//! # Exact saturation contract
//!
//! The callers' saturated fast paths stay bit-identical to the full
//! evaluation because saturation is part of the function definition, not
//! an approximation:
//!
//! * `one_minus_exp_neg(x) == 1.0` exactly for every `x ≥ 37.0`
//!   ([`ONE_MINUS_EXP_NEG_SATURATE`]; `exp(−37) < 2⁻⁵³/2`, so 1.0 is also
//!   the correctly rounded value), and
//! * `exp_neg(x) == 0.0` exactly for every `x ≥ 700.0`
//!   ([`EXP_NEG_UNDERFLOW`], just inside the subnormal boundary).
//!
//! A caller may therefore skip the polynomial for a whole lane group once
//! the smallest exponent in the group saturates and substitute the
//! constant — the substitution is *exactly* what the full path returns, so
//! scalar-with-per-element-fast-path, scalar-with-group-fast-path, and
//! AVX2 all agree to the last bit.
//!
//! # Accuracy
//!
//! Cody–Waite range reduction (`x = k·ln2 − r`, `|r| ≤ ln2/2`) followed by
//! a degree-13 Taylor polynomial for `expm1(r)` and exact power-of-two
//! scaling through the exponent bits. Worst observed error against libm is
//! a few ulp (≈1e-15 relative) across the full `[0, 700]` domain — two
//! orders of magnitude inside the 1e-12 aggregate tolerance the wear
//! kernels are verified to.
//!
//! Domain: both functions expect `x ≥ 0` (rates × durations); `+∞` is
//! handled (saturates/underflows), negative inputs and NaN are clamped
//! into the saturated branch deterministically rather than supported.

use std::sync::atomic::{AtomicBool, Ordering};

/// Lanes per SIMD group: 4 × f64 = one AVX2 register. Callers that want
/// backend-independent results must make any group-granular decision
/// (e.g. the saturated fast path) at this width in their scalar fallback
/// too.
pub const LANES: usize = 4;

/// `one_minus_exp_neg(x)` returns exactly `1.0` for `x ≥` this.
pub const ONE_MINUS_EXP_NEG_SATURATE: f64 = 37.0;

/// `exp_neg(x)` returns exactly `0.0` for `x ≥` this.
pub const EXP_NEG_UNDERFLOW: f64 = 700.0;

/// log₂(e), the range-reduction multiplier.
const LOG2E: f64 = std::f64::consts::LOG2_E;
/// High part of ln 2 with 21 trailing zero bits, so `k · LN2_HI` is exact
/// for every |k| < 2²⁰ that range reduction can produce. The literals are
/// the canonical Cody–Waite split digits; the extra decimals round to the
/// intended bit patterns.
#[allow(clippy::excessive_precision)]
const LN2_HI: f64 = 6.931_471_803_691_238_164_90e-1;
/// Low part: `ln 2 − LN2_HI`.
#[allow(clippy::excessive_precision)]
const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;
/// 1.5·2⁵², the round-to-nearest-integer magic constant: adding it pushes
/// the fraction bits off the mantissa (ties-to-even, the IEEE default
/// rounding this crate assumes), subtracting it recovers the integer.
const SHIFT: f64 = 6_755_399_441_055_744.0;

/// `expm1(r)` for `|r| ≤ ln2/2` as `r + r²·q(r)`: a degree-11 Taylor
/// polynomial `q(r) = Σ rᵏ⁻²/k!` in Horner form. Plain mul/add only.
#[inline(always)]
fn expm1_poly(r: f64) -> f64 {
    const C2: f64 = 1.0 / 2.0;
    const C3: f64 = 1.0 / 6.0;
    const C4: f64 = 1.0 / 24.0;
    const C5: f64 = 1.0 / 120.0;
    const C6: f64 = 1.0 / 720.0;
    const C7: f64 = 1.0 / 5_040.0;
    const C8: f64 = 1.0 / 40_320.0;
    const C9: f64 = 1.0 / 362_880.0;
    const C10: f64 = 1.0 / 3_628_800.0;
    const C11: f64 = 1.0 / 39_916_800.0;
    const C12: f64 = 1.0 / 479_001_600.0;
    const C13: f64 = 1.0 / 6_227_020_800.0;
    let q = C2
        + r * (C3
            + r * (C4
                + r * (C5
                    + r * (C6
                        + r * (C7
                            + r * (C8
                                + r * (C9 + r * (C10 + r * (C11 + r * (C12 + r * C13))))))))));
    r + (r * r) * q
}

/// Range reduction shared by both kernels: for `z ∈ [−1011, 0]` returns
/// `(scale, p)` with `exp(z) = scale · (1 + p)`, `scale = 2ᵏ` exact and
/// `p = expm1(r)`. The power of two is assembled from the magic-shifted
/// sum's low mantissa bits — integer add/mask/shift, no float→int cast,
/// so the sequence vectorizes and is identical under every backend.
#[inline(always)]
fn reduce(z: f64) -> (f64, f64) {
    let t = z * LOG2E + SHIFT;
    let k = t - SHIFT;
    let r = (z - k * LN2_HI) - k * LN2_LO;
    // t ∈ [2⁵², 2⁵³), so its low mantissa bits are 2⁵¹ + k; adding 1023
    // and masking 11 bits yields the biased exponent of 2ᵏ (k ≥ −1011
    // keeps it normal).
    let e = t.to_bits().wrapping_add(1023) & 0x7FF;
    (f64::from_bits(e << 52), expm1_poly(r))
}

/// `exp(−x)` for `x ≥ 0`, exactly `0.0` once `x ≥` [`EXP_NEG_UNDERFLOW`].
#[inline(always)]
pub fn exp_neg(x: f64) -> f64 {
    let (scale, p) = reduce(-x.min(EXP_NEG_UNDERFLOW));
    let v = scale + scale * p;
    if x >= EXP_NEG_UNDERFLOW {
        0.0
    } else {
        v
    }
}

/// `1 − exp(−x)` for `x ≥ 0` without cancellation (computed as
/// `−expm1(−x)`), exactly `1.0` once `x ≥` [`ONE_MINUS_EXP_NEG_SATURATE`].
#[inline(always)]
pub fn one_minus_exp_neg(x: f64) -> f64 {
    let (scale, p) = reduce(-x.min(ONE_MINUS_EXP_NEG_SATURATE));
    // expm1(z) = 2ᵏ(1+p) − 1; for k = 0 this collapses to p exactly, so
    // no separate small-|z| branch is needed.
    let v = -(scale * p + (scale - 1.0));
    if x >= ONE_MINUS_EXP_NEG_SATURATE {
        1.0
    } else {
        v
    }
}

/// Forces the scalar bodies for subsequent [`use_simd`] calls in this
/// process. Benches and the SIMD-equivalence tests flip this to compare
/// both backends inside one run; production code never calls it.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::SeqCst);
}

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Whether [`dispatch!`]-generated call sites should take their AVX2 copy:
/// the `simd` cargo feature is compiled in, the host CPU reports AVX2,
/// `DH_SIMD` is not set to `scalar`/`off`/`0`, and [`force_scalar`] is not
/// active.
pub fn use_simd() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        !FORCE_SCALAR.load(Ordering::Relaxed) && detected()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// The backend [`use_simd`] currently resolves to, for logs and bench
/// metadata.
pub fn backend_name() -> &'static str {
    if use_simd() {
        "avx2"
    } else {
        "scalar"
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn detected() -> bool {
    use std::sync::OnceLock;
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        let env_off = std::env::var("DH_SIMD")
            .map(|v| matches!(v.as_str(), "scalar" | "off" | "0"))
            .unwrap_or(false);
        !env_off && std::arch::is_x86_feature_detected!("avx2")
    })
}

/// Compiles a kernel body twice — a plain copy and an
/// `#[target_feature(enable = "avx2")]` copy — and dispatches between them
/// through [`use_simd`] at each call. The body must be written so both
/// copies execute the same per-element IEEE operation sequence (no
/// data-dependent algorithm switches narrower than [`LANES`]); then the
/// two copies are bit-identical and the dispatch is invisible to callers.
///
/// ```
/// dh_simd::dispatch! {
///     /// Sums `exp(−x)` over a column.
///     pub fn exp_neg_sum(xs: &[f64]) -> f64 {
///         let mut acc = 0.0;
///         for &x in xs {
///             acc += dh_simd::exp_neg(x);
///         }
///         acc
///     }
/// }
/// assert!(exp_neg_sum(&[0.0, 0.0]) == 2.0);
/// ```
#[macro_export]
macro_rules! dispatch {
    ($(#[$meta:meta])* $vis:vis fn $name:ident( $($arg:ident : $ty:ty),* $(,)? ) $(-> $ret:ty)? $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg: $ty),*) $(-> $ret)? {
            #[inline(always)]
            fn scalar_body($($arg: $ty),*) $(-> $ret)? $body

            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx2")]
                unsafe fn avx2_body($($arg: $ty),*) $(-> $ret)? $body

                if $crate::use_simd() {
                    // SAFETY: use_simd() is true only after
                    // is_x86_feature_detected!("avx2") succeeded on this
                    // CPU.
                    return unsafe { avx2_body($($arg),*) };
                }
            }
            scalar_body($($arg),*)
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rel(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(f64::MIN_POSITIVE)
    }

    #[test]
    fn matches_libm_over_the_domain() {
        // Dense log-spaced sweep of the whole usable domain.
        let mut worst = 0.0f64;
        for i in 0..200_000 {
            let x = 1e-12 * 1.000_171f64.powi(i); // up to ~10²⁰ … clamped paths
            let x = x.min(800.0);
            let e = rel(exp_neg(x), (-x).exp());
            let o = rel(one_minus_exp_neg(x), -(-x).exp_m1());
            if x < EXP_NEG_UNDERFLOW * 0.999 {
                worst = worst.max(e);
            }
            if x < ONE_MINUS_EXP_NEG_SATURATE * 0.999 {
                worst = worst.max(o);
            }
        }
        assert!(worst < 1e-13, "worst relative error {worst:e}");
    }

    #[test]
    fn saturation_is_exact() {
        for x in [37.0, 37.0001, 50.0, 700.0, 1e6, f64::INFINITY] {
            assert_eq!(one_minus_exp_neg(x).to_bits(), 1.0f64.to_bits());
        }
        for x in [700.0, 700.0001, 1e9, f64::INFINITY] {
            assert_eq!(exp_neg(x).to_bits(), 0.0f64.to_bits());
        }
        // Just below the thresholds the polynomial path is live.
        assert!(one_minus_exp_neg(36.999_999_999) < 1.0 + 1e-15);
        assert!(one_minus_exp_neg(36.999_999_999) > 0.999_999_999);
        assert!(exp_neg(699.999) > 0.0);
    }

    #[test]
    fn endpoints_are_sane() {
        assert_eq!(exp_neg(0.0), 1.0);
        assert_eq!(one_minus_exp_neg(0.0).abs(), 0.0);
        // Tiny arguments keep full relative precision (the expm1 form).
        let x = 1e-300;
        assert_eq!(one_minus_exp_neg(x), x);
    }

    proptest! {
        #[test]
        fn agrees_with_libm_on_random_inputs(x in 0.0f64..700.0) {
            prop_assert!(rel(exp_neg(x), (-x).exp()) < 1e-13);
            if x < ONE_MINUS_EXP_NEG_SATURATE {
                prop_assert!(rel(one_minus_exp_neg(x), -(-x).exp_m1()) < 1e-13);
            }
        }

        #[test]
        fn boundary_neighborhood_is_continuous(d in -1e-6f64..1e-6) {
            // Values straddling the saturation threshold stay within one
            // ulp of 1.0 — the fast path is a rounding identity, not a
            // step. (The polynomial side may legitimately round to
            // 1 − 2⁻⁵³, one ulp below.)
            let x = ONE_MINUS_EXP_NEG_SATURATE + d;
            let v = one_minus_exp_neg(x);
            prop_assert!((v - 1.0).abs() <= 2.0f64.powi(-52));
        }
    }

    dispatch! {
        /// Test kernel: in-place `exp_neg` over a column.
        fn exp_neg_column(xs: &mut [f64]) {
            for x in xs.iter_mut() {
                *x = exp_neg(*x);
            }
        }
    }

    #[test]
    fn dispatch_backends_are_bit_identical() {
        let inputs: Vec<f64> = (0..1_000).map(|i| i as f64 * 0.7).collect();
        let mut auto = inputs.clone();
        exp_neg_column(&mut auto);
        force_scalar(true);
        assert_eq!(backend_name(), "scalar");
        let mut scalar = inputs;
        exp_neg_column(&mut scalar);
        force_scalar(false);
        for (a, s) in auto.iter().zip(&scalar) {
            assert_eq!(a.to_bits(), s.to_bits());
        }
    }
}
