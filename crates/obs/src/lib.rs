//! Lightweight observability for the deep-healing workspace.
//!
//! The repo's engine crates (`dh-exec`, `dh-bti`, `dh-em`, `dh-thermal`,
//! `dh-sched`) are instrumented with **counters**, **histograms**, and
//! **scoped span timers** registered in a process-wide registry. The whole
//! layer is compiled to no-ops unless this crate's `enabled` feature is on
//! (each workspace crate forwards it as its own `obs` feature), so the
//! default build pays nothing — not even an atomic increment — on the hot
//! paths the PR 1/PR 2 benches measure.
//!
//! # Metric naming convention
//!
//! Names are dotted lowercase paths, `crate.subsystem.metric`:
//!
//! * the first segment is the owning crate without the `dh-` prefix
//!   (`exec`, `bti`, `em`, `thermal`, `sched`);
//! * the leaf is snake_case and counts *events* for counters
//!   (`exec.memo.hits`) or carries a unit suffix for histograms
//!   (`bti.cet.step_seconds`, `thermal.settle.gs_iterations`);
//! * per-policy scheduler metrics interpose the policy name:
//!   `sched.periodic-deep.transitions_bti_ar`.
//!
//! # Example
//!
//! ```
//! // Counters and histograms are cheap handles into the global registry.
//! let hits = dh_obs::counter("doc.example.hits");
//! hits.incr();
//! dh_obs::histogram("doc.example.batch_size").record(42.0);
//! {
//!     let _timer = dh_obs::span("doc.example.work_seconds");
//!     // ... timed region ...
//! }
//! let snap = dh_obs::snapshot();
//! if dh_obs::ENABLED {
//!     assert_eq!(snap.counter("doc.example.hits"), 1);
//! }
//! ```
//!
//! Handles may be hoisted out of loops (they are `Copy` when enabled and
//! zero-sized when disabled); [`counter!`] and [`histogram!`] cache the
//! registry lookup in a local `static` so repeated calls are one atomic
//! load.

#![warn(missing_docs)]

use std::collections::BTreeMap;

/// Whether the observability layer is compiled in. `false` means every
/// counter/histogram/span call is an inlineable no-op and [`snapshot`]
/// is always empty. The constant lets call sites skip building dynamic
/// metric names (`if dh_obs::ENABLED { ... }`) without a `cfg` attribute.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Number of histogram buckets. Buckets are log₂-spaced: bucket `i` counts
/// values in `[2^(i - BUCKET_ZERO), 2^(i + 1 - BUCKET_ZERO))`, with the
/// first and last buckets absorbing underflow and overflow.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The power of two at which bucket 0 ends: bucket 0 holds everything
/// below `2^-40` (≈ 9·10⁻¹³ — sub-picosecond timings, effectively zero),
/// bucket 63 everything from `2^23` (≈ 8.4·10⁶ — a hundred simulated
/// days in seconds) up.
const BUCKET_ZERO: i64 = 40;

/// The exclusive upper bound of histogram bucket `i` (shared by the
/// enabled and disabled builds so snapshots deserialize uniformly).
#[must_use]
pub fn bucket_upper_bound(i: usize) -> f64 {
    exp2_i64(i as i64 + 1 - BUCKET_ZERO)
}

/// `2^e` for integer `e` without `powf` (exact for the exponent range the
/// bucket table uses).
fn exp2_i64(e: i64) -> f64 {
    f64::from_bits((((e + 1023).clamp(1, 2046)) as u64) << 52)
}

/// The bucket index for a recorded value: floor(log₂ v) shifted by
/// [`BUCKET_ZERO`], clamped into the table. Non-positive and non-finite
/// values land in bucket 0 (they carry no magnitude information).
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > 0.0)` deliberately catches NaN
fn bucket_index(v: f64) -> usize {
    if !(v > 0.0) || !v.is_finite() {
        return 0;
    }
    // Exponent bits give floor(log2) for normal numbers; subnormals all
    // land in bucket 0 anyway.
    let exponent = ((v.to_bits() >> 52) & 0x7ff) as i64 - 1023;
    (exponent + BUCKET_ZERO).clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
}

/// One histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest recorded value (`f64::NEG_INFINITY` when empty).
    pub max: f64,
    /// Non-empty buckets as `(exclusive_upper_bound, count)`, ascending.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-resolution `q`-quantile estimate: the upper bound of the
    /// bucket holding the rank-`⌈q·count⌉` value (0 when empty). Accurate
    /// to one log₂ bucket — enough to tell microseconds from milliseconds.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return upper;
            }
        }
        self.max
    }
}

/// A point-in-time copy of every registered metric.
///
/// `BTreeMap`-backed so iteration (and the JSON rendering) is sorted and
/// stable across runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Free-form identity labels by name (who/what this process is
    /// currently measuring — e.g. the running scenario pack), set via
    /// [`label`]. Last write per name wins.
    pub labels: BTreeMap<String, String>,
}

impl Snapshot {
    /// The value of counter `name`, 0 if never registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, if it recorded anything.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Sum of every counter whose name starts with `prefix` — convenient
    /// for per-policy rollups (`sched.` totals).
    #[must_use]
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// The label `name`, if set.
    #[must_use]
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels.get(name).map(String::as_str)
    }

    /// Renders the snapshot as a deterministic JSON object:
    /// `{"counters": {...}, "histograms": {name: {count, sum, min, max,
    /// mean, p50, p99, buckets: [[upper, count], ...]}, ...},
    /// "labels": {...}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {value}"));
        }
        out.push_str("}, \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": [",
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max),
                json_f64(h.mean()),
                json_f64(h.quantile(0.5)),
                json_f64(h.quantile(0.99)),
            ));
            for (j, &(upper, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{}, {n}]", json_f64(upper)));
            }
            out.push_str("]}");
        }
        out.push_str("}, \"labels\": {");
        for (i, (name, value)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": \"{}\"", json_escape(value)));
        }
        out.push_str("}}");
        out
    }
}

/// Minimal JSON string escaping for label values (metric names follow
/// the dotted-lowercase convention and never need it).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A finite-f64-or-null JSON scalar (JSON has no Infinity/NaN).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(feature = "enabled")]
mod live {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    use super::{bucket_index, bucket_upper_bound, HistogramSnapshot, Snapshot, HISTOGRAM_BUCKETS};

    pub struct CounterInner {
        value: AtomicU64,
    }

    pub struct HistogramInner {
        buckets: [AtomicU64; HISTOGRAM_BUCKETS],
        count: AtomicU64,
        /// f64 bit patterns updated by compare-exchange loops.
        sum_bits: AtomicU64,
        min_bits: AtomicU64,
        max_bits: AtomicU64,
    }

    impl HistogramInner {
        fn new() -> Self {
            Self {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
                max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            }
        }

        fn reset(&self) {
            for b in &self.buckets {
                b.store(0, Ordering::Relaxed);
            }
            self.count.store(0, Ordering::Relaxed);
            self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
            self.min_bits
                .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
            self.max_bits
                .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
        }
    }

    /// Lock-free f64 update via a compare-exchange loop on the bit pattern.
    fn update_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
        let mut current = cell.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(current)).to_bits();
            match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    #[derive(Default)]
    struct Registry {
        counters: BTreeMap<String, &'static CounterInner>,
        histograms: BTreeMap<String, &'static HistogramInner>,
        labels: BTreeMap<String, String>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
    }

    fn lock() -> std::sync::MutexGuard<'static, Registry> {
        registry()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Handle to a registered counter.
    #[derive(Clone, Copy)]
    pub struct Counter {
        inner: &'static CounterInner,
    }

    impl Counter {
        /// Adds 1.
        #[inline]
        pub fn incr(&self) {
            self.add(1);
        }

        /// Adds `n`.
        #[inline]
        pub fn add(&self, n: u64) {
            self.inner.value.fetch_add(n, Ordering::Relaxed);
        }

        /// The current value.
        #[must_use]
        pub fn get(&self) -> u64 {
            self.inner.value.load(Ordering::Relaxed)
        }
    }

    /// Handle to a registered histogram.
    #[derive(Clone, Copy)]
    pub struct Histogram {
        inner: &'static HistogramInner,
    }

    impl Histogram {
        /// Records one value.
        pub fn record(&self, v: f64) {
            let h = self.inner;
            h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            if v.is_finite() {
                update_f64(&h.sum_bits, |s| s + v);
                update_f64(&h.min_bits, |m| m.min(v));
                update_f64(&h.max_bits, |m| m.max(v));
            }
        }

        /// Number of recorded values so far.
        #[must_use]
        pub fn count(&self) -> u64 {
            self.inner.count.load(Ordering::Relaxed)
        }
    }

    /// Resolves (registering on first use) the counter `name`.
    pub fn counter(name: &str) -> Counter {
        let mut reg = lock();
        if let Some(&inner) = reg.counters.get(name) {
            return Counter { inner };
        }
        let inner: &'static CounterInner = Box::leak(Box::new(CounterInner {
            value: AtomicU64::new(0),
        }));
        reg.counters.insert(name.to_string(), inner);
        Counter { inner }
    }

    /// Resolves (registering on first use) the histogram `name`.
    pub fn histogram(name: &str) -> Histogram {
        let mut reg = lock();
        if let Some(&inner) = reg.histograms.get(name) {
            return Histogram { inner };
        }
        let inner: &'static HistogramInner = Box::leak(Box::new(HistogramInner::new()));
        reg.histograms.insert(name.to_string(), inner);
        Histogram { inner }
    }

    /// A scoped timer: records the elapsed seconds into its histogram on
    /// drop.
    pub struct Span {
        histogram: Histogram,
        start: Instant,
    }

    impl Span {
        pub(super) fn new(name: &str) -> Self {
            Self {
                histogram: histogram(name),
                start: Instant::now(),
            }
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            self.histogram.record(self.start.elapsed().as_secs_f64());
        }
    }

    pub fn span(name: &str) -> Span {
        Span::new(name)
    }

    pub fn label(name: &str, value: &str) {
        lock().labels.insert(name.to_string(), value.to_string());
    }

    pub fn snapshot() -> Snapshot {
        let reg = lock();
        let counters = reg
            .counters
            .iter()
            .map(|(name, c)| (name.clone(), c.value.load(Ordering::Relaxed)))
            .collect();
        let histograms = reg
            .histograms
            .iter()
            .filter(|(_, h)| h.count.load(Ordering::Relaxed) > 0)
            .map(|(name, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then(|| (bucket_upper_bound(i), n))
                    })
                    .collect();
                (
                    name.clone(),
                    HistogramSnapshot {
                        count: h.count.load(Ordering::Relaxed),
                        sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                        min: f64::from_bits(h.min_bits.load(Ordering::Relaxed)),
                        max: f64::from_bits(h.max_bits.load(Ordering::Relaxed)),
                        buckets,
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            histograms,
            labels: reg.labels.clone(),
        }
    }

    pub fn reset() {
        let mut reg = lock();
        for c in reg.counters.values() {
            c.value.store(0, Ordering::Relaxed);
        }
        for h in reg.histograms.values() {
            h.reset();
        }
        reg.labels.clear();
    }
}

#[cfg(not(feature = "enabled"))]
mod live {
    use super::Snapshot;

    /// Disabled counter handle: every method is an inlineable no-op.
    #[derive(Clone, Copy)]
    pub struct Counter;

    impl Counter {
        /// No-op.
        #[inline(always)]
        pub fn incr(&self) {}

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}

        /// Always 0.
        #[inline(always)]
        #[must_use]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// Disabled histogram handle.
    #[derive(Clone, Copy)]
    pub struct Histogram;

    impl Histogram {
        /// No-op.
        #[inline(always)]
        pub fn record(&self, _v: f64) {}

        /// Always 0.
        #[inline(always)]
        #[must_use]
        pub fn count(&self) -> u64 {
            0
        }
    }

    /// Disabled span guard (nothing recorded on drop).
    pub struct Span;

    #[inline(always)]
    pub fn counter(_name: &str) -> Counter {
        Counter
    }

    #[inline(always)]
    pub fn histogram(_name: &str) -> Histogram {
        Histogram
    }

    #[inline(always)]
    pub fn span(_name: &str) -> Span {
        Span
    }

    #[inline(always)]
    pub fn label(_name: &str, _value: &str) {}

    #[inline(always)]
    pub fn snapshot() -> Snapshot {
        Snapshot::default()
    }

    #[inline(always)]
    pub fn reset() {}
}

pub use live::{Counter, Histogram, Span};

/// Resolves (registering on first use) the counter `name`. Prefer
/// [`counter!`] in hot paths — it caches the registry lookup.
#[inline]
pub fn counter(name: &str) -> Counter {
    live::counter(name)
}

/// Resolves (registering on first use) the histogram `name`. Prefer
/// [`histogram!`] in hot paths.
#[inline]
pub fn histogram(name: &str) -> Histogram {
    live::histogram(name)
}

/// Starts a scoped span timer; the guard records elapsed seconds into the
/// histogram `name` when dropped. Name the metric with a `_seconds`
/// suffix.
#[inline]
pub fn span(name: &str) -> Span {
    live::span(name)
}

/// Sets (or overwrites) the identity label `name` for subsequent
/// snapshots — e.g. `label("scenario", "sram-decoder")` so SSE progress
/// frames identify the pack being integrated. No-op when disabled.
#[inline]
pub fn label(name: &str, value: &str) {
    live::label(name, value)
}

/// Copies every registered metric out of the registry. Empty when the
/// layer is disabled.
#[must_use]
pub fn snapshot() -> Snapshot {
    live::snapshot()
}

/// Zeroes every registered metric (handles stay valid). Tests use this to
/// isolate their assertions; note the registry is process-wide, so
/// parallel tests observing the same metrics must tolerate concurrent
/// increments.
pub fn reset() {
    live::reset()
}

/// A `static`-cachable counter handle for hot paths: the registry lookup
/// runs once, later calls are a single atomic pointer load. Used by
/// [`counter!`].
pub struct CounterCell {
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    name: &'static str,
    #[cfg(feature = "enabled")]
    cell: std::sync::OnceLock<Counter>,
}

impl CounterCell {
    /// Creates the (unresolved) cell; usable in `static` items.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            #[cfg(feature = "enabled")]
            cell: std::sync::OnceLock::new(),
        }
    }

    /// The cached counter handle.
    #[inline]
    pub fn get(&self) -> Counter {
        #[cfg(feature = "enabled")]
        {
            *self.cell.get_or_init(|| counter(self.name))
        }
        #[cfg(not(feature = "enabled"))]
        {
            Counter
        }
    }
}

/// A `static`-cachable histogram handle; see [`CounterCell`].
pub struct HistogramCell {
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    name: &'static str,
    #[cfg(feature = "enabled")]
    cell: std::sync::OnceLock<Histogram>,
}

impl HistogramCell {
    /// Creates the (unresolved) cell; usable in `static` items.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            #[cfg(feature = "enabled")]
            cell: std::sync::OnceLock::new(),
        }
    }

    /// The cached histogram handle.
    #[inline]
    pub fn get(&self) -> Histogram {
        #[cfg(feature = "enabled")]
        {
            *self.cell.get_or_init(|| histogram(self.name))
        }
        #[cfg(not(feature = "enabled"))]
        {
            Histogram
        }
    }
}

/// The counter `$name`, resolved once per call site and cached in a local
/// `static`.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static CELL: $crate::CounterCell = $crate::CounterCell::new($name);
        CELL.get()
    }};
}

/// The histogram `$name`, resolved once per call site and cached in a
/// local `static`.
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static CELL: $crate::HistogramCell = $crate::HistogramCell::new($name);
        CELL.get()
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotone_powers_of_two() {
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1));
            assert_eq!(bucket_upper_bound(i), 2.0 * bucket_upper_bound(i - 1));
        }
        // A value is always strictly below its bucket's upper bound.
        for v in [1e-9, 0.001, 0.5, 1.0, 3.7, 1024.0, 8.3e6] {
            let i = bucket_index(v);
            assert!(v < bucket_upper_bound(i), "{v} vs bucket {i}");
            if i > 0 {
                assert!(v >= bucket_upper_bound(i - 1), "{v} vs bucket {i}");
            }
        }
    }

    #[test]
    fn degenerate_values_land_in_the_first_bucket() {
        for v in [0.0, -1.0, f64::NAN, f64::NEG_INFINITY] {
            assert_eq!(bucket_index(v), 0);
        }
        assert_eq!(
            bucket_index(f64::INFINITY),
            0,
            "non-finite carries no magnitude"
        );
        assert_eq!(bucket_index(1e300), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn disabled_layer_is_inert() {
        if ENABLED {
            return;
        }
        let c = counter("obs.test.noop");
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 0);
        histogram("obs.test.noop_h").record(1.0);
        let _noop = span("obs.test.noop_seconds");
        label("scenario", "noop");
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.labels.is_empty());
        assert_eq!(snap.counter("anything"), 0);
        assert_eq!(
            snap.to_json(),
            "{\"counters\": {}, \"histograms\": {}, \"labels\": {}}"
        );
    }

    #[test]
    fn snapshot_json_is_valid_shape_when_empty() {
        let snap = Snapshot::default();
        assert_eq!(
            snap.to_json(),
            "{\"counters\": {}, \"histograms\": {}, \"labels\": {}}"
        );
    }

    #[test]
    fn label_json_is_escaped() {
        let mut snap = Snapshot::default();
        snap.labels
            .insert("scenario".into(), "a\"b\\c\nd".to_string());
        assert_eq!(
            snap.to_json(),
            "{\"counters\": {}, \"histograms\": {}, \
             \"labels\": {\"scenario\": \"a\\\"b\\\\c\\nd\"}}"
        );
        assert_eq!(snap.label("scenario"), Some("a\"b\\c\nd"));
        assert_eq!(snap.label("missing"), None);
    }

    #[test]
    fn quantile_and_mean_of_a_synthetic_snapshot() {
        let h = HistogramSnapshot {
            count: 4,
            sum: 10.0,
            min: 1.0,
            max: 4.0,
            buckets: vec![(2.0, 1), (4.0, 2), (8.0, 1)],
        };
        assert_eq!(h.mean(), 2.5);
        assert_eq!(h.quantile(0.0), 2.0);
        assert_eq!(h.quantile(0.5), 4.0);
        assert_eq!(h.quantile(1.0), 8.0);
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![],
        };
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.quantile(0.5), 0.0);
    }

    #[cfg(feature = "enabled")]
    mod enabled {
        use super::super::*;

        #[test]
        fn counters_accumulate_and_snapshot() {
            let c = counter("obs.test.counter");
            let before = c.get();
            c.incr();
            c.add(4);
            assert_eq!(c.get(), before + 5);
            assert!(snapshot().counter("obs.test.counter") >= 5);
            // Same name resolves to the same underlying cell.
            counter("obs.test.counter").incr();
            assert_eq!(c.get(), before + 6);
        }

        #[test]
        fn histogram_statistics_are_recorded() {
            let h = histogram("obs.test.hist");
            for v in [0.5, 1.5, 3.0, 1000.0] {
                h.record(v);
            }
            let snap = snapshot();
            let hs = snap.histogram("obs.test.hist").expect("recorded");
            assert!(hs.count >= 4);
            assert!(hs.sum >= 1004.9);
            assert!(hs.min <= 0.5);
            assert!(hs.max >= 1000.0);
            assert!(!hs.buckets.is_empty());
            assert!(hs.quantile(0.5) >= 1.0);
            let json = snap.to_json();
            assert!(json.contains("\"obs.test.hist\""));
            assert!(json.contains("\"p50\""));
        }

        #[test]
        fn span_records_elapsed_seconds() {
            {
                let _timer = span("obs.test.span_seconds");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let snap = snapshot();
            let hs = snap
                .histogram("obs.test.span_seconds")
                .expect("span recorded");
            assert!(hs.max >= 0.002, "span max {}", hs.max);
        }

        #[test]
        fn macros_cache_the_handle() {
            let a = counter!("obs.test.macro_counter");
            a.incr();
            let b = counter!("obs.test.macro_counter");
            b.incr();
            assert!(counter("obs.test.macro_counter").get() >= 2);
            histogram!("obs.test.macro_hist").record(2.0);
            assert!(histogram("obs.test.macro_hist").count() >= 1);
        }

        #[test]
        fn labels_snapshot_with_last_write_winning() {
            label("obs.test.label", "one");
            label("obs.test.label", "two");
            let snap = snapshot();
            assert_eq!(snap.label("obs.test.label"), Some("two"));
            assert!(snap.to_json().contains("\"obs.test.label\": \"two\""));
        }

        #[test]
        fn concurrent_increments_are_lossless() {
            let c = counter("obs.test.concurrent");
            let before = c.get();
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(|| {
                        for _ in 0..1000 {
                            counter("obs.test.concurrent").incr();
                            histogram("obs.test.concurrent_h").record(1.0);
                        }
                    });
                }
            });
            assert_eq!(c.get(), before + 8000);
        }
    }
}
