//! Compensation vs healing: the paper's Section I argument, quantified.
//!
//! Conventional adaptive techniques *compensate* for wearout — sensors
//! track degradation and knobs (supply voltage, frequency, body bias)
//! absorb it. The paper's critique: "the wearout itself means that the
//! power/performance metrics will be degraded and the system runs sluggish
//! or burns more power gradually. Thus, a solution that can fundamentally
//! fix wearout instead of compensating for its effects would be clearly
//! preferable."
//!
//! [`compensation_study`] runs the same lifetime twice:
//!
//! * **compensate** — no recovery is scheduled; instead a controller raises
//!   VDD each epoch by the worst core's ΔVth (restoring the lost overdrive)
//!   and the study charges the quadratic dynamic-power penalty;
//! * **heal** — the deep-healing schedule runs; no boost is needed beyond
//!   the residual degradation, and the study charges the recovery
//!   core-time overhead instead.

use dh_units::{Fraction, Seconds, TimeSeries, Volts};

use crate::error::SchedError;
use crate::policy::Policy;
use crate::system::{ManyCoreSystem, SystemConfig};

/// Outcome of one arm of the compensation study.
#[derive(Debug, Clone)]
pub struct CompensationOutcome {
    /// Strategy label.
    pub strategy: &'static str,
    /// VDD boost over time (volts above nominal), sampled per record point.
    pub boost_series: TimeSeries,
    /// Time-averaged dynamic-power overhead from the boost (fraction).
    pub mean_power_overhead: f64,
    /// Final (end-of-life) dynamic-power overhead.
    pub final_power_overhead: f64,
    /// Core-time overhead charged to scheduled recovery.
    pub recovery_overhead: Fraction,
    /// Residual worst-core frequency degradation the boost did not target
    /// (zero for the compensation arm by construction).
    pub residual_guardband: f64,
}

/// Runs the compensation-vs-healing comparison over `years`.
///
/// Returns `[compensate, heal]`.
///
/// # Errors
///
/// Propagates [`SchedError`] for invalid configurations.
pub fn compensation_study(
    system: SystemConfig,
    years: f64,
    seed: u64,
) -> Result<[CompensationOutcome; 2], SchedError> {
    if !(years > 0.0) || !years.is_finite() {
        return Err(SchedError::InvalidConfig(format!(
            "years must be positive, got {years}"
        )));
    }
    let compensate = run_arm(system.clone(), years, seed, Policy::PassiveIdle, true)?;
    let heal = run_arm(system, years, seed, Policy::periodic_deep_default(), false)?;
    Ok([compensate, heal])
}

fn run_arm(
    mut system_config: SystemConfig,
    years: f64,
    seed: u64,
    policy: Policy,
    boost: bool,
) -> Result<CompensationOutcome, SchedError> {
    system_config.seed = seed;
    let epoch = system_config.epoch;
    let vdd = system_config.vdd;
    let mut system = ManyCoreSystem::new(system_config)?;
    let total_epochs = (Seconds::from_years(years) / epoch).ceil().max(1.0) as usize;

    let strategy = if boost {
        "compensate (VDD boost)"
    } else {
        "heal (deep recovery)"
    };
    let mut boost_series = TimeSeries::new(format!("VDD boost (V), {strategy}"));
    let mut overhead_sum = 0.0;
    let mut final_overhead = 0.0;
    let mut worst_guardband: f64 = 0.0;

    let ro = dh_circuit::RingOscillator::paper_75_stage();
    for e in 0..total_epochs {
        system.step(policy)?;
        let dvth_mv = system.worst_delta_vth_mv();
        let (boost_v, residual) = if boost {
            // Restore the lost overdrive one-for-one.
            (dvth_mv / 1000.0, 0.0)
        } else {
            (0.0, ro.degradation(dvth_mv))
        };
        // Dynamic power ∝ V²: overhead = ((V+ΔV)/V)² − 1.
        let overhead = ((vdd.value() + boost_v) / vdd.value()).powi(2) - 1.0;
        overhead_sum += overhead;
        final_overhead = overhead;
        worst_guardband = worst_guardband.max(residual);
        if e % 8 == 0 {
            boost_series.push(system.time(), boost_v);
        }
    }

    Ok(CompensationOutcome {
        strategy,
        boost_series,
        mean_power_overhead: overhead_sum / total_epochs as f64,
        final_power_overhead: final_overhead,
        recovery_overhead: policy.recovery_overhead(),
        residual_guardband: worst_guardband,
    })
}

/// Renders the study as a comparison table.
pub fn render_study(outcomes: &[CompensationOutcome]) -> String {
    let mut s = String::from("compensation vs healing\n");
    s.push_str(&format!(
        "{:<26} {:>18} {:>18} {:>16} {:>14}\n",
        "strategy", "mean power ovh", "final power ovh", "recovery ovh", "residual gb"
    ));
    for o in outcomes {
        s.push_str(&format!(
            "{:<26} {:>17.3}% {:>17.3}% {:>15.1}% {:>13.3}%\n",
            o.strategy,
            o.mean_power_overhead * 100.0,
            o.final_power_overhead * 100.0,
            o.recovery_overhead.as_percent(),
            o.residual_guardband * 100.0,
        ));
    }
    s.push_str(&format!(
        "\nboost trajectory:\n{}",
        TimeSeries::render_table(&outcomes.iter().map(|o| &o.boost_series).collect::<Vec<_>>())
    ));
    s
}

/// Volts of boost applied at the end of life by the compensation arm.
pub fn final_boost(outcome: &CompensationOutcome) -> Volts {
    Volts::new(outcome.boost_series.last().map(|s| s.value).unwrap_or(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> [CompensationOutcome; 2] {
        compensation_study(SystemConfig::default(), 0.2, 11).unwrap()
    }

    #[test]
    fn compensation_burns_power_healing_does_not() {
        let [compensate, heal] = study();
        assert!(compensate.mean_power_overhead > 0.002, "{compensate:?}");
        assert!(heal.mean_power_overhead == 0.0);
        assert!(compensate.final_power_overhead >= compensate.mean_power_overhead * 0.5);
    }

    #[test]
    fn healing_pays_in_core_time_instead() {
        let [compensate, heal] = study();
        assert_eq!(compensate.recovery_overhead, Fraction::ZERO);
        assert!(heal.recovery_overhead.value() > 0.1);
    }

    #[test]
    fn compensation_fully_hides_degradation_healing_leaves_a_sliver() {
        let [compensate, heal] = study();
        assert_eq!(compensate.residual_guardband, 0.0);
        assert!(heal.residual_guardband > 0.0 && heal.residual_guardband < 0.01);
    }

    #[test]
    fn boost_grows_over_life() {
        let [compensate, _] = study();
        let first = compensate.boost_series.first().unwrap().value;
        let last = compensate.boost_series.last().unwrap().value;
        assert!(last >= first, "boost shrank: {first} → {last}");
        assert!(final_boost(&compensate).value() > 0.0);
    }

    #[test]
    fn render_has_both_arms() {
        let outs = study();
        let text = render_study(&outs);
        assert!(text.contains("compensate"));
        assert!(text.contains("heal"));
    }

    #[test]
    fn invalid_years_rejected() {
        assert!(compensation_study(SystemConfig::default(), 0.0, 1).is_err());
        assert!(compensation_study(SystemConfig::default(), f64::NAN, 1).is_err());
    }
}
