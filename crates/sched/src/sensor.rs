//! Wearout sensors: noisy observers of the true degradation state.
//!
//! The paper's run-time scheduling loop (Fig. 12b) closes through sensors:
//! "novel BTI and EM sensors can be employed to track wearout and feed back
//! the run-time degradation information". Here a BTI sensor is a replica
//! ring oscillator whose frequency is measured with finite precision; an EM
//! sensor measures grid resistance change with a relative error. Sensor
//! noise is what separates the adaptive policy from an oracle — and what
//! the ablation benches sweep.

use rand::rngs::StdRng;

use dh_circuit::RingOscillator;
use dh_units::rng::{seeded_rng, standard_normal};
use dh_units::Fraction;

/// A replica-ring-oscillator BTI sensor.
#[derive(Debug, Clone)]
pub struct BtiSensor {
    ro: RingOscillator,
    /// 1-sigma relative error of the frequency measurement.
    noise_rel: f64,
    /// Fresh (ΔVth = 0) frequency, cached: the inversion needs it on every
    /// measurement and it never changes.
    fresh: dh_units::Hertz,
    rng: StdRng,
}

impl BtiSensor {
    /// Creates a sensor with a given relative frequency-measurement noise
    /// (e.g. `0.002` for 0.2 % counters).
    pub fn new(ro: RingOscillator, noise_rel: f64, seed: u64) -> Self {
        let fresh = ro.frequency(0.0);
        Self {
            ro,
            noise_rel: noise_rel.abs(),
            fresh,
            rng: seeded_rng(seed, "bti-sensor"),
        }
    }

    /// A 0.2 %-accurate sensor on the paper's 75-stage RO.
    pub fn standard(seed: u64) -> Self {
        Self::new(RingOscillator::paper_75_stage(), 0.002, seed)
    }

    /// Measures a device whose true threshold shift is `true_dvth_mv`,
    /// returning the estimated shift in millivolts (≥ 0).
    pub fn measure(&mut self, true_dvth_mv: f64) -> f64 {
        let f_true = self.ro.frequency(true_dvth_mv.max(0.0));
        let noisy = f_true * (1.0 + self.noise_rel * standard_normal(&mut self.rng));
        self.ro
            .infer_delta_vth_mv_given_fresh(noisy, self.fresh)
            .unwrap_or(0.0)
    }

    /// [`BtiSensor::measure`] re-deriving the fresh frequency per call, as
    /// the seed did: the measured baseline for `perf_snapshot`. Not part of
    /// the API.
    #[doc(hidden)]
    pub fn measure_reference(&mut self, true_dvth_mv: f64) -> f64 {
        let f_true = self.ro.frequency(true_dvth_mv.max(0.0));
        let noisy = f_true * (1.0 + self.noise_rel * standard_normal(&mut self.rng));
        self.ro.infer_delta_vth_mv(noisy).unwrap_or(0.0)
    }
}

/// A resistance-change EM sensor.
#[derive(Debug, Clone)]
pub struct EmSensor {
    /// 1-sigma relative error on the damage estimate.
    noise_rel: f64,
    rng: StdRng,
}

impl EmSensor {
    /// Creates a sensor with a relative error (e.g. `0.05` for 5 %).
    pub fn new(noise_rel: f64, seed: u64) -> Self {
        Self {
            noise_rel: noise_rel.abs(),
            rng: seeded_rng(seed, "em-sensor"),
        }
    }

    /// Measures an accumulated EM damage fraction (0 = fresh, 1 = failed).
    pub fn measure(&mut self, true_damage: Fraction) -> Fraction {
        let noisy = true_damage.value() * (1.0 + self.noise_rel * standard_normal(&mut self.rng));
        Fraction::clamped(noisy.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bti_sensor_tracks_the_true_shift() {
        let mut s = BtiSensor::standard(11);
        for true_mv in [0.0, 10.0, 30.0, 60.0] {
            let estimates: Vec<f64> = (0..200).map(|_| s.measure(true_mv)).collect();
            let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
            assert!((mean - true_mv).abs() < 2.0, "true {true_mv} mean {mean}");
        }
    }

    #[test]
    fn bti_sensor_noise_scales_with_configured_error() {
        let spread = |noise: f64| {
            let mut s = BtiSensor::new(RingOscillator::paper_75_stage(), noise, 5);
            let xs: Vec<f64> = (0..300).map(|_| s.measure(30.0)).collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let tight = spread(0.001);
        let loose = spread(0.01);
        assert!(loose > 3.0 * tight, "tight {tight} loose {loose}");
    }

    #[test]
    fn em_sensor_is_clamped_and_unbiased() {
        let mut s = EmSensor::new(0.05, 3);
        let xs: Vec<f64> = (0..500)
            .map(|_| s.measure(Fraction::clamped(0.4)).value())
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.4).abs() < 0.01, "mean {mean}");
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn noiseless_sensors_are_exact() {
        let mut bti = BtiSensor::new(RingOscillator::paper_75_stage(), 0.0, 1);
        assert!((bti.measure(25.0) - 25.0).abs() < 1e-6);
        let mut em = EmSensor::new(0.0, 1);
        assert_eq!(em.measure(Fraction::clamped(0.7)), Fraction::clamped(0.7));
    }

    #[test]
    fn sensors_are_reproducible_per_seed() {
        let mut a = BtiSensor::standard(77);
        let mut b = BtiSensor::standard(77);
        for _ in 0..20 {
            assert_eq!(a.measure(12.0), b.measure(12.0));
        }
    }
}
