//! Per-core workload (utilization) generators.
//!
//! The paper's system-level argument rests on workload structure:
//! "specialized computing resources serve for different load tasks, which
//! also leads to different EM and BTI behaviors, thus requiring different
//! recovery strategies", and dark-silicon constraints guarantee intrinsic
//! OFF periods. The generators here provide that structure with
//! deterministic seeding so lifetime experiments are reproducible.

use rand::rngs::StdRng;
use rand::Rng;

use dh_units::rng::seeded_rng;
use dh_units::{Fraction, Seconds};

/// A workload pattern assigned to one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Constant utilization.
    Constant(f64),
    /// Day/night cycle: `high` for the first half of each period, `low`
    /// for the second.
    Diurnal {
        /// Daytime utilization.
        high: f64,
        /// Nighttime utilization.
        low: f64,
        /// Cycle period (24 h for an actual diurnal pattern).
        period: Seconds,
    },
    /// Random bursts: utilization is `high` with probability `p_burst`
    /// per epoch, else `low`.
    Bursty {
        /// Burst utilization.
        high: f64,
        /// Background utilization.
        low: f64,
        /// Probability of a burst in any epoch.
        p_burst: f64,
    },
}

impl Pattern {
    /// A typical "server-class" always-busy core.
    pub fn server() -> Self {
        Self::Constant(0.85)
    }

    /// A typical interactive/diurnal core.
    pub fn interactive() -> Self {
        Self::Diurnal {
            high: 0.7,
            low: 0.1,
            period: Seconds::from_hours(24.0),
        }
    }

    /// An accelerator-style bursty core.
    pub fn accelerator() -> Self {
        Self::Bursty {
            high: 0.95,
            low: 0.05,
            p_burst: 0.3,
        }
    }
}

/// A seeded workload generator for a set of cores.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    patterns: Vec<Pattern>,
    rng: StdRng,
}

impl WorkloadGenerator {
    /// Creates a generator with one pattern per core.
    pub fn new(patterns: Vec<Pattern>, seed: u64) -> Self {
        Self {
            patterns,
            rng: seeded_rng(seed, "workload"),
        }
    }

    /// A heterogeneous mix for `n` cores: servers, interactive, and
    /// accelerator cores round-robin.
    pub fn heterogeneous(n: usize, seed: u64) -> Self {
        let patterns = (0..n)
            .map(|i| match i % 3 {
                0 => Pattern::server(),
                1 => Pattern::interactive(),
                _ => Pattern::accelerator(),
            })
            .collect();
        Self::new(patterns, seed)
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the generator drives no cores.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Samples the utilization of every core for the epoch starting at
    /// `time`.
    pub fn sample(&mut self, time: Seconds) -> Vec<Fraction> {
        let mut out = Vec::with_capacity(self.patterns.len());
        for pattern in &self.patterns {
            let u = match *pattern {
                Pattern::Constant(u) => u,
                Pattern::Diurnal { high, low, period } => {
                    let phase = (time.value() / period.value()).rem_euclid(1.0);
                    if phase < 0.5 {
                        high
                    } else {
                        low
                    }
                }
                Pattern::Bursty { high, low, p_burst } => {
                    if self.rng.gen_bool(p_burst.clamp(0.0, 1.0)) {
                        high
                    } else {
                        low
                    }
                }
            };
            out.push(Fraction::clamped(u));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_pattern_is_constant() {
        let mut g = WorkloadGenerator::new(vec![Pattern::Constant(0.6)], 1);
        for h in 0..48 {
            let u = g.sample(Seconds::from_hours(h as f64));
            assert_eq!(u[0], Fraction::clamped(0.6));
        }
    }

    #[test]
    fn diurnal_pattern_alternates() {
        let mut g = WorkloadGenerator::new(vec![Pattern::interactive()], 1);
        let day = g.sample(Seconds::from_hours(1.0))[0];
        let night = g.sample(Seconds::from_hours(13.0))[0];
        assert!(day > night);
        // Next day repeats.
        let day2 = g.sample(Seconds::from_hours(25.0))[0];
        assert_eq!(day, day2);
    }

    #[test]
    fn bursty_pattern_hits_both_levels() {
        let mut g = WorkloadGenerator::new(vec![Pattern::accelerator()], 3);
        let mut highs = 0;
        let mut lows = 0;
        for h in 0..200 {
            let u = g.sample(Seconds::from_hours(h as f64))[0].value();
            if u > 0.5 {
                highs += 1;
            } else {
                lows += 1;
            }
        }
        assert!(highs > 20 && lows > 80, "highs {highs} lows {lows}");
    }

    #[test]
    fn same_seed_reproduces_bursts() {
        let mut a = WorkloadGenerator::heterogeneous(6, 9);
        let mut b = WorkloadGenerator::heterogeneous(6, 9);
        for h in 0..50 {
            let t = Seconds::from_hours(h as f64);
            assert_eq!(a.sample(t), b.sample(t));
        }
    }

    #[test]
    fn heterogeneous_mix_covers_all_patterns() {
        let g = WorkloadGenerator::heterogeneous(9, 0);
        assert_eq!(g.len(), 9);
        assert_eq!(g.patterns[0], Pattern::server());
        assert_eq!(g.patterns[1], Pattern::interactive());
        assert_eq!(g.patterns[2], Pattern::accelerator());
    }

    #[test]
    fn utilizations_are_valid_fractions() {
        let mut g = WorkloadGenerator::heterogeneous(12, 4);
        for h in 0..100 {
            for u in g.sample(Seconds::from_hours(h as f64)) {
                assert!(u.value() >= 0.0 && u.value() <= 1.0);
            }
        }
    }
}
