//! Sensor-fault tolerance for the closed-loop scheduler: a
//! median-of-window filter in front of every wear sensor, plus staleness
//! detection that latches a sensor as bad.
//!
//! The paper's Fig. 12(b) feedback loop trusts its sensors; a real
//! deployment cannot. [`SensorGuard`] sits between a raw
//! [`crate::sensor::BtiSensor`] reading and the policy that acts on it:
//!
//! * **Spike rejection** — the policy sees the median of the last few
//!   finite readings, so a single wild sample (a glitched counter, an
//!   injected noise burst) cannot trigger or suppress a recovery epoch
//!   by itself.
//! * **Dropout tolerance** — a NaN/Inf reading never enters the window;
//!   the guard keeps reporting the median of the last good readings.
//! * **Staleness detection** — consecutive missing readings, or a
//!   *nonzero* reading repeating bit-for-bit (a real counter carries
//!   noise in its low bits; exact repeats of a nonzero value are
//!   diagnostic of a latched sensor, not coincidence), eventually latch
//!   the guard as [`SensorGuard::faulted`]. The scheduler then stops
//!   trusting the channel and degrades that core to a conservative
//!   always-heal policy — recovery is never silently skipped.
//!
//! Readings of exactly zero are deliberately exempt from the repeat rule:
//! the BTI sensor clamps sub-floor inferences to zero, so a fresh, healthy
//! device legitimately reads 0.0 for epochs on end.

/// A per-sensor fault filter: median-of-window smoothing plus a latched
/// staleness verdict.
#[derive(Debug, Clone)]
pub struct SensorGuard {
    /// Ring buffer of the last finite readings.
    window: Vec<f64>,
    /// Next ring slot to overwrite once the window is full.
    next: usize,
    /// Window capacity.
    capacity: usize,
    /// Consecutive suspicious epochs (missing or nonzero-identical).
    stale_epochs: u32,
    /// Suspicious epochs before the fault verdict latches.
    stale_after: u32,
    /// Bit pattern of the previous reading (NaN sentinel before the
    /// first, which no finite reading can match).
    last_bits: u64,
    /// Latched verdict; never clears (a sensor that froze once cannot be
    /// trusted again without service).
    faulted: bool,
}

impl SensorGuard {
    /// A guard smoothing over the last `window` finite readings (clamped
    /// to ≥ 1; a window of 1 is a pass-through) and latching the fault
    /// verdict after `stale_after` consecutive suspicious epochs.
    pub fn new(window: usize, stale_after: u32) -> Self {
        let capacity = window.max(1);
        Self {
            window: Vec::with_capacity(capacity),
            next: 0,
            capacity,
            stale_epochs: 0,
            stale_after: stale_after.max(1),
            last_bits: f64::NAN.to_bits(),
            faulted: false,
        }
    }

    /// Whether the staleness detector has latched this sensor as bad.
    pub fn faulted(&self) -> bool {
        self.faulted
    }

    /// Feeds one raw reading and returns the filtered value the policy
    /// should act on: the median of the last finite readings (0.0 before
    /// the first finite reading ever arrives — indistinguishable from a
    /// fresh device, which is the conservative direction for a
    /// threshold-triggered policy only until staleness latches).
    pub fn filter(&mut self, reading: f64) -> f64 {
        if reading.is_finite() {
            let repeat = reading.to_bits() == self.last_bits && reading != 0.0;
            self.stale_epochs = if repeat { self.stale_epochs + 1 } else { 0 };
            self.last_bits = reading.to_bits();
            if self.window.len() < self.capacity {
                self.window.push(reading);
            } else {
                self.window[self.next] = reading;
                self.next = (self.next + 1) % self.capacity;
            }
        } else {
            self.stale_epochs += 1;
        }
        if self.stale_epochs >= self.stale_after {
            self.faulted = true;
        }
        self.median()
    }

    /// The median of the current window (0.0 when empty). An even window
    /// averages the two middle readings.
    fn median(&self) -> f64 {
        let n = self.window.len();
        if n == 0 {
            return 0.0;
        }
        let mut sorted = self.window.clone();
        sorted.sort_by(f64::total_cmp);
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_rejects_isolated_spikes() {
        let mut g = SensorGuard::new(5, 4);
        // A 100x glitch every third reading: the spikes never reach a
        // majority of the window, so the median tracks the clean level
        // throughout.
        for i in 0..20 {
            let clean = 10.0 + 0.01 * i as f64;
            let reading = if i % 3 == 1 { clean * 100.0 } else { clean };
            let filtered = g.filter(reading);
            if i >= 4 {
                assert!(
                    (filtered - clean).abs() < 1.0,
                    "epoch {i}: filtered {filtered} vs clean {clean}"
                );
            }
        }
        assert!(!g.faulted(), "spikes alone must not latch the verdict");
    }

    #[test]
    fn dropouts_latch_after_the_staleness_window() {
        let mut g = SensorGuard::new(5, 4);
        g.filter(12.0);
        for i in 0..3 {
            let filtered = g.filter(f64::NAN);
            assert_eq!(filtered, 12.0, "last good estimate survives dropout");
            assert!(!g.faulted(), "not yet at epoch {i}");
        }
        g.filter(f64::NAN);
        assert!(g.faulted(), "four consecutive dropouts latch the verdict");
    }

    #[test]
    fn nonzero_bit_identical_repeats_latch_but_zero_does_not() {
        let mut stuck = SensorGuard::new(3, 4);
        for _ in 0..5 {
            stuck.filter(7.25);
        }
        assert!(stuck.faulted(), "a latched nonzero reading is diagnostic");

        let mut fresh = SensorGuard::new(3, 4);
        for _ in 0..50 {
            fresh.filter(0.0);
        }
        assert!(
            !fresh.faulted(),
            "a fresh device legitimately reads exactly zero"
        );
    }

    #[test]
    fn verdict_never_clears() {
        let mut g = SensorGuard::new(3, 2);
        g.filter(f64::NAN);
        g.filter(f64::NAN);
        assert!(g.faulted());
        for i in 0..10 {
            g.filter(1.0 + i as f64);
        }
        assert!(g.faulted(), "recovered readings do not restore trust");
    }

    #[test]
    fn degenerate_window_is_a_pass_through() {
        let mut g = SensorGuard::new(0, 3);
        assert_eq!(g.filter(5.0), 5.0);
        assert_eq!(g.filter(9.0), 9.0);
    }
}
