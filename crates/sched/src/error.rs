//! Error types for the scheduling simulator.

use core::fmt;

use dh_circuit::CircuitError;
use dh_thermal::ThermalError;

/// Error returned by system construction and lifetime runs.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// A configuration value is out of range.
    InvalidConfig(String),
    /// The thermal substrate rejected its inputs.
    Thermal(ThermalError),
    /// The assist circuitry that supplies the deep-recovery bias could not
    /// be solved (degenerate parameters or a singular network).
    AssistCircuit(CircuitError),
    /// A per-core operation named a core the system does not have.
    CoreOutOfRange {
        /// The requested core index.
        core: usize,
        /// How many cores the system actually has.
        cores: usize,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig(why) => write!(f, "invalid scheduler config: {why}"),
            Self::Thermal(e) => write!(f, "thermal model error: {e}"),
            Self::AssistCircuit(e) => write!(f, "assist circuitry error: {e}"),
            Self::CoreOutOfRange { core, cores } => {
                write!(f, "core {core} out of range (system has {cores} cores)")
            }
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Thermal(e) => Some(e),
            Self::AssistCircuit(e) => Some(e),
            Self::InvalidConfig(_) | Self::CoreOutOfRange { .. } => None,
        }
    }
}

impl From<ThermalError> for SchedError {
    fn from(e: ThermalError) -> Self {
        Self::Thermal(e)
    }
}

impl From<CircuitError> for SchedError {
    fn from(e: CircuitError) -> Self {
        Self::AssistCircuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_sources() {
        use std::error::Error;
        assert!(SchedError::InvalidConfig("x".into())
            .to_string()
            .contains('x'));
        let e: SchedError = ThermalError::InvalidPower(-1.0).into();
        assert!(e.source().is_some());
        let e: SchedError = CircuitError::InvalidParameter("header_width".into()).into();
        assert!(e.to_string().contains("assist circuitry"));
        assert!(e.source().is_some());
        let e = SchedError::CoreOutOfRange { core: 9, cores: 4 };
        assert!(e.to_string().contains("core 9"));
        assert!(e.source().is_none());
    }
}
