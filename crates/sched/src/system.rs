//! The many-core system: BTI devices, EM damage, thermal grid, sensors,
//! and a policy-driven epoch loop.
//!
//! Each core tile carries:
//!
//! * a [`BtiDevice`] stressed at the core's supply and temperature while
//!   running, passively recovering while idle, and deeply recovering (at
//!   the assist circuitry's swap bias) when the policy schedules it;
//! * an **EM damage** accumulator for its local power grid: Miner's-rule
//!   integration of `1/TTF(j, T)` from the Black model, healed by the EM
//!   active-recovery duty (with a pinned floor — the permanent component);
//! * a noisy BTI sensor (replica RO) and EM sensor feeding the policy.
//!
//! Temperatures come from the RC thermal grid: busy cores heat up, and a
//! recovering (dark) core is heated by its neighbours — which *helps*,
//! because recovery accelerates with temperature (the paper's Fig. 12(a)
//! dark-silicon argument).

use dh_bti::{BtiDevice, RecoveryCondition, StressCondition, TrapEnsemble};
use dh_circuit::assist::{AssistCircuit, Mode};
use dh_em::black::BlackModel;
use dh_fault::{FaultPlan, SensorFaultKind, SensorIncident};
use dh_thermal::{GridConfig, ThermalGrid};
use dh_units::{CurrentDensity, Fraction, Kelvin, Seconds, Volts};

use crate::error::SchedError;
use crate::guard::SensorGuard;
use crate::metrics::{CoreMode, MetricsReport};
use crate::policy::Policy;
use crate::sensor::{BtiSensor, EmSensor};
use crate::workload::WorkloadGenerator;

/// Configuration of the many-core system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Core-grid rows (also the thermal-tile rows).
    pub rows: usize,
    /// Core-grid columns.
    pub cols: usize,
    /// Core supply voltage.
    pub vdd: Volts,
    /// Epoch length (scheduling granularity).
    pub epoch: Seconds,
    /// Peak per-core power at full utilization, watts.
    pub peak_power_w: f64,
    /// Idle per-core power, watts.
    pub idle_power_w: f64,
    /// Local-grid current density at full utilization.
    pub j_local: CurrentDensity,
    /// Gate bias applied during deep BTI recovery (from the assist
    /// circuitry's rail swap; negative).
    pub bti_recovery_bias: Volts,
    /// Healing efficiency of EM current reversal.
    pub em_heal_efficiency: Fraction,
    /// Pinned (permanent) EM damage floor, as a fraction of the peak
    /// damage reached.
    pub em_pinned_floor: Fraction,
    /// Relative noise of the BTI sensors.
    pub bti_sensor_noise: f64,
    /// Relative noise of the EM sensors.
    pub em_sensor_noise: f64,
    /// Median-filter window over each core's BTI sensor readings (the
    /// [`SensorGuard`]); 1 disables smoothing.
    pub sensor_window: usize,
    /// Consecutive suspicious sensor epochs before a core's sensor is
    /// distrusted and the core degrades to the conservative policy.
    pub sensor_stale_epochs: u32,
    /// Root seed for workloads and sensors.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        // The deep-recovery bias comes from the assist circuitry itself:
        // the rail swap of Fig. 9(b) applies ≈−0.6 V to the idle load. The
        // paper circuit always solves; the published Fig. 9(b) value keeps
        // `default()` total if a future model change ever breaks that.
        let bias = AssistCircuit::paper_28nm()
            .solve(Mode::BtiActiveRecovery)
            .map(|s| s.bti_recovery_bias())
            .unwrap_or(Volts::new(-0.593));
        Self {
            rows: 4,
            cols: 4,
            vdd: Volts::new(0.9),
            epoch: Seconds::from_hours(6.0),
            peak_power_w: 1.5,
            idle_power_w: 0.2,
            j_local: CurrentDensity::from_ma_per_cm2(2.5),
            bti_recovery_bias: bias,
            em_heal_efficiency: Fraction::clamped(0.9),
            em_pinned_floor: Fraction::clamped(0.05),
            bti_sensor_noise: 0.002,
            em_sensor_noise: 0.05,
            sensor_window: 5,
            sensor_stale_epochs: 4,
            seed: 42,
        }
    }
}

impl SystemConfig {
    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.rows * self.cols
    }

    /// A default configuration whose deep-recovery bias is derived by
    /// solving `circuit` in BTI-Active-Recovery mode — the explicit,
    /// fallible form of what [`Default::default`] does with the paper's
    /// 28 nm circuit.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::AssistCircuit`] when the circuit has
    /// non-physical parameters or its network is singular, so a malformed
    /// assist design fails recoverably instead of panicking.
    pub fn with_assist_circuit(circuit: &AssistCircuit) -> Result<Self, SchedError> {
        let bias = circuit.solve(Mode::BtiActiveRecovery)?.bti_recovery_bias();
        Ok(Self {
            bti_recovery_bias: bias,
            ..Self::default()
        })
    }
}

/// Per-core wearout and sensing state.
#[derive(Debug, Clone)]
struct Core {
    bti: BtiDevice,
    em_damage: f64,
    em_peak: f64,
    bti_sensor: BtiSensor,
    em_sensor: EmSensor,
    /// Last sensed values (fed to the policy at the next epoch).
    sensed_dvth_mv: f64,
    sensed_em: Fraction,
    /// Mode of the previous epoch (None before the first step), for
    /// transition accounting.
    last_mode: Option<CoreMode>,
    /// Median filter + staleness detector over the BTI sensor channel.
    guard: SensorGuard,
    /// Injected sensor fault (None = healthy hardware).
    fault: Option<SensorFaultKind>,
    /// For a stuck sensor: the reading it latched at (NaN until the first
    /// post-injection reading fixes it).
    stuck_latch: f64,
}

/// Per-epoch, per-core record of what the scheduler did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreStatus {
    /// True |ΔVth|, millivolts.
    pub delta_vth_mv: f64,
    /// True EM damage fraction.
    pub em_damage: Fraction,
    /// Tile temperature this epoch.
    pub temperature: Kelvin,
    /// Fraction of this epoch spent in deep BTI recovery.
    pub bti_recovery: Fraction,
    /// Work demanded by the workload but displaced by recovery this epoch
    /// (fraction of the epoch). Zero when recovery fits in the idle budget.
    pub displaced_work: Fraction,
    /// Work demanded by the workload this epoch (fraction of the epoch).
    pub demanded_work: Fraction,
}

/// The policy-driven many-core system.
#[derive(Debug, Clone)]
pub struct ManyCoreSystem {
    config: SystemConfig,
    cores: Vec<Core>,
    thermal: ThermalGrid,
    workload: WorkloadGenerator,
    black: BlackModel,
    epoch_index: usize,
    time: Seconds,
    /// Routes hot paths through the pre-optimization reference code
    /// (baseline measurements only).
    reference_mode: bool,
    /// Optional CET trap ensemble shadowing core 0's stress/recovery
    /// schedule — the Monte-Carlo cross-check of the analytic fleet.
    trap_monitor: Option<TrapEnsemble>,
    /// Always-on scheduling metrics (mode transitions, recovery time
    /// scheduled, wearout healed).
    metrics: MetricsReport,
    /// Sensors flagged as bad by staleness detection, in flag order.
    sensor_incidents: Vec<SensorIncident>,
}

impl ManyCoreSystem {
    /// Builds a fresh system.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidConfig`] for degenerate dimensions or
    /// epoch, or a thermal error for inconsistent grid parameters.
    pub fn new(config: SystemConfig) -> Result<Self, SchedError> {
        if config.rows == 0 || config.cols == 0 {
            return Err(SchedError::InvalidConfig(
                "core grid must be non-empty".into(),
            ));
        }
        if !(config.epoch.value() > 0.0) {
            return Err(SchedError::InvalidConfig("epoch must be positive".into()));
        }
        if config.sensor_window == 0 {
            return Err(SchedError::InvalidConfig(
                "sensor window must hold at least one reading".into(),
            ));
        }
        if config.bti_recovery_bias >= Volts::ZERO {
            return Err(SchedError::InvalidConfig(
                "BTI recovery bias must be negative (it reverses the stress)".into(),
            ));
        }
        let thermal = ThermalGrid::new(GridConfig {
            rows: config.rows,
            cols: config.cols,
            ..GridConfig::manycore_4x4()
        })?;
        let cores = (0..config.cores())
            .map(|i| Core {
                bti: BtiDevice::paper_calibrated(),
                em_damage: 0.0,
                em_peak: 0.0,
                bti_sensor: BtiSensor::new(
                    dh_circuit::RingOscillator::paper_75_stage(),
                    config.bti_sensor_noise,
                    config.seed ^ (i as u64) << 8 | 1,
                ),
                em_sensor: EmSensor::new(config.em_sensor_noise, config.seed ^ (i as u64) << 8 | 2),
                sensed_dvth_mv: 0.0,
                sensed_em: Fraction::ZERO,
                last_mode: None,
                guard: SensorGuard::new(config.sensor_window, config.sensor_stale_epochs),
                fault: None,
                stuck_latch: f64::NAN,
            })
            .collect();
        let workload = WorkloadGenerator::heterogeneous(config.cores(), config.seed);
        Ok(Self {
            config,
            cores,
            thermal,
            workload,
            black: BlackModel::calibrated_to_paper(),
            epoch_index: 0,
            time: Seconds::ZERO,
            reference_mode: false,
            trap_monitor: None,
            metrics: MetricsReport::default(),
            sensor_incidents: Vec::new(),
        })
    }

    /// Attaches a CET trap-ensemble monitor that shadows core 0's full
    /// stress/idle/deep-recovery schedule. The Monte-Carlo ensemble is the
    /// paper's "Measurement" column, so the monitor cross-validates the
    /// analytic per-core devices at fleet scale.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidConfig`] when the ensemble cannot be
    /// calibrated (e.g. zero traps).
    pub fn with_trap_monitor(mut self, traps: usize) -> Result<Self, SchedError> {
        let ensemble = TrapEnsemble::paper_calibrated(traps)
            .map_err(|e| SchedError::InvalidConfig(format!("trap monitor: {e}")))?;
        self.trap_monitor = Some(ensemble);
        Ok(self)
    }

    /// The monitor's |ΔVth| in millivolts, or `None` when no monitor is
    /// attached.
    pub fn trap_monitor_dvth_mv(&self) -> Option<f64> {
        self.trap_monitor.as_ref().map(|m| m.delta_vth_mv())
    }

    /// The monitor's consolidated (permanent) component in millivolts.
    pub fn trap_monitor_permanent_mv(&self) -> Option<f64> {
        self.trap_monitor.as_ref().map(|m| m.permanent_mv())
    }

    /// Routes the thermal settle and BTI stress steps through the
    /// pre-optimization reference implementations, so `perf_snapshot` can
    /// measure the optimized engine against the seed's serial code in the
    /// same binary. Not part of the API.
    #[doc(hidden)]
    pub fn set_reference_mode(&mut self, on: bool) {
        self.reference_mode = on;
        self.thermal.set_reference_solver(on);
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Elapsed simulated time.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Epochs simulated so far.
    pub fn epochs(&self) -> usize {
        self.epoch_index
    }

    /// The scheduling metrics accumulated so far (always on; see
    /// [`MetricsReport`]).
    pub fn metrics(&self) -> &MetricsReport {
        &self.metrics
    }

    /// Injects a hardware fault into one core's BTI wear sensor, effective
    /// from the next sensing epoch. The simulation keeps running: the
    /// [`SensorGuard`] is expected to notice (stuck/dropped) or absorb
    /// (noisy) the fault, and a noticed sensor degrades its core to the
    /// conservative recovery schedule.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::CoreOutOfRange`] when `core` does not exist.
    pub fn inject_sensor_fault(
        &mut self,
        core: usize,
        kind: SensorFaultKind,
    ) -> Result<(), SchedError> {
        let cores = self.cores.len();
        let slot = self
            .cores
            .get_mut(core)
            .ok_or(SchedError::CoreOutOfRange { core, cores })?;
        slot.fault = Some(kind);
        slot.stuck_latch = f64::NAN;
        Ok(())
    }

    /// Applies every sensor fault a [`FaultPlan`] directs at this system's
    /// cores (both the probabilistic `stuck=` draws and the directed
    /// `stuck-chip=` target), treating core indices as the plan's chip
    /// indices.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for (i, core) in self.cores.iter_mut().enumerate() {
            if let Some(kind) = plan.sensor_fault(i as u64) {
                core.fault = Some(kind);
                core.stuck_latch = f64::NAN;
            }
        }
    }

    /// Sensors flagged as bad so far, in the order staleness detection
    /// latched them.
    pub fn sensor_incidents(&self) -> &[SensorIncident] {
        &self.sensor_incidents
    }

    /// How many cores are currently scheduled by the conservative fallback
    /// policy because their sensor is distrusted.
    pub fn degraded_cores(&self) -> usize {
        self.cores.iter().filter(|c| c.guard.faulted()).count()
    }

    /// Advances one epoch under `policy`, returning per-core status.
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors (cannot occur with validated
    /// configurations).
    pub fn step(&mut self, policy: Policy) -> Result<Vec<CoreStatus>, SchedError> {
        let mut utils = self.workload.sample(self.time);
        let n = self.cores.len();

        // The rotation policy migrates the dark cores' work onto the rest.
        if let Policy::DarkSiliconRotation { spares, .. } = policy {
            let dark: Vec<bool> = (0..n)
                .map(|i| Policy::is_dark(self.epoch_index, i, n, spares))
                .collect();
            let displaced: f64 = utils
                .iter()
                .zip(&dark)
                .filter(|(_, &d)| d)
                .map(|(u, _)| u.value())
                .sum();
            let active = dark.iter().filter(|&&d| !d).count().max(1);
            let extra = displaced / active as f64;
            for (u, &d) in utils.iter_mut().zip(&dark) {
                *u = if d {
                    Fraction::ZERO
                } else {
                    Fraction::clamped(u.value() + extra)
                };
            }
        }

        // Plans come from last epoch's sensor readings. A core whose
        // sensor the guard has distrusted cannot be planned from those
        // readings: it falls back to the conservative periodic-deep
        // schedule, which heals every epoch without consulting sensors —
        // degraded, never silently skipping recovery.
        let mut conservative = 0u64;
        let plans: Vec<_> = self
            .cores
            .iter()
            .enumerate()
            .zip(&utils)
            .map(|((i, core), &util)| {
                let effective = if policy.uses_sensors() && core.guard.faulted() {
                    conservative += 1;
                    Policy::periodic_deep_default()
                } else {
                    policy
                };
                effective.plan(
                    self.epoch_index,
                    i,
                    n,
                    util,
                    core.sensed_dvth_mv,
                    core.sensed_em,
                )
            })
            .collect();

        // Thermal: power follows the executed work (deep recovery = dark).
        let powers: Vec<f64> = plans
            .iter()
            .zip(&utils)
            .map(|(plan, &util)| {
                let executed = util.value().min(plan.run.value());
                self.config.idle_power_w
                    + executed * (self.config.peak_power_w - self.config.idle_power_w)
            })
            .collect();
        self.thermal.settle(&powers)?;

        let epoch = self.config.epoch;
        let metrics_before = self.metrics.clone();
        self.metrics.conservative_core_epochs += conservative;
        let mut out = Vec::with_capacity(self.cores.len());
        for (i, core) in self.cores.iter_mut().enumerate() {
            let temp = self
                .thermal
                .temperature(i / self.config.cols, i % self.config.cols);
            let plan = plans[i];
            let util = utils[i];
            let executed = util.value().min(plan.run.value());

            // --- Mode accounting (always on; the arithmetic is free) ---
            let mode = CoreMode::classify(&plan);
            self.metrics
                .observe_core_epoch(mode, core.last_mode != Some(mode));
            core.last_mode = Some(mode);

            // --- BTI ---
            let stress_cond = StressCondition {
                gate_voltage: self.config.vdd,
                temperature: temp,
            };
            if self.reference_mode {
                core.bti
                    .stress_reference(epoch * plan.run.value(), stress_cond);
            } else {
                core.bti.stress(epoch * plan.run.value(), stress_cond);
            }
            if plan.idle().value() > 0.0 {
                // Powered-but-idle: gates sit at 0 bias — passive recovery
                // at the tile temperature.
                core.bti.recover(
                    epoch * plan.idle().value(),
                    RecoveryCondition {
                        gate_voltage: Volts::ZERO,
                        temperature: temp,
                    },
                );
            }
            if plan.bti_recovery.value() > 0.0 {
                // Deep recovery at the assist circuitry's swap bias; the
                // dark core is kept warm by its neighbours (temp is the
                // settled tile temperature).
                let dvth_before = core.bti.delta_vth_mv();
                core.bti.recover(
                    epoch * plan.bti_recovery.value(),
                    RecoveryCondition {
                        gate_voltage: self.config.bti_recovery_bias,
                        temperature: temp,
                    },
                );
                self.metrics.bti_recovery_seconds += epoch.value() * plan.bti_recovery.value();
                self.metrics.bti_healed_mv += (dvth_before - core.bti.delta_vth_mv()).max(0.0);
            }

            // The trap monitor shadows core 0's schedule exactly.
            if i == 0 {
                if let Some(monitor) = self.trap_monitor.as_mut() {
                    monitor.stress(epoch * plan.run.value(), stress_cond);
                    if plan.idle().value() > 0.0 {
                        monitor.recover(
                            epoch * plan.idle().value(),
                            RecoveryCondition {
                                gate_voltage: Volts::ZERO,
                                temperature: temp,
                            },
                        );
                    }
                    if plan.bti_recovery.value() > 0.0 {
                        monitor.recover(
                            epoch * plan.bti_recovery.value(),
                            RecoveryCondition {
                                gate_voltage: self.config.bti_recovery_bias,
                                temperature: temp,
                            },
                        );
                    }
                }
            }

            // --- EM (Miner's rule over the local grid) ---
            let j = CurrentDensity::new(self.config.j_local.value() * executed.max(0.0));
            if j.value() > 0.0 {
                let ttf = self.black.median_ttf(j, temp);
                let stress_time = epoch.value() * executed;
                let d = plan.em_recovery_duty.value();
                let eta = self.config.em_heal_efficiency.value();
                let wear_factor = (1.0 - d) - eta * d;
                self.metrics.em_damage_healed += stress_time / ttf.value() * eta * d;
                self.metrics.em_recovery_core_seconds += stress_time * d;
                core.em_damage += stress_time / ttf.value() * wear_factor;
                core.em_peak = core.em_peak.max(core.em_damage);
                // Healing cannot undo the pinned component.
                let floor = self.config.em_pinned_floor.value() * core.em_peak;
                core.em_damage = core.em_damage.clamp(floor, 1.0);
            }

            // --- Sensing for the next epoch ---
            // Open-loop policies never read the measurements, so only the
            // adaptive policy (or the reference baseline, which always
            // sensed) pays for them.
            if self.reference_mode {
                core.sensed_dvth_mv = core.bti_sensor.measure_reference(core.bti.delta_vth_mv());
                core.sensed_em = core.em_sensor.measure(Fraction::clamped(core.em_damage));
            } else if policy.uses_sensors() {
                let raw = core.bti_sensor.measure(core.bti.delta_vth_mv());
                // Hardware fault model: a stuck sensor latches whatever it
                // read first after the fault hit; a dropped sensor returns
                // nothing (NaN); a noisy one glitches every third epoch
                // (isolated spikes — a minority of any filter window).
                let reading = match core.fault {
                    None => raw,
                    Some(SensorFaultKind::Stuck) => {
                        if core.stuck_latch.is_nan() {
                            core.stuck_latch = raw;
                        }
                        core.stuck_latch
                    }
                    Some(SensorFaultKind::Dropped) => f64::NAN,
                    Some(SensorFaultKind::Noisy(factor)) => {
                        if self.epoch_index % 3 == 1 {
                            raw * factor
                        } else {
                            raw
                        }
                    }
                };
                let trusted = !core.guard.faulted();
                core.sensed_dvth_mv = core.guard.filter(reading);
                if trusted && core.guard.faulted() {
                    self.metrics.sensor_faults_detected += 1;
                    self.sensor_incidents.push(SensorIncident {
                        chip: i as u64,
                        kind: core.fault.unwrap_or(SensorFaultKind::Stuck),
                        epoch: self.epoch_index as u64,
                    });
                }
                core.sensed_em = core.em_sensor.measure(Fraction::clamped(core.em_damage));
            }

            out.push(CoreStatus {
                delta_vth_mv: core.bti.delta_vth_mv(),
                em_damage: Fraction::clamped(core.em_damage),
                temperature: temp,
                bti_recovery: plan.bti_recovery,
                displaced_work: Fraction::clamped(util.value() - executed),
                demanded_work: util,
            });
        }

        self.metrics.epochs += 1;
        // Mirror this epoch's deltas into the global registry under
        // per-policy names, so one process can compare policies. Compiles
        // to nothing without the `obs` feature.
        if dh_obs::ENABLED {
            let m = &self.metrics;
            let name = policy.name();
            dh_obs::counter(&format!("sched.{name}.epochs")).incr();
            dh_obs::counter(&format!("sched.{name}.transitions_to_normal"))
                .add(m.transitions_to_normal - metrics_before.transitions_to_normal);
            dh_obs::counter(&format!("sched.{name}.transitions_to_em_ar"))
                .add(m.transitions_to_em_ar - metrics_before.transitions_to_em_ar);
            dh_obs::counter(&format!("sched.{name}.transitions_to_bti_ar"))
                .add(m.transitions_to_bti_ar - metrics_before.transitions_to_bti_ar);
            dh_obs::counter(&format!("sched.{name}.core_epochs_normal"))
                .add(m.epochs_normal - metrics_before.epochs_normal);
            dh_obs::counter(&format!("sched.{name}.core_epochs_em_ar"))
                .add(m.epochs_em_ar - metrics_before.epochs_em_ar);
            dh_obs::counter(&format!("sched.{name}.core_epochs_bti_ar"))
                .add(m.epochs_bti_ar - metrics_before.epochs_bti_ar);
            dh_obs::histogram(&format!("sched.{name}.bti_recovery_seconds_per_epoch"))
                .record(m.bti_recovery_seconds - metrics_before.bti_recovery_seconds);
            dh_obs::histogram(&format!("sched.{name}.bti_healed_mv_per_epoch"))
                .record(m.bti_healed_mv - metrics_before.bti_healed_mv);
            dh_obs::counter(&format!("sched.{name}.sensor_faults_detected"))
                .add(m.sensor_faults_detected - metrics_before.sensor_faults_detected);
            dh_obs::counter(&format!("sched.{name}.conservative_core_epochs"))
                .add(m.conservative_core_epochs - metrics_before.conservative_core_epochs);
        }

        self.epoch_index += 1;
        self.time += epoch;
        Ok(out)
    }

    /// The worst (largest) true ΔVth across cores, millivolts.
    pub fn worst_delta_vth_mv(&self) -> f64 {
        self.cores
            .iter()
            .map(|c| c.bti.delta_vth_mv())
            .fold(0.0, f64::max)
    }

    /// The worst true EM damage fraction across cores.
    pub fn worst_em_damage(&self) -> Fraction {
        Fraction::clamped(self.cores.iter().map(|c| c.em_damage).fold(0.0, f64::max))
    }

    /// The worst permanent BTI component across cores, millivolts.
    pub fn worst_permanent_mv(&self) -> f64 {
        self.cores
            .iter()
            .map(|c| c.bti.permanent_mv())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(policy: Policy, epochs: usize, seed: u64) -> Result<ManyCoreSystem, SchedError> {
        let config = SystemConfig {
            seed,
            ..SystemConfig::default()
        };
        let mut sys = ManyCoreSystem::new(config)?;
        for _ in 0..epochs {
            sys.step(policy)?;
        }
        Ok(sys)
    }

    #[test]
    fn default_config_derives_bias_from_the_assist_circuit() {
        let c = SystemConfig::default();
        assert!(
            c.bti_recovery_bias < Volts::new(-0.5),
            "bias {}",
            c.bti_recovery_bias
        );
    }

    #[test]
    fn unsolvable_assist_circuit_is_a_typed_error_not_a_panic() {
        let broken = AssistCircuit::paper_28nm().with_header_width(0.0);
        let err = SystemConfig::with_assist_circuit(&broken).unwrap_err();
        assert!(
            matches!(err, SchedError::AssistCircuit(_)),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("header_width"), "{err}");
    }

    #[test]
    fn config_from_assist_circuit_matches_default() -> Result<(), SchedError> {
        let from_circuit = SystemConfig::with_assist_circuit(&AssistCircuit::paper_28nm())?;
        assert_eq!(
            from_circuit.bti_recovery_bias,
            SystemConfig::default().bti_recovery_bias
        );
        Ok(())
    }

    #[test]
    fn metrics_track_modes_transitions_and_healing() -> Result<(), SchedError> {
        // Periodic deep recovery (period 1): every core is in BTI-AR every
        // epoch — one power-on transition per core, recovery scheduled and
        // ΔVth healed every epoch.
        let deep = run(Policy::periodic_deep_default(), 40, 1)?;
        let m = deep.metrics();
        assert_eq!(m.epochs, 40);
        assert_eq!(m.core_epochs, 40 * 16);
        assert_eq!(m.epochs_bti_ar, 40 * 16);
        assert_eq!(m.epochs_normal, 0);
        assert_eq!(m.transitions_to_bti_ar, 16);
        assert_eq!(m.mode_transitions(), 16);
        // periodic_deep_default schedules 15 % of each 6 h epoch.
        let expected = 40.0 * 16.0 * 0.15 * Seconds::from_hours(6.0).value();
        assert!(
            (m.bti_recovery_seconds - expected).abs() < 1e-6,
            "scheduled {} vs expected {expected}",
            m.bti_recovery_seconds
        );
        assert!(m.bti_healed_mv > 0.0, "deep recovery must heal ΔVth");
        assert!(m.em_damage_healed > 0.0, "EM duty must heal damage");
        assert!(m.em_recovery_core_seconds > 0.0);

        // No recovery: everything is Normal and nothing heals.
        let none = run(Policy::NoRecovery, 40, 1)?;
        let m = none.metrics();
        assert_eq!(m.epochs_normal, 40 * 16);
        assert_eq!(m.transitions_to_normal, 16);
        assert_eq!(m.bti_recovery_seconds, 0.0);
        assert_eq!(m.bti_healed_mv, 0.0);
        assert_eq!(m.em_damage_healed, 0.0);

        // Rotation flips each core between dark (BTI-AR) and lit (EM duty)
        // epochs, so transitions keep accumulating past power-on.
        let rotation = run(Policy::rotation_default(), 40, 1)?;
        let m = rotation.metrics();
        assert!(m.epochs_bti_ar > 0 && m.epochs_em_ar > 0);
        assert!(
            m.mode_transitions() > 16,
            "rotation must keep transitioning: {}",
            m.mode_transitions()
        );
        Ok(())
    }

    #[test]
    fn wearout_accumulates_without_recovery() -> Result<(), SchedError> {
        let sys = run(Policy::NoRecovery, 120, 1)?;
        assert!(
            sys.worst_delta_vth_mv() > 1.0,
            "ΔVth {}",
            sys.worst_delta_vth_mv()
        );
        assert!(sys.worst_em_damage().value() > 0.0);
        assert_eq!(sys.epochs(), 120);
        assert_eq!(sys.time(), Seconds::from_hours(720.0));
        Ok(())
    }

    #[test]
    fn passive_idle_is_better_than_no_recovery() -> Result<(), SchedError> {
        let none = run(Policy::NoRecovery, 120, 1)?;
        let passive = run(Policy::PassiveIdle, 120, 1)?;
        assert!(
            passive.worst_delta_vth_mv() < none.worst_delta_vth_mv(),
            "passive {} vs none {}",
            passive.worst_delta_vth_mv(),
            none.worst_delta_vth_mv()
        );
        Ok(())
    }

    #[test]
    fn periodic_deep_recovery_beats_passive_idle() -> Result<(), SchedError> {
        let passive = run(Policy::PassiveIdle, 120, 1)?;
        let deep = run(Policy::periodic_deep_default(), 120, 1)?;
        assert!(
            deep.worst_delta_vth_mv() < passive.worst_delta_vth_mv(),
            "deep {} vs passive {}",
            deep.worst_delta_vth_mv(),
            passive.worst_delta_vth_mv()
        );
        // EM duty also reduces grid damage.
        assert!(deep.worst_em_damage() < passive.worst_em_damage());
        Ok(())
    }

    #[test]
    fn em_damage_respects_the_pinned_floor() -> Result<(), SchedError> {
        let sys = run(Policy::periodic_deep_default(), 200, 2)?;
        for core in &sys.cores {
            assert!(core.em_damage >= sys.config.em_pinned_floor.value() * core.em_peak - 1e-12);
            assert!(core.em_damage <= 1.0);
        }
        Ok(())
    }

    #[test]
    fn same_seed_is_bit_reproducible() -> Result<(), SchedError> {
        let a = run(Policy::adaptive_default(), 60, 5)?;
        let b = run(Policy::adaptive_default(), 60, 5)?;
        assert_eq!(a.worst_delta_vth_mv(), b.worst_delta_vth_mv());
        assert_eq!(a.worst_em_damage(), b.worst_em_damage());
        Ok(())
    }

    #[test]
    fn different_seeds_differ() -> Result<(), SchedError> {
        let a = run(Policy::adaptive_default(), 60, 5)?;
        let b = run(Policy::adaptive_default(), 60, 6)?;
        assert_ne!(a.worst_delta_vth_mv(), b.worst_delta_vth_mv());
        Ok(())
    }

    #[test]
    fn busy_cores_run_hotter_than_ambient() -> Result<(), SchedError> {
        let mut sys = ManyCoreSystem::new(SystemConfig::default())?;
        let status = sys.step(Policy::PassiveIdle)?;
        for s in &status {
            assert!(s.temperature.to_celsius().value() > 45.0);
        }
        Ok(())
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // mutating one field is the point
    fn invalid_configs_are_rejected() {
        let mut c = SystemConfig::default();
        c.rows = 0;
        assert!(ManyCoreSystem::new(c).is_err());
        let mut c = SystemConfig::default();
        c.epoch = Seconds::ZERO;
        assert!(ManyCoreSystem::new(c).is_err());
        let mut c = SystemConfig::default();
        c.bti_recovery_bias = Volts::new(0.3);
        assert!(ManyCoreSystem::new(c).is_err());
        let mut c = SystemConfig::default();
        c.sensor_window = 0;
        assert!(ManyCoreSystem::new(c).is_err());
    }

    #[test]
    fn rotation_at_epoch_granularity_cannot_prevent_permanent_damage() -> Result<(), SchedError> {
        // An honest negative result that *confirms* the paper's in-time
        // requirement: with 2 of 16 cores dark per 6 h epoch, each core is
        // deep-healed only every 48 h — far beyond the ~2 h consolidation
        // window — so the permanent component is NOT meaningfully reduced
        // versus passive idling (and the displaced work even raises the
        // recoverable ripple on the lit cores). Effective rotation must
        // cycle faster than consolidation, which is what the per-epoch
        // `periodic_deep_default` schedule achieves.
        let passive = run(Policy::PassiveIdle, 160, 7)?;
        let rotation = run(Policy::rotation_default(), 160, 7)?;
        let periodic = run(Policy::periodic_deep_default(), 160, 7)?;
        assert!(
            rotation.worst_permanent_mv() > 0.7 * passive.worst_permanent_mv(),
            "48 h rotation should not beat passive on permanent damage: {} vs {}",
            rotation.worst_permanent_mv(),
            passive.worst_permanent_mv()
        );
        assert!(
            periodic.worst_permanent_mv() < 0.3 * rotation.worst_permanent_mv(),
            "in-time per-epoch healing must crush 48 h rotation: {} vs {}",
            periodic.worst_permanent_mv(),
            rotation.worst_permanent_mv()
        );
        Ok(())
    }

    #[test]
    fn rotation_periodically_refreshes_each_core() -> Result<(), SchedError> {
        // What rotation *does* deliver: right after its dark epoch a core
        // is near-fresh, far below the fleet's worst.
        let mut sys = ManyCoreSystem::new(SystemConfig::default())?;
        for _ in 0..32 {
            sys.step(Policy::rotation_default())?;
        }
        // Core darkened in the previous epoch: epoch 31 darkens cores
        // (31·2)%16 = 14 and 15.
        let fresh = sys.cores[14].bti.delta_vth_mv();
        let worst = sys.worst_delta_vth_mv();
        // The residue is mostly the (consolidated) permanent component.
        assert!(
            fresh < 0.5 * worst,
            "just-healed core {fresh} vs worst {worst}"
        );
        Ok(())
    }

    #[test]
    fn rotation_darkens_cores_in_turn() -> Result<(), SchedError> {
        let mut sys = ManyCoreSystem::new(SystemConfig::default())?;
        let mut dark_seen = vec![false; 16];
        for _ in 0..8 {
            let status = sys.step(Policy::rotation_default())?;
            let dark: Vec<usize> = status
                .iter()
                .enumerate()
                .filter(|(_, s)| s.bti_recovery == Fraction::ONE)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(dark.len(), 2, "two spares per epoch");
            for d in dark {
                dark_seen[d] = true;
            }
        }
        assert!(
            dark_seen.iter().all(|&d| d),
            "every core rotates dark: {dark_seen:?}"
        );
        Ok(())
    }

    #[test]
    fn trap_monitor_shadows_core_zero() -> Result<(), SchedError> {
        let missing = || SchedError::InvalidConfig("monitor not attached".into());
        let mut with_monitor =
            ManyCoreSystem::new(SystemConfig::default())?.with_trap_monitor(800)?;
        let mut without = ManyCoreSystem::new(SystemConfig::default())?;
        assert!(without.trap_monitor_dvth_mv().is_none());
        for _ in 0..20 {
            with_monitor.step(Policy::periodic_deep_default())?;
            without.step(Policy::periodic_deep_default())?;
        }
        let monitor = with_monitor.trap_monitor_dvth_mv().ok_or_else(missing)?;
        let analytic = with_monitor.cores[0].bti.delta_vth_mv();
        assert!(monitor > 0.0, "monitor must age: {monitor}");
        assert!(
            (monitor - analytic).abs() / analytic < 0.6,
            "Monte-Carlo monitor {monitor} should track the analytic core {analytic}"
        );
        assert!(
            with_monitor
                .trap_monitor_permanent_mv()
                .ok_or_else(missing)?
                >= 0.0
        );
        // The monitor is an observer: the fleet itself is unchanged.
        assert_eq!(
            with_monitor.worst_delta_vth_mv(),
            without.worst_delta_vth_mv()
        );
        Ok(())
    }

    #[test]
    fn trap_monitor_rejects_empty_ensembles() -> Result<(), SchedError> {
        let sys = ManyCoreSystem::new(SystemConfig::default())?;
        assert!(sys.with_trap_monitor(0).is_err());
        Ok(())
    }

    #[test]
    fn adaptive_policy_reacts_to_accumulating_wearout() -> Result<(), SchedError> {
        // Early on, no recovery is scheduled; once the sensed shift
        // crosses the threshold, recovery epochs appear.
        let config = SystemConfig::default();
        let mut sys = ManyCoreSystem::new(config)?;
        let policy = Policy::adaptive_default();
        let mut early_recovery = 0.0;
        let mut late_recovery = 0.0;
        for epoch in 0..400 {
            let status = sys.step(policy)?;
            let total: f64 = status.iter().map(|s| s.bti_recovery.value()).sum();
            if epoch < 20 {
                early_recovery += total;
            } else {
                late_recovery += total;
            }
        }
        assert!(
            late_recovery > early_recovery,
            "late {late_recovery} vs early {early_recovery}"
        );
        Ok(())
    }

    #[test]
    fn healthy_sensors_are_never_flagged() -> Result<(), SchedError> {
        // The BTI sensor clamps sub-floor inferences to exactly 0.0, so a
        // young fleet emits long runs of repeated zeros — the staleness
        // detector must not mistake those for a latched sensor.
        let sys = run(Policy::adaptive_default(), 400, 5)?;
        assert!(
            sys.sensor_incidents().is_empty(),
            "false positives: {:?}",
            sys.sensor_incidents()
        );
        assert_eq!(sys.metrics().sensor_faults_detected, 0);
        assert_eq!(sys.metrics().conservative_core_epochs, 0);
        assert_eq!(sys.degraded_cores(), 0);
        Ok(())
    }

    #[test]
    fn stuck_sensor_degrades_its_core_to_conservative_healing() -> Result<(), SchedError> {
        let mut sys = ManyCoreSystem::new(SystemConfig::default())?;
        let policy = Policy::adaptive_default();
        // Age the fleet first so the latched reading is nonzero (a sensor
        // stuck at a fresh device's legitimate 0.0 is indistinguishable
        // from health until wear appears).
        for _ in 0..120 {
            sys.step(policy)?;
        }
        sys.inject_sensor_fault(3, SensorFaultKind::Stuck)?;
        let mut healed_after_flag = false;
        for _ in 0..40 {
            let status = sys.step(policy)?;
            if sys.cores[3].guard.faulted() && status[3].bti_recovery.value() > 0.0 {
                healed_after_flag = true;
            }
        }
        let incidents = sys.sensor_incidents();
        assert_eq!(incidents.len(), 1, "exactly one flagged sensor");
        assert_eq!(incidents[0].chip, 3);
        assert_eq!(incidents[0].kind, SensorFaultKind::Stuck);
        assert_eq!(sys.metrics().sensor_faults_detected, 1);
        assert!(
            sys.metrics().conservative_core_epochs > 0,
            "the distrusted core must fall back to the conservative policy"
        );
        assert_eq!(sys.degraded_cores(), 1);
        assert!(
            healed_after_flag,
            "degradation must still schedule recovery, never skip it"
        );
        Ok(())
    }

    #[test]
    fn dropped_sensor_is_flagged_within_the_staleness_window() -> Result<(), SchedError> {
        let config = SystemConfig::default();
        let stale_after = config.sensor_stale_epochs as usize;
        let mut sys = ManyCoreSystem::new(config)?;
        sys.inject_sensor_fault(0, SensorFaultKind::Dropped)?;
        for _ in 0..(stale_after + 2) {
            sys.step(Policy::adaptive_default())?;
        }
        // A dead sensor returns NaN from its very first reading, so the
        // flag lands as soon as the window fills — wear level irrelevant.
        assert_eq!(sys.sensor_incidents().len(), 1);
        assert_eq!(sys.sensor_incidents()[0].kind, SensorFaultKind::Dropped);
        assert_eq!(
            sys.sensor_incidents()[0].epoch,
            stale_after as u64 - 1,
            "flagged on the last epoch of the staleness window"
        );
        Ok(())
    }

    #[test]
    fn noisy_sensor_is_absorbed_by_the_median_filter() -> Result<(), SchedError> {
        // Periodic 50x spikes on one core's sensor: the median filter
        // rejects them, so the adaptive trajectory stays close to the
        // clean run and the sensor is never flagged (it is live, just
        // noisy — staleness is the wrong verdict).
        let clean = run(Policy::adaptive_default(), 200, 5)?;
        let mut noisy = ManyCoreSystem::new(SystemConfig {
            seed: 5,
            ..SystemConfig::default()
        })?;
        noisy.inject_sensor_fault(7, SensorFaultKind::Noisy(50.0))?;
        for _ in 0..200 {
            noisy.step(Policy::adaptive_default())?;
        }
        assert!(noisy.sensor_incidents().is_empty());
        let a = clean.worst_delta_vth_mv();
        let b = noisy.worst_delta_vth_mv();
        assert!(
            (a - b).abs() / a < 0.25,
            "noisy run {b} must stay close to clean run {a}"
        );
        Ok(())
    }

    #[test]
    fn fault_plans_map_onto_cores() -> Result<(), SchedError> {
        let plan = FaultPlan::parse("stuck-chip=6", 9)
            .map_err(|e| SchedError::InvalidConfig(e.to_string()))?;
        let mut sys = ManyCoreSystem::new(SystemConfig::default())?;
        sys.apply_fault_plan(&plan);
        assert_eq!(sys.cores[6].fault, Some(SensorFaultKind::Stuck));
        assert!(sys.cores.iter().filter(|c| c.fault.is_some()).count() == 1);
        Ok(())
    }

    #[test]
    fn sensor_fault_injection_rejects_missing_cores() -> Result<(), SchedError> {
        let mut sys = ManyCoreSystem::new(SystemConfig::default())?;
        let err = sys
            .inject_sensor_fault(99, SensorFaultKind::Dropped)
            .unwrap_err();
        assert_eq!(
            err,
            SchedError::CoreOutOfRange {
                core: 99,
                cores: 16
            }
        );
        Ok(())
    }

    #[test]
    fn open_loop_policies_ignore_sensor_faults() -> Result<(), SchedError> {
        // Periodic deep recovery never reads sensors, so even a dead
        // sensor changes nothing — no incidents, no degraded cores.
        let mut sys = ManyCoreSystem::new(SystemConfig::default())?;
        sys.inject_sensor_fault(2, SensorFaultKind::Dropped)?;
        for _ in 0..20 {
            sys.step(Policy::periodic_deep_default())?;
        }
        assert!(sys.sensor_incidents().is_empty());
        assert_eq!(sys.degraded_cores(), 0);
        Ok(())
    }
}
