//! The many-core system: BTI devices, EM damage, thermal grid, sensors,
//! and a policy-driven epoch loop.
//!
//! Each core tile carries:
//!
//! * a [`BtiDevice`] stressed at the core's supply and temperature while
//!   running, passively recovering while idle, and deeply recovering (at
//!   the assist circuitry's swap bias) when the policy schedules it;
//! * an **EM damage** accumulator for its local power grid: Miner's-rule
//!   integration of `1/TTF(j, T)` from the Black model, healed by the EM
//!   active-recovery duty (with a pinned floor — the permanent component);
//! * a noisy BTI sensor (replica RO) and EM sensor feeding the policy.
//!
//! Temperatures come from the RC thermal grid: busy cores heat up, and a
//! recovering (dark) core is heated by its neighbours — which *helps*,
//! because recovery accelerates with temperature (the paper's Fig. 12(a)
//! dark-silicon argument).

use dh_bti::{BtiDevice, RecoveryCondition, StressCondition, TrapEnsemble};
use dh_circuit::assist::{AssistCircuit, Mode};
use dh_em::black::BlackModel;
use dh_thermal::{GridConfig, ThermalGrid};
use dh_units::{CurrentDensity, Fraction, Kelvin, Seconds, Volts};

use crate::error::SchedError;
use crate::metrics::{CoreMode, MetricsReport};
use crate::policy::Policy;
use crate::sensor::{BtiSensor, EmSensor};
use crate::workload::WorkloadGenerator;

/// Configuration of the many-core system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Core-grid rows (also the thermal-tile rows).
    pub rows: usize,
    /// Core-grid columns.
    pub cols: usize,
    /// Core supply voltage.
    pub vdd: Volts,
    /// Epoch length (scheduling granularity).
    pub epoch: Seconds,
    /// Peak per-core power at full utilization, watts.
    pub peak_power_w: f64,
    /// Idle per-core power, watts.
    pub idle_power_w: f64,
    /// Local-grid current density at full utilization.
    pub j_local: CurrentDensity,
    /// Gate bias applied during deep BTI recovery (from the assist
    /// circuitry's rail swap; negative).
    pub bti_recovery_bias: Volts,
    /// Healing efficiency of EM current reversal.
    pub em_heal_efficiency: Fraction,
    /// Pinned (permanent) EM damage floor, as a fraction of the peak
    /// damage reached.
    pub em_pinned_floor: Fraction,
    /// Relative noise of the BTI sensors.
    pub bti_sensor_noise: f64,
    /// Relative noise of the EM sensors.
    pub em_sensor_noise: f64,
    /// Root seed for workloads and sensors.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        // The deep-recovery bias comes from the assist circuitry itself:
        // the rail swap of Fig. 9(b) applies ≈−0.6 V to the idle load. The
        // paper circuit always solves; the published Fig. 9(b) value keeps
        // `default()` total if a future model change ever breaks that.
        let bias = AssistCircuit::paper_28nm()
            .solve(Mode::BtiActiveRecovery)
            .map(|s| s.bti_recovery_bias())
            .unwrap_or(Volts::new(-0.593));
        Self {
            rows: 4,
            cols: 4,
            vdd: Volts::new(0.9),
            epoch: Seconds::from_hours(6.0),
            peak_power_w: 1.5,
            idle_power_w: 0.2,
            j_local: CurrentDensity::from_ma_per_cm2(2.5),
            bti_recovery_bias: bias,
            em_heal_efficiency: Fraction::clamped(0.9),
            em_pinned_floor: Fraction::clamped(0.05),
            bti_sensor_noise: 0.002,
            em_sensor_noise: 0.05,
            seed: 42,
        }
    }
}

impl SystemConfig {
    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.rows * self.cols
    }

    /// A default configuration whose deep-recovery bias is derived by
    /// solving `circuit` in BTI-Active-Recovery mode — the explicit,
    /// fallible form of what [`Default::default`] does with the paper's
    /// 28 nm circuit.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::AssistCircuit`] when the circuit has
    /// non-physical parameters or its network is singular, so a malformed
    /// assist design fails recoverably instead of panicking.
    pub fn with_assist_circuit(circuit: &AssistCircuit) -> Result<Self, SchedError> {
        let bias = circuit.solve(Mode::BtiActiveRecovery)?.bti_recovery_bias();
        Ok(Self {
            bti_recovery_bias: bias,
            ..Self::default()
        })
    }
}

/// Per-core wearout and sensing state.
#[derive(Debug, Clone)]
struct Core {
    bti: BtiDevice,
    em_damage: f64,
    em_peak: f64,
    bti_sensor: BtiSensor,
    em_sensor: EmSensor,
    /// Last sensed values (fed to the policy at the next epoch).
    sensed_dvth_mv: f64,
    sensed_em: Fraction,
    /// Mode of the previous epoch (None before the first step), for
    /// transition accounting.
    last_mode: Option<CoreMode>,
}

/// Per-epoch, per-core record of what the scheduler did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreStatus {
    /// True |ΔVth|, millivolts.
    pub delta_vth_mv: f64,
    /// True EM damage fraction.
    pub em_damage: Fraction,
    /// Tile temperature this epoch.
    pub temperature: Kelvin,
    /// Fraction of this epoch spent in deep BTI recovery.
    pub bti_recovery: Fraction,
    /// Work demanded by the workload but displaced by recovery this epoch
    /// (fraction of the epoch). Zero when recovery fits in the idle budget.
    pub displaced_work: Fraction,
    /// Work demanded by the workload this epoch (fraction of the epoch).
    pub demanded_work: Fraction,
}

/// The policy-driven many-core system.
#[derive(Debug, Clone)]
pub struct ManyCoreSystem {
    config: SystemConfig,
    cores: Vec<Core>,
    thermal: ThermalGrid,
    workload: WorkloadGenerator,
    black: BlackModel,
    epoch_index: usize,
    time: Seconds,
    /// Routes hot paths through the pre-optimization reference code
    /// (baseline measurements only).
    reference_mode: bool,
    /// Optional CET trap ensemble shadowing core 0's stress/recovery
    /// schedule — the Monte-Carlo cross-check of the analytic fleet.
    trap_monitor: Option<TrapEnsemble>,
    /// Always-on scheduling metrics (mode transitions, recovery time
    /// scheduled, wearout healed).
    metrics: MetricsReport,
}

impl ManyCoreSystem {
    /// Builds a fresh system.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidConfig`] for degenerate dimensions or
    /// epoch, or a thermal error for inconsistent grid parameters.
    pub fn new(config: SystemConfig) -> Result<Self, SchedError> {
        if config.rows == 0 || config.cols == 0 {
            return Err(SchedError::InvalidConfig(
                "core grid must be non-empty".into(),
            ));
        }
        if !(config.epoch.value() > 0.0) {
            return Err(SchedError::InvalidConfig("epoch must be positive".into()));
        }
        if config.bti_recovery_bias >= Volts::ZERO {
            return Err(SchedError::InvalidConfig(
                "BTI recovery bias must be negative (it reverses the stress)".into(),
            ));
        }
        let thermal = ThermalGrid::new(GridConfig {
            rows: config.rows,
            cols: config.cols,
            ..GridConfig::manycore_4x4()
        })?;
        let cores = (0..config.cores())
            .map(|i| Core {
                bti: BtiDevice::paper_calibrated(),
                em_damage: 0.0,
                em_peak: 0.0,
                bti_sensor: BtiSensor::new(
                    dh_circuit::RingOscillator::paper_75_stage(),
                    config.bti_sensor_noise,
                    config.seed ^ (i as u64) << 8 | 1,
                ),
                em_sensor: EmSensor::new(config.em_sensor_noise, config.seed ^ (i as u64) << 8 | 2),
                sensed_dvth_mv: 0.0,
                sensed_em: Fraction::ZERO,
                last_mode: None,
            })
            .collect();
        let workload = WorkloadGenerator::heterogeneous(config.cores(), config.seed);
        Ok(Self {
            config,
            cores,
            thermal,
            workload,
            black: BlackModel::calibrated_to_paper(),
            epoch_index: 0,
            time: Seconds::ZERO,
            reference_mode: false,
            trap_monitor: None,
            metrics: MetricsReport::default(),
        })
    }

    /// Attaches a CET trap-ensemble monitor that shadows core 0's full
    /// stress/idle/deep-recovery schedule. The Monte-Carlo ensemble is the
    /// paper's "Measurement" column, so the monitor cross-validates the
    /// analytic per-core devices at fleet scale.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidConfig`] when the ensemble cannot be
    /// calibrated (e.g. zero traps).
    pub fn with_trap_monitor(mut self, traps: usize) -> Result<Self, SchedError> {
        let ensemble = TrapEnsemble::paper_calibrated(traps)
            .map_err(|e| SchedError::InvalidConfig(format!("trap monitor: {e}")))?;
        self.trap_monitor = Some(ensemble);
        Ok(self)
    }

    /// The monitor's |ΔVth| in millivolts, or `None` when no monitor is
    /// attached.
    pub fn trap_monitor_dvth_mv(&self) -> Option<f64> {
        self.trap_monitor.as_ref().map(|m| m.delta_vth_mv())
    }

    /// The monitor's consolidated (permanent) component in millivolts.
    pub fn trap_monitor_permanent_mv(&self) -> Option<f64> {
        self.trap_monitor.as_ref().map(|m| m.permanent_mv())
    }

    /// Routes the thermal settle and BTI stress steps through the
    /// pre-optimization reference implementations, so `perf_snapshot` can
    /// measure the optimized engine against the seed's serial code in the
    /// same binary. Not part of the API.
    #[doc(hidden)]
    pub fn set_reference_mode(&mut self, on: bool) {
        self.reference_mode = on;
        self.thermal.set_reference_solver(on);
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Elapsed simulated time.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Epochs simulated so far.
    pub fn epochs(&self) -> usize {
        self.epoch_index
    }

    /// The scheduling metrics accumulated so far (always on; see
    /// [`MetricsReport`]).
    pub fn metrics(&self) -> &MetricsReport {
        &self.metrics
    }

    /// Advances one epoch under `policy`, returning per-core status.
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors (cannot occur with validated
    /// configurations).
    pub fn step(&mut self, policy: Policy) -> Result<Vec<CoreStatus>, SchedError> {
        let mut utils = self.workload.sample(self.time);
        let n = self.cores.len();

        // The rotation policy migrates the dark cores' work onto the rest.
        if let Policy::DarkSiliconRotation { spares, .. } = policy {
            let dark: Vec<bool> = (0..n)
                .map(|i| Policy::is_dark(self.epoch_index, i, n, spares))
                .collect();
            let displaced: f64 = utils
                .iter()
                .zip(&dark)
                .filter(|(_, &d)| d)
                .map(|(u, _)| u.value())
                .sum();
            let active = dark.iter().filter(|&&d| !d).count().max(1);
            let extra = displaced / active as f64;
            for (u, &d) in utils.iter_mut().zip(&dark) {
                *u = if d {
                    Fraction::ZERO
                } else {
                    Fraction::clamped(u.value() + extra)
                };
            }
        }

        // Plans come from last epoch's sensor readings.
        let plans: Vec<_> = self
            .cores
            .iter()
            .enumerate()
            .zip(&utils)
            .map(|((i, core), &util)| {
                policy.plan(
                    self.epoch_index,
                    i,
                    n,
                    util,
                    core.sensed_dvth_mv,
                    core.sensed_em,
                )
            })
            .collect();

        // Thermal: power follows the executed work (deep recovery = dark).
        let powers: Vec<f64> = plans
            .iter()
            .zip(&utils)
            .map(|(plan, &util)| {
                let executed = util.value().min(plan.run.value());
                self.config.idle_power_w
                    + executed * (self.config.peak_power_w - self.config.idle_power_w)
            })
            .collect();
        self.thermal.settle(&powers)?;

        let epoch = self.config.epoch;
        let metrics_before = self.metrics.clone();
        let mut out = Vec::with_capacity(self.cores.len());
        for (i, core) in self.cores.iter_mut().enumerate() {
            let temp = self
                .thermal
                .temperature(i / self.config.cols, i % self.config.cols);
            let plan = plans[i];
            let util = utils[i];
            let executed = util.value().min(plan.run.value());

            // --- Mode accounting (always on; the arithmetic is free) ---
            let mode = CoreMode::classify(&plan);
            self.metrics
                .observe_core_epoch(mode, core.last_mode != Some(mode));
            core.last_mode = Some(mode);

            // --- BTI ---
            let stress_cond = StressCondition {
                gate_voltage: self.config.vdd,
                temperature: temp,
            };
            if self.reference_mode {
                core.bti
                    .stress_reference(epoch * plan.run.value(), stress_cond);
            } else {
                core.bti.stress(epoch * plan.run.value(), stress_cond);
            }
            if plan.idle().value() > 0.0 {
                // Powered-but-idle: gates sit at 0 bias — passive recovery
                // at the tile temperature.
                core.bti.recover(
                    epoch * plan.idle().value(),
                    RecoveryCondition {
                        gate_voltage: Volts::ZERO,
                        temperature: temp,
                    },
                );
            }
            if plan.bti_recovery.value() > 0.0 {
                // Deep recovery at the assist circuitry's swap bias; the
                // dark core is kept warm by its neighbours (temp is the
                // settled tile temperature).
                let dvth_before = core.bti.delta_vth_mv();
                core.bti.recover(
                    epoch * plan.bti_recovery.value(),
                    RecoveryCondition {
                        gate_voltage: self.config.bti_recovery_bias,
                        temperature: temp,
                    },
                );
                self.metrics.bti_recovery_seconds += epoch.value() * plan.bti_recovery.value();
                self.metrics.bti_healed_mv += (dvth_before - core.bti.delta_vth_mv()).max(0.0);
            }

            // The trap monitor shadows core 0's schedule exactly.
            if i == 0 {
                if let Some(monitor) = self.trap_monitor.as_mut() {
                    monitor.stress(epoch * plan.run.value(), stress_cond);
                    if plan.idle().value() > 0.0 {
                        monitor.recover(
                            epoch * plan.idle().value(),
                            RecoveryCondition {
                                gate_voltage: Volts::ZERO,
                                temperature: temp,
                            },
                        );
                    }
                    if plan.bti_recovery.value() > 0.0 {
                        monitor.recover(
                            epoch * plan.bti_recovery.value(),
                            RecoveryCondition {
                                gate_voltage: self.config.bti_recovery_bias,
                                temperature: temp,
                            },
                        );
                    }
                }
            }

            // --- EM (Miner's rule over the local grid) ---
            let j = CurrentDensity::new(self.config.j_local.value() * executed.max(0.0));
            if j.value() > 0.0 {
                let ttf = self.black.median_ttf(j, temp);
                let stress_time = epoch.value() * executed;
                let d = plan.em_recovery_duty.value();
                let eta = self.config.em_heal_efficiency.value();
                let wear_factor = (1.0 - d) - eta * d;
                self.metrics.em_damage_healed += stress_time / ttf.value() * eta * d;
                self.metrics.em_recovery_core_seconds += stress_time * d;
                core.em_damage += stress_time / ttf.value() * wear_factor;
                core.em_peak = core.em_peak.max(core.em_damage);
                // Healing cannot undo the pinned component.
                let floor = self.config.em_pinned_floor.value() * core.em_peak;
                core.em_damage = core.em_damage.clamp(floor, 1.0);
            }

            // --- Sensing for the next epoch ---
            // Open-loop policies never read the measurements, so only the
            // adaptive policy (or the reference baseline, which always
            // sensed) pays for them.
            if self.reference_mode {
                core.sensed_dvth_mv = core.bti_sensor.measure_reference(core.bti.delta_vth_mv());
                core.sensed_em = core.em_sensor.measure(Fraction::clamped(core.em_damage));
            } else if policy.uses_sensors() {
                core.sensed_dvth_mv = core.bti_sensor.measure(core.bti.delta_vth_mv());
                core.sensed_em = core.em_sensor.measure(Fraction::clamped(core.em_damage));
            }

            out.push(CoreStatus {
                delta_vth_mv: core.bti.delta_vth_mv(),
                em_damage: Fraction::clamped(core.em_damage),
                temperature: temp,
                bti_recovery: plan.bti_recovery,
                displaced_work: Fraction::clamped(util.value() - executed),
                demanded_work: util,
            });
        }

        self.metrics.epochs += 1;
        // Mirror this epoch's deltas into the global registry under
        // per-policy names, so one process can compare policies. Compiles
        // to nothing without the `obs` feature.
        if dh_obs::ENABLED {
            let m = &self.metrics;
            let name = policy.name();
            dh_obs::counter(&format!("sched.{name}.epochs")).incr();
            dh_obs::counter(&format!("sched.{name}.transitions_to_normal"))
                .add(m.transitions_to_normal - metrics_before.transitions_to_normal);
            dh_obs::counter(&format!("sched.{name}.transitions_to_em_ar"))
                .add(m.transitions_to_em_ar - metrics_before.transitions_to_em_ar);
            dh_obs::counter(&format!("sched.{name}.transitions_to_bti_ar"))
                .add(m.transitions_to_bti_ar - metrics_before.transitions_to_bti_ar);
            dh_obs::counter(&format!("sched.{name}.core_epochs_normal"))
                .add(m.epochs_normal - metrics_before.epochs_normal);
            dh_obs::counter(&format!("sched.{name}.core_epochs_em_ar"))
                .add(m.epochs_em_ar - metrics_before.epochs_em_ar);
            dh_obs::counter(&format!("sched.{name}.core_epochs_bti_ar"))
                .add(m.epochs_bti_ar - metrics_before.epochs_bti_ar);
            dh_obs::histogram(&format!("sched.{name}.bti_recovery_seconds_per_epoch"))
                .record(m.bti_recovery_seconds - metrics_before.bti_recovery_seconds);
            dh_obs::histogram(&format!("sched.{name}.bti_healed_mv_per_epoch"))
                .record(m.bti_healed_mv - metrics_before.bti_healed_mv);
        }

        self.epoch_index += 1;
        self.time += epoch;
        Ok(out)
    }

    /// The worst (largest) true ΔVth across cores, millivolts.
    pub fn worst_delta_vth_mv(&self) -> f64 {
        self.cores
            .iter()
            .map(|c| c.bti.delta_vth_mv())
            .fold(0.0, f64::max)
    }

    /// The worst true EM damage fraction across cores.
    pub fn worst_em_damage(&self) -> Fraction {
        Fraction::clamped(self.cores.iter().map(|c| c.em_damage).fold(0.0, f64::max))
    }

    /// The worst permanent BTI component across cores, millivolts.
    pub fn worst_permanent_mv(&self) -> f64 {
        self.cores
            .iter()
            .map(|c| c.bti.permanent_mv())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(policy: Policy, epochs: usize, seed: u64) -> ManyCoreSystem {
        let config = SystemConfig {
            seed,
            ..SystemConfig::default()
        };
        let mut sys = ManyCoreSystem::new(config).unwrap();
        for _ in 0..epochs {
            sys.step(policy).unwrap();
        }
        sys
    }

    #[test]
    fn default_config_derives_bias_from_the_assist_circuit() {
        let c = SystemConfig::default();
        assert!(
            c.bti_recovery_bias < Volts::new(-0.5),
            "bias {}",
            c.bti_recovery_bias
        );
    }

    #[test]
    fn unsolvable_assist_circuit_is_a_typed_error_not_a_panic() {
        let broken = AssistCircuit::paper_28nm().with_header_width(0.0);
        let err = SystemConfig::with_assist_circuit(&broken).unwrap_err();
        assert!(
            matches!(err, SchedError::AssistCircuit(_)),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("header_width"), "{err}");
    }

    #[test]
    fn config_from_assist_circuit_matches_default() {
        let from_circuit = SystemConfig::with_assist_circuit(&AssistCircuit::paper_28nm()).unwrap();
        assert_eq!(
            from_circuit.bti_recovery_bias,
            SystemConfig::default().bti_recovery_bias
        );
    }

    #[test]
    fn metrics_track_modes_transitions_and_healing() {
        // Periodic deep recovery (period 1): every core is in BTI-AR every
        // epoch — one power-on transition per core, recovery scheduled and
        // ΔVth healed every epoch.
        let deep = run(Policy::periodic_deep_default(), 40, 1);
        let m = deep.metrics();
        assert_eq!(m.epochs, 40);
        assert_eq!(m.core_epochs, 40 * 16);
        assert_eq!(m.epochs_bti_ar, 40 * 16);
        assert_eq!(m.epochs_normal, 0);
        assert_eq!(m.transitions_to_bti_ar, 16);
        assert_eq!(m.mode_transitions(), 16);
        // periodic_deep_default schedules 15 % of each 6 h epoch.
        let expected = 40.0 * 16.0 * 0.15 * Seconds::from_hours(6.0).value();
        assert!(
            (m.bti_recovery_seconds - expected).abs() < 1e-6,
            "scheduled {} vs expected {expected}",
            m.bti_recovery_seconds
        );
        assert!(m.bti_healed_mv > 0.0, "deep recovery must heal ΔVth");
        assert!(m.em_damage_healed > 0.0, "EM duty must heal damage");
        assert!(m.em_recovery_core_seconds > 0.0);

        // No recovery: everything is Normal and nothing heals.
        let none = run(Policy::NoRecovery, 40, 1);
        let m = none.metrics();
        assert_eq!(m.epochs_normal, 40 * 16);
        assert_eq!(m.transitions_to_normal, 16);
        assert_eq!(m.bti_recovery_seconds, 0.0);
        assert_eq!(m.bti_healed_mv, 0.0);
        assert_eq!(m.em_damage_healed, 0.0);

        // Rotation flips each core between dark (BTI-AR) and lit (EM duty)
        // epochs, so transitions keep accumulating past power-on.
        let rotation = run(Policy::rotation_default(), 40, 1);
        let m = rotation.metrics();
        assert!(m.epochs_bti_ar > 0 && m.epochs_em_ar > 0);
        assert!(
            m.mode_transitions() > 16,
            "rotation must keep transitioning: {}",
            m.mode_transitions()
        );
    }

    #[test]
    fn wearout_accumulates_without_recovery() {
        let sys = run(Policy::NoRecovery, 120, 1);
        assert!(
            sys.worst_delta_vth_mv() > 1.0,
            "ΔVth {}",
            sys.worst_delta_vth_mv()
        );
        assert!(sys.worst_em_damage().value() > 0.0);
        assert_eq!(sys.epochs(), 120);
        assert_eq!(sys.time(), Seconds::from_hours(720.0));
    }

    #[test]
    fn passive_idle_is_better_than_no_recovery() {
        let none = run(Policy::NoRecovery, 120, 1);
        let passive = run(Policy::PassiveIdle, 120, 1);
        assert!(
            passive.worst_delta_vth_mv() < none.worst_delta_vth_mv(),
            "passive {} vs none {}",
            passive.worst_delta_vth_mv(),
            none.worst_delta_vth_mv()
        );
    }

    #[test]
    fn periodic_deep_recovery_beats_passive_idle() {
        let passive = run(Policy::PassiveIdle, 120, 1);
        let deep = run(Policy::periodic_deep_default(), 120, 1);
        assert!(
            deep.worst_delta_vth_mv() < passive.worst_delta_vth_mv(),
            "deep {} vs passive {}",
            deep.worst_delta_vth_mv(),
            passive.worst_delta_vth_mv()
        );
        // EM duty also reduces grid damage.
        assert!(deep.worst_em_damage() < passive.worst_em_damage());
    }

    #[test]
    fn em_damage_respects_the_pinned_floor() {
        let sys = run(Policy::periodic_deep_default(), 200, 2);
        for core in &sys.cores {
            assert!(core.em_damage >= sys.config.em_pinned_floor.value() * core.em_peak - 1e-12);
            assert!(core.em_damage <= 1.0);
        }
    }

    #[test]
    fn same_seed_is_bit_reproducible() {
        let a = run(Policy::adaptive_default(), 60, 5);
        let b = run(Policy::adaptive_default(), 60, 5);
        assert_eq!(a.worst_delta_vth_mv(), b.worst_delta_vth_mv());
        assert_eq!(a.worst_em_damage(), b.worst_em_damage());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(Policy::adaptive_default(), 60, 5);
        let b = run(Policy::adaptive_default(), 60, 6);
        assert_ne!(a.worst_delta_vth_mv(), b.worst_delta_vth_mv());
    }

    #[test]
    fn busy_cores_run_hotter_than_ambient() {
        let mut sys = ManyCoreSystem::new(SystemConfig::default()).unwrap();
        let status = sys.step(Policy::PassiveIdle).unwrap();
        for s in &status {
            assert!(s.temperature.to_celsius().value() > 45.0);
        }
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // mutating one field is the point
    fn invalid_configs_are_rejected() {
        let mut c = SystemConfig::default();
        c.rows = 0;
        assert!(ManyCoreSystem::new(c).is_err());
        let mut c = SystemConfig::default();
        c.epoch = Seconds::ZERO;
        assert!(ManyCoreSystem::new(c).is_err());
        let mut c = SystemConfig::default();
        c.bti_recovery_bias = Volts::new(0.3);
        assert!(ManyCoreSystem::new(c).is_err());
    }

    #[test]
    fn rotation_at_epoch_granularity_cannot_prevent_permanent_damage() {
        // An honest negative result that *confirms* the paper's in-time
        // requirement: with 2 of 16 cores dark per 6 h epoch, each core is
        // deep-healed only every 48 h — far beyond the ~2 h consolidation
        // window — so the permanent component is NOT meaningfully reduced
        // versus passive idling (and the displaced work even raises the
        // recoverable ripple on the lit cores). Effective rotation must
        // cycle faster than consolidation, which is what the per-epoch
        // `periodic_deep_default` schedule achieves.
        let passive = run(Policy::PassiveIdle, 160, 7);
        let rotation = run(Policy::rotation_default(), 160, 7);
        let periodic = run(Policy::periodic_deep_default(), 160, 7);
        assert!(
            rotation.worst_permanent_mv() > 0.7 * passive.worst_permanent_mv(),
            "48 h rotation should not beat passive on permanent damage: {} vs {}",
            rotation.worst_permanent_mv(),
            passive.worst_permanent_mv()
        );
        assert!(
            periodic.worst_permanent_mv() < 0.3 * rotation.worst_permanent_mv(),
            "in-time per-epoch healing must crush 48 h rotation: {} vs {}",
            periodic.worst_permanent_mv(),
            rotation.worst_permanent_mv()
        );
    }

    #[test]
    fn rotation_periodically_refreshes_each_core() {
        // What rotation *does* deliver: right after its dark epoch a core
        // is near-fresh, far below the fleet's worst.
        let mut sys = ManyCoreSystem::new(SystemConfig::default()).unwrap();
        for _ in 0..32 {
            sys.step(Policy::rotation_default()).unwrap();
        }
        // Core darkened in the previous epoch: epoch 31 darkens cores
        // (31·2)%16 = 14 and 15.
        let fresh = sys.cores[14].bti.delta_vth_mv();
        let worst = sys.worst_delta_vth_mv();
        // The residue is mostly the (consolidated) permanent component.
        assert!(
            fresh < 0.5 * worst,
            "just-healed core {fresh} vs worst {worst}"
        );
    }

    #[test]
    fn rotation_darkens_cores_in_turn() {
        let mut sys = ManyCoreSystem::new(SystemConfig::default()).unwrap();
        let mut dark_seen = vec![false; 16];
        for _ in 0..8 {
            let status = sys.step(Policy::rotation_default()).unwrap();
            let dark: Vec<usize> = status
                .iter()
                .enumerate()
                .filter(|(_, s)| s.bti_recovery == Fraction::ONE)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(dark.len(), 2, "two spares per epoch");
            for d in dark {
                dark_seen[d] = true;
            }
        }
        assert!(
            dark_seen.iter().all(|&d| d),
            "every core rotates dark: {dark_seen:?}"
        );
    }

    #[test]
    fn trap_monitor_shadows_core_zero() {
        let mut with_monitor = ManyCoreSystem::new(SystemConfig::default())
            .unwrap()
            .with_trap_monitor(800)
            .unwrap();
        let mut without = ManyCoreSystem::new(SystemConfig::default()).unwrap();
        assert!(without.trap_monitor_dvth_mv().is_none());
        for _ in 0..20 {
            with_monitor.step(Policy::periodic_deep_default()).unwrap();
            without.step(Policy::periodic_deep_default()).unwrap();
        }
        let monitor = with_monitor.trap_monitor_dvth_mv().unwrap();
        let analytic = with_monitor.cores[0].bti.delta_vth_mv();
        assert!(monitor > 0.0, "monitor must age: {monitor}");
        assert!(
            (monitor - analytic).abs() / analytic < 0.6,
            "Monte-Carlo monitor {monitor} should track the analytic core {analytic}"
        );
        assert!(with_monitor.trap_monitor_permanent_mv().unwrap() >= 0.0);
        // The monitor is an observer: the fleet itself is unchanged.
        assert_eq!(
            with_monitor.worst_delta_vth_mv(),
            without.worst_delta_vth_mv()
        );
    }

    #[test]
    fn trap_monitor_rejects_empty_ensembles() {
        let sys = ManyCoreSystem::new(SystemConfig::default()).unwrap();
        assert!(sys.with_trap_monitor(0).is_err());
    }

    #[test]
    fn adaptive_policy_reacts_to_accumulating_wearout() {
        // Early on, no recovery is scheduled; once the sensed shift
        // crosses the threshold, recovery epochs appear.
        let config = SystemConfig::default();
        let mut sys = ManyCoreSystem::new(config).unwrap();
        let policy = Policy::adaptive_default();
        let mut early_recovery = 0.0;
        let mut late_recovery = 0.0;
        for epoch in 0..400 {
            let status = sys.step(policy).unwrap();
            let total: f64 = status.iter().map(|s| s.bti_recovery.value()).sum();
            if epoch < 20 {
                early_recovery += total;
            } else {
                late_recovery += total;
            }
        }
        assert!(
            late_recovery > early_recovery,
            "late {late_recovery} vs early {early_recovery}"
        );
    }
}
