//! Recovery policies: when does a core enter BTI or EM active recovery?
//!
//! Four policy families, matching the progression the paper argues through:
//!
//! * [`Policy::NoRecovery`] — the worst-case-margin baseline: devices are
//!   stressed whenever powered, and nothing is ever healed;
//! * [`Policy::PassiveIdle`] — the conventional approach: idle time gives
//!   passive (slow, partial) recovery only;
//! * [`Policy::PeriodicDeep`] — the paper's scheduled deep healing: short
//!   BTI active-recovery intervals inserted periodically ("bring the chip
//!   back to the fresh status in time") plus an EM current-reversal duty on
//!   the local grids;
//! * [`Policy::Adaptive`] — sensor-driven: recover only when the measured
//!   degradation crosses a threshold (the Fig. 12(b) feedback loop).

use dh_units::Fraction;

/// What a core does during one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochPlan {
    /// Fraction of the epoch spent running the workload (stress).
    pub run: Fraction,
    /// Fraction of the epoch spent in deep BTI active recovery (the core
    /// is offline; its work is assumed shifted to redundant resources).
    pub bti_recovery: Fraction,
    /// Fraction of the *running* time spent with the local grid in EM
    /// active recovery (current reversed; the core keeps operating).
    pub em_recovery_duty: Fraction,
}

impl EpochPlan {
    /// The remaining fraction of the epoch: powered-but-idle time.
    pub fn idle(&self) -> Fraction {
        Fraction::clamped(1.0 - self.run.value() - self.bti_recovery.value())
    }
}

/// A recovery policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// No recovery at all: stress whenever powered (worst-case baseline —
    /// idle time still biases the devices).
    NoRecovery,
    /// Idle time yields passive recovery; nothing is scheduled.
    PassiveIdle,
    /// Deep recovery scheduled every `period_epochs`: the core spends
    /// `bti_fraction` of that epoch in BTI active recovery, and runs with
    /// `em_duty` of current-reversal on its local grid at all times.
    PeriodicDeep {
        /// Scheduling period in epochs.
        period_epochs: usize,
        /// Fraction of the scheduled epoch spent in deep BTI recovery.
        bti_fraction: Fraction,
        /// EM current-reversal duty while running.
        em_duty: Fraction,
    },
    /// Sensor-driven: enter deep BTI recovery for `bti_fraction` of any
    /// epoch whose *measured* ΔVth exceeds `bti_threshold_mv`; enable the
    /// EM duty whenever measured EM damage exceeds `em_threshold`.
    Adaptive {
        /// Measured-ΔVth trigger, millivolts.
        bti_threshold_mv: f64,
        /// Fraction of a triggered epoch spent in deep recovery.
        bti_fraction: Fraction,
        /// Measured EM-damage trigger (fraction of failure).
        em_threshold: Fraction,
        /// EM duty applied once triggered.
        em_duty: Fraction,
    },
    /// Dark-silicon rotation (the paper's Fig. 12(a)): `spares` cores are
    /// dark each epoch, rotating round-robin; a dark core spends the whole
    /// epoch in deep BTI recovery, warmed by its busy neighbours, while its
    /// work shifts to the remaining cores.
    DarkSiliconRotation {
        /// Number of simultaneously dark (recovering) cores.
        spares: usize,
        /// EM current-reversal duty for the running cores.
        em_duty: Fraction,
    },
}

impl Policy {
    /// The paper-flavoured periodic schedule: a **short deep-recovery
    /// interval in every epoch** (15 % of core time, drawn from the idle
    /// budget) plus a 20 % EM reversal duty.
    ///
    /// Frequency matters more than duration here — the paper's own Fig. 4
    /// shows that *in-time* recovery (1 h : 1 h) eliminates the permanent
    /// component while infrequent long recovery (24 h : 6 h) cannot,
    /// because permanent damage consolidates within hours. A sparse
    /// variant (`period_epochs > 1`) is available for the ablation bench.
    pub fn periodic_deep_default() -> Self {
        Self::PeriodicDeep {
            period_epochs: 1,
            bti_fraction: Fraction::clamped(0.15),
            em_duty: Fraction::clamped(0.2),
        }
    }

    /// A reasonable adaptive configuration for the default system: trigger
    /// at 3 mV of measured shift (warm passive recovery keeps the
    /// steady-state shift near that level, so the trigger fires exactly
    /// when wearout starts outrunning passive healing) or at 1 % measured
    /// EM damage.
    pub fn adaptive_default() -> Self {
        Self::Adaptive {
            bti_threshold_mv: 3.0,
            bti_fraction: Fraction::clamped(0.5),
            em_threshold: Fraction::clamped(0.01),
            em_duty: Fraction::clamped(0.3),
        }
    }

    /// The paper-flavoured rotation: two of sixteen cores dark at a time.
    pub fn rotation_default() -> Self {
        Self::DarkSiliconRotation {
            spares: 2,
            em_duty: Fraction::clamped(0.2),
        }
    }

    /// Whether this policy reads the sensor measurements passed to
    /// [`Policy::plan`]. Open-loop policies ignore them, so the system can
    /// skip the per-core measurements entirely.
    pub fn uses_sensors(&self) -> bool {
        matches!(self, Self::Adaptive { .. })
    }

    /// Short human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::NoRecovery => "no-recovery",
            Self::PassiveIdle => "passive-idle",
            Self::PeriodicDeep { .. } => "periodic-deep",
            Self::Adaptive { .. } => "adaptive",
            Self::DarkSiliconRotation { .. } => "rotation",
        }
    }

    /// Plans one epoch for a core.
    ///
    /// * `epoch` — epoch index;
    /// * `core` / `cores` — this core's index and the system's core count
    ///   (used by the rotation policy to pick the dark set);
    /// * `utilization` — the workload's demand this epoch;
    /// * `measured_dvth_mv` / `measured_em_damage` — sensor readings.
    pub fn plan(
        &self,
        epoch: usize,
        core: usize,
        cores: usize,
        utilization: Fraction,
        measured_dvth_mv: f64,
        measured_em_damage: Fraction,
    ) -> EpochPlan {
        match *self {
            Self::NoRecovery => EpochPlan {
                // Powered and biased the whole epoch: stress never stops.
                run: Fraction::ONE,
                bti_recovery: Fraction::ZERO,
                em_recovery_duty: Fraction::ZERO,
            },
            Self::PassiveIdle => EpochPlan {
                run: utilization,
                bti_recovery: Fraction::ZERO,
                em_recovery_duty: Fraction::ZERO,
            },
            Self::PeriodicDeep {
                period_epochs,
                bti_fraction,
                em_duty,
            } => {
                let scheduled = period_epochs.max(1);
                let recovering = epoch % scheduled == scheduled - 1;
                let bti = if recovering {
                    bti_fraction
                } else {
                    Fraction::ZERO
                };
                EpochPlan {
                    run: Fraction::clamped(utilization.value().min(1.0 - bti.value())),
                    bti_recovery: bti,
                    em_recovery_duty: em_duty,
                }
            }
            Self::Adaptive {
                bti_threshold_mv,
                bti_fraction,
                em_threshold,
                em_duty,
            } => {
                let bti = if measured_dvth_mv > bti_threshold_mv {
                    bti_fraction
                } else {
                    Fraction::ZERO
                };
                let em = if measured_em_damage > em_threshold {
                    em_duty
                } else {
                    Fraction::ZERO
                };
                EpochPlan {
                    run: Fraction::clamped(utilization.value().min(1.0 - bti.value())),
                    bti_recovery: bti,
                    em_recovery_duty: em,
                }
            }
            Self::DarkSiliconRotation { spares, em_duty } => {
                if Self::is_dark(epoch, core, cores, spares) {
                    EpochPlan {
                        run: Fraction::ZERO,
                        bti_recovery: Fraction::ONE,
                        em_recovery_duty: Fraction::ZERO,
                    }
                } else {
                    EpochPlan {
                        run: utilization,
                        bti_recovery: Fraction::ZERO,
                        em_recovery_duty: em_duty,
                    }
                }
            }
        }
    }

    /// Whether `core` is in the dark (recovering) set this epoch under a
    /// round-robin rotation with `spares` simultaneous spares.
    pub fn is_dark(epoch: usize, core: usize, cores: usize, spares: usize) -> bool {
        if cores == 0 || spares == 0 {
            return false;
        }
        let spares = spares.min(cores);
        let start = (epoch * spares) % cores;
        let offset = (core + cores - start) % cores;
        offset < spares
    }

    /// The long-run fraction of core time this policy sacrifices to deep
    /// recovery (the overhead the paper trades against guardband).
    pub fn recovery_overhead(&self) -> Fraction {
        match *self {
            Self::NoRecovery | Self::PassiveIdle => Fraction::ZERO,
            Self::PeriodicDeep {
                period_epochs,
                bti_fraction,
                ..
            } => Fraction::clamped(bti_fraction.value() / period_epochs.max(1) as f64),
            // Adaptive overhead depends on the trajectory; report the
            // worst-case (always triggered).
            Self::Adaptive { bti_fraction, .. } => bti_fraction,
            // One spare's worth of time per spare; the denominator is not
            // known here, so report per-16-core default granularity.
            Self::DarkSiliconRotation { spares, .. } => Fraction::clamped(spares as f64 / 16.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_recovery_always_stresses() {
        let plan = Policy::NoRecovery.plan(3, 0, 16, Fraction::clamped(0.2), 50.0, Fraction::ONE);
        assert_eq!(plan.run, Fraction::ONE);
        assert_eq!(plan.bti_recovery, Fraction::ZERO);
        assert_eq!(plan.idle(), Fraction::ZERO);
    }

    #[test]
    fn passive_idle_exposes_idle_time() {
        let plan = Policy::PassiveIdle.plan(0, 0, 16, Fraction::clamped(0.6), 0.0, Fraction::ZERO);
        assert_eq!(plan.run, Fraction::clamped(0.6));
        assert!((plan.idle().value() - 0.4).abs() < 1e-12);
        assert_eq!(plan.em_recovery_duty, Fraction::ZERO);
    }

    #[test]
    fn default_periodic_recovers_a_slice_of_every_epoch() {
        let p = Policy::periodic_deep_default();
        for epoch in 0..24 {
            let plan = p.plan(epoch, 0, 16, Fraction::clamped(0.9), 0.0, Fraction::ZERO);
            assert!(
                (plan.bti_recovery.value() - 0.15).abs() < 1e-12,
                "epoch {epoch}"
            );
            // Run time yields to the recovery interval.
            assert!(plan.run.value() <= 0.85 + 1e-12);
            assert!(plan.em_recovery_duty.value() > 0.0);
        }
    }

    #[test]
    fn sparse_periodic_schedules_on_the_right_epochs() {
        let p = Policy::PeriodicDeep {
            period_epochs: 8,
            bti_fraction: Fraction::clamped(0.5),
            em_duty: Fraction::clamped(0.2),
        };
        for epoch in 0..24 {
            let plan = p.plan(epoch, 0, 16, Fraction::clamped(0.9), 0.0, Fraction::ZERO);
            if epoch % 8 == 7 {
                assert!(
                    plan.bti_recovery.value() > 0.0,
                    "epoch {epoch} should recover"
                );
                assert!(plan.run.value() <= 0.5 + 1e-12);
            } else {
                assert_eq!(plan.bti_recovery, Fraction::ZERO);
            }
        }
    }

    #[test]
    fn adaptive_triggers_on_sensor_readings() {
        let p = Policy::adaptive_default();
        let quiet = p.plan(
            0,
            0,
            16,
            Fraction::clamped(0.5),
            1.0,
            Fraction::clamped(0.001),
        );
        assert_eq!(quiet.bti_recovery, Fraction::ZERO);
        assert_eq!(quiet.em_recovery_duty, Fraction::ZERO);
        let worn = p.plan(
            0,
            0,
            16,
            Fraction::clamped(0.5),
            15.0,
            Fraction::clamped(0.5),
        );
        assert!(worn.bti_recovery.value() > 0.0);
        assert!(worn.em_recovery_duty.value() > 0.0);
    }

    #[test]
    fn epoch_budget_is_never_exceeded() {
        for policy in [
            Policy::NoRecovery,
            Policy::PassiveIdle,
            Policy::periodic_deep_default(),
            Policy::adaptive_default(),
        ] {
            for epoch in 0..16 {
                for util in [0.0, 0.3, 0.8, 1.0] {
                    let plan = policy.plan(
                        epoch,
                        1,
                        16,
                        Fraction::clamped(util),
                        20.0,
                        Fraction::clamped(0.5),
                    );
                    let total = plan.run.value() + plan.bti_recovery.value();
                    assert!(total <= 1.0 + 1e-12, "{}: budget {total}", policy.name());
                }
            }
        }
    }

    #[test]
    fn overhead_reporting() {
        assert_eq!(Policy::NoRecovery.recovery_overhead(), Fraction::ZERO);
        let p = Policy::periodic_deep_default();
        assert!((p.recovery_overhead().value() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Policy::NoRecovery.name(), "no-recovery");
        assert_eq!(Policy::periodic_deep_default().name(), "periodic-deep");
        assert_eq!(Policy::rotation_default().name(), "rotation");
    }

    #[test]
    fn rotation_darkens_exactly_spares_cores_per_epoch() {
        let cores = 16;
        for spares in [1, 2, 4] {
            for epoch in 0..40 {
                let dark = (0..cores)
                    .filter(|&c| Policy::is_dark(epoch, c, cores, spares))
                    .count();
                assert_eq!(dark, spares, "epoch {epoch}, spares {spares}");
            }
        }
    }

    #[test]
    fn rotation_visits_every_core_equally() {
        let cores = 16;
        let spares = 2;
        let mut visits = vec![0usize; cores];
        for epoch in 0..cores * 4 / spares {
            for (c, v) in visits.iter_mut().enumerate() {
                if Policy::is_dark(epoch, c, cores, spares) {
                    *v += 1;
                }
            }
        }
        assert!(
            visits.iter().all(|&v| v == visits[0]),
            "uneven rotation: {visits:?}"
        );
        assert!(visits[0] > 0);
    }

    #[test]
    fn rotation_plan_is_full_recovery_when_dark() {
        let p = Policy::rotation_default();
        // Epoch 0 darkens cores 0 and 1 (start = 0).
        let dark = p.plan(0, 0, 16, Fraction::clamped(0.7), 0.0, Fraction::ZERO);
        assert_eq!(dark.bti_recovery, Fraction::ONE);
        assert_eq!(dark.run, Fraction::ZERO);
        let lit = p.plan(0, 5, 16, Fraction::clamped(0.7), 0.0, Fraction::ZERO);
        assert_eq!(lit.bti_recovery, Fraction::ZERO);
        assert_eq!(lit.run, Fraction::clamped(0.7));
        assert!(lit.em_recovery_duty.value() > 0.0);
    }

    #[test]
    fn rotation_degenerate_cases() {
        assert!(
            !Policy::is_dark(3, 0, 0, 2),
            "empty system has no dark cores"
        );
        assert!(!Policy::is_dark(3, 0, 16, 0), "zero spares means none dark");
        // spares >= cores: everything dark.
        assert!(Policy::is_dark(0, 7, 8, 8));
    }
}
