//! Multi-year lifetime runs and guardband analysis (the paper's
//! Fig. 12(b)).
//!
//! The paper's Fig. 12(b) sketches performance over time: without recovery,
//! degradation eats into a worst-case margin; with scheduled BTI/EM active
//! recovery, the system "always runs in a refreshing mode" and the
//! guardband shrinks. [`run_lifetime`] produces that picture quantitatively
//! for any policy, and [`monte_carlo_guardband`] sweeps seeds in parallel
//! (the `dh-exec` self-scheduling engine) for distributional statements.

use dh_circuit::RingOscillator;
use dh_units::{Fraction, Seconds, TimeSeries};

use crate::error::SchedError;
use crate::metrics::MetricsReport;
use crate::policy::Policy;
use crate::system::{ManyCoreSystem, SystemConfig};

/// Configuration for a lifetime run.
#[derive(Debug, Clone)]
pub struct LifetimeConfig {
    /// Simulated lifetime, years.
    pub years: f64,
    /// The system under test.
    pub system: SystemConfig,
    /// How many epochs between recorded samples of the performance series.
    pub sample_every: usize,
}

impl Default for LifetimeConfig {
    fn default() -> Self {
        Self {
            years: 3.0,
            system: SystemConfig::default(),
            sample_every: 8,
        }
    }
}

/// The outcome of one lifetime run.
#[derive(Debug, Clone)]
pub struct LifetimeOutcome {
    /// Policy name.
    pub policy: &'static str,
    /// Worst-core frequency degradation over time (fraction of fresh
    /// frequency lost), sampled every `sample_every` epochs.
    pub degradation_series: TimeSeries,
    /// The frequency guardband this lifetime requires: the maximum
    /// worst-core degradation ever observed (plus nothing else — sensor
    /// margins are studied separately).
    pub required_guardband: f64,
    /// Final worst-core EM damage fraction.
    pub final_em_damage: Fraction,
    /// Projected EM time-to-failure extrapolated from the average damage
    /// rate (`None` if no damage accumulated).
    pub projected_em_ttf: Option<Seconds>,
    /// Final worst-core permanent BTI component, millivolts.
    pub final_permanent_mv: f64,
    /// The policy's scheduled recovery overhead (fraction of core time).
    pub recovery_overhead: Fraction,
    /// The work actually displaced by recovery over the lifetime, as a
    /// fraction of the work demanded — usually far below the scheduled
    /// overhead because recovery intervals absorb idle time first.
    pub throughput_loss: Fraction,
    /// What the scheduler did and what it bought: per-mode epoch counts,
    /// mode transitions, recovery time scheduled, and wearout healed.
    pub metrics: MetricsReport,
}

/// Runs one lifetime simulation.
///
/// # Errors
///
/// Propagates [`SchedError`] from system construction.
pub fn run_lifetime(
    config: &LifetimeConfig,
    policy: Policy,
    seed: u64,
) -> Result<LifetimeOutcome, SchedError> {
    run_lifetime_impl(config, policy, seed, false)
}

/// [`run_lifetime`] with every hot path routed through the
/// pre-optimization reference implementations (iterative thermal settle,
/// unfused stress law): the serial baseline `perf_snapshot` measures the
/// engine against. Not part of the API.
#[doc(hidden)]
pub fn run_lifetime_reference(
    config: &LifetimeConfig,
    policy: Policy,
    seed: u64,
) -> Result<LifetimeOutcome, SchedError> {
    run_lifetime_impl(config, policy, seed, true)
}

fn run_lifetime_impl(
    config: &LifetimeConfig,
    policy: Policy,
    seed: u64,
    reference: bool,
) -> Result<LifetimeOutcome, SchedError> {
    if !(config.years > 0.0) || !config.years.is_finite() {
        return Err(SchedError::InvalidConfig(format!(
            "lifetime must be positive, got {} years",
            config.years
        )));
    }
    let mut system_config = config.system.clone();
    system_config.seed = seed;
    let mut system = ManyCoreSystem::new(system_config)?;
    if reference {
        system.set_reference_mode(true);
    }
    let ro = RingOscillator::paper_75_stage();

    let total_epochs = (Seconds::from_years(config.years) / config.system.epoch)
        .ceil()
        .max(1.0) as usize;
    let mut series = TimeSeries::new(format!(
        "worst-core frequency degradation, {}",
        policy.name()
    ));
    let mut guardband: f64 = 0.0;
    let mut displaced = 0.0;
    let mut demanded = 0.0;

    // The fresh frequency never changes; the reference path re-derives it
    // per epoch inside `degradation`, as the seed did.
    let fresh = ro.frequency(0.0).value();
    for epoch in 0..total_epochs {
        let status = system.step(policy)?;
        for s in &status {
            displaced += s.displaced_work.value();
            demanded += s.demanded_work.value();
        }
        let degradation = if reference {
            ro.degradation(system.worst_delta_vth_mv())
        } else {
            1.0 - ro.frequency(system.worst_delta_vth_mv()).value() / fresh
        };
        guardband = guardband.max(degradation);
        if epoch % config.sample_every.max(1) == 0 {
            series.push(system.time(), degradation);
        }
    }

    let final_em = system.worst_em_damage();
    let projected =
        (final_em.value() > 0.0).then(|| Seconds::new(system.time().value() / final_em.value()));
    Ok(LifetimeOutcome {
        policy: policy.name(),
        degradation_series: series,
        required_guardband: guardband,
        final_em_damage: final_em,
        projected_em_ttf: projected,
        final_permanent_mv: system.worst_permanent_mv(),
        recovery_overhead: policy.recovery_overhead(),
        throughput_loss: Fraction::clamped(displaced / demanded.max(1e-300)),
        metrics: system.metrics().clone(),
    })
}

/// Runs the same lifetime under several policies (the Fig. 12(b)
/// comparison).
///
/// # Errors
///
/// Propagates the first error from any run.
pub fn compare_policies(
    config: &LifetimeConfig,
    policies: &[Policy],
    seed: u64,
) -> Result<Vec<LifetimeOutcome>, SchedError> {
    policies
        .iter()
        .map(|&p| run_lifetime(config, p, seed))
        .collect()
}

/// One seed's result in a Monte-Carlo guardband sweep: the seed that drove
/// it, the guardband it required, and the full lifetime outcome behind that
/// number. Keeping the triple together lets every consumer — the fleet
/// layer's streaming aggregates, `perf_snapshot`, plotting — share one
/// aggregation path instead of re-deriving context from a bare `Vec<f64>`.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    /// The RNG seed this lifetime ran under.
    pub seed: u64,
    /// The run's required frequency guardband
    /// ([`LifetimeOutcome::required_guardband`], duplicated for cheap
    /// aggregation without touching the outcome).
    pub guardband: f64,
    /// The full lifetime outcome.
    pub outcome: LifetimeOutcome,
}

/// Runs `seeds` independent lifetimes in parallel and returns each run's
/// [`SeedOutcome`], in seed order.
///
/// Seeds are handed out one at a time by [`dh_exec::par_try_map`]'s
/// self-scheduling queue rather than pre-chunked: per-seed cost is
/// heavily skewed (early-failing seeds finish fast), so static
/// contiguous chunks leave most workers idle behind the unluckiest one.
/// Each seed's run is independent of thread count, so the output vector
/// is bit-identical however many workers participate.
///
/// # Errors
///
/// Propagates the error of the lowest failing seed.
pub fn monte_carlo_guardband(
    config: &LifetimeConfig,
    policy: Policy,
    seeds: std::ops::Range<u64>,
) -> Result<Vec<SeedOutcome>, SchedError> {
    let seeds: Vec<u64> = seeds.collect();
    dh_exec::par_try_map(&seeds, |&seed| {
        run_lifetime(config, policy, seed).map(|outcome| SeedOutcome {
            seed,
            guardband: outcome.required_guardband,
            outcome,
        })
    })
}

/// [`monte_carlo_guardband`] as the seed shipped it: a plain serial loop
/// over [`run_lifetime_reference`]. The baseline side of `perf_snapshot`'s
/// guardband measurement. Not part of the API.
#[doc(hidden)]
pub fn monte_carlo_guardband_baseline(
    config: &LifetimeConfig,
    policy: Policy,
    seeds: std::ops::Range<u64>,
) -> Result<Vec<SeedOutcome>, SchedError> {
    seeds
        .map(|seed| {
            run_lifetime_reference(config, policy, seed).map(|outcome| SeedOutcome {
                seed,
                guardband: outcome.required_guardband,
                outcome,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short() -> LifetimeConfig {
        LifetimeConfig {
            years: 0.2,
            sample_every: 4,
            ..LifetimeConfig::default()
        }
    }

    #[test]
    fn guardband_ordering_matches_the_papers_story() {
        let config = short();
        let none = run_lifetime(&config, Policy::NoRecovery, 3).unwrap();
        let passive = run_lifetime(&config, Policy::PassiveIdle, 3).unwrap();
        let deep = run_lifetime(&config, Policy::periodic_deep_default(), 3).unwrap();
        assert!(
            none.required_guardband > passive.required_guardband,
            "none {} passive {}",
            none.required_guardband,
            passive.required_guardband
        );
        assert!(
            passive.required_guardband > deep.required_guardband,
            "passive {} deep {}",
            passive.required_guardband,
            deep.required_guardband
        );
    }

    #[test]
    fn deep_recovery_extends_projected_em_ttf() {
        let config = short();
        let passive = run_lifetime(&config, Policy::PassiveIdle, 3).unwrap();
        let deep = run_lifetime(&config, Policy::periodic_deep_default(), 3).unwrap();
        let (p, d) = (
            passive.projected_em_ttf.expect("damage accumulated"),
            deep.projected_em_ttf.expect("damage accumulated"),
        );
        assert!(
            d > p,
            "deep TTF {} y vs passive {} y",
            d.as_years(),
            p.as_years()
        );
    }

    #[test]
    fn series_is_sampled_and_bounded() {
        let config = short();
        let out = run_lifetime(&config, Policy::PassiveIdle, 1).unwrap();
        assert!(out.degradation_series.len() > 10);
        for s in &out.degradation_series {
            assert!((0.0..1.0).contains(&s.value));
        }
        assert!(
            out.required_guardband < 0.2,
            "guardband {}",
            out.required_guardband
        );
    }

    #[test]
    fn compare_policies_returns_one_outcome_each() {
        let config = short();
        let outs = compare_policies(
            &config,
            &[
                Policy::NoRecovery,
                Policy::PassiveIdle,
                Policy::periodic_deep_default(),
            ],
            7,
        )
        .unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].policy, "no-recovery");
        assert_eq!(outs[2].policy, "periodic-deep");
    }

    #[test]
    fn monte_carlo_runs_all_seeds_in_parallel() {
        let config = LifetimeConfig {
            years: 0.05,
            ..short()
        };
        let outs = monte_carlo_guardband(&config, Policy::PassiveIdle, 0..6).unwrap();
        assert_eq!(outs.len(), 6);
        assert!(outs.iter().all(|o| o.guardband > 0.0));
        // Results come back in seed order, carrying their seed and the
        // guardband duplicated out of the full outcome.
        for (o, seed) in outs.iter().zip(0u64..) {
            assert_eq!(o.seed, seed);
            assert_eq!(o.guardband, o.outcome.required_guardband);
        }
        // Seeds differ, so outcomes differ (workload randomness).
        let min = outs
            .iter()
            .map(|o| o.guardband)
            .fold(f64::INFINITY, f64::min);
        let max = outs.iter().map(|o| o.guardband).fold(0.0, f64::max);
        assert!(max > min);
    }

    #[test]
    fn monte_carlo_matches_sequential_runs() {
        let config = LifetimeConfig {
            years: 0.05,
            ..short()
        };
        let parallel = monte_carlo_guardband(&config, Policy::PassiveIdle, 10..13).unwrap();
        for (i, seed) in (10u64..13).enumerate() {
            let seq = run_lifetime(&config, Policy::PassiveIdle, seed).unwrap();
            assert_eq!(parallel[i].seed, seed);
            assert_eq!(parallel[i].guardband, seq.required_guardband);
            assert_eq!(
                parallel[i].outcome.final_permanent_mv,
                seq.final_permanent_mv
            );
        }
    }

    #[test]
    fn throughput_loss_is_far_below_the_scheduled_overhead() {
        // The paper's recovery intervals come out of the idle budget: the
        // periodic policy schedules 15 % of core time but displaces almost
        // none of the demanded work (only the >85 %-utilized cores lose
        // anything).
        let config = short();
        let deep = run_lifetime(&config, Policy::periodic_deep_default(), 3).unwrap();
        assert!(
            deep.throughput_loss.value() < 0.5 * deep.recovery_overhead.value(),
            "loss {} vs overhead {}",
            deep.throughput_loss.value(),
            deep.recovery_overhead.value()
        );
        // Baselines displace nothing.
        let passive = run_lifetime(&config, Policy::PassiveIdle, 3).unwrap();
        assert_eq!(passive.throughput_loss.value(), 0.0);
    }

    #[test]
    fn outcome_carries_the_scheduling_metrics() {
        let config = short();
        let deep = run_lifetime(&config, Policy::periodic_deep_default(), 3).unwrap();
        let m = &deep.metrics;
        let expected = (dh_units::Seconds::from_years(config.years) / config.system.epoch)
            .ceil()
            .max(1.0) as u64;
        assert_eq!(m.epochs, expected);
        assert_eq!(m.core_epochs, m.epochs * 16);
        assert!(m.bti_recovery_seconds > 0.0);
        assert!(m.bti_healed_mv > 0.0);
        let none = run_lifetime(&config, Policy::NoRecovery, 3).unwrap();
        assert_eq!(none.metrics.bti_recovery_seconds, 0.0);
        assert_eq!(none.metrics.epochs_normal, none.metrics.core_epochs);
    }

    #[test]
    fn invalid_lifetime_is_rejected() {
        let mut config = short();
        config.years = 0.0;
        assert!(run_lifetime(&config, Policy::NoRecovery, 0).is_err());
        config.years = f64::NAN;
        assert!(run_lifetime(&config, Policy::NoRecovery, 0).is_err());
    }

    #[test]
    fn adaptive_tracks_passive_worst_case_with_lagged_sensing() {
        // The adaptive policy's sensor lags one epoch, so its guardband is
        // set by the same first-epoch transient as passive idle (within a
        // few percent of thermal-coupling noise); after triggering it
        // behaves like the periodic policy.
        let config = short();
        let adaptive = run_lifetime(&config, Policy::adaptive_default(), 3).unwrap();
        let passive = run_lifetime(&config, Policy::PassiveIdle, 3).unwrap();
        assert!(adaptive.required_guardband <= passive.required_guardband * 1.05);
        // But it prevents permanent accumulation, unlike passive idle.
        assert!(adaptive.final_permanent_mv < passive.final_permanent_mv);
    }
}
