//! System-level **recovery scheduling** — the paper's Section IV-B and
//! Fig. 12 turned into a quantitative simulator.
//!
//! The paper proposes that a heterogeneous many-core system can schedule
//! *BTI Active Recovery* (deep negative-bias intervals during idle periods)
//! and *EM Active Recovery* (current reversal in the local power grids
//! during operation) across its lifetime, guided by wearout sensors, such
//! that "the system always runs in a refreshing mode; the necessary wearout
//! guardbands can then be significantly reduced".
//!
//! This crate assembles the substrates into that system:
//!
//! * [`workload`] — per-core utilization generators (constant, diurnal,
//!   bursty) with deterministic seeding;
//! * [`sensor`] — ring-oscillator BTI sensors and resistance-based EM
//!   sensors with configurable noise (the paper's "novel BTI and EM sensors
//!   can be employed to track wearout");
//! * [`policy`] — recovery policies: no recovery, passive idle recovery,
//!   periodic scheduled deep recovery, and sensor-driven adaptive recovery;
//! * [`guard`] — sensor-fault tolerance for the closed loop: a
//!   median-of-window filter plus staleness detection, so a stuck, dead,
//!   or noisy sensor degrades its core to a conservative always-heal
//!   schedule instead of silently skipping recovery;
//! * [`system`] — a many-core system stepping BTI devices, EM damage, and a
//!   thermal grid per epoch under a policy;
//! * [`lifetime`] — multi-year lifetime runs producing the Fig. 12(b)
//!   series: performance-over-time per policy, required frequency
//!   guardband, and EM time-to-failure, plus parallel Monte-Carlo sweeps.
//!
//! # Example
//!
//! ```
//! use dh_sched::lifetime::{run_lifetime, LifetimeConfig};
//! use dh_sched::policy::Policy;
//!
//! let config = LifetimeConfig { years: 0.25, ..LifetimeConfig::default() };
//! let none = run_lifetime(&config, Policy::NoRecovery, 1).unwrap();
//! let deep = run_lifetime(&config, Policy::periodic_deep_default(), 1).unwrap();
//! assert!(deep.required_guardband < none.required_guardband);
//! ```

#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > 0.0)` deliberately catches NaN
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adapt;
pub mod error;
pub mod guard;
pub mod lifetime;
pub mod metrics;
pub mod migration;
pub mod policy;
pub mod sensor;
pub mod system;
pub mod workload;

pub use error::SchedError;
pub use guard::SensorGuard;
pub use lifetime::{
    monte_carlo_guardband, run_lifetime, LifetimeConfig, LifetimeOutcome, SeedOutcome,
};
pub use metrics::{CoreMode, MetricsReport};
pub use policy::Policy;
pub use system::{ManyCoreSystem, SystemConfig};
