//! Always-on scheduling metrics: per-mode epoch counts, mode transitions,
//! and the paper's headline trade-off — recovery time scheduled versus
//! wearout avoided.
//!
//! Every [`crate::ManyCoreSystem`] accumulates a [`MetricsReport`]
//! regardless of the `obs` feature: the arithmetic is a handful of integer
//! and float adds per core-epoch, invisible next to the BTI/EM/thermal
//! models. The `obs` feature additionally mirrors the per-epoch deltas
//! into the global `dh-obs` registry under per-policy names
//! (`sched.<policy>.<metric>`), so a metrics snapshot can compare policies
//! that ran in the same process.

use core::fmt;

use crate::policy::EpochPlan;

/// The operating mode of one core in one epoch, classified from its
/// [`EpochPlan`]. Mirrors the three assist-circuitry modes of the paper's
/// Fig. 8: a core scheduled for deep recovery sits behind the rail swap
/// (BTI-AR), a core running with reversal duty is in EM-AR, and everything
/// else is conventional power-gated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreMode {
    /// Conventional operation (run + passive idle only).
    Normal,
    /// Running with EM current-reversal duty scheduled.
    EmActiveRecovery,
    /// Deep BTI recovery scheduled (any non-zero fraction of the epoch).
    BtiActiveRecovery,
}

impl CoreMode {
    /// Classifies an epoch plan. Deep BTI recovery dominates: a plan that
    /// schedules both uses the rail swap, which implies the idle load.
    pub fn classify(plan: &EpochPlan) -> Self {
        if plan.bti_recovery.value() > 0.0 {
            Self::BtiActiveRecovery
        } else if plan.em_recovery_duty.value() > 0.0 {
            Self::EmActiveRecovery
        } else {
            Self::Normal
        }
    }

    /// Stable lowercase name used in metric keys.
    pub fn name(self) -> &'static str {
        match self {
            Self::Normal => "normal",
            Self::EmActiveRecovery => "em_ar",
            Self::BtiActiveRecovery => "bti_ar",
        }
    }
}

impl fmt::Display for CoreMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Aggregate accounting of what a [`crate::ManyCoreSystem`] scheduled and
/// what the scheduling bought, accumulated over every epoch stepped so far.
///
/// A core "transitions" when its classified [`CoreMode`] differs from the
/// previous epoch's; the first epoch counts as a transition into its
/// initial mode (from power-on), so even a constant-mode policy reports
/// one transition per core.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Epochs stepped.
    pub epochs: u64,
    /// Core-epochs simulated (`epochs × cores`).
    pub core_epochs: u64,
    /// Core-epochs classified as [`CoreMode::Normal`].
    pub epochs_normal: u64,
    /// Core-epochs classified as [`CoreMode::EmActiveRecovery`].
    pub epochs_em_ar: u64,
    /// Core-epochs classified as [`CoreMode::BtiActiveRecovery`].
    pub epochs_bti_ar: u64,
    /// Mode transitions into [`CoreMode::Normal`].
    pub transitions_to_normal: u64,
    /// Mode transitions into [`CoreMode::EmActiveRecovery`].
    pub transitions_to_em_ar: u64,
    /// Mode transitions into [`CoreMode::BtiActiveRecovery`].
    pub transitions_to_bti_ar: u64,
    /// Deep-recovery time scheduled across all cores, seconds.
    pub bti_recovery_seconds: f64,
    /// Core-seconds of execution under EM current reversal
    /// (`stress time × duty`), across all cores.
    pub em_recovery_core_seconds: f64,
    /// |ΔVth| removed by scheduled deep-recovery intervals, millivolts,
    /// summed across cores — the BTI wearout avoided.
    pub bti_healed_mv: f64,
    /// Miner's-rule damage units healed by EM current reversal (before the
    /// pinned-floor clamp) — the EM wearout avoided.
    pub em_damage_healed: f64,
    /// Wear sensors flagged as bad by staleness detection (each sensor
    /// counts once, when its verdict latches).
    pub sensor_faults_detected: u64,
    /// Core-epochs scheduled by the conservative fallback policy because
    /// the core's sensor was distrusted.
    pub conservative_core_epochs: u64,
}

impl MetricsReport {
    /// Total mode transitions across all modes.
    pub fn mode_transitions(&self) -> u64 {
        self.transitions_to_normal + self.transitions_to_em_ar + self.transitions_to_bti_ar
    }

    /// Records one core-epoch spent in `mode`, with `transitioned` set when
    /// the core's previous epoch (if any) was in a different mode.
    pub(crate) fn observe_core_epoch(&mut self, mode: CoreMode, transitioned: bool) {
        self.core_epochs += 1;
        let (epochs, transitions) = match mode {
            CoreMode::Normal => (&mut self.epochs_normal, &mut self.transitions_to_normal),
            CoreMode::EmActiveRecovery => (&mut self.epochs_em_ar, &mut self.transitions_to_em_ar),
            CoreMode::BtiActiveRecovery => {
                (&mut self.epochs_bti_ar, &mut self.transitions_to_bti_ar)
            }
        };
        *epochs += 1;
        if transitioned {
            *transitions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_units::Fraction;

    #[test]
    fn classification_follows_the_plan() {
        let run = |r, b, d| EpochPlan {
            run: Fraction::clamped(r),
            bti_recovery: Fraction::clamped(b),
            em_recovery_duty: Fraction::clamped(d),
        };
        assert_eq!(CoreMode::classify(&run(1.0, 0.0, 0.0)), CoreMode::Normal);
        assert_eq!(
            CoreMode::classify(&run(0.8, 0.0, 0.3)),
            CoreMode::EmActiveRecovery
        );
        assert_eq!(
            CoreMode::classify(&run(0.8, 0.2, 0.0)),
            CoreMode::BtiActiveRecovery
        );
        // Deep recovery dominates a mixed plan.
        assert_eq!(
            CoreMode::classify(&run(0.5, 0.2, 0.3)),
            CoreMode::BtiActiveRecovery
        );
    }

    #[test]
    fn observation_splits_epochs_and_transitions_by_mode() {
        let mut m = MetricsReport::default();
        m.observe_core_epoch(CoreMode::Normal, true);
        m.observe_core_epoch(CoreMode::Normal, false);
        m.observe_core_epoch(CoreMode::BtiActiveRecovery, true);
        m.observe_core_epoch(CoreMode::EmActiveRecovery, true);
        assert_eq!(m.core_epochs, 4);
        assert_eq!(m.epochs_normal, 2);
        assert_eq!(m.epochs_bti_ar, 1);
        assert_eq!(m.epochs_em_ar, 1);
        assert_eq!(m.transitions_to_normal, 1);
        assert_eq!(m.mode_transitions(), 3);
    }

    #[test]
    fn mode_names_are_stable_metric_keys() {
        assert_eq!(CoreMode::Normal.to_string(), "normal");
        assert_eq!(CoreMode::EmActiveRecovery.name(), "em_ar");
        assert_eq!(CoreMode::BtiActiveRecovery.name(), "bti_ar");
    }
}
