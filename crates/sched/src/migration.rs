//! State handling during deep-recovery intervals: retention vs migration.
//!
//! The paper notes that while a block is in BTI active recovery "certain
//! states need to be in retention mode, alternatively, workload can be
//! shifted to other redundant resources", and claims the switching
//! overhead is small. This module prices both options so the claim can be
//! checked rather than assumed:
//!
//! * **retention** — architectural state stays in always-on retention
//!   latches: no downtime, but a small standby power for the duration of
//!   the recovery interval (and the retention cells themselves must not be
//!   part of the recovering domain);
//! * **migration** — the context moves to a spare core and back: a
//!   downtime per switch set by context size over memory bandwidth, plus
//!   the assist circuitry's electrical mode-switching time (nanoseconds —
//!   negligible, as the paper asserts; the data movement dominates).

use dh_units::{Fraction, Seconds};

/// How a core's state survives a deep-recovery interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StateStrategy {
    /// Keep state in retention latches (standby power, no downtime).
    Retention {
        /// Standby power of the retention domain, watts.
        retention_power_w: f64,
    },
    /// Migrate the context to a redundant core and back.
    Migration {
        /// Architectural + dirty-cache context size, megabytes.
        context_mb: f64,
        /// Effective migration bandwidth, GB/s.
        bandwidth_gb_s: f64,
    },
}

impl StateStrategy {
    /// A typical retention domain: a few milliwatts.
    pub fn typical_retention() -> Self {
        Self::Retention {
            retention_power_w: 5.0e-3,
        }
    }

    /// A typical migration: 2 MB of context at 10 GB/s.
    pub fn typical_migration() -> Self {
        Self::Migration {
            context_mb: 2.0,
            bandwidth_gb_s: 10.0,
        }
    }

    /// Downtime charged per recovery entry+exit.
    pub fn downtime_per_switch(&self, electrical_switch: Seconds) -> Seconds {
        match *self {
            Self::Retention { .. } => electrical_switch * 2.0,
            Self::Migration {
                context_mb,
                bandwidth_gb_s,
            } => {
                let transfer = Seconds::new(context_mb * 1.0e6 / (bandwidth_gb_s * 1.0e9));
                transfer * 2.0 + electrical_switch * 2.0
            }
        }
    }

    /// Energy charged per recovery interval of length `interval`, joules.
    pub fn energy_per_interval(&self, interval: Seconds) -> f64 {
        match *self {
            Self::Retention { retention_power_w } => retention_power_w * interval.value(),
            // Migration energy: ~1 nJ/byte moved (both directions).
            Self::Migration { context_mb, .. } => 2.0 * context_mb * 1.0e6 * 1.0e-9,
        }
    }
}

/// Aggregate cost of a recovery schedule over a lifetime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryCostReport {
    /// Number of recovery intervals over the lifetime.
    pub intervals: u64,
    /// Total downtime from state handling.
    pub total_downtime: Seconds,
    /// Downtime as a fraction of the lifetime.
    pub downtime_fraction: Fraction,
    /// Total state-handling energy, joules.
    pub total_energy_j: f64,
}

/// Prices a schedule that enters deep recovery `intervals_per_day` times a
/// day, each interval `interval` long, over `years`, with the assist
/// circuitry's electrical switching time `electrical_switch`.
pub fn price_schedule(
    strategy: StateStrategy,
    intervals_per_day: f64,
    interval: Seconds,
    electrical_switch: Seconds,
    years: f64,
) -> RecoveryCostReport {
    let days = years * 365.0;
    let intervals = (intervals_per_day * days).round().max(0.0) as u64;
    let downtime = strategy.downtime_per_switch(electrical_switch) * intervals as f64;
    let lifetime = Seconds::from_years(years);
    RecoveryCostReport {
        intervals,
        total_downtime: downtime,
        downtime_fraction: Fraction::clamped(downtime.value() / lifetime.value().max(1e-300)),
        total_energy_j: strategy.energy_per_interval(interval) * intervals as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The assist circuitry's electrical mode switch (tens of ns from the
    /// Fig. 10 RC model).
    fn electrical() -> Seconds {
        Seconds::new(30.0e-9)
    }

    #[test]
    fn papers_small_switching_overhead_claim_holds() {
        // Four deep-recovery intervals per day for ten years, migrating
        // 2 MB each way: total downtime is still well under a minute.
        let report = price_schedule(
            StateStrategy::typical_migration(),
            4.0,
            Seconds::from_hours(0.9),
            electrical(),
            10.0,
        );
        assert!(report.intervals > 14_000);
        assert!(
            report.total_downtime < Seconds::new(60.0),
            "downtime {} s",
            report.total_downtime.value()
        );
        assert!(report.downtime_fraction.value() < 1.0e-6);
    }

    #[test]
    fn retention_has_no_data_movement_downtime() {
        let retention = StateStrategy::typical_retention();
        let migration = StateStrategy::typical_migration();
        assert!(
            retention.downtime_per_switch(electrical())
                < migration.downtime_per_switch(electrical())
        );
        // Electrical switching alone is nanoseconds.
        assert!(retention.downtime_per_switch(electrical()) < Seconds::new(1.0e-6));
    }

    #[test]
    fn retention_energy_scales_with_interval_migration_does_not() {
        let retention = StateStrategy::typical_retention();
        let migration = StateStrategy::typical_migration();
        let short = Seconds::from_minutes(10.0);
        let long = Seconds::from_hours(5.0);
        assert!(retention.energy_per_interval(long) > 10.0 * retention.energy_per_interval(short));
        assert_eq!(
            migration.energy_per_interval(long),
            migration.energy_per_interval(short)
        );
    }

    #[test]
    fn crossover_long_intervals_favour_migration() {
        // Retention burns standby power for the whole interval; migration
        // pays a fixed toll. For hour-scale intervals migration wins on
        // energy.
        let retention = StateStrategy::typical_retention();
        let migration = StateStrategy::typical_migration();
        let interval = Seconds::from_hours(1.0);
        assert!(
            migration.energy_per_interval(interval) < retention.energy_per_interval(interval),
            "migration {} J vs retention {} J",
            migration.energy_per_interval(interval),
            retention.energy_per_interval(interval)
        );
        // For second-scale intervals, retention wins.
        let blink = Seconds::new(0.25);
        assert!(retention.energy_per_interval(blink) < migration.energy_per_interval(blink));
    }

    #[test]
    fn zero_years_prices_to_zero() {
        let report = price_schedule(
            StateStrategy::typical_retention(),
            4.0,
            Seconds::from_hours(1.0),
            electrical(),
            0.0,
        );
        assert_eq!(report.intervals, 0);
        assert_eq!(report.total_energy_j, 0.0);
    }
}
