//! The scenario-pack document: schema, validation, canonical encoding,
//! and fingerprinting.
//!
//! A pack is a JSON file describing one complete wearout experiment:
//! which victim blocks exist (and how many), the workload trace that
//! drives them, the maintenance policy that heals them, and the epoch
//! grid to integrate over. Parsing is strict in the daemon's style —
//! unknown fields are rejected, every field is typed, and semantic
//! validation is a separate pass with its own error variant so callers
//! can distinguish "not a pack" from "an impossible pack".

use dh_json::{escape, num, Json};

use crate::error::{invalid, schema, ScenarioError};
use crate::models::{EpochCtx, GroupCtx};
use crate::wire::{fnv1a, FNV_OFFSET};

/// Temperatures a pack may ask for, °C (military range plus margin).
const TEMP_MIN_C: f64 = -55.0;
const TEMP_MAX_C: f64 = 225.0;

/// A complete, validated scenario description.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPack {
    /// Registry name (also the CLI handle).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Seed of the deterministic variation stream.
    pub seed: u64,
    /// Number of epochs a full run integrates.
    pub epochs: u64,
    /// Wall-clock hours per epoch.
    pub epoch_hours: f64,
    /// Elements per engine shard (parallelism grain).
    pub shard_size: u64,
    /// |ΔVth| failure threshold applied to every block's metric, mV.
    pub fail_threshold_mv: f64,
    /// The workload driving the blocks.
    pub workload: Workload,
    /// The maintenance (healing) policy.
    pub maintenance: Maintenance,
    /// The victim-block mix.
    pub blocks: Vec<BlockGroup>,
}

/// The workload description: a cyclic activity trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Per-epoch activity (and, for weight memories, zero-fraction)
    /// samples in `[0, 1]`; the engine cycles through them.
    pub trace: Vec<f64>,
}

/// When and how the scenario heals its blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Maintenance {
    /// The healing action taken on maintenance epochs.
    pub policy: MaintenancePolicy,
    /// Every how many epochs the action fires (maintenance epochs are
    /// the multiples of this). Ignored when the policy is `None`.
    pub interval_epochs: u64,
    /// Reverse gate bias applied during maintenance recovery, volts
    /// (the paper's active-recovery knob; 0 = passive only).
    pub recovery_bias_v: f64,
}

/// The healing action of a maintenance epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenancePolicy {
    /// No maintenance; blocks age under the raw workload.
    None,
    /// Duty inversion (address/weight/operand complementing).
    Invert,
    /// Power gating: the block idles the whole maintenance epoch.
    PowerGate,
}

impl MaintenancePolicy {
    /// The wire name used in pack JSON.
    pub fn name(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Invert => "invert",
            Self::PowerGate => "power-gate",
        }
    }
}

/// One homogeneous group of victim blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockGroup {
    /// Which victim model (with its model-specific knobs).
    pub model: BlockModel,
    /// Number of elements in the group.
    pub count: u64,
    /// Gate overdrive during stress, volts.
    pub vdd_v: f64,
    /// Operating temperature, °C.
    pub temperature_c: f64,
    /// Half-width of the uniform process-variation band.
    pub variability: f64,
}

/// The victim model of a block group.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockModel {
    /// SRAM address decoder: per-row duty from a Zipf access histogram.
    SramDecoder {
        /// Zipf exponent of the access histogram.
        skew: f64,
    },
    /// DNN weight memory: per-bank duty pair from the workload trace.
    WeightMemory,
    /// Aged multiplier: delay slowdown across process corners.
    AgedMultiplier {
        /// Fresh critical-path delay at the typical corner, ps.
        base_delay_ps: f64,
        /// The process corners instances are distributed over.
        corners: Vec<Corner>,
    },
}

impl BlockModel {
    /// The wire name used in pack JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Self::SramDecoder { .. } => "sram-decoder",
            Self::WeightMemory => "weight-memory",
            Self::AgedMultiplier { .. } => "aged-multiplier",
        }
    }
}

/// One process-variation corner of an aged-multiplier group.
#[derive(Debug, Clone, PartialEq)]
pub struct Corner {
    /// Corner name (`slow`, `typical`, …) — reporting only.
    pub name: String,
    /// Relative share of instances landing in this corner.
    pub weight: f64,
    /// Multiplier on the fresh critical-path delay.
    pub delay_scale: f64,
    /// Multiplier on both aging rates.
    pub rate_scale: f64,
}

// ---------------------------------------------------------------- parsing

/// A strict object walker: every field must be consumed exactly once.
struct Fields<'a> {
    path: &'a str,
    fields: &'a [(String, Json)],
    used: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(v: &'a Json, path: &'a str) -> Result<Self, ScenarioError> {
        let fields = v
            .as_obj()
            .ok_or_else(|| schema(path, "expected an object"))?;
        Ok(Self {
            path,
            fields,
            used: vec![false; fields.len()],
        })
    }

    fn take(&mut self, key: &str) -> Option<&'a Json> {
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if k == key {
                self.used[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn req(&mut self, key: &str) -> Result<&'a Json, ScenarioError> {
        self.take(key)
            .ok_or_else(|| schema(self.at(key), "missing required field"))
    }

    fn at(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    /// Errors on the first field no `take`/`req` consumed.
    fn finish(self) -> Result<(), ScenarioError> {
        for (i, (k, _)) in self.fields.iter().enumerate() {
            if !self.used[i] {
                return Err(schema(self.at(k), "unknown field"));
            }
        }
        Ok(())
    }
}

fn want_str(v: &Json, path: String) -> Result<String, ScenarioError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| schema(path, "expected a string"))
}

fn want_u64(v: &Json, path: String) -> Result<u64, ScenarioError> {
    v.as_u64()
        .ok_or_else(|| schema(path, "expected a non-negative integer"))
}

fn want_f64(v: &Json, path: String) -> Result<f64, ScenarioError> {
    v.as_f64().ok_or_else(|| schema(path, "expected a number"))
}

impl ScenarioPack {
    /// Parses pack JSON, strictly: unknown or mistyped fields are
    /// [`ScenarioError::Schema`], syntax errors [`ScenarioError::Json`].
    /// Call [`ScenarioPack::validate`] afterwards (or use
    /// [`ScenarioPack::load`]) for the semantic pass.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let doc = Json::parse(text).map_err(ScenarioError::Json)?;
        let mut f = Fields::new(&doc, "")?;
        let pack = Self {
            name: want_str(f.req("name")?, f.at("name"))?,
            description: want_str(f.req("description")?, f.at("description"))?,
            seed: want_u64(f.req("seed")?, f.at("seed"))?,
            epochs: want_u64(f.req("epochs")?, f.at("epochs"))?,
            epoch_hours: want_f64(f.req("epoch_hours")?, f.at("epoch_hours"))?,
            shard_size: want_u64(f.req("shard_size")?, f.at("shard_size"))?,
            fail_threshold_mv: want_f64(f.req("fail_threshold_mv")?, f.at("fail_threshold_mv"))?,
            workload: Workload::from_json(f.req("workload")?, &f.at("workload"))?,
            maintenance: Maintenance::from_json(f.req("maintenance")?, &f.at("maintenance"))?,
            blocks: {
                let path = f.at("blocks");
                let items = f
                    .req("blocks")?
                    .as_arr()
                    .ok_or_else(|| schema(path.clone(), "expected an array"))?;
                items
                    .iter()
                    .enumerate()
                    .map(|(i, b)| BlockGroup::from_json(b, &format!("{path}[{i}]")))
                    .collect::<Result<Vec<_>, _>>()?
            },
        };
        f.finish()?;
        Ok(pack)
    }

    /// Parses *and* validates: the one-call path the registry and the
    /// daemon use.
    pub fn load(text: &str) -> Result<Self, ScenarioError> {
        let pack = Self::parse(text)?;
        pack.validate()?;
        Ok(pack)
    }

    /// The semantic pass: every way a well-formed pack can still be
    /// impossible gets a typed [`ScenarioError::Invalid`].
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() || self.name.len() > 64 {
            return Err(invalid("name", "must be 1–64 characters"));
        }
        if self
            .name
            .bytes()
            .any(|b| !(b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_'))
        {
            return Err(invalid("name", "use lowercase letters, digits, `-`, `_`"));
        }
        if self.epochs == 0 {
            return Err(invalid("epochs", "must be at least 1"));
        }
        if !(self.epoch_hours.is_finite() && self.epoch_hours > 0.0) {
            return Err(invalid("epoch_hours", "must be finite and positive"));
        }
        if self.shard_size == 0 {
            return Err(invalid("shard_size", "must be at least 1"));
        }
        if !(self.fail_threshold_mv.is_finite() && self.fail_threshold_mv > 0.0) {
            return Err(invalid("fail_threshold_mv", "must be finite and positive"));
        }
        if self.workload.trace.is_empty() {
            return Err(invalid("workload.trace", "must have at least one sample"));
        }
        for (i, &v) in self.workload.trace.iter().enumerate() {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(invalid(
                    format!("workload.trace[{i}]"),
                    "samples must lie in [0, 1]",
                ));
            }
        }
        if self.maintenance.policy != MaintenancePolicy::None
            && self.maintenance.interval_epochs == 0
        {
            return Err(invalid(
                "maintenance.interval_epochs",
                "must be at least 1 when a policy is set",
            ));
        }
        if !(self.maintenance.recovery_bias_v.is_finite()
            && (0.0..=1.0).contains(&self.maintenance.recovery_bias_v))
        {
            return Err(invalid(
                "maintenance.recovery_bias_v",
                "must lie in [0, 1] volts",
            ));
        }
        if self.blocks.is_empty() {
            return Err(invalid("blocks", "must have at least one group"));
        }
        for (i, b) in self.blocks.iter().enumerate() {
            b.validate(&format!("blocks[{i}]"))?;
        }
        Ok(())
    }

    /// Canonical single-line JSON encoding: field order is fixed, so
    /// `parse(to_json(p)) == p` and the encoding is a stable
    /// fingerprint input.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"description\":\"{}\",\"seed\":{},\"epochs\":{},\
             \"epoch_hours\":{},\"shard_size\":{},\"fail_threshold_mv\":{},",
            escape(&self.name),
            escape(&self.description),
            self.seed,
            self.epochs,
            num(self.epoch_hours),
            self.shard_size,
            num(self.fail_threshold_mv),
        ));
        out.push_str("\"workload\":{\"trace\":[");
        for (i, v) in self.workload.trace.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&num(*v));
        }
        out.push_str("]},");
        out.push_str(&format!(
            "\"maintenance\":{{\"policy\":\"{}\",\"interval_epochs\":{},\"recovery_bias_v\":{}}},",
            self.maintenance.policy.name(),
            self.maintenance.interval_epochs,
            num(self.maintenance.recovery_bias_v),
        ));
        out.push_str("\"blocks\":[");
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            b.encode(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// FNV-1a over the canonical encoding: the pack identity the
    /// engine, checkpoints, and CI pins key on.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(FNV_OFFSET, self.to_json().as_bytes())
    }

    /// Total elements across all block groups.
    pub fn total_elements(&self) -> u64 {
        self.blocks.iter().map(|b| b.count).sum()
    }

    /// Shards the engine splits this pack into: each group contributes
    /// `ceil(count / shard_size)` shards.
    pub fn shard_count(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.count.div_ceil(self.shard_size.max(1)))
            .sum()
    }

    /// The [`GroupCtx`] the engine builds group `index`'s stores from.
    pub fn group_ctx(&self, index: usize) -> GroupCtx {
        let b = &self.blocks[index];
        GroupCtx {
            seed: self.seed,
            group_index: index as u64,
            vdd_v: b.vdd_v,
            temperature_k: b.temperature_c + 273.15,
            variability: b.variability,
            maintenance_bias_v: self.maintenance.recovery_bias_v,
        }
    }

    /// Whether 1-based `epoch` is a maintenance epoch.
    pub fn is_maintenance_epoch(&self, epoch: u64) -> bool {
        self.maintenance.policy != MaintenancePolicy::None
            && self.maintenance.interval_epochs > 0
            && epoch.is_multiple_of(self.maintenance.interval_epochs)
    }

    /// The kernel context of 1-based `epoch`: trace activity plus the
    /// maintenance policy resolved to flags.
    pub fn epoch_ctx(&self, epoch: u64) -> EpochCtx {
        let maint = self.is_maintenance_epoch(epoch);
        let trace = &self.workload.trace;
        EpochCtx {
            epoch_hours: self.epoch_hours,
            activity: trace[((epoch - 1) % trace.len() as u64) as usize],
            inverted: maint && self.maintenance.policy == MaintenancePolicy::Invert,
            gated: maint && self.maintenance.policy == MaintenancePolicy::PowerGate,
            active_recovery: maint && self.maintenance.recovery_bias_v > 0.0,
            fail_threshold_mv: self.fail_threshold_mv,
            epoch,
        }
    }
}

impl Workload {
    fn from_json(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        let mut f = Fields::new(v, path)?;
        let trace_path = f.at("trace");
        let items = f
            .req("trace")?
            .as_arr()
            .ok_or_else(|| schema(trace_path.clone(), "expected an array"))?;
        let trace = items
            .iter()
            .enumerate()
            .map(|(i, v)| want_f64(v, format!("{trace_path}[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        f.finish()?;
        Ok(Self { trace })
    }
}

impl Maintenance {
    fn from_json(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        let mut f = Fields::new(v, path)?;
        let policy_path = f.at("policy");
        let policy = match want_str(f.req("policy")?, policy_path.clone())?.as_str() {
            "none" => MaintenancePolicy::None,
            "invert" => MaintenancePolicy::Invert,
            "power-gate" => MaintenancePolicy::PowerGate,
            other => {
                return Err(schema(
                    policy_path,
                    format!("unknown policy {other:?} (none | invert | power-gate)"),
                ))
            }
        };
        let m = Self {
            policy,
            interval_epochs: want_u64(f.req("interval_epochs")?, f.at("interval_epochs"))?,
            recovery_bias_v: want_f64(f.req("recovery_bias_v")?, f.at("recovery_bias_v"))?,
        };
        f.finish()?;
        Ok(m)
    }
}

impl BlockGroup {
    fn from_json(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        let mut f = Fields::new(v, path)?;
        let model_path = f.at("model");
        let model_name = want_str(f.req("model")?, model_path.clone())?;
        let count = want_u64(f.req("count")?, f.at("count"))?;
        let vdd_v = want_f64(f.req("vdd_v")?, f.at("vdd_v"))?;
        let temperature_c = want_f64(f.req("temperature_c")?, f.at("temperature_c"))?;
        let variability = want_f64(f.req("variability")?, f.at("variability"))?;
        let model = match model_name.as_str() {
            "sram-decoder" => BlockModel::SramDecoder {
                skew: want_f64(f.req("skew")?, f.at("skew"))?,
            },
            "weight-memory" => BlockModel::WeightMemory,
            "aged-multiplier" => {
                let corners_path = f.at("corners");
                let items = f
                    .req("corners")?
                    .as_arr()
                    .ok_or_else(|| schema(corners_path.clone(), "expected an array"))?;
                BlockModel::AgedMultiplier {
                    base_delay_ps: want_f64(f.req("base_delay_ps")?, f.at("base_delay_ps"))?,
                    corners: items
                        .iter()
                        .enumerate()
                        .map(|(i, c)| Corner::from_json(c, &format!("{corners_path}[{i}]")))
                        .collect::<Result<Vec<_>, _>>()?,
                }
            }
            other => {
                return Err(schema(
                    model_path,
                    format!(
                        "unknown model {other:?} (sram-decoder | weight-memory | aged-multiplier)"
                    ),
                ))
            }
        };
        f.finish()?;
        Ok(Self {
            model,
            count,
            vdd_v,
            temperature_c,
            variability,
        })
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        if self.count == 0 {
            return Err(invalid(format!("{path}.count"), "must be at least 1"));
        }
        if !(self.vdd_v.is_finite() && self.vdd_v > 0.0 && self.vdd_v <= 2.0) {
            return Err(invalid(format!("{path}.vdd_v"), "must lie in (0, 2] volts"));
        }
        if !(self.temperature_c.is_finite()
            && (TEMP_MIN_C..=TEMP_MAX_C).contains(&self.temperature_c))
        {
            return Err(invalid(
                format!("{path}.temperature_c"),
                "must lie in [-55, 225] °C",
            ));
        }
        if !(self.variability.is_finite() && (0.0..=0.5).contains(&self.variability)) {
            return Err(invalid(
                format!("{path}.variability"),
                "must lie in [0, 0.5]",
            ));
        }
        match &self.model {
            BlockModel::SramDecoder { skew } => {
                if !(skew.is_finite() && *skew > 0.0 && *skew <= 8.0) {
                    return Err(invalid(format!("{path}.skew"), "must lie in (0, 8]"));
                }
            }
            BlockModel::WeightMemory => {}
            BlockModel::AgedMultiplier {
                base_delay_ps,
                corners,
            } => {
                if !(base_delay_ps.is_finite() && *base_delay_ps > 0.0) {
                    return Err(invalid(
                        format!("{path}.base_delay_ps"),
                        "must be finite and positive",
                    ));
                }
                if corners.is_empty() {
                    return Err(invalid(
                        format!("{path}.corners"),
                        "must have at least one corner",
                    ));
                }
                for (i, c) in corners.iter().enumerate() {
                    c.validate(&format!("{path}.corners[{i}]"))?;
                }
            }
        }
        Ok(())
    }

    fn encode(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"model\":\"{}\",\"count\":{},\"vdd_v\":{},\"temperature_c\":{},\"variability\":{}",
            self.model.name(),
            self.count,
            num(self.vdd_v),
            num(self.temperature_c),
            num(self.variability),
        ));
        match &self.model {
            BlockModel::SramDecoder { skew } => {
                out.push_str(&format!(",\"skew\":{}", num(*skew)));
            }
            BlockModel::WeightMemory => {}
            BlockModel::AgedMultiplier {
                base_delay_ps,
                corners,
            } => {
                out.push_str(&format!(
                    ",\"base_delay_ps\":{},\"corners\":[",
                    num(*base_delay_ps)
                ));
                for (i, c) in corners.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"name\":\"{}\",\"weight\":{},\"delay_scale\":{},\"rate_scale\":{}}}",
                        escape(&c.name),
                        num(c.weight),
                        num(c.delay_scale),
                        num(c.rate_scale),
                    ));
                }
                out.push(']');
            }
        }
        out.push('}');
    }
}

impl Corner {
    fn from_json(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        let mut f = Fields::new(v, path)?;
        let c = Self {
            name: want_str(f.req("name")?, f.at("name"))?,
            weight: want_f64(f.req("weight")?, f.at("weight"))?,
            delay_scale: want_f64(f.req("delay_scale")?, f.at("delay_scale"))?,
            rate_scale: want_f64(f.req("rate_scale")?, f.at("rate_scale"))?,
        };
        f.finish()?;
        Ok(c)
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(invalid(format!("{path}.name"), "must not be empty"));
        }
        if !(self.weight.is_finite() && self.weight > 0.0) {
            return Err(invalid(format!("{path}.weight"), "must be positive"));
        }
        if !(self.delay_scale.is_finite() && self.delay_scale > 0.0) {
            return Err(invalid(format!("{path}.delay_scale"), "must be positive"));
        }
        if !(self.rate_scale.is_finite() && self.rate_scale > 0.0) {
            return Err(invalid(format!("{path}.rate_scale"), "must be positive"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        r#"{
            "name": "test-pack",
            "description": "a test",
            "seed": 42,
            "epochs": 12,
            "epoch_hours": 730.0,
            "shard_size": 256,
            "fail_threshold_mv": 50.0,
            "workload": {"trace": [0.9, 0.6, 0.3]},
            "maintenance": {"policy": "invert", "interval_epochs": 4, "recovery_bias_v": 0.3},
            "blocks": [
                {"model": "sram-decoder", "count": 1024, "vdd_v": 0.95,
                 "temperature_c": 85.0, "variability": 0.08, "skew": 1.1},
                {"model": "weight-memory", "count": 512, "vdd_v": 0.9,
                 "temperature_c": 75.0, "variability": 0.1},
                {"model": "aged-multiplier", "count": 256, "vdd_v": 1.0,
                 "temperature_c": 95.0, "variability": 0.05, "base_delay_ps": 800.0,
                 "corners": [
                    {"name": "slow", "weight": 0.2, "delay_scale": 1.15, "rate_scale": 1.3},
                    {"name": "typical", "weight": 0.8, "delay_scale": 1.0, "rate_scale": 1.0}
                 ]}
            ]
        }"#
        .to_string()
    }

    #[test]
    fn parses_validates_and_round_trips() {
        let pack = ScenarioPack::load(&sample()).unwrap();
        assert_eq!(pack.name, "test-pack");
        assert_eq!(pack.total_elements(), 1024 + 512 + 256);
        let encoded = pack.to_json();
        let again = ScenarioPack::load(&encoded).unwrap();
        assert_eq!(pack, again);
        assert_eq!(pack.fingerprint(), again.fingerprint());
        assert_eq!(encoded, again.to_json());
    }

    #[test]
    fn rejects_unknown_and_missing_fields() {
        let doc = sample().replace("\"seed\": 42", "\"seed\": 42, \"extra\": 1");
        match ScenarioPack::parse(&doc) {
            Err(ScenarioError::Schema { field, .. }) => assert_eq!(field, "extra"),
            other => panic!("expected Schema, got {other:?}"),
        }
        let doc = sample().replace("\"seed\": 42,", "");
        assert!(matches!(
            ScenarioPack::parse(&doc),
            Err(ScenarioError::Schema { .. })
        ));
        assert!(matches!(
            ScenarioPack::parse("{not json"),
            Err(ScenarioError::Json(_))
        ));
    }

    #[test]
    fn rejects_semantically_invalid_packs() {
        let mut pack = ScenarioPack::load(&sample()).unwrap();
        pack.epochs = 0;
        assert!(matches!(
            pack.validate(),
            Err(ScenarioError::Invalid { ref field, .. }) if field == "epochs"
        ));
        let mut pack = ScenarioPack::load(&sample()).unwrap();
        pack.workload.trace[1] = 1.5;
        assert!(pack.validate().is_err());
        let mut pack = ScenarioPack::load(&sample()).unwrap();
        pack.blocks[0].temperature_c = 400.0;
        assert!(pack.validate().is_err());
        let mut pack = ScenarioPack::load(&sample()).unwrap();
        pack.name = "Has Spaces".into();
        assert!(pack.validate().is_err());
    }

    #[test]
    fn epoch_ctx_resolves_the_policy() {
        let pack = ScenarioPack::load(&sample()).unwrap();
        let plain = pack.epoch_ctx(1);
        assert!(!plain.inverted && !plain.gated && !plain.active_recovery);
        assert_eq!(plain.activity, 0.9);
        let maint = pack.epoch_ctx(4);
        assert!(maint.inverted && !maint.gated && maint.active_recovery);
        // Trace cycles.
        assert_eq!(pack.epoch_ctx(5).activity, 0.6);
    }
}
