//! Little-endian encode/decode primitives and FNV-1a hashing for the
//! scenario checkpoint format and pack fingerprints.
//!
//! These mirror `dh-fleet`'s private wire module (same byte order, same
//! hash, same f64-as-bit-pattern discipline) so the two checkpoint
//! families stay idiom-compatible, but the fleet copies are
//! `pub(crate)` by design — each format owns its primitives.

use crate::error::ScenarioError;

/// FNV-1a 64-bit offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a hash.
pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Folds one `u64` (little-endian) into a running FNV-1a hash.
pub(crate) fn fnv1a_u64(hash: u64, v: u64) -> u64 {
    fnv1a(hash, &v.to_le_bytes())
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

pub(crate) fn take_u64(bytes: &mut &[u8], what: &str) -> Result<u64, ScenarioError> {
    if bytes.len() < 8 {
        return Err(ScenarioError::Corrupt(format!(
            "truncated while reading {what}: {} bytes left",
            bytes.len()
        )));
    }
    let (head, rest) = bytes.split_at(8);
    *bytes = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("8-byte split")))
}

pub(crate) fn take_f64(bytes: &mut &[u8], what: &str) -> Result<f64, ScenarioError> {
    take_u64(bytes, what).map(f64::from_bits)
}

/// Length-prefixed UTF-8 string.
pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn take_str(bytes: &mut &[u8], what: &str) -> Result<String, ScenarioError> {
    let len = take_u64(bytes, what)? as usize;
    if bytes.len() < len {
        return Err(ScenarioError::Corrupt(format!(
            "truncated while reading {what}: {len} bytes claimed, {} left",
            bytes.len()
        )));
    }
    let (head, rest) = bytes.split_at(len);
    *bytes = rest;
    String::from_utf8(head.to_vec())
        .map_err(|_| ScenarioError::Corrupt(format!("{what} is not UTF-8")))
}

/// A deterministic per-element unit draw in `[0, 1)`: hash of
/// `(seed, label, index)` through FNV-1a, top 53 bits as the mantissa.
/// This is how packs spread process variation, duty jitter, and corner
/// assignment across a population without an RNG stream.
pub(crate) fn unit_hash(seed: u64, label: &str, index: u64) -> f64 {
    let h = fnv1a_u64(fnv1a(fnv1a_u64(FNV_OFFSET, seed), label.as_bytes()), index);
    (h >> 11) as f64 * 2f64.powi(-53)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_bit_patterns() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        let mut view = buf.as_slice();
        assert_eq!(take_u64(&mut view, "a").unwrap(), u64::MAX);
        assert_eq!(
            take_f64(&mut view, "b").unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(
            take_f64(&mut view, "c").unwrap().to_bits(),
            f64::NAN.to_bits()
        );
        assert!(view.is_empty());
        assert!(take_u64(&mut view, "d").is_err());
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn unit_hash_is_deterministic_and_in_range() {
        for i in 0..1_000 {
            let u = unit_hash(42, "rate", i);
            assert!((0.0..1.0).contains(&u), "u = {u}");
            assert_eq!(u.to_bits(), unit_hash(42, "rate", i).to_bits());
        }
        // Different labels and seeds decorrelate.
        assert_ne!(unit_hash(42, "rate", 7), unit_hash(42, "duty", 7));
        assert_ne!(unit_hash(42, "rate", 7), unit_hash(43, "rate", 7));
    }
}
