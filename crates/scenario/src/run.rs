//! The scenario engine: shards a pack's block mix into columnar
//! stores, steps them epoch by epoch, and checkpoints the state.
//!
//! Determinism contract: every shard's epoch kernel touches only that
//! shard's columns, the per-epoch context is computed once from the
//! pack, and [`dh_exec::par_chunks_mut`] reassembles results in index
//! order — so the run is bit-identical at any thread count, and the
//! report fingerprint is a stable pin for CI. Checkpoints (`DHSP` v2;
//! v1 files still resume) carry only the mutable state columns plus the
//! run's [`DegradedReport`]; the constant parameter columns are rebuilt
//! from the pack, whose fingerprint the file embeds so a checkpoint
//! cannot silently resume under a different scenario.
//!
//! Supervision mirrors the fleet engine: [`ScenarioRun::step_supervised`]
//! threads a [`FaultPlan`] through the shard workers (panic / poison /
//! stuck faults keyed on `(epoch, shard)`), retries and quarantines via
//! [`dh_exec::par_map_fold_supervised`], and
//! [`ScenarioCheckpointStore`] layers multi-generation fallback plus
//! injectable disk faults under the checkpoint writer. A no-op plan
//! short-circuits to the strict path, so its report stays bit-identical
//! to an unsupervised run.

use std::collections::BTreeSet;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use dh_exec::RetryPolicy;
use dh_fault::{
    CheckpointFallback, DegradedReport, DiskFaultKind, DiskIncident, FaultPlan, SensorFaultKind,
    SensorIncident, ShardFailure,
};

use crate::error::ScenarioError;
use crate::models::{EpochCtx, MultiplierStore, SramStore, WeightStore};
use crate::pack::{BlockModel, ScenarioPack};
use crate::wire::{
    fnv1a, fnv1a_u64, put_f64, put_str, put_u64, take_f64, take_str, take_u64, FNV_OFFSET,
};

/// Checkpoint magic: "DHSP" (Deep-Healing Scenario Pack state).
const MAGIC: &[u8; 4] = b"DHSP";
/// Checkpoint format version this build writes.
const VERSION: u64 = 2;
/// Oldest format version this build still resumes from (no degraded
/// section).
const LEGACY_VERSION: u64 = 1;

/// How long an injected slow write stalls the writing thread.
const SLOW_WRITE_STALL: std::time::Duration = std::time::Duration::from_millis(100);

/// One shard: a contiguous range of one block group's elements.
#[derive(Debug, Clone)]
struct Shard {
    group: usize,
    lo: u64,
    store: Store,
}

/// The columnar store behind a shard, one variant per victim model.
#[derive(Debug, Clone)]
enum Store {
    Sram(SramStore),
    Weight(WeightStore),
    Mult(MultiplierStore),
}

impl Store {
    fn build(pack: &ScenarioPack, group: usize, lo: u64, len: usize) -> Self {
        let ctx = pack.group_ctx(group);
        match &pack.blocks[group].model {
            BlockModel::SramDecoder { skew } => Self::Sram(SramStore::build(ctx, *skew, lo, len)),
            BlockModel::WeightMemory => {
                Self::Weight(WeightStore::build(ctx, &pack.workload.trace, lo, len))
            }
            BlockModel::AgedMultiplier {
                base_delay_ps,
                corners,
            } => Self::Mult(MultiplierStore::build(
                ctx,
                *base_delay_ps,
                corners,
                lo,
                len,
            )),
        }
    }

    fn len(&self) -> usize {
        match self {
            Self::Sram(s) => s.len(),
            Self::Weight(s) => s.len(),
            Self::Mult(s) => s.len(),
        }
    }

    fn step_epoch(&mut self, ctx: EpochCtx) {
        match self {
            Self::Sram(s) => s.step_epoch(ctx),
            Self::Weight(s) => s.step_epoch(ctx),
            Self::Mult(s) => s.step_epoch(ctx),
        }
    }

    fn metric(&self, i: usize) -> f64 {
        match self {
            Self::Sram(s) => s.metric(i),
            Self::Weight(s) => s.metric(i),
            Self::Mult(s) => s.metric(i),
        }
    }

    fn failed_epoch(&self, i: usize) -> u64 {
        match self {
            Self::Sram(s) => s.failed_epoch(i),
            Self::Weight(s) => s.failed_epoch(i),
            Self::Mult(s) => s.failed_epoch(i),
        }
    }

    /// The mutable state as `(f64 columns in fixed order, failed)`.
    fn state(&self) -> (Vec<&[f64]>, &[u64]) {
        match self {
            Self::Sram(s) => {
                let (r, p, f) = s.state_columns();
                (vec![r, p], f)
            }
            Self::Weight(s) => {
                let (cols, f) = s.state_columns();
                (cols.to_vec(), f)
            }
            Self::Mult(s) => {
                let (r, p, f) = s.state_columns();
                (vec![r, p], f)
            }
        }
    }

    fn state_mut(&mut self) -> (Vec<&mut [f64]>, &mut [u64]) {
        match self {
            Self::Sram(s) => {
                let (r, p, f) = s.state_columns_mut();
                (vec![r, p], f)
            }
            Self::Weight(s) => {
                let (cols, f) = s.state_columns_mut();
                (cols.into_iter().map(|v| v.as_mut_slice()).collect(), f)
            }
            Self::Mult(s) => {
                let (r, p, f) = s.state_columns_mut();
                (vec![r, p], f)
            }
        }
    }
}

/// Progress of a stepped run, returned by [`ScenarioRun::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Completed epochs.
    pub epoch: u64,
    /// Epochs the pack asks for.
    pub total_epochs: u64,
    /// Shards already stepped within the in-flight epoch.
    pub shard_cursor: usize,
    /// Total shards.
    pub shards: usize,
    /// Whether the run has integrated every epoch.
    pub done: bool,
}

/// Per-group aggregate of a [`ScenarioReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupReport {
    /// The block model's wire name.
    pub model: String,
    /// Elements in the group.
    pub count: u64,
    /// Elements at or past the failure threshold.
    pub failed: u64,
    /// Earliest 1-based failure epoch (0 when nothing failed).
    pub first_fail_epoch: u64,
    /// Mean of the failure metric, mV.
    pub mean_metric_mv: f64,
    /// Worst failure metric, mV.
    pub max_metric_mv: f64,
}

/// The end-of-run (or mid-run) aggregate view.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Pack name.
    pub scenario: String,
    /// Completed epochs.
    pub epochs_run: u64,
    /// Per-group aggregates, in pack order.
    pub groups: Vec<GroupReport>,
    /// Order-independent-of-threading state digest: pack fingerprint
    /// folded with every state column bit, shard by shard.
    pub fingerprint: u64,
}

impl ScenarioReport {
    /// A human-readable multi-line summary (the CLI's output format).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scenario {:?}: {} epoch(s) integrated",
            self.scenario, self.epochs_run
        );
        for (i, g) in self.groups.iter().enumerate() {
            let _ = write!(
                out,
                "  group {i} [{}]: {} elements, {} failed, \
                 mean {:.3} mV, worst {:.3} mV",
                g.model, g.count, g.failed, g.mean_metric_mv, g.max_metric_mv
            );
            if g.failed > 0 {
                let _ = write!(out, ", first failure at epoch {}", g.first_fail_epoch);
            }
            out.push('\n');
        }
        let _ = write!(out, "report fingerprint: {:#018x}", self.fingerprint);
        out
    }
}

/// A running (or resumable) scenario: the pack plus all shard state.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    pack: ScenarioPack,
    pack_fp: u64,
    shards: Vec<Shard>,
    epoch: u64,
    shard_cursor: usize,
    /// Everything a supervised run has survived (empty for a clean or
    /// unsupervised run). Persisted in `DHSP` v2 checkpoints so a
    /// kill/resume cycle cannot launder a degraded run into a clean one.
    pub degraded: DegradedReport,
    /// Shard indices dropped after exhausting retries; their last-good
    /// state stays frozen in the aggregate.
    quarantined: BTreeSet<usize>,
}

impl ScenarioRun {
    /// Builds the fresh (epoch-0) run for a validated pack.
    pub fn new(pack: ScenarioPack) -> Self {
        let pack_fp = pack.fingerprint();
        let mut shards = Vec::new();
        for (group, block) in pack.blocks.iter().enumerate() {
            let mut lo = 0u64;
            while lo < block.count {
                let len = (block.count - lo).min(pack.shard_size) as usize;
                shards.push(Shard {
                    group,
                    lo,
                    store: Store::build(&pack, group, lo, len),
                });
                lo += len as u64;
            }
        }
        Self {
            pack,
            pack_fp,
            shards,
            epoch: 0,
            shard_cursor: 0,
            degraded: DegradedReport::default(),
            quarantined: BTreeSet::new(),
        }
    }

    /// The pack this run integrates.
    pub fn pack(&self) -> &ScenarioPack {
        &self.pack
    }

    /// The pack fingerprint (checkpoint identity).
    pub fn pack_fingerprint(&self) -> u64 {
        self.pack_fp
    }

    /// Current progress.
    pub fn progress(&self) -> Progress {
        Progress {
            epoch: self.epoch,
            total_epochs: self.pack.epochs,
            shard_cursor: self.shard_cursor,
            shards: self.shards.len(),
            done: self.epoch >= self.pack.epochs,
        }
    }

    /// Steps up to `max_shards` shards of the in-flight epoch in
    /// parallel (a no-op once done). Shard boundaries are safe
    /// cancel/checkpoint points at any granularity.
    pub fn step(&mut self, max_shards: usize) -> Progress {
        if self.epoch >= self.pack.epochs {
            return self.progress();
        }
        let ctx = self.pack.epoch_ctx(self.epoch + 1);
        let hi = self
            .shard_cursor
            .saturating_add(max_shards.max(1))
            .min(self.shards.len());
        let batch = &mut self.shards[self.shard_cursor..hi];
        dh_exec::par_chunks_mut(batch, 1, |_, chunk| {
            for shard in chunk.iter_mut() {
                shard.store.step_epoch(ctx);
            }
        });
        dh_obs::counter!("scenario.shard_steps").add((hi - self.shard_cursor) as u64);
        self.shard_cursor = hi;
        if self.shard_cursor == self.shards.len() {
            self.shard_cursor = 0;
            self.epoch += 1;
            dh_obs::counter!("scenario.epochs").incr();
        }
        self.progress()
    }

    /// Runs every remaining epoch to completion.
    pub fn run_to_end(&mut self) {
        while !self.progress().done {
            self.step(usize::MAX);
        }
    }

    /// Mixes `(epoch, shard)` into one fault-plan index so the same
    /// shard draws fresh decisions every epoch.
    fn fault_key(&self, shard: usize) -> u64 {
        self.epoch
            .wrapping_mul(self.shards.len() as u64)
            .wrapping_add(shard as u64)
    }

    /// [`ScenarioRun::step`] under supervision: shard workers run inside
    /// `catch_unwind`, panicking shards (injected or real) are retried
    /// per `retry` and quarantined when they keep failing, poisoned
    /// (non-finite) shard states are rejected at the fold, and every
    /// such event lands in [`ScenarioRun::degraded`] instead of
    /// aborting. Workers step an out-of-place copy of the shard state,
    /// so a retried attempt always starts from the intact pre-epoch
    /// columns.
    ///
    /// A quarantined shard stops advancing: its last-good state stays
    /// frozen in the aggregate (and the fingerprint), and the shard is
    /// skipped in every later epoch. A rejected (poisoned) shard state
    /// is discarded the same way for that epoch, with the element count
    /// added to `rejected_samples`.
    ///
    /// With `plan` absent or a no-op (and nothing quarantined), this
    /// delegates to the strict path, so the run stays bit-identical to
    /// an unsupervised one.
    pub fn step_supervised(
        &mut self,
        max_shards: usize,
        plan: Option<&FaultPlan>,
        retry: &RetryPolicy,
    ) -> Progress {
        let plan = plan.filter(|p| !p.is_noop());
        if plan.is_none() && self.quarantined.is_empty() {
            return self.step(max_shards);
        }
        if self.epoch >= self.pack.epochs {
            return self.progress();
        }
        if let Some(p) = plan {
            // Register always-stuck wear sensors once, at the very start
            // of the run (resumes re-load them from the checkpoint).
            if self.epoch == 0
                && self.shard_cursor == 0
                && self.degraded.sensor_incidents.is_empty()
            {
                for shard in 0..self.shards.len() as u64 {
                    if let Some(kind) = p.sensor_fault(shard) {
                        self.degraded.sensor_incidents.push(SensorIncident {
                            chip: shard,
                            kind,
                            epoch: 0,
                        });
                    }
                }
            }
        }
        let ctx = self.pack.epoch_ctx(self.epoch + 1);
        let first = self.shard_cursor;
        let hi = first
            .saturating_add(max_shards.max(1))
            .min(self.shards.len());
        let batch = hi - first;
        // Out-of-place inputs: quarantined shards are skipped, everyone
        // else is stepped on a copy so retries are side-effect free.
        let inputs: Vec<Option<Store>> = (first..hi)
            .map(|s| {
                if self.quarantined.contains(&s) {
                    None
                } else {
                    Some(self.shards[s].store.clone())
                }
            })
            .collect();
        let keys: Vec<u64> = (first..hi).map(|s| self.fault_key(s)).collect();
        let shards = &mut self.shards;
        let degraded = &mut self.degraded;
        let outcome = dh_exec::par_map_fold_supervised(
            batch,
            |i, attempt| {
                // Quarantined shards stay frozen: no work, no faults.
                let mut store = inputs[i].clone()?;
                let key = keys[i];
                if let Some(p) = plan {
                    if p.shard_panics(key, attempt) {
                        panic!(
                            "injected fault: scenario shard {} attempt {attempt}",
                            first + i
                        );
                    }
                }
                store.step_epoch(ctx);
                if let Some(p) = plan {
                    if let Some((offset, kind)) = p.poison(key, attempt, store.len() as u64) {
                        let (mut cols, _) = store.state_mut();
                        if let Some(col) = cols.first_mut() {
                            col[offset as usize] = kind.value();
                        }
                    }
                }
                Some(store)
            },
            (),
            |(), i, store| {
                let Some(store) = store else { return };
                let poisoned = (0..store.len())
                    .filter(|&k| !store.metric(k).is_finite())
                    .count();
                if poisoned > 0 {
                    degraded.rejected_samples += poisoned as u64;
                    dh_obs::counter!("scenario.rejected_samples").add(poisoned as u64);
                    return;
                }
                shards[first + i].store = store;
            },
            retry,
        );
        degraded.retries += outcome.retries;
        dh_obs::counter!("scenario.shard_retries").add(outcome.retries);
        dh_obs::counter!("scenario.shards_quarantined").add(outcome.failures.len() as u64);
        for f in outcome.failures {
            let shard = first + f.index;
            degraded.quarantined.push(ShardFailure {
                shard: shard as u64,
                attempts: f.attempts,
                error: f.message,
            });
            self.quarantined.insert(shard);
        }
        dh_obs::counter!("scenario.shard_steps").add(batch as u64);
        self.shard_cursor = hi;
        if self.shard_cursor == self.shards.len() {
            self.shard_cursor = 0;
            self.epoch += 1;
            dh_obs::counter!("scenario.epochs").incr();
        }
        self.progress()
    }

    /// Aggregates the current state into per-group reports plus the
    /// run fingerprint. Serial scan: the fold order is the shard
    /// order, independent of stepping parallelism.
    pub fn report(&self) -> ScenarioReport {
        let mut groups: Vec<GroupReport> = self
            .pack
            .blocks
            .iter()
            .map(|b| GroupReport {
                model: b.model.name().to_string(),
                count: b.count,
                failed: 0,
                first_fail_epoch: 0,
                mean_metric_mv: 0.0,
                max_metric_mv: 0.0,
            })
            .collect();
        let mut fp = fnv1a_u64(FNV_OFFSET, self.pack_fp);
        fp = fnv1a_u64(fp, self.epoch);
        fp = fnv1a_u64(fp, self.shard_cursor as u64);
        for shard in &self.shards {
            let g = &mut groups[shard.group];
            for i in 0..shard.store.len() {
                let metric = shard.store.metric(i);
                g.mean_metric_mv += metric;
                g.max_metric_mv = g.max_metric_mv.max(metric);
                let failed = shard.store.failed_epoch(i);
                if failed != 0 {
                    g.failed += 1;
                    if g.first_fail_epoch == 0 || failed < g.first_fail_epoch {
                        g.first_fail_epoch = failed;
                    }
                }
            }
            let (cols, failed) = shard.store.state();
            for col in cols {
                for &v in col {
                    fp = fnv1a_u64(fp, v.to_bits());
                }
            }
            for &v in failed {
                fp = fnv1a_u64(fp, v);
            }
        }
        for g in &mut groups {
            if g.count > 0 {
                g.mean_metric_mv /= g.count as f64;
            }
        }
        ScenarioReport {
            scenario: self.pack.name.clone(),
            epochs_run: self.epoch,
            groups,
            fingerprint: fp,
        }
    }

    // ------------------------------------------------------- checkpoints

    /// Serializes the mutable state (`DHSP` v2) — constant columns are
    /// rebuilt from the pack on resume; the degraded report rides along
    /// so quarantines and incidents survive a kill/resume cycle.
    pub fn encode_checkpoint(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        put_u64(&mut buf, VERSION);
        put_u64(&mut buf, self.pack_fp);
        put_u64(&mut buf, self.epoch);
        put_u64(&mut buf, self.shard_cursor as u64);
        put_u64(&mut buf, self.shards.len() as u64);
        for shard in &self.shards {
            put_u64(&mut buf, shard.group as u64);
            put_u64(&mut buf, shard.lo);
            put_u64(&mut buf, shard.store.len() as u64);
            let (cols, failed) = shard.store.state();
            for col in cols {
                for &v in col {
                    put_f64(&mut buf, v);
                }
            }
            for &v in failed {
                put_u64(&mut buf, v);
            }
        }
        encode_degraded(&mut buf, &self.degraded);
        let checksum = fnv1a(FNV_OFFSET, &buf);
        put_u64(&mut buf, checksum);
        buf
    }

    /// Rebuilds a run from a pack and checkpoint bytes, verifying the
    /// checksum, the format version, and the pack fingerprint.
    pub fn decode_checkpoint(pack: ScenarioPack, bytes: &[u8]) -> Result<Self, ScenarioError> {
        if bytes.len() < MAGIC.len() + 8 || &bytes[..4] != MAGIC {
            return Err(ScenarioError::Corrupt("bad magic".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let mut tail_view = tail;
        let expect = take_u64(&mut tail_view, "checksum")?;
        let actual = fnv1a(FNV_OFFSET, body);
        if expect != actual {
            return Err(ScenarioError::Corrupt(format!(
                "checksum mismatch: stored {expect:#018x}, computed {actual:#018x}"
            )));
        }
        let mut view = &body[4..];
        let version = take_u64(&mut view, "version")?;
        if version != VERSION && version != LEGACY_VERSION {
            return Err(ScenarioError::Corrupt(format!(
                "unsupported version {version} (want {VERSION})"
            )));
        }
        let pack_fp = take_u64(&mut view, "pack fingerprint")?;
        let mut run = Self::new(pack);
        if pack_fp != run.pack_fp {
            return Err(ScenarioError::Mismatch(format!(
                "checkpoint is for pack {pack_fp:#018x}, this pack is {:#018x}",
                run.pack_fp
            )));
        }
        run.epoch = take_u64(&mut view, "epoch")?;
        run.shard_cursor = take_u64(&mut view, "shard cursor")? as usize;
        let shard_count = take_u64(&mut view, "shard count")?;
        if shard_count != run.shards.len() as u64 || run.shard_cursor > run.shards.len() {
            return Err(ScenarioError::Corrupt(format!(
                "layout mismatch: {shard_count} shards in file, {} from pack",
                run.shards.len()
            )));
        }
        for shard in &mut run.shards {
            let group = take_u64(&mut view, "shard group")?;
            let lo = take_u64(&mut view, "shard lo")?;
            let len = take_u64(&mut view, "shard len")?;
            if group != shard.group as u64 || lo != shard.lo || len != shard.store.len() as u64 {
                return Err(ScenarioError::Corrupt(format!(
                    "shard layout mismatch at group {group} lo {lo}"
                )));
            }
            let (cols, failed) = shard.store.state_mut();
            for col in cols {
                for v in col.iter_mut() {
                    *v = take_f64(&mut view, "state column")?;
                }
            }
            for v in failed.iter_mut() {
                *v = take_u64(&mut view, "failed column")?;
            }
        }
        if version == VERSION {
            run.degraded = decode_degraded(&mut view)?;
            run.quarantined = run
                .degraded
                .quarantined
                .iter()
                .map(|q| q.shard as usize)
                .collect();
        }
        if !view.is_empty() {
            return Err(ScenarioError::Corrupt(format!(
                "{} trailing bytes",
                view.len()
            )));
        }
        Ok(run)
    }

    /// Writes the checkpoint via a temp file, fsync, and an atomic
    /// rename, so a kill (or power loss) mid-write leaves either the old
    /// file or the new one — never a torn hybrid.
    pub fn save_checkpoint(&self, path: &Path) -> Result<(), ScenarioError> {
        let bytes = self.encode_checkpoint();
        write_atomic(path, &bytes)?;
        dh_obs::counter!("scenario.checkpoint_bytes").add(bytes.len() as u64);
        Ok(())
    }

    /// Loads a checkpoint written by [`ScenarioRun::save_checkpoint`].
    pub fn resume_from(pack: ScenarioPack, path: &Path) -> Result<Self, ScenarioError> {
        let bytes = std::fs::read(path).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            why: e.to_string(),
        })?;
        Self::decode_checkpoint(pack, &bytes)
    }
}

/// Convenience: integrate a pack start to finish and report.
pub fn run_pack(pack: ScenarioPack) -> ScenarioReport {
    let mut run = ScenarioRun::new(pack);
    run.run_to_end();
    run.report()
}

/// Integrates a pack under supervision: worker faults from `plan` are
/// retried per `retry` and quarantined on exhaustion, checkpoints (when
/// a store is given) are written every `every` supervised steps through
/// the disk-fault-injecting writer, and a corrupt newest generation
/// falls back to an older one on resume. Returns the report plus the
/// accumulated [`DegradedReport`]; a no-op plan with no checkpoints
/// produces a report bit-identical to [`run_pack`].
///
/// # Errors
///
/// [`ScenarioError::Io`] on a genuine filesystem failure and
/// [`ScenarioError::Mismatch`] when an on-disk checkpoint belongs to a
/// different pack — injected faults degrade instead of erroring.
pub fn run_pack_supervised(
    pack: ScenarioPack,
    plan: Option<&FaultPlan>,
    retry: &RetryPolicy,
    checkpoints: Option<(&ScenarioCheckpointStore, u64)>,
) -> Result<(ScenarioReport, DegradedReport), ScenarioError> {
    let mut run = match checkpoints {
        Some((store, _)) => {
            let (found, fallbacks) = store.read_newest_valid(pack.clone())?;
            let mut run = found.unwrap_or_else(|| ScenarioRun::new(pack));
            run.degraded.checkpoint_fallbacks.extend(fallbacks);
            run
        }
        None => ScenarioRun::new(pack),
    };
    let batch = dh_exec::max_threads().max(1);
    // Disk incidents stay out of `run.degraded` until the run is over,
    // so no checkpoint ever embeds this process's own disk-fault
    // history (a resume would otherwise double-count replayed writes).
    let mut disk = DegradedReport::default();
    let mut write_index = 0u64;
    let mut steps = 0u64;
    loop {
        let progress = run.step_supervised(batch, plan, retry);
        if progress.done {
            break;
        }
        steps += 1;
        if let Some((store, every)) = checkpoints {
            if every > 0 && steps.is_multiple_of(every) {
                let outcome = store.write_injected(&run, plan, write_index)?;
                disk.absorb(outcome.disk);
                write_index += 1;
            }
        }
    }
    if let Some((store, _)) = checkpoints {
        let outcome = store.write_injected(&run, plan, write_index)?;
        disk.absorb(outcome.disk);
    }
    run.degraded.absorb(disk);
    Ok((run.report(), run.degraded.clone()))
}

/// Writes `bytes` to `path` durably: temp file, fsync, atomic rename,
/// then an fsync of the parent directory so the rename itself survives
/// a crash. The directory fsync is a hard error on Unix and best-effort
/// elsewhere.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ScenarioError> {
    let io_err = |why: std::io::Error| ScenarioError::Io {
        path: path.display().to_string(),
        why: why.to_string(),
    };
    let tmp = path.with_extension("tmp");
    let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
    file.write_all(bytes).map_err(io_err)?;
    file.sync_all().map_err(io_err)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(io_err)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        match std::fs::File::open(dir).and_then(|d| d.sync_all()) {
            Ok(()) => {}
            Err(e) if cfg!(unix) => return Err(io_err(e)),
            Err(_) => {}
        }
    }
    Ok(())
}

/// Appends the degraded-state section (same field order as the fleet
/// format's, so the two stay idiom-compatible).
fn encode_degraded(buf: &mut Vec<u8>, d: &DegradedReport) {
    put_u64(buf, d.retries);
    put_u64(buf, d.rejected_samples);
    put_u64(buf, d.quarantined.len() as u64);
    for q in &d.quarantined {
        put_u64(buf, q.shard);
        put_u64(buf, u64::from(q.attempts));
        put_str(buf, &q.error);
    }
    put_u64(buf, d.sensor_incidents.len() as u64);
    for s in &d.sensor_incidents {
        put_u64(buf, s.chip);
        put_u64(buf, u64::from(s.kind.discriminant()));
        put_u64(buf, s.kind.payload().to_bits());
        put_u64(buf, s.epoch);
    }
    put_u64(buf, d.checkpoint_fallbacks.len() as u64);
    for c in &d.checkpoint_fallbacks {
        put_u64(buf, c.generation);
        put_str(buf, &c.reason);
    }
    put_u64(buf, d.disk_incidents.len() as u64);
    for i in &d.disk_incidents {
        put_u64(buf, u64::from(i.kind.discriminant()));
        put_u64(buf, i.write_index);
    }
    put_u64(buf, d.retention_trims);
}

/// Reads the degraded-state section back from the front of `bytes`.
fn decode_degraded(bytes: &mut &[u8]) -> Result<DegradedReport, ScenarioError> {
    let mut d = DegradedReport {
        retries: take_u64(bytes, "degraded.retries")?,
        rejected_samples: take_u64(bytes, "degraded.rejected")?,
        ..DegradedReport::default()
    };
    let n = take_u64(bytes, "degraded.quarantined.len")?;
    for _ in 0..n {
        d.quarantined.push(ShardFailure {
            shard: take_u64(bytes, "degraded.quarantined.shard")?,
            attempts: take_u64(bytes, "degraded.quarantined.attempts")? as u32,
            error: take_str(bytes, "degraded.quarantined.error")?,
        });
    }
    let n = take_u64(bytes, "degraded.incidents.len")?;
    for _ in 0..n {
        let chip = take_u64(bytes, "degraded.incidents.chip")?;
        let disc = take_u64(bytes, "degraded.incidents.kind")?;
        let payload = f64::from_bits(take_u64(bytes, "degraded.incidents.payload")?);
        let epoch = take_u64(bytes, "degraded.incidents.epoch")?;
        let kind = SensorFaultKind::from_wire(disc as u8, payload).ok_or_else(|| {
            ScenarioError::Corrupt(format!("unknown sensor-fault discriminant {disc}"))
        })?;
        d.sensor_incidents
            .push(SensorIncident { chip, kind, epoch });
    }
    let n = take_u64(bytes, "degraded.fallbacks.len")?;
    for _ in 0..n {
        d.checkpoint_fallbacks.push(CheckpointFallback {
            generation: take_u64(bytes, "degraded.fallbacks.generation")?,
            reason: take_str(bytes, "degraded.fallbacks.reason")?,
        });
    }
    let n = take_u64(bytes, "degraded.disk.len")?;
    for _ in 0..n {
        let disc = take_u64(bytes, "degraded.disk.kind")?;
        let write_index = take_u64(bytes, "degraded.disk.write_index")?;
        let kind = DiskFaultKind::from_wire(disc as u8).ok_or_else(|| {
            ScenarioError::Corrupt(format!("unknown disk-fault discriminant {disc}"))
        })?;
        d.disk_incidents.push(DiskIncident { kind, write_index });
    }
    d.retention_trims = take_u64(bytes, "degraded.trims")?;
    Ok(d)
}

/// The result of one injected checkpoint write: bytes that landed, the
/// injected content corruption (if any), and the injected disk faults.
#[derive(Debug, Clone, Default)]
pub struct CheckpointWrite {
    /// Bytes written to the newest generation (0 when the write was
    /// swallowed by an injected ENOSPC or failed fsync).
    pub bytes: u64,
    /// Human-readable description of an injected content corruption.
    pub corruption: Option<String>,
    /// Disk incidents and retention trims injected during this write.
    pub disk: DegradedReport,
}

/// A multi-generation `DHSP` checkpoint store: `base`, `base.1`, …,
/// `base.{keep-1}`, newest first — the scenario twin of the fleet
/// engine's [`dh_fleet::CheckpointStore`], with the same injectable
/// disk-fault semantics under the writer.
#[derive(Debug, Clone)]
pub struct ScenarioCheckpointStore {
    base: PathBuf,
    keep: usize,
}

impl ScenarioCheckpointStore {
    /// A store at `base` keeping `keep` generations (clamped to ≥ 1).
    pub fn new(base: impl Into<PathBuf>, keep: usize) -> Self {
        Self {
            base: base.into(),
            keep: keep.max(1),
        }
    }

    /// The newest generation's path.
    pub fn base_path(&self) -> &Path {
        &self.base
    }

    /// Generations kept.
    pub fn keep(&self) -> usize {
        self.keep
    }

    /// The path of generation `generation` (0 = newest).
    pub fn generation_path(&self, generation: usize) -> PathBuf {
        if generation == 0 {
            self.base.clone()
        } else {
            PathBuf::from(format!("{}.{generation}", self.base.display()))
        }
    }

    /// Shifts every generation one slot older (the oldest falls off).
    /// Missing generations are skipped.
    fn rotate(&self) -> Result<(), ScenarioError> {
        for generation in (0..self.keep.saturating_sub(1)).rev() {
            let from = self.generation_path(generation);
            let to = self.generation_path(generation + 1);
            match std::fs::rename(&from, &to) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(ScenarioError::Io {
                        path: from.display().to_string(),
                        why: e.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Deletes the oldest on-disk generation (never the newest) to
    /// relieve disk pressure. Returns whether anything was removed.
    fn trim_oldest(&self) -> bool {
        for generation in (1..self.keep).rev() {
            if std::fs::remove_file(self.generation_path(generation)).is_ok() {
                return true;
            }
        }
        false
    }

    /// Rotates the generations and writes `run`'s checkpoint as the
    /// newest.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Io`] on any filesystem failure.
    pub fn write(&self, run: &ScenarioRun) -> Result<u64, ScenarioError> {
        self.rotate()?;
        let bytes = run.encode_checkpoint();
        write_atomic(&self.base, &bytes)?;
        dh_obs::counter!("scenario.checkpoint_bytes").add(bytes.len() as u64);
        Ok(bytes.len() as u64)
    }

    /// [`ScenarioCheckpointStore::write`] with fault injection: the plan
    /// may corrupt the encoded bytes or inject a disk fault for this
    /// write index, each contained rather than fatal:
    ///
    /// - **ENOSPC**: nothing lands; the previous generation stays
    ///   newest and the oldest generation is trimmed.
    /// - **Torn write**: only a seeded prefix reaches the disk
    ///   (resume-time generation fallback absorbs it).
    /// - **Failed fsync**: the write is abandoned; the previous
    ///   generation stays newest.
    /// - **Slow write**: the write stalls briefly, then lands intact.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Io`] on any genuine filesystem failure.
    pub fn write_injected(
        &self,
        run: &ScenarioRun,
        plan: Option<&FaultPlan>,
        write_index: u64,
    ) -> Result<CheckpointWrite, ScenarioError> {
        let mut outcome = CheckpointWrite::default();
        let mut bytes = run.encode_checkpoint();
        outcome.corruption = plan.and_then(|p| p.corrupt_checkpoint(write_index, &mut bytes));
        let fault = plan.and_then(|p| p.disk_fault(write_index));
        if let Some(kind) = fault {
            outcome
                .disk
                .disk_incidents
                .push(DiskIncident { kind, write_index });
            count_disk_fault(kind);
        }
        match fault {
            Some(DiskFaultKind::Enospc) => {
                if self.trim_oldest() {
                    outcome.disk.retention_trims += 1;
                    dh_obs::counter!("scenario.retention_trims").incr();
                }
                return Ok(outcome);
            }
            Some(DiskFaultKind::FsyncFail) => return Ok(outcome),
            Some(DiskFaultKind::TornWrite) => {
                let keep = plan
                    .expect("torn write implies a plan")
                    .torn_length(write_index, bytes.len());
                bytes.truncate(keep);
            }
            Some(DiskFaultKind::SlowWrite) => std::thread::sleep(SLOW_WRITE_STALL),
            None => {}
        }
        self.rotate()?;
        write_atomic(&self.base, &bytes)?;
        dh_obs::counter!("scenario.checkpoint_bytes").add(bytes.len() as u64);
        outcome.bytes = bytes.len() as u64;
        Ok(outcome)
    }

    /// Walks the generations newest-first and returns the first run
    /// that fully validates against `pack`, together with a
    /// [`CheckpointFallback`] record for every newer generation that
    /// had to be skipped.
    ///
    /// All generations missing (a fresh start) or all corrupt both
    /// return `Ok(None)` — the latter with the fallback records saying
    /// why the run is starting over. A checkpoint for a *different*
    /// pack is a hard [`ScenarioError::Mismatch`]: resuming someone
    /// else's state silently would be worse than aborting.
    pub fn read_newest_valid(
        &self,
        pack: ScenarioPack,
    ) -> Result<(Option<ScenarioRun>, Vec<CheckpointFallback>), ScenarioError> {
        let mut fallbacks = Vec::new();
        for generation in 0..self.keep {
            let path = self.generation_path(generation);
            let bytes = match std::fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => {
                    fallbacks.push(CheckpointFallback {
                        generation: generation as u64,
                        reason: format!("unreadable: {e}"),
                    });
                    continue;
                }
            };
            match ScenarioRun::decode_checkpoint(pack.clone(), &bytes) {
                Ok(run) => {
                    dh_obs::counter!("scenario.checkpoint_fallbacks").add(fallbacks.len() as u64);
                    return Ok((Some(run), fallbacks));
                }
                Err(e @ ScenarioError::Mismatch(_)) => return Err(e),
                Err(e) => fallbacks.push(CheckpointFallback {
                    generation: generation as u64,
                    reason: e.to_string(),
                }),
            }
        }
        dh_obs::counter!("scenario.checkpoint_fallbacks").add(fallbacks.len() as u64);
        Ok((None, fallbacks))
    }
}

/// Bumps the per-kind disk-fault counter.
fn count_disk_fault(kind: DiskFaultKind) {
    match kind {
        DiskFaultKind::Enospc => dh_obs::counter!("scenario.disk_fault_enospc").incr(),
        DiskFaultKind::TornWrite => dh_obs::counter!("scenario.disk_fault_torn").incr(),
        DiskFaultKind::FsyncFail => dh_obs::counter!("scenario.disk_fault_fsync").incr(),
        DiskFaultKind::SlowWrite => dh_obs::counter!("scenario.disk_fault_slow").incr(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ScenarioRegistry;

    fn small_pack() -> ScenarioPack {
        let mut pack = ScenarioRegistry::builtin()
            .get("sram-decoder")
            .unwrap()
            .pack
            .clone();
        pack.epochs = 6;
        pack.shard_size = 300;
        pack.blocks[0].count = 700;
        pack.blocks[1].count = 500;
        pack
    }

    #[test]
    fn serial_and_parallel_runs_are_bit_identical() {
        let pack = small_pack();
        dh_exec::set_max_threads(Some(1));
        let serial = run_pack(pack.clone());
        dh_exec::set_max_threads(None);
        let parallel = run_pack(pack);
        assert_eq!(serial.fingerprint, parallel.fingerprint);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn checkpoint_round_trips_mid_epoch() {
        let pack = small_pack();
        let mut straight = ScenarioRun::new(pack.clone());
        straight.run_to_end();

        let mut stepped = ScenarioRun::new(pack.clone());
        // Stop mid-epoch (5 shards total: 3 + 2).
        stepped.step(2);
        let bytes = stepped.encode_checkpoint();
        let mut resumed = ScenarioRun::decode_checkpoint(pack, &bytes).unwrap();
        assert_eq!(resumed.progress(), stepped.progress());
        resumed.run_to_end();
        assert_eq!(resumed.report(), straight.report());
        // Byte identity of the final state, not just the digest.
        assert_eq!(resumed.encode_checkpoint(), {
            straight.encode_checkpoint()
        });
    }

    #[test]
    fn checkpoint_rejects_corruption_and_wrong_pack() {
        let pack = small_pack();
        let mut run = ScenarioRun::new(pack.clone());
        run.step(usize::MAX);
        let mut bytes = run.encode_checkpoint();
        let last = bytes.len() - 9;
        bytes[last] ^= 1;
        assert!(matches!(
            ScenarioRun::decode_checkpoint(pack.clone(), &bytes),
            Err(ScenarioError::Corrupt(_))
        ));
        let mut other = pack.clone();
        other.seed += 1;
        assert!(matches!(
            ScenarioRun::decode_checkpoint(other, &run.encode_checkpoint()),
            Err(ScenarioError::Mismatch(_))
        ));
        assert!(matches!(
            ScenarioRun::decode_checkpoint(pack, b"DHXX"),
            Err(ScenarioError::Corrupt(_))
        ));
    }

    #[test]
    fn report_counts_failures_per_group() {
        let mut pack = small_pack();
        pack.epochs = 40;
        pack.fail_threshold_mv = 10.0;
        let report = run_pack(pack);
        assert_eq!(report.groups.len(), 2);
        let total_failed: u64 = report.groups.iter().map(|g| g.failed).sum();
        assert!(total_failed > 0, "{report:?}");
        for g in &report.groups {
            assert!(g.max_metric_mv >= g.mean_metric_mv);
            if g.failed > 0 {
                assert!(g.first_fail_epoch >= 1);
            }
        }
    }

    // ------------------------------------------------- supervision

    fn plan(spec: &str, seed: u64) -> FaultPlan {
        FaultPlan::new(dh_fault::FaultSpec::parse(spec).unwrap(), seed)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dh-scenario-ckpt-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn supervised_noop_plan_is_bit_identical_to_the_strict_path() {
        let pack = small_pack();
        let clean = run_pack(pack.clone());
        let noop = plan("", 7);
        let retry = RetryPolicy::immediate(3);
        let (report, degraded) = run_pack_supervised(pack, Some(&noop), &retry, None).unwrap();
        assert_eq!(report, clean);
        assert!(!degraded.is_degraded(), "{degraded:?}");
    }

    #[test]
    fn always_panicking_shards_are_retried_then_quarantined_frozen() {
        let pack = small_pack();
        let p = plan("panic=1", 3);
        let retry = RetryPolicy::immediate(2);
        let (report, degraded) = run_pack_supervised(pack.clone(), Some(&p), &retry, None).unwrap();
        // Every shard panicked on every attempt: all 5 quarantined after
        // one retry each, and the state never advanced past epoch 0.
        assert_eq!(degraded.quarantined.len(), 5, "{degraded:?}");
        assert!(degraded.retries >= 5);
        for q in &degraded.quarantined {
            assert_eq!(q.attempts, 2);
            assert!(q.error.contains("injected fault"), "{}", q.error);
        }
        assert_eq!(report.epochs_run, pack.epochs);
        let init_report = ScenarioRun::new(pack).report();
        for (g, init) in report.groups.iter().zip(init_report.groups.iter()) {
            assert_eq!(g.mean_metric_mv.to_bits(), init.mean_metric_mv.to_bits());
        }
    }

    #[test]
    fn poisoned_epochs_are_rejected_and_the_shard_keeps_its_old_state() {
        let pack = small_pack();
        let p = plan("poison=1", 11);
        let retry = RetryPolicy::immediate(2);
        let (report, degraded) = run_pack_supervised(pack.clone(), Some(&p), &retry, None).unwrap();
        // Every shard's every epoch is poisoned with a non-finite value,
        // so every fold rejects the whole shard store.
        assert!(degraded.rejected_samples > 0, "{degraded:?}");
        assert!(degraded.quarantined.is_empty(), "{degraded:?}");
        // Rejected folds keep the pre-epoch state: the report equals the
        // initial state's.
        let init = ScenarioRun::new(pack).report();
        for (g, i) in report.groups.iter().zip(init.groups.iter()) {
            assert_eq!(g.mean_metric_mv.to_bits(), i.mean_metric_mv.to_bits());
        }
    }

    #[test]
    fn v2_checkpoints_carry_the_degraded_report_and_quarantine_set() {
        let pack = small_pack();
        let p = plan("panic=1", 3);
        let retry = RetryPolicy::immediate(2);
        let mut run = ScenarioRun::new(pack.clone());
        run.step_supervised(2, Some(&p), &retry);
        assert!(!run.degraded.quarantined.is_empty());
        let bytes = run.encode_checkpoint();
        let resumed = ScenarioRun::decode_checkpoint(pack, &bytes).unwrap();
        assert_eq!(resumed.degraded, run.degraded);
        assert_eq!(resumed.quarantined, run.quarantined);
        // And the degraded section participates in the checksum.
        let mut torn = bytes.clone();
        let degraded_byte = torn.len() - 20;
        torn[degraded_byte] ^= 1;
        assert!(ScenarioRun::decode_checkpoint(resumed.pack().clone(), &torn).is_err());
    }

    #[test]
    fn legacy_v1_checkpoints_without_a_degraded_section_still_decode() {
        let pack = small_pack();
        let mut run = ScenarioRun::new(pack.clone());
        run.step(usize::MAX);
        let v2 = run.encode_checkpoint();
        // A clean run's degraded section is 7 empty u64 fields; strip it
        // and rewrite version 2 -> 1 to reconstruct a v1 file.
        let body_len = v2.len() - 8 - 56;
        let mut v1 = v2[..body_len].to_vec();
        v1[4..12].copy_from_slice(&1u64.to_le_bytes());
        let checksum = fnv1a(FNV_OFFSET, &v1);
        put_u64(&mut v1, checksum);
        let decoded = ScenarioRun::decode_checkpoint(pack, &v1).unwrap();
        assert_eq!(decoded.progress(), run.progress());
        assert_eq!(decoded.degraded, DegradedReport::default());
        assert_eq!(decoded.report(), run.report());
    }

    #[test]
    fn store_falls_back_over_corrupt_generations_and_rejects_wrong_packs() {
        let dir = temp_dir("fallback");
        let store = ScenarioCheckpointStore::new(dir.join("scenario.dhsp"), 3);
        let pack = small_pack();
        let mut run = ScenarioRun::new(pack.clone());
        run.step(2);
        store.write(&run).unwrap();
        let older = run.progress();
        run.step(usize::MAX);
        store.write(&run).unwrap();
        // Corrupt the newest generation on disk.
        let mut bytes = std::fs::read(store.base_path()).unwrap();
        let len = bytes.len();
        bytes[len / 2] ^= 0x40;
        std::fs::write(store.base_path(), &bytes).unwrap();
        let (found, fallbacks) = store.read_newest_valid(pack.clone()).unwrap();
        assert_eq!(found.unwrap().progress(), older);
        assert_eq!(fallbacks.len(), 1);
        assert!(fallbacks[0].reason.contains("checksum"), "{fallbacks:?}");
        // A different pack is a hard mismatch, not a silent fallback.
        let mut other = pack;
        other.seed += 1;
        assert!(matches!(
            store.read_newest_valid(other),
            Err(ScenarioError::Mismatch(_))
        ));
    }

    #[test]
    fn enospc_and_fsync_faults_keep_the_previous_generation() {
        let dir = temp_dir("disk");
        let store = ScenarioCheckpointStore::new(dir.join("scenario.dhsp"), 3);
        let pack = small_pack();
        let mut run = ScenarioRun::new(pack.clone());
        run.step(2);
        store.write(&run).unwrap();
        let before = std::fs::read(store.base_path()).unwrap();
        run.step(usize::MAX);
        // disk-full=1: every write draws ENOSPC.
        let p = plan("disk-full=1", 5);
        let outcome = store.write_injected(&run, Some(&p), 0).unwrap();
        assert_eq!(outcome.bytes, 0);
        assert_eq!(outcome.disk.disk_incidents.len(), 1);
        assert_eq!(outcome.disk.disk_incidents[0].kind, DiskFaultKind::Enospc);
        assert_eq!(std::fs::read(store.base_path()).unwrap(), before);
        // disk-fsync=1 (and no ENOSPC): abandoned before rename.
        let p = plan("disk-fsync=1", 5);
        let outcome = store.write_injected(&run, Some(&p), 1).unwrap();
        assert_eq!(outcome.bytes, 0);
        assert_eq!(
            outcome.disk.disk_incidents[0].kind,
            DiskFaultKind::FsyncFail
        );
        assert_eq!(std::fs::read(store.base_path()).unwrap(), before);
        // A torn write lands a strict prefix; resume falls back to the
        // intact older generation.
        let p = plan("disk-torn=1", 5);
        let outcome = store.write_injected(&run, Some(&p), 0).unwrap();
        assert_eq!(
            outcome.disk.disk_incidents[0].kind,
            DiskFaultKind::TornWrite
        );
        assert!((outcome.bytes as usize) < before.len() + 64);
        let (found, fallbacks) = store.read_newest_valid(pack).unwrap();
        assert!(found.is_some());
        assert_eq!(fallbacks.len(), 1, "{fallbacks:?}");
    }

    #[test]
    fn recoverable_faults_leave_the_report_fingerprint_unchanged() {
        let dir = temp_dir("recoverable");
        let store = ScenarioCheckpointStore::new(dir.join("scenario.dhsp"), 3);
        let pack = small_pack();
        let clean = run_pack(pack.clone());
        // Panics (fully retried), checkpoint corruption, and disk faults
        // are all recoverable: none of them may perturb the state.
        let p = plan("panic=0.2,ckpt-flip=2,disk-full=0.3,disk-torn=3", 17);
        let retry = RetryPolicy::immediate(12);
        let (report, degraded) =
            run_pack_supervised(pack.clone(), Some(&p), &retry, Some((&store, 1))).unwrap();
        assert!(degraded.quarantined.is_empty(), "{degraded:?}");
        assert_eq!(report.fingerprint, clean.fingerprint);
        assert_eq!(report, clean);
        assert!(degraded.is_degraded(), "expected disk/retry incidents");
        // And a resume from whatever generations survived converges to
        // the same fingerprint.
        let (resume_report, resume_degraded) =
            run_pack_supervised(pack, Some(&p), &retry, Some((&store, 1))).unwrap();
        assert_eq!(resume_report.fingerprint, clean.fingerprint);
        let _ = resume_degraded;
    }
}
