//! The scenario engine: shards a pack's block mix into columnar
//! stores, steps them epoch by epoch, and checkpoints the state.
//!
//! Determinism contract: every shard's epoch kernel touches only that
//! shard's columns, the per-epoch context is computed once from the
//! pack, and [`dh_exec::par_chunks_mut`] reassembles results in index
//! order — so the run is bit-identical at any thread count, and the
//! report fingerprint is a stable pin for CI. Checkpoints (`DHSP` v1)
//! carry only the mutable state columns; the constant parameter columns
//! are rebuilt from the pack, whose fingerprint the file embeds so a
//! checkpoint cannot silently resume under a different scenario.

use std::path::Path;

use crate::error::ScenarioError;
use crate::models::{EpochCtx, MultiplierStore, SramStore, WeightStore};
use crate::pack::{BlockModel, ScenarioPack};
use crate::wire::{fnv1a, fnv1a_u64, put_f64, put_u64, take_f64, take_u64, FNV_OFFSET};

/// Checkpoint magic: "DHSP" (Deep-Healing Scenario Pack state).
const MAGIC: &[u8; 4] = b"DHSP";
/// Checkpoint format version.
const VERSION: u64 = 1;

/// One shard: a contiguous range of one block group's elements.
#[derive(Debug, Clone)]
struct Shard {
    group: usize,
    lo: u64,
    store: Store,
}

/// The columnar store behind a shard, one variant per victim model.
#[derive(Debug, Clone)]
enum Store {
    Sram(SramStore),
    Weight(WeightStore),
    Mult(MultiplierStore),
}

impl Store {
    fn build(pack: &ScenarioPack, group: usize, lo: u64, len: usize) -> Self {
        let ctx = pack.group_ctx(group);
        match &pack.blocks[group].model {
            BlockModel::SramDecoder { skew } => Self::Sram(SramStore::build(ctx, *skew, lo, len)),
            BlockModel::WeightMemory => {
                Self::Weight(WeightStore::build(ctx, &pack.workload.trace, lo, len))
            }
            BlockModel::AgedMultiplier {
                base_delay_ps,
                corners,
            } => Self::Mult(MultiplierStore::build(
                ctx,
                *base_delay_ps,
                corners,
                lo,
                len,
            )),
        }
    }

    fn len(&self) -> usize {
        match self {
            Self::Sram(s) => s.len(),
            Self::Weight(s) => s.len(),
            Self::Mult(s) => s.len(),
        }
    }

    fn step_epoch(&mut self, ctx: EpochCtx) {
        match self {
            Self::Sram(s) => s.step_epoch(ctx),
            Self::Weight(s) => s.step_epoch(ctx),
            Self::Mult(s) => s.step_epoch(ctx),
        }
    }

    fn metric(&self, i: usize) -> f64 {
        match self {
            Self::Sram(s) => s.metric(i),
            Self::Weight(s) => s.metric(i),
            Self::Mult(s) => s.metric(i),
        }
    }

    fn failed_epoch(&self, i: usize) -> u64 {
        match self {
            Self::Sram(s) => s.failed_epoch(i),
            Self::Weight(s) => s.failed_epoch(i),
            Self::Mult(s) => s.failed_epoch(i),
        }
    }

    /// The mutable state as `(f64 columns in fixed order, failed)`.
    fn state(&self) -> (Vec<&[f64]>, &[u64]) {
        match self {
            Self::Sram(s) => {
                let (r, p, f) = s.state_columns();
                (vec![r, p], f)
            }
            Self::Weight(s) => {
                let (cols, f) = s.state_columns();
                (cols.to_vec(), f)
            }
            Self::Mult(s) => {
                let (r, p, f) = s.state_columns();
                (vec![r, p], f)
            }
        }
    }

    fn state_mut(&mut self) -> (Vec<&mut [f64]>, &mut [u64]) {
        match self {
            Self::Sram(s) => {
                let (r, p, f) = s.state_columns_mut();
                (vec![r, p], f)
            }
            Self::Weight(s) => {
                let (cols, f) = s.state_columns_mut();
                (cols.into_iter().map(|v| v.as_mut_slice()).collect(), f)
            }
            Self::Mult(s) => {
                let (r, p, f) = s.state_columns_mut();
                (vec![r, p], f)
            }
        }
    }
}

/// Progress of a stepped run, returned by [`ScenarioRun::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Completed epochs.
    pub epoch: u64,
    /// Epochs the pack asks for.
    pub total_epochs: u64,
    /// Shards already stepped within the in-flight epoch.
    pub shard_cursor: usize,
    /// Total shards.
    pub shards: usize,
    /// Whether the run has integrated every epoch.
    pub done: bool,
}

/// Per-group aggregate of a [`ScenarioReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupReport {
    /// The block model's wire name.
    pub model: String,
    /// Elements in the group.
    pub count: u64,
    /// Elements at or past the failure threshold.
    pub failed: u64,
    /// Earliest 1-based failure epoch (0 when nothing failed).
    pub first_fail_epoch: u64,
    /// Mean of the failure metric, mV.
    pub mean_metric_mv: f64,
    /// Worst failure metric, mV.
    pub max_metric_mv: f64,
}

/// The end-of-run (or mid-run) aggregate view.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Pack name.
    pub scenario: String,
    /// Completed epochs.
    pub epochs_run: u64,
    /// Per-group aggregates, in pack order.
    pub groups: Vec<GroupReport>,
    /// Order-independent-of-threading state digest: pack fingerprint
    /// folded with every state column bit, shard by shard.
    pub fingerprint: u64,
}

impl ScenarioReport {
    /// A human-readable multi-line summary (the CLI's output format).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scenario {:?}: {} epoch(s) integrated",
            self.scenario, self.epochs_run
        );
        for (i, g) in self.groups.iter().enumerate() {
            let _ = write!(
                out,
                "  group {i} [{}]: {} elements, {} failed, \
                 mean {:.3} mV, worst {:.3} mV",
                g.model, g.count, g.failed, g.mean_metric_mv, g.max_metric_mv
            );
            if g.failed > 0 {
                let _ = write!(out, ", first failure at epoch {}", g.first_fail_epoch);
            }
            out.push('\n');
        }
        let _ = write!(out, "report fingerprint: {:#018x}", self.fingerprint);
        out
    }
}

/// A running (or resumable) scenario: the pack plus all shard state.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    pack: ScenarioPack,
    pack_fp: u64,
    shards: Vec<Shard>,
    epoch: u64,
    shard_cursor: usize,
}

impl ScenarioRun {
    /// Builds the fresh (epoch-0) run for a validated pack.
    pub fn new(pack: ScenarioPack) -> Self {
        let pack_fp = pack.fingerprint();
        let mut shards = Vec::new();
        for (group, block) in pack.blocks.iter().enumerate() {
            let mut lo = 0u64;
            while lo < block.count {
                let len = (block.count - lo).min(pack.shard_size) as usize;
                shards.push(Shard {
                    group,
                    lo,
                    store: Store::build(&pack, group, lo, len),
                });
                lo += len as u64;
            }
        }
        Self {
            pack,
            pack_fp,
            shards,
            epoch: 0,
            shard_cursor: 0,
        }
    }

    /// The pack this run integrates.
    pub fn pack(&self) -> &ScenarioPack {
        &self.pack
    }

    /// The pack fingerprint (checkpoint identity).
    pub fn pack_fingerprint(&self) -> u64 {
        self.pack_fp
    }

    /// Current progress.
    pub fn progress(&self) -> Progress {
        Progress {
            epoch: self.epoch,
            total_epochs: self.pack.epochs,
            shard_cursor: self.shard_cursor,
            shards: self.shards.len(),
            done: self.epoch >= self.pack.epochs,
        }
    }

    /// Steps up to `max_shards` shards of the in-flight epoch in
    /// parallel (a no-op once done). Shard boundaries are safe
    /// cancel/checkpoint points at any granularity.
    pub fn step(&mut self, max_shards: usize) -> Progress {
        if self.epoch >= self.pack.epochs {
            return self.progress();
        }
        let ctx = self.pack.epoch_ctx(self.epoch + 1);
        let hi = self
            .shard_cursor
            .saturating_add(max_shards.max(1))
            .min(self.shards.len());
        let batch = &mut self.shards[self.shard_cursor..hi];
        dh_exec::par_chunks_mut(batch, 1, |_, chunk| {
            for shard in chunk.iter_mut() {
                shard.store.step_epoch(ctx);
            }
        });
        dh_obs::counter!("scenario.shard_steps").add((hi - self.shard_cursor) as u64);
        self.shard_cursor = hi;
        if self.shard_cursor == self.shards.len() {
            self.shard_cursor = 0;
            self.epoch += 1;
            dh_obs::counter!("scenario.epochs").incr();
        }
        self.progress()
    }

    /// Runs every remaining epoch to completion.
    pub fn run_to_end(&mut self) {
        while !self.progress().done {
            self.step(usize::MAX);
        }
    }

    /// Aggregates the current state into per-group reports plus the
    /// run fingerprint. Serial scan: the fold order is the shard
    /// order, independent of stepping parallelism.
    pub fn report(&self) -> ScenarioReport {
        let mut groups: Vec<GroupReport> = self
            .pack
            .blocks
            .iter()
            .map(|b| GroupReport {
                model: b.model.name().to_string(),
                count: b.count,
                failed: 0,
                first_fail_epoch: 0,
                mean_metric_mv: 0.0,
                max_metric_mv: 0.0,
            })
            .collect();
        let mut fp = fnv1a_u64(FNV_OFFSET, self.pack_fp);
        fp = fnv1a_u64(fp, self.epoch);
        fp = fnv1a_u64(fp, self.shard_cursor as u64);
        for shard in &self.shards {
            let g = &mut groups[shard.group];
            for i in 0..shard.store.len() {
                let metric = shard.store.metric(i);
                g.mean_metric_mv += metric;
                g.max_metric_mv = g.max_metric_mv.max(metric);
                let failed = shard.store.failed_epoch(i);
                if failed != 0 {
                    g.failed += 1;
                    if g.first_fail_epoch == 0 || failed < g.first_fail_epoch {
                        g.first_fail_epoch = failed;
                    }
                }
            }
            let (cols, failed) = shard.store.state();
            for col in cols {
                for &v in col {
                    fp = fnv1a_u64(fp, v.to_bits());
                }
            }
            for &v in failed {
                fp = fnv1a_u64(fp, v);
            }
        }
        for g in &mut groups {
            if g.count > 0 {
                g.mean_metric_mv /= g.count as f64;
            }
        }
        ScenarioReport {
            scenario: self.pack.name.clone(),
            epochs_run: self.epoch,
            groups,
            fingerprint: fp,
        }
    }

    // ------------------------------------------------------- checkpoints

    /// Serializes the mutable state (`DHSP` v1) — constant columns are
    /// rebuilt from the pack on resume.
    pub fn encode_checkpoint(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        put_u64(&mut buf, VERSION);
        put_u64(&mut buf, self.pack_fp);
        put_u64(&mut buf, self.epoch);
        put_u64(&mut buf, self.shard_cursor as u64);
        put_u64(&mut buf, self.shards.len() as u64);
        for shard in &self.shards {
            put_u64(&mut buf, shard.group as u64);
            put_u64(&mut buf, shard.lo);
            put_u64(&mut buf, shard.store.len() as u64);
            let (cols, failed) = shard.store.state();
            for col in cols {
                for &v in col {
                    put_f64(&mut buf, v);
                }
            }
            for &v in failed {
                put_u64(&mut buf, v);
            }
        }
        let checksum = fnv1a(FNV_OFFSET, &buf);
        put_u64(&mut buf, checksum);
        buf
    }

    /// Rebuilds a run from a pack and checkpoint bytes, verifying the
    /// checksum, the format version, and the pack fingerprint.
    pub fn decode_checkpoint(pack: ScenarioPack, bytes: &[u8]) -> Result<Self, ScenarioError> {
        if bytes.len() < MAGIC.len() + 8 || &bytes[..4] != MAGIC {
            return Err(ScenarioError::Corrupt("bad magic".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let mut tail_view = tail;
        let expect = take_u64(&mut tail_view, "checksum")?;
        let actual = fnv1a(FNV_OFFSET, body);
        if expect != actual {
            return Err(ScenarioError::Corrupt(format!(
                "checksum mismatch: stored {expect:#018x}, computed {actual:#018x}"
            )));
        }
        let mut view = &body[4..];
        let version = take_u64(&mut view, "version")?;
        if version != VERSION {
            return Err(ScenarioError::Corrupt(format!(
                "unsupported version {version} (want {VERSION})"
            )));
        }
        let pack_fp = take_u64(&mut view, "pack fingerprint")?;
        let mut run = Self::new(pack);
        if pack_fp != run.pack_fp {
            return Err(ScenarioError::Mismatch(format!(
                "checkpoint is for pack {pack_fp:#018x}, this pack is {:#018x}",
                run.pack_fp
            )));
        }
        run.epoch = take_u64(&mut view, "epoch")?;
        run.shard_cursor = take_u64(&mut view, "shard cursor")? as usize;
        let shard_count = take_u64(&mut view, "shard count")?;
        if shard_count != run.shards.len() as u64 || run.shard_cursor > run.shards.len() {
            return Err(ScenarioError::Corrupt(format!(
                "layout mismatch: {shard_count} shards in file, {} from pack",
                run.shards.len()
            )));
        }
        for shard in &mut run.shards {
            let group = take_u64(&mut view, "shard group")?;
            let lo = take_u64(&mut view, "shard lo")?;
            let len = take_u64(&mut view, "shard len")?;
            if group != shard.group as u64 || lo != shard.lo || len != shard.store.len() as u64 {
                return Err(ScenarioError::Corrupt(format!(
                    "shard layout mismatch at group {group} lo {lo}"
                )));
            }
            let (cols, failed) = shard.store.state_mut();
            for col in cols {
                for v in col.iter_mut() {
                    *v = take_f64(&mut view, "state column")?;
                }
            }
            for v in failed.iter_mut() {
                *v = take_u64(&mut view, "failed column")?;
            }
        }
        if !view.is_empty() {
            return Err(ScenarioError::Corrupt(format!(
                "{} trailing bytes",
                view.len()
            )));
        }
        Ok(run)
    }

    /// Writes the checkpoint via a temp file and an atomic rename, so a
    /// kill mid-write leaves either the old file or the new one.
    pub fn save_checkpoint(&self, path: &Path) -> Result<(), ScenarioError> {
        let bytes = self.encode_checkpoint();
        let io_err = |why: std::io::Error| ScenarioError::Io {
            path: path.display().to_string(),
            why: why.to_string(),
        };
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)?;
        dh_obs::counter!("scenario.checkpoint_bytes").add(bytes.len() as u64);
        Ok(())
    }

    /// Loads a checkpoint written by [`ScenarioRun::save_checkpoint`].
    pub fn resume_from(pack: ScenarioPack, path: &Path) -> Result<Self, ScenarioError> {
        let bytes = std::fs::read(path).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            why: e.to_string(),
        })?;
        Self::decode_checkpoint(pack, &bytes)
    }
}

/// Convenience: integrate a pack start to finish and report.
pub fn run_pack(pack: ScenarioPack) -> ScenarioReport {
    let mut run = ScenarioRun::new(pack);
    run.run_to_end();
    run.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ScenarioRegistry;

    fn small_pack() -> ScenarioPack {
        let mut pack = ScenarioRegistry::builtin()
            .get("sram-decoder")
            .unwrap()
            .pack
            .clone();
        pack.epochs = 6;
        pack.shard_size = 300;
        pack.blocks[0].count = 700;
        pack.blocks[1].count = 500;
        pack
    }

    #[test]
    fn serial_and_parallel_runs_are_bit_identical() {
        let pack = small_pack();
        dh_exec::set_max_threads(Some(1));
        let serial = run_pack(pack.clone());
        dh_exec::set_max_threads(None);
        let parallel = run_pack(pack);
        assert_eq!(serial.fingerprint, parallel.fingerprint);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn checkpoint_round_trips_mid_epoch() {
        let pack = small_pack();
        let mut straight = ScenarioRun::new(pack.clone());
        straight.run_to_end();

        let mut stepped = ScenarioRun::new(pack.clone());
        // Stop mid-epoch (5 shards total: 3 + 2).
        stepped.step(2);
        let bytes = stepped.encode_checkpoint();
        let mut resumed = ScenarioRun::decode_checkpoint(pack, &bytes).unwrap();
        assert_eq!(resumed.progress(), stepped.progress());
        resumed.run_to_end();
        assert_eq!(resumed.report(), straight.report());
        // Byte identity of the final state, not just the digest.
        assert_eq!(resumed.encode_checkpoint(), {
            straight.encode_checkpoint()
        });
    }

    #[test]
    fn checkpoint_rejects_corruption_and_wrong_pack() {
        let pack = small_pack();
        let mut run = ScenarioRun::new(pack.clone());
        run.step(usize::MAX);
        let mut bytes = run.encode_checkpoint();
        let last = bytes.len() - 9;
        bytes[last] ^= 1;
        assert!(matches!(
            ScenarioRun::decode_checkpoint(pack.clone(), &bytes),
            Err(ScenarioError::Corrupt(_))
        ));
        let mut other = pack.clone();
        other.seed += 1;
        assert!(matches!(
            ScenarioRun::decode_checkpoint(other, &run.encode_checkpoint()),
            Err(ScenarioError::Mismatch(_))
        ));
        assert!(matches!(
            ScenarioRun::decode_checkpoint(pack, b"DHXX"),
            Err(ScenarioError::Corrupt(_))
        ));
    }

    #[test]
    fn report_counts_failures_per_group() {
        let mut pack = small_pack();
        pack.epochs = 40;
        pack.fail_threshold_mv = 10.0;
        let report = run_pack(pack);
        assert_eq!(report.groups.len(), 2);
        let total_failed: u64 = report.groups.iter().map(|g| g.failed).sum();
        assert!(total_failed > 0, "{report:?}");
        for g in &report.groups {
            assert!(g.max_metric_mv >= g.mean_metric_mv);
            if g.failed > 0 {
                assert!(g.first_fail_epoch >= 1);
            }
        }
    }
}
