//! SRAM address-decoder aging: per-row BTI stress from address-access
//! duty cycles, rejuvenated by idle-interval inversion.
//!
//! In a static CMOS row decoder the devices of *unselected* rows sit
//! under DC bias, so the rows a workload rarely addresses age fastest —
//! the inverse of the access histogram. The rejuvenation knob from the
//! SRAM-decoder aging literature is to invert the idle rows' inputs
//! during maintenance windows, swapping which device of each pair is
//! stressed and letting the worn one run active recovery.
//!
//! The access histogram is modeled as a Zipf distribution over row
//! rank: row `k` is accessed with relative frequency `(k+1)^−skew`, so
//! its decoder sits stressed for roughly `1 − (k+1)^−skew` of the
//! epoch, scaled by the workload trace's per-epoch activity.

use dh_bti::{RecoveryCondition, StressCondition, WearModel};
use dh_units::Seconds;

use super::{
    clamp01, note_failure, recovery_rate_per_hour, recovery_step, stress_rate_per_hour,
    stress_step, EpochCtx, GroupCtx,
};
/// Duty cycles are clamped to this band so even the hottest row keeps a
/// trickle of stress and the coldest keeps a recovery window.
const DUTY_FLOOR: f64 = 0.02;
const DUTY_CEIL: f64 = 0.98;

/// The base (workload-independent) stressed duty of row `rank` under a
/// Zipf-`skew` access histogram.
#[inline(always)]
pub(crate) fn zipf_duty(rank: u64, skew: f64) -> f64 {
    let access = ((rank + 1) as f64).powf(-skew);
    (1.0 - access).clamp(DUTY_FLOOR, DUTY_CEIL)
}

/// The effective stressed duty of a row in one epoch: the base duty
/// scaled by the epoch's workload activity, then inverted or gated by
/// the maintenance policy.
#[inline(always)]
fn effective_duty(base_duty: f64, ctx: EpochCtx) -> f64 {
    if ctx.gated {
        return 0.0;
    }
    let duty = clamp01(base_duty * ctx.activity);
    if ctx.inverted {
        1.0 - duty
    } else {
        duty
    }
}

/// Scalar reference unit: one decoder row as a [`WearModel`].
///
/// Holds its base duty and a per-row process-variation factor; the
/// [`SramStore`] kernel is the batched restatement of exactly this
/// element's arithmetic.
#[derive(Debug, Clone)]
pub struct SramDecoder {
    /// Workload-independent stressed duty of this row.
    pub base_duty: f64,
    /// Process-variation multiplier on both rates.
    pub variation: f64,
    r: f64,
    p: f64,
}

impl SramDecoder {
    /// A fresh row with the given duty and variation factor.
    pub fn new(base_duty: f64, variation: f64) -> Self {
        Self {
            base_duty,
            variation,
            r: 0.0,
            p: 0.0,
        }
    }

    /// The row the store would build at `(ctx, rank)` — the reference
    /// path for the columnar proptests.
    pub fn from_group(ctx: GroupCtx, skew: f64, rank: u64) -> Self {
        Self::new(zipf_duty(rank, skew), ctx.variation(rank))
    }

    /// Integrates one scenario epoch through the [`WearModel`] calls:
    /// stressed for the effective duty, recovering for the remainder
    /// under `recovery` (passive or the maintenance bias).
    pub fn run_epoch(
        &mut self,
        ctx: EpochCtx,
        stress: StressCondition,
        recovery: RecoveryCondition,
    ) {
        let duty = effective_duty(self.base_duty, ctx);
        self.stress(Seconds::from_hours(ctx.epoch_hours * duty), stress);
        self.recover(
            Seconds::from_hours(ctx.epoch_hours * (1.0 - duty)),
            recovery,
        );
    }
}

impl WearModel for SramDecoder {
    fn stress(&mut self, dt: Seconds, cond: StressCondition) {
        let rate = stress_rate_per_hour(cond.gate_voltage.value(), cond.temperature.value())
            * self.variation;
        (self.r, self.p) = stress_step(self.r, self.p, rate, dt.as_hours());
    }

    fn recover(&mut self, dt: Seconds, cond: RecoveryCondition) {
        let rate = recovery_rate_per_hour(cond.reverse_bias().value(), cond.temperature.value())
            * self.variation;
        self.r = recovery_step(self.r, rate, dt.as_hours());
    }

    fn delta_vth_mv(&self) -> f64 {
        self.r + self.p
    }

    fn permanent_mv(&self) -> f64 {
        self.p
    }
}

dh_simd::dispatch! {
    /// One epoch over a shard of decoder rows — the columnar twin of
    /// [`SramDecoder::run_epoch`], compiled scalar and AVX2 from the
    /// same source.
    #[allow(clippy::too_many_arguments)]
    fn sram_epoch_kernel(
        base_duty: &[f64],
        rate_s: &[f64],
        rate_r: &[f64],
        rate_ra: &[f64],
        r: &mut [f64],
        p: &mut [f64],
        failed: &mut [u64],
        ctx: EpochCtx,
    ) {
        let rates_r = if ctx.active_recovery { rate_ra } else { rate_r };
        for i in 0..r.len() {
            let duty = effective_duty(base_duty[i], ctx);
            let (nr, np) = stress_step(r[i], p[i], rate_s[i], ctx.epoch_hours * duty);
            let nr = recovery_step(nr, rates_r[i], ctx.epoch_hours * (1.0 - duty));
            r[i] = nr;
            p[i] = np;
            note_failure(&mut failed[i], nr + np, ctx);
        }
    }
}

/// Columnar state for a shard of decoder rows: constant parameter
/// columns hoisted at build time, mutable state columns stepped by the
/// dispatched kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct SramStore {
    base_duty: Vec<f64>,
    rate_s: Vec<f64>,
    rate_r: Vec<f64>,
    rate_ra: Vec<f64>,
    r: Vec<f64>,
    p: Vec<f64>,
    failed: Vec<u64>,
}

impl SramStore {
    /// Builds the shard covering ranks `lo .. lo + len` of a group.
    pub fn build(ctx: GroupCtx, skew: f64, lo: u64, len: usize) -> Self {
        let mut store = Self {
            base_duty: Vec::with_capacity(len),
            rate_s: Vec::with_capacity(len),
            rate_r: Vec::with_capacity(len),
            rate_ra: Vec::with_capacity(len),
            r: vec![0.0; len],
            p: vec![0.0; len],
            failed: vec![0; len],
        };
        for k in 0..len as u64 {
            let rank = lo + k;
            let variation = ctx.variation(rank);
            store.base_duty.push(zipf_duty(rank, skew));
            store
                .rate_s
                .push(stress_rate_per_hour(ctx.vdd_v, ctx.temperature_k) * variation);
            store
                .rate_r
                .push(recovery_rate_per_hour(0.0, ctx.temperature_k) * variation);
            store.rate_ra.push(
                recovery_rate_per_hour(ctx.maintenance_bias_v, ctx.temperature_k) * variation,
            );
        }
        store
    }

    /// Elements in the shard.
    pub fn len(&self) -> usize {
        self.r.len()
    }

    /// Whether the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.r.is_empty()
    }

    /// Advances every row by one epoch.
    pub fn step_epoch(&mut self, ctx: EpochCtx) {
        sram_epoch_kernel(
            &self.base_duty,
            &self.rate_s,
            &self.rate_r,
            &self.rate_ra,
            &mut self.r,
            &mut self.p,
            &mut self.failed,
            ctx,
        );
    }

    /// The failure-relevant metric of row `i`: total |ΔVth| in mV.
    pub fn metric(&self, i: usize) -> f64 {
        self.r[i] + self.p[i]
    }

    /// Total |ΔVth| of row `i`, mV.
    pub fn delta_vth_mv(&self, i: usize) -> f64 {
        self.r[i] + self.p[i]
    }

    /// 1-based epoch row `i` first crossed the threshold (0 = alive).
    pub fn failed_epoch(&self, i: usize) -> u64 {
        self.failed[i]
    }

    pub(crate) fn state_columns(&self) -> (&[f64], &[f64], &[u64]) {
        (&self.r, &self.p, &self.failed)
    }

    pub(crate) fn state_columns_mut(&mut self) -> (&mut [f64], &mut [f64], &mut [u64]) {
        (&mut self.r, &mut self.p, &mut self.failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> GroupCtx {
        GroupCtx {
            seed: 11,
            group_index: 0,
            vdd_v: 0.95,
            temperature_k: 358.15,
            variability: 0.08,
            maintenance_bias_v: 0.3,
        }
    }

    fn epoch_ctx(epoch: u64, inverted: bool) -> EpochCtx {
        EpochCtx {
            epoch_hours: 730.0,
            activity: 0.9,
            inverted,
            gated: false,
            active_recovery: inverted,
            fail_threshold_mv: 45.0,
            epoch,
        }
    }

    #[test]
    fn cold_rows_age_faster_than_hot_rows() {
        let mut store = SramStore::build(ctx(), 1.1, 0, 256);
        for e in 1..=24 {
            store.step_epoch(epoch_ctx(e, false));
        }
        // Row 0 is the hottest (lowest stressed duty), row 255 nearly idle.
        assert!(store.delta_vth_mv(255) > store.delta_vth_mv(0) * 2.0);
    }

    #[test]
    fn inversion_epochs_slow_the_cold_rows() {
        let mut plain = SramStore::build(ctx(), 1.1, 0, 64);
        let mut healed = SramStore::build(ctx(), 1.1, 0, 64);
        for e in 1..=36 {
            plain.step_epoch(epoch_ctx(e, false));
            healed.step_epoch(epoch_ctx(e, e % 4 == 0));
        }
        assert!(healed.delta_vth_mv(63) < plain.delta_vth_mv(63));
    }

    #[test]
    fn store_matches_the_wear_model_reference() {
        let g = ctx();
        let mut store = SramStore::build(g, 1.3, 5, 33);
        let stress = g.stress_condition();
        let (passive, active) = g.recovery_conditions();
        let mut units: Vec<SramDecoder> = (0..33)
            .map(|k| SramDecoder::from_group(g, 1.3, 5 + k))
            .collect();
        for e in 1..=18 {
            let ctx = epoch_ctx(e, e % 5 == 0);
            store.step_epoch(ctx);
            for unit in &mut units {
                unit.run_epoch(
                    ctx,
                    stress,
                    if ctx.active_recovery { active } else { passive },
                );
            }
        }
        for (i, unit) in units.iter().enumerate() {
            let err = (store.delta_vth_mv(i) - unit.delta_vth_mv()).abs();
            assert!(err <= 1e-12, "row {i}: {err:e}");
        }
    }
}
