//! Aged-multiplier critical-path model: NBTI ΔVth accumulated on the
//! partial-product tree translated into delay slowdown, across
//! per-chip process-variation corners.
//!
//! Each element is one multiplier instance on one chip. The pack names
//! a set of process corners (`slow`/`typical`/`fast`, arbitrary names);
//! instances are assigned to corners by a weighted deterministic hash,
//! and each corner scales both the fresh critical-path delay and the
//! aging rates. The delivered delay is
//! `d0 · (1 + DELAY_PER_MV · ΔVth)`, the usual first-order
//! delay-per-millivolt linearization. Maintenance options are power
//! gating (duty to zero) and operand inversion, which alternates the
//! stressed device of each complementary pair and so halves the
//! effective per-device duty.

use dh_bti::{RecoveryCondition, StressCondition, WearModel};
use dh_units::Seconds;

use super::{
    clamp01, note_failure, recovery_rate_per_hour, recovery_step, stress_rate_per_hour,
    stress_step, EpochCtx, GroupCtx, DELAY_PER_MV,
};
use crate::pack::Corner;

/// Per-instance duty jitter band around the epoch activity: an
/// instance's utilization is `activity · (1 ± DUTY_JITTER/2)`.
const DUTY_JITTER: f64 = 0.3;

/// The corner index instance `rank` lands in: a weighted draw from the
/// group's deterministic hash stream.
pub(crate) fn corner_of(ctx: GroupCtx, corners: &[Corner], rank: u64) -> usize {
    let total: f64 = corners.iter().map(|c| c.weight).sum();
    let mut target = ctx.draw("corner", rank) * total;
    for (i, c) in corners.iter().enumerate() {
        target -= c.weight;
        if target < 0.0 {
            return i;
        }
    }
    corners.len() - 1
}

/// The per-instance utilization scale of `rank` (applied to the epoch
/// activity).
#[inline(always)]
pub(crate) fn duty_scale(ctx: GroupCtx, rank: u64) -> f64 {
    1.0 + DUTY_JITTER * (ctx.draw("duty", rank) - 0.5)
}

/// The effective stressed duty of an instance in one epoch.
#[inline(always)]
fn effective_duty(scale: f64, ctx: EpochCtx) -> f64 {
    if ctx.gated {
        return 0.0;
    }
    let duty = clamp01(scale * ctx.activity);
    if ctx.inverted {
        duty * 0.5
    } else {
        duty
    }
}

/// Scalar reference unit: one multiplier instance as a [`WearModel`].
#[derive(Debug, Clone)]
pub struct AgedMultiplier {
    /// Utilization scale on the epoch activity.
    pub duty_scale: f64,
    /// Combined rate multiplier: process variation × corner rate scale.
    pub variation: f64,
    /// Fresh critical-path delay at this instance's corner, ps.
    pub fresh_delay_ps: f64,
    r: f64,
    p: f64,
}

impl AgedMultiplier {
    /// A fresh instance.
    pub fn new(duty_scale: f64, variation: f64, fresh_delay_ps: f64) -> Self {
        Self {
            duty_scale,
            variation,
            fresh_delay_ps,
            r: 0.0,
            p: 0.0,
        }
    }

    /// The instance the store would build at `(ctx, rank)` — the
    /// reference path for the columnar proptests.
    pub fn from_group(ctx: GroupCtx, base_delay_ps: f64, corners: &[Corner], rank: u64) -> Self {
        let corner = &corners[corner_of(ctx, corners, rank)];
        Self::new(
            duty_scale(ctx, rank),
            ctx.variation(rank) * corner.rate_scale,
            base_delay_ps * corner.delay_scale,
        )
    }

    /// The delivered critical-path delay after aging, ps.
    pub fn delay_ps(&self) -> f64 {
        self.fresh_delay_ps * (1.0 + DELAY_PER_MV * (self.r + self.p))
    }

    /// Integrates one scenario epoch through the [`WearModel`] calls.
    pub fn run_epoch(
        &mut self,
        ctx: EpochCtx,
        stress: StressCondition,
        recovery: RecoveryCondition,
    ) {
        let duty = effective_duty(self.duty_scale, ctx);
        self.stress(Seconds::from_hours(ctx.epoch_hours * duty), stress);
        self.recover(
            Seconds::from_hours(ctx.epoch_hours * (1.0 - duty)),
            recovery,
        );
    }
}

impl WearModel for AgedMultiplier {
    fn stress(&mut self, dt: Seconds, cond: StressCondition) {
        let rate = stress_rate_per_hour(cond.gate_voltage.value(), cond.temperature.value())
            * self.variation;
        (self.r, self.p) = stress_step(self.r, self.p, rate, dt.as_hours());
    }

    fn recover(&mut self, dt: Seconds, cond: RecoveryCondition) {
        let rate = recovery_rate_per_hour(cond.reverse_bias().value(), cond.temperature.value())
            * self.variation;
        self.r = recovery_step(self.r, rate, dt.as_hours());
    }

    fn delta_vth_mv(&self) -> f64 {
        self.r + self.p
    }

    fn permanent_mv(&self) -> f64 {
        self.p
    }
}

dh_simd::dispatch! {
    /// One epoch over a shard of multiplier instances — the columnar
    /// twin of [`AgedMultiplier::run_epoch`].
    #[allow(clippy::too_many_arguments)]
    fn multiplier_epoch_kernel(
        duty_scale: &[f64],
        rate_s: &[f64],
        rate_r: &[f64],
        rate_ra: &[f64],
        r: &mut [f64],
        p: &mut [f64],
        failed: &mut [u64],
        ctx: EpochCtx,
    ) {
        let rates_r = if ctx.active_recovery { rate_ra } else { rate_r };
        for i in 0..r.len() {
            let duty = effective_duty(duty_scale[i], ctx);
            let (nr, np) = stress_step(r[i], p[i], rate_s[i], ctx.epoch_hours * duty);
            let nr = recovery_step(nr, rates_r[i], ctx.epoch_hours * (1.0 - duty));
            r[i] = nr;
            p[i] = np;
            note_failure(&mut failed[i], nr + np, ctx);
        }
    }
}

/// Columnar state for a shard of multiplier instances.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiplierStore {
    duty_scale: Vec<f64>,
    rate_s: Vec<f64>,
    rate_r: Vec<f64>,
    rate_ra: Vec<f64>,
    fresh_delay_ps: Vec<f64>,
    r: Vec<f64>,
    p: Vec<f64>,
    failed: Vec<u64>,
}

impl MultiplierStore {
    /// Builds the shard covering instances `lo .. lo + len` of a group.
    pub fn build(
        ctx: GroupCtx,
        base_delay_ps: f64,
        corners: &[Corner],
        lo: u64,
        len: usize,
    ) -> Self {
        let mut store = Self {
            duty_scale: Vec::with_capacity(len),
            rate_s: Vec::with_capacity(len),
            rate_r: Vec::with_capacity(len),
            rate_ra: Vec::with_capacity(len),
            fresh_delay_ps: Vec::with_capacity(len),
            r: vec![0.0; len],
            p: vec![0.0; len],
            failed: vec![0; len],
        };
        for k in 0..len as u64 {
            let rank = lo + k;
            let corner = &corners[corner_of(ctx, corners, rank)];
            let variation = ctx.variation(rank) * corner.rate_scale;
            store.duty_scale.push(duty_scale(ctx, rank));
            store
                .rate_s
                .push(stress_rate_per_hour(ctx.vdd_v, ctx.temperature_k) * variation);
            store
                .rate_r
                .push(recovery_rate_per_hour(0.0, ctx.temperature_k) * variation);
            store.rate_ra.push(
                recovery_rate_per_hour(ctx.maintenance_bias_v, ctx.temperature_k) * variation,
            );
            store
                .fresh_delay_ps
                .push(base_delay_ps * corner.delay_scale);
        }
        store
    }

    /// Elements in the shard.
    pub fn len(&self) -> usize {
        self.r.len()
    }

    /// Whether the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.r.is_empty()
    }

    /// Advances every instance by one epoch.
    pub fn step_epoch(&mut self, ctx: EpochCtx) {
        multiplier_epoch_kernel(
            &self.duty_scale,
            &self.rate_s,
            &self.rate_r,
            &self.rate_ra,
            &mut self.r,
            &mut self.p,
            &mut self.failed,
            ctx,
        );
    }

    /// The failure-relevant metric of instance `i`: |ΔVth| in mV.
    pub fn metric(&self, i: usize) -> f64 {
        self.r[i] + self.p[i]
    }

    /// The delivered critical-path delay of instance `i`, ps.
    pub fn delay_ps(&self, i: usize) -> f64 {
        self.fresh_delay_ps[i] * (1.0 + DELAY_PER_MV * self.metric(i))
    }

    /// 1-based epoch instance `i` first crossed the threshold (0 = alive).
    pub fn failed_epoch(&self, i: usize) -> u64 {
        self.failed[i]
    }

    pub(crate) fn state_columns(&self) -> (&[f64], &[f64], &[u64]) {
        (&self.r, &self.p, &self.failed)
    }

    pub(crate) fn state_columns_mut(&mut self) -> (&mut [f64], &mut [f64], &mut [u64]) {
        (&mut self.r, &mut self.p, &mut self.failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corners() -> Vec<Corner> {
        vec![
            Corner {
                name: "slow".into(),
                weight: 0.2,
                delay_scale: 1.15,
                rate_scale: 1.3,
            },
            Corner {
                name: "typical".into(),
                weight: 0.6,
                delay_scale: 1.0,
                rate_scale: 1.0,
            },
            Corner {
                name: "fast".into(),
                weight: 0.2,
                delay_scale: 0.9,
                rate_scale: 0.8,
            },
        ]
    }

    fn group() -> GroupCtx {
        GroupCtx {
            seed: 19,
            group_index: 0,
            vdd_v: 1.0,
            temperature_k: 368.15,
            variability: 0.05,
            maintenance_bias_v: 0.3,
        }
    }

    #[test]
    fn corner_assignment_tracks_weights() {
        let g = group();
        let cs = corners();
        let mut counts = [0usize; 3];
        for rank in 0..10_000 {
            counts[corner_of(g, &cs, rank)] += 1;
        }
        assert!(
            (counts[0] as f64 / 10_000.0 - 0.2).abs() < 0.02,
            "{counts:?}"
        );
        assert!(
            (counts[1] as f64 / 10_000.0 - 0.6).abs() < 0.02,
            "{counts:?}"
        );
    }

    #[test]
    fn aging_slows_the_delivered_delay() {
        let g = group();
        let mut store = MultiplierStore::build(g, 800.0, &corners(), 0, 32);
        let fresh: Vec<f64> = (0..32).map(|i| store.delay_ps(i)).collect();
        for e in 1..=36 {
            store.step_epoch(EpochCtx {
                epoch_hours: 730.0,
                activity: 0.8,
                inverted: false,
                gated: false,
                active_recovery: false,
                fail_threshold_mv: 80.0,
                epoch: e,
            });
        }
        for (i, &fresh_ps) in fresh.iter().enumerate() {
            assert!(store.delay_ps(i) > fresh_ps);
        }
    }

    #[test]
    fn store_matches_the_wear_model_reference() {
        let g = group();
        let cs = corners();
        let mut store = MultiplierStore::build(g, 650.0, &cs, 17, 29);
        let stress = g.stress_condition();
        let (passive, active) = g.recovery_conditions();
        let mut units: Vec<AgedMultiplier> = (0..29)
            .map(|k| AgedMultiplier::from_group(g, 650.0, &cs, 17 + k))
            .collect();
        for e in 1..=22 {
            let ctx = EpochCtx {
                epoch_hours: 650.0,
                activity: 0.75,
                inverted: e % 6 == 0,
                gated: e == 11,
                active_recovery: e % 6 == 0,
                fail_threshold_mv: 70.0,
                epoch: e,
            };
            store.step_epoch(ctx);
            for unit in &mut units {
                unit.run_epoch(
                    ctx,
                    stress,
                    if ctx.active_recovery { active } else { passive },
                );
            }
        }
        for (i, unit) in units.iter().enumerate() {
            let err = (store.metric(i) - unit.delta_vth_mv()).abs();
            assert!(err <= 1e-12, "instance {i}: {err:e}");
            let derr = (store.delay_ps(i) - unit.delay_ps()).abs();
            assert!(derr <= 1e-9, "instance {i} delay: {derr:e}");
        }
    }
}
