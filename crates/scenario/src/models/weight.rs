//! DNN weight-memory aging: per-bank BTI stress set by the stored
//! weight distribution, DNN-Life-style.
//!
//! A 6T cell holding a constant bit stresses one pull-up pMOS for as
//! long as the bit is held; which side depends on the bit value. DNN
//! inference weights are effectively static, so a bank's zero-fraction
//! — read from the pack's workload trace — fixes a *complementary* duty
//! pair: side A ages with the zero-duty, side B with the one-duty. The
//! DNN-Life rejuvenation knob is periodic weight inversion (store the
//! complement, flip on read), which swaps the two duties and lets the
//! worn side recover. The failure metric is the worse of the two sides,
//! since either pull-up degrades the cell's static noise margin.

use dh_bti::{RecoveryCondition, StressCondition, WearModel};
use dh_units::Seconds;

use super::{
    clamp01, note_failure, recovery_rate_per_hour, recovery_step, stress_rate_per_hour,
    stress_step, EpochCtx, GroupCtx,
};

/// The per-epoch stressed-duty pair `(side A, side B)` of a bank.
#[inline(always)]
fn side_duties(zero_duty: f64, ctx: EpochCtx) -> (f64, f64) {
    if ctx.gated {
        return (0.0, 0.0);
    }
    let a = clamp01(zero_duty * ctx.activity);
    let b = clamp01((1.0 - zero_duty) * ctx.activity);
    if ctx.inverted {
        (b, a)
    } else {
        (a, b)
    }
}

/// The zero-fraction of bank `rank`: the cycled workload-trace value
/// plus a deterministic per-bank jitter of `± variability / 2`.
#[inline(always)]
pub(crate) fn bank_zero_duty(ctx: GroupCtx, trace: &[f64], rank: u64) -> f64 {
    let base = if trace.is_empty() {
        0.5
    } else {
        trace[(rank % trace.len() as u64) as usize]
    };
    clamp01(base + ctx.variability * (ctx.draw("zero-duty", rank) - 0.5))
}

/// Scalar reference unit: one weight-memory bank (its worst cell pair)
/// as a [`WearModel`].
///
/// The trait view addresses side A — the side stressed while a zero is
/// stored — which is the canonical stressed device for trait-level
/// experiments; [`WearModel::delta_vth_mv`] still reports the worse
/// side, matching the store's failure metric.
#[derive(Debug, Clone)]
pub struct WeightMemory {
    /// Fraction of held time this bank stores zeros.
    pub zero_duty: f64,
    /// Process-variation multiplier on both rates.
    pub variation: f64,
    r_a: f64,
    p_a: f64,
    r_b: f64,
    p_b: f64,
}

impl WeightMemory {
    /// A fresh bank with the given zero-duty and variation factor.
    pub fn new(zero_duty: f64, variation: f64) -> Self {
        Self {
            zero_duty,
            variation,
            r_a: 0.0,
            p_a: 0.0,
            r_b: 0.0,
            p_b: 0.0,
        }
    }

    /// The bank the store would build at `(ctx, rank)` — the reference
    /// path for the columnar proptests.
    pub fn from_group(ctx: GroupCtx, trace: &[f64], rank: u64) -> Self {
        Self::new(bank_zero_duty(ctx, trace, rank), ctx.variation(rank))
    }

    /// |ΔVth| of the zero-side device, mV.
    pub fn side_a_mv(&self) -> f64 {
        self.r_a + self.p_a
    }

    /// |ΔVth| of the one-side device, mV.
    pub fn side_b_mv(&self) -> f64 {
        self.r_b + self.p_b
    }

    /// Integrates one scenario epoch: each side stresses for its duty
    /// and recovers for the remainder under `recovery`.
    pub fn run_epoch(
        &mut self,
        ctx: EpochCtx,
        stress: StressCondition,
        recovery: RecoveryCondition,
    ) {
        let rate_s = stress_rate_per_hour(stress.gate_voltage.value(), stress.temperature.value())
            * self.variation;
        let rate_r = recovery_rate_per_hour(
            recovery.reverse_bias().value(),
            recovery.temperature.value(),
        ) * self.variation;
        let (duty_a, duty_b) = side_duties(self.zero_duty, ctx);
        (self.r_a, self.p_a) = stress_step(self.r_a, self.p_a, rate_s, ctx.epoch_hours * duty_a);
        self.r_a = recovery_step(self.r_a, rate_r, ctx.epoch_hours * (1.0 - duty_a));
        (self.r_b, self.p_b) = stress_step(self.r_b, self.p_b, rate_s, ctx.epoch_hours * duty_b);
        self.r_b = recovery_step(self.r_b, rate_r, ctx.epoch_hours * (1.0 - duty_b));
    }
}

impl WearModel for WeightMemory {
    fn stress(&mut self, dt: Seconds, cond: StressCondition) {
        let rate = stress_rate_per_hour(cond.gate_voltage.value(), cond.temperature.value())
            * self.variation;
        (self.r_a, self.p_a) = stress_step(self.r_a, self.p_a, rate, dt.as_hours());
    }

    fn recover(&mut self, dt: Seconds, cond: RecoveryCondition) {
        let rate = recovery_rate_per_hour(cond.reverse_bias().value(), cond.temperature.value())
            * self.variation;
        self.r_a = recovery_step(self.r_a, rate, dt.as_hours());
    }

    fn delta_vth_mv(&self) -> f64 {
        self.side_a_mv().max(self.side_b_mv())
    }

    fn permanent_mv(&self) -> f64 {
        if self.side_a_mv() >= self.side_b_mv() {
            self.p_a
        } else {
            self.p_b
        }
    }
}

dh_simd::dispatch! {
    /// One epoch over a shard of weight banks — the columnar twin of
    /// [`WeightMemory::run_epoch`].
    #[allow(clippy::too_many_arguments)]
    fn weight_epoch_kernel(
        zero_duty: &[f64],
        rate_s: &[f64],
        rate_r: &[f64],
        rate_ra: &[f64],
        r_a: &mut [f64],
        p_a: &mut [f64],
        r_b: &mut [f64],
        p_b: &mut [f64],
        failed: &mut [u64],
        ctx: EpochCtx,
    ) {
        let rates_r = if ctx.active_recovery { rate_ra } else { rate_r };
        for i in 0..r_a.len() {
            let (duty_a, duty_b) = side_duties(zero_duty[i], ctx);
            let (na, npa) = stress_step(r_a[i], p_a[i], rate_s[i], ctx.epoch_hours * duty_a);
            let na = recovery_step(na, rates_r[i], ctx.epoch_hours * (1.0 - duty_a));
            let (nb, npb) = stress_step(r_b[i], p_b[i], rate_s[i], ctx.epoch_hours * duty_b);
            let nb = recovery_step(nb, rates_r[i], ctx.epoch_hours * (1.0 - duty_b));
            r_a[i] = na;
            p_a[i] = npa;
            r_b[i] = nb;
            p_b[i] = npb;
            note_failure(&mut failed[i], (na + npa).max(nb + npb), ctx);
        }
    }
}

/// Columnar state for a shard of weight-memory banks.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightStore {
    zero_duty: Vec<f64>,
    rate_s: Vec<f64>,
    rate_r: Vec<f64>,
    rate_ra: Vec<f64>,
    r_a: Vec<f64>,
    p_a: Vec<f64>,
    r_b: Vec<f64>,
    p_b: Vec<f64>,
    failed: Vec<u64>,
}

impl WeightStore {
    /// Builds the shard covering banks `lo .. lo + len` of a group.
    pub fn build(ctx: GroupCtx, trace: &[f64], lo: u64, len: usize) -> Self {
        let mut store = Self {
            zero_duty: Vec::with_capacity(len),
            rate_s: Vec::with_capacity(len),
            rate_r: Vec::with_capacity(len),
            rate_ra: Vec::with_capacity(len),
            r_a: vec![0.0; len],
            p_a: vec![0.0; len],
            r_b: vec![0.0; len],
            p_b: vec![0.0; len],
            failed: vec![0; len],
        };
        for k in 0..len as u64 {
            let rank = lo + k;
            let variation = ctx.variation(rank);
            store.zero_duty.push(bank_zero_duty(ctx, trace, rank));
            store
                .rate_s
                .push(stress_rate_per_hour(ctx.vdd_v, ctx.temperature_k) * variation);
            store
                .rate_r
                .push(recovery_rate_per_hour(0.0, ctx.temperature_k) * variation);
            store.rate_ra.push(
                recovery_rate_per_hour(ctx.maintenance_bias_v, ctx.temperature_k) * variation,
            );
        }
        store
    }

    /// Elements in the shard.
    pub fn len(&self) -> usize {
        self.r_a.len()
    }

    /// Whether the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.r_a.is_empty()
    }

    /// Advances every bank by one epoch.
    pub fn step_epoch(&mut self, ctx: EpochCtx) {
        weight_epoch_kernel(
            &self.zero_duty,
            &self.rate_s,
            &self.rate_r,
            &self.rate_ra,
            &mut self.r_a,
            &mut self.p_a,
            &mut self.r_b,
            &mut self.p_b,
            &mut self.failed,
            ctx,
        );
    }

    /// The failure-relevant metric of bank `i`: the worse side's
    /// |ΔVth| in mV.
    pub fn metric(&self, i: usize) -> f64 {
        (self.r_a[i] + self.p_a[i]).max(self.r_b[i] + self.p_b[i])
    }

    /// 1-based epoch bank `i` first crossed the threshold (0 = alive).
    pub fn failed_epoch(&self, i: usize) -> u64 {
        self.failed[i]
    }

    #[allow(clippy::type_complexity)]
    pub(crate) fn state_columns(&self) -> ([&[f64]; 4], &[u64]) {
        ([&self.r_a, &self.p_a, &self.r_b, &self.p_b], &self.failed)
    }

    #[allow(clippy::type_complexity)]
    pub(crate) fn state_columns_mut(&mut self) -> ([&mut Vec<f64>; 4], &mut [u64]) {
        (
            [&mut self.r_a, &mut self.p_a, &mut self.r_b, &mut self.p_b],
            &mut self.failed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_banks_age_one_side_and_inversion_balances() {
        let g = GroupCtx {
            seed: 7,
            group_index: 1,
            vdd_v: 0.9,
            temperature_k: 348.15,
            variability: 0.0,
            maintenance_bias_v: 0.3,
        };
        // All-zeros trace: side A takes all the stress.
        let trace = [0.95];
        let mk = |inverted_every: u64| {
            let mut s = WeightStore::build(g, &trace, 0, 16);
            for e in 1..=48u64 {
                let inv = inverted_every != 0 && e % inverted_every == 0;
                s.step_epoch(EpochCtx {
                    epoch_hours: 730.0,
                    activity: 1.0,
                    inverted: inv,
                    gated: false,
                    active_recovery: inv,
                    fail_threshold_mv: 60.0,
                    epoch: e,
                });
            }
            s
        };
        let plain = mk(0);
        let healed = mk(2);
        assert!(healed.metric(0) < plain.metric(0));
    }

    #[test]
    fn store_matches_the_wear_model_reference() {
        let g = GroupCtx {
            seed: 3,
            group_index: 2,
            vdd_v: 1.0,
            temperature_k: 358.15,
            variability: 0.12,
            maintenance_bias_v: 0.25,
        };
        let trace = [0.2, 0.8, 0.5];
        let mut store = WeightStore::build(g, &trace, 9, 21);
        let stress = g.stress_condition();
        let (passive, active) = g.recovery_conditions();
        let mut units: Vec<WeightMemory> = (0..21)
            .map(|k| WeightMemory::from_group(g, &trace, 9 + k))
            .collect();
        for e in 1..=20 {
            let ctx = EpochCtx {
                epoch_hours: 500.0,
                activity: 0.85,
                inverted: e % 3 == 0,
                gated: e == 10,
                active_recovery: e % 3 == 0,
                fail_threshold_mv: 50.0,
                epoch: e,
            };
            store.step_epoch(ctx);
            for unit in &mut units {
                unit.run_epoch(
                    ctx,
                    stress,
                    if ctx.active_recovery { active } else { passive },
                );
            }
        }
        for (i, unit) in units.iter().enumerate() {
            let err = (store.metric(i) - unit.delta_vth_mv()).abs();
            assert!(err <= 1e-12, "bank {i}: {err:e}");
        }
    }
}
