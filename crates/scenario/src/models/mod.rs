//! The three scenario victim models and the physics they share.
//!
//! Each model comes in two forms with the same math:
//!
//! * a **scalar unit** (one decoder row, one weight-memory bank, one
//!   multiplier instance) implementing [`dh_bti::WearModel`] — the
//!   readable reference the property tests integrate element by
//!   element; and
//! * a **columnar store** (struct-of-arrays over a shard of elements)
//!   whose epoch kernel is compiled through [`dh_simd::dispatch!`], so
//!   the batch engine gets the auto-vectorized path with the crate's
//!   usual scalar/AVX2 bit-identity contract.
//!
//! The shared physics is the paper's recoverable/permanent BTI split
//! reduced to an epoch-granular form: under stress the total shift
//! relaxes toward a saturated ceiling with a first-order capture rate
//! (voltage-cubed, Arrhenius in temperature), a fixed fraction of every
//! captured increment locking in permanently; under recovery the
//! recoverable part decays exponentially, faster when the maintenance
//! policy applies a reverse gate bias (the paper's *active recovery*).

pub mod multiplier;
pub mod sram;
pub mod weight;

pub use multiplier::{AgedMultiplier, MultiplierStore};
pub use sram::{SramDecoder, SramStore};
pub use weight::{WeightMemory, WeightStore};

/// Boltzmann constant in eV/K.
const BOLTZMANN_EV: f64 = 8.617_333_262e-5;
/// Arrhenius reference temperature: rates are calibrated at 300 K.
const T_REF_K: f64 = 300.0;
/// Reference gate overdrive for the voltage-cubed stress law.
const V_REF: f64 = 0.9;
/// Activation energy of trap capture (stress), eV.
const EA_STRESS_EV: f64 = 0.08;
/// Activation energy of trap emission (recovery), eV.
const EA_RECOVERY_EV: f64 = 0.12;
/// Trap-capture rate at `(V_REF, T_REF_K)`, per hour of full-duty stress.
const STRESS_RATE_PER_HOUR: f64 = 4.0e-5;
/// Detrap rate at `T_REF_K` under 0 V, per hour.
const RECOVERY_RATE_PER_HOUR: f64 = 2.0e-3;
/// Recovery-rate gain per volt of reverse gate bias (active recovery).
const ACTIVE_GAIN_PER_VOLT: f64 = 4.0;
/// Saturated total |ΔVth| shift, mV.
pub(crate) const DELTA_VTH_MAX_MV: f64 = 120.0;
/// Fraction of each captured increment that locks in permanently.
const PERMANENT_FRACTION: f64 = 0.08;
/// Critical-path delay sensitivity of the aged multiplier, fractional
/// slowdown per mV of |ΔVth|.
pub(crate) const DELAY_PER_MV: f64 = 1.0e-3;

/// Arrhenius acceleration relative to [`T_REF_K`]:
/// `exp(Ea/k · (1/T_ref − 1/T))`. Built on [`dh_simd::exp_neg`] so
/// every rate in the crate flows through the same primitive; the
/// exponent stays far from the underflow clamp for any validated
/// temperature (−55 °C … 225 °C).
#[inline(always)]
fn arrhenius(temperature_k: f64, ea_ev: f64) -> f64 {
    let x = (ea_ev / BOLTZMANN_EV) * (1.0 / T_REF_K - 1.0 / temperature_k);
    let e = dh_simd::exp_neg(x.abs());
    if x >= 0.0 {
        1.0 / e
    } else {
        e
    }
}

/// Trap-capture rate per hour at a gate overdrive and temperature:
/// voltage-cubed, Arrhenius-accelerated.
#[inline(always)]
pub(crate) fn stress_rate_per_hour(gate_v: f64, temperature_k: f64) -> f64 {
    let v = gate_v / V_REF;
    STRESS_RATE_PER_HOUR * v * v * v * arrhenius(temperature_k, EA_STRESS_EV)
}

/// Detrap rate per hour at a reverse gate bias and temperature. A
/// positive reverse bias is the paper's active recovery; zero is
/// conventional passive recovery.
#[inline(always)]
pub(crate) fn recovery_rate_per_hour(reverse_bias_v: f64, temperature_k: f64) -> f64 {
    RECOVERY_RATE_PER_HOUR
        * (1.0 + ACTIVE_GAIN_PER_VOLT * reverse_bias_v.max(0.0))
        * arrhenius(temperature_k, EA_RECOVERY_EV)
}

/// One stress interval: first-order capture toward the saturated shift,
/// with [`PERMANENT_FRACTION`] of the increment locking in. Non-positive
/// durations are no-ops (the `WearModel` contract).
#[inline(always)]
pub(crate) fn stress_step(r: f64, p: f64, rate_per_hour: f64, hours: f64) -> (f64, f64) {
    if hours <= 0.0 {
        return (r, p);
    }
    let grow = (DELTA_VTH_MAX_MV - (r + p)) * dh_simd::one_minus_exp_neg(rate_per_hour * hours);
    (
        r + (1.0 - PERMANENT_FRACTION) * grow,
        p + PERMANENT_FRACTION * grow,
    )
}

/// One recovery interval: exponential decay of the recoverable part.
/// Non-positive durations are no-ops.
#[inline(always)]
pub(crate) fn recovery_step(r: f64, rate_per_hour: f64, hours: f64) -> f64 {
    if hours <= 0.0 {
        return r;
    }
    r * dh_simd::exp_neg(rate_per_hour * hours)
}

/// Clamp into the closed unit interval (duties).
#[inline(always)]
pub(crate) fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// The per-group constants a store is built from: the pack's block
/// group flattened to raw scalars, plus the scenario seed and the
/// group's position (both feed the deterministic variation hash).
#[derive(Debug, Clone, Copy)]
pub struct GroupCtx {
    /// Scenario seed (packs fix it; the hash stream derives from it).
    pub seed: u64,
    /// Index of the group within the pack's block list.
    pub group_index: u64,
    /// Gate overdrive during stress, volts.
    pub vdd_v: f64,
    /// Operating temperature, kelvin.
    pub temperature_k: f64,
    /// Half-width of the uniform process-variation band (0.1 → ±10 %).
    pub variability: f64,
    /// Reverse gate bias applied during maintenance recovery, volts.
    pub maintenance_bias_v: f64,
}

impl GroupCtx {
    /// The deterministic process-variation multiplier of element
    /// `index`: uniform in `1 ± variability`, drawn from the
    /// `(seed, group)` hash stream.
    pub fn variation(&self, index: u64) -> f64 {
        let s = crate::wire::fnv1a_u64(self.seed, self.group_index);
        1.0 + self.variability * (2.0 * crate::wire::unit_hash(s, "variation", index) - 1.0)
    }

    /// A per-element unit draw in `[0, 1)` for model-specific columns
    /// (duty jitter, corner assignment), decorrelated by `label`.
    pub(crate) fn draw(&self, label: &str, index: u64) -> f64 {
        let s = crate::wire::fnv1a_u64(self.seed, self.group_index);
        crate::wire::unit_hash(s, label, index)
    }

    /// The group's operating point as a [`dh_bti::StressCondition`] —
    /// exact-kelvin, so the scalar reference units see bit-identical
    /// rates to the store columns.
    pub fn stress_condition(&self) -> dh_bti::StressCondition {
        dh_bti::StressCondition {
            gate_voltage: dh_units::Volts::new(self.vdd_v),
            temperature: dh_units::Kelvin::new(self.temperature_k),
        }
    }

    /// The group's `(passive, active)` recovery conditions: 0 V at the
    /// operating temperature, and the maintenance reverse bias at the
    /// same temperature.
    pub fn recovery_conditions(&self) -> (dh_bti::RecoveryCondition, dh_bti::RecoveryCondition) {
        let passive = dh_bti::RecoveryCondition {
            gate_voltage: dh_units::Volts::new(0.0),
            temperature: dh_units::Kelvin::new(self.temperature_k),
        };
        let active = dh_bti::RecoveryCondition {
            gate_voltage: dh_units::Volts::new(-self.maintenance_bias_v),
            temperature: dh_units::Kelvin::new(self.temperature_k),
        };
        (passive, active)
    }
}

/// Scalar per-epoch context for the columnar kernels: everything about
/// "this epoch" that is uniform across a shard, crossing the
/// [`dh_simd::dispatch!`] boundary by value.
#[derive(Debug, Clone, Copy)]
pub struct EpochCtx {
    /// Wall-clock hours in the epoch.
    pub epoch_hours: f64,
    /// Workload activity for the epoch (the cycled trace value).
    pub activity: f64,
    /// Maintenance: duty inversion is in effect this epoch.
    pub inverted: bool,
    /// Maintenance: the block is power-gated this epoch (duty 0).
    pub gated: bool,
    /// Whether recovery runs *active* (reverse-biased) this epoch —
    /// selects the active-rate column over the passive one.
    pub active_recovery: bool,
    /// Failure threshold on the model's ΔVth metric, mV.
    pub fail_threshold_mv: f64,
    /// 1-based epoch number recorded on a first threshold crossing.
    pub epoch: u64,
}

/// Records a first threshold crossing: `failed` keeps the 1-based epoch
/// of the first crossing, 0 meaning still alive.
#[inline(always)]
pub(crate) fn note_failure(failed: &mut u64, metric_mv: f64, ctx: EpochCtx) {
    if *failed == 0 && metric_mv >= ctx.fail_threshold_mv {
        *failed = ctx.epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrhenius_is_one_at_reference_and_monotone() {
        assert!((arrhenius(T_REF_K, EA_STRESS_EV) - 1.0).abs() < 1e-12);
        let cold = arrhenius(233.15, EA_STRESS_EV);
        let hot = arrhenius(398.15, EA_STRESS_EV);
        assert!(cold < 1.0, "cold factor {cold}");
        assert!(hot > 1.0, "hot factor {hot}");
        assert!((arrhenius(398.15, 0.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn stress_saturates_and_recovery_decays() {
        let (mut r, mut p) = (0.0, 0.0);
        for _ in 0..100_000 {
            (r, p) = stress_step(r, p, 1e-3, 730.0);
        }
        assert!(r + p <= DELTA_VTH_MAX_MV * (1.0 + 1e-12));
        assert!(r + p > 0.99 * DELTA_VTH_MAX_MV);
        let r2 = recovery_step(r, 1e-2, 730.0);
        assert!(r2 < r && r2 > 0.0);
        // No-op contract on non-positive durations.
        assert_eq!(stress_step(r, p, 1e-3, 0.0), (r, p));
        assert_eq!(recovery_step(r, 1e-2, -1.0), r);
    }

    #[test]
    fn active_recovery_is_faster_than_passive() {
        let passive = recovery_rate_per_hour(0.0, 358.15);
        let active = recovery_rate_per_hour(0.3, 358.15);
        assert!(active > passive * 2.0);
        // A positive gate voltage contributes no activation.
        assert_eq!(recovery_rate_per_hour(-0.2, 358.15), passive);
    }
}
