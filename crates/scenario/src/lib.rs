//! `dh-scenario`: data-driven wearout scenarios.
//!
//! The earlier crates model one device ([`dh_bti`]) and one synthetic
//! fleet (`dh-fleet`); this crate closes the loop with the paper's
//! *victim circuits*: what actually wears out in a deployed design, and
//! what the recovery knobs buy for each. It ships three victim models —
//!
//! * [`SramDecoder`] — SRAM row decoders aging under the inverse of the
//!   address-access histogram, healed by idle-row inversion;
//! * [`WeightMemory`] — DNN weight banks aging under the stored weight
//!   distribution (DNN-Life style), healed by periodic weight
//!   inversion; and
//! * [`AgedMultiplier`] — multiplier critical paths slowing down with
//!   NBTI ΔVth across process corners, healed by power gating —
//!
//! each as a scalar [`dh_bti::WearModel`] reference plus a columnar
//! store with a [`dh_simd::dispatch!`]-compiled epoch kernel.
//!
//! Experiments are described by **scenario packs**: JSON documents
//! ([`ScenarioPack`]) naming the block mix, workload trace, maintenance
//! policy, and epoch grid. A [`ScenarioRegistry`] serves three built-in
//! packs and any `--scenario-dir` overrides; [`ScenarioRun`] integrates
//! a pack deterministically (bit-identical at any thread count),
//! checkpoints mid-run, and reports a fingerprint CI can pin.
//! [`run_pack_supervised`] is the hardened flavor: a [`dh_fault::FaultPlan`]
//! injects shard panics, sample poisoning, stuck sensors, checkpoint
//! corruption, and disk faults, all contained by retry, quarantine, and
//! multi-generation [`ScenarioCheckpointStore`] fallback so the run
//! completes with a [`dh_fault::DegradedReport`] instead of aborting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod models;
mod pack;
mod registry;
mod run;
mod wire;

pub use error::ScenarioError;
pub use models::{
    AgedMultiplier, EpochCtx, GroupCtx, MultiplierStore, SramDecoder, SramStore, WeightMemory,
    WeightStore,
};
pub use pack::{
    BlockGroup, BlockModel, Corner, Maintenance, MaintenancePolicy, ScenarioPack, Workload,
};
pub use registry::{load_pack_file, PackSource, RegisteredPack, ScenarioRegistry};
pub use run::{
    run_pack, run_pack_supervised, CheckpointWrite, GroupReport, Progress, ScenarioCheckpointStore,
    ScenarioReport, ScenarioRun,
};
