//! Typed errors for pack parsing, validation, registry resolution, and
//! checkpoint decode.
//!
//! Scenario packs are operator-supplied data files, so every way a pack
//! can be wrong gets its own variant with enough structure for a caller
//! (the CLI, the daemon's 400/422 mapping, tests) to branch without
//! string-matching prose. Nothing in this crate panics on bad input.

use std::fmt;

/// Everything the scenario layer can refuse with.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The pack text is not valid JSON (syntax error with byte offset).
    Json(String),
    /// The JSON is well-formed but not pack-shaped: a missing or
    /// unknown field, or a value of the wrong type.
    Schema {
        /// Dotted path of the offending field (`blocks[1].count`).
        field: String,
        /// What was wrong with it.
        why: String,
    },
    /// The pack parsed but describes an impossible scenario (zero
    /// blocks, duty outside [0, 1], non-finite hours, …).
    Invalid {
        /// Dotted path of the offending field.
        field: String,
        /// Why the value is out of range.
        why: String,
    },
    /// A name lookup missed the registry.
    UnknownScenario {
        /// The name that missed.
        name: String,
        /// Every name the registry does know, sorted.
        available: Vec<String>,
    },
    /// A pack file or checkpoint file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The OS error text.
        why: String,
    },
    /// A checkpoint failed structural verification (bad magic, short
    /// read, checksum mismatch).
    Corrupt(String),
    /// A checkpoint is structurally sound but belongs to a different
    /// pack (fingerprint mismatch) — resuming it would silently blend
    /// two scenarios.
    Mismatch(String),
}

impl ScenarioError {
    /// Whether the error is the submitter's fault (malformed document)
    /// as opposed to a semantically invalid scenario — the daemon maps
    /// the former to 400 and the latter to 422.
    pub fn is_malformed(&self) -> bool {
        matches!(self, Self::Json(_) | Self::Schema { .. })
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Json(why) => write!(f, "bad JSON: {why}"),
            Self::Schema { field, why } => write!(f, "field `{field}`: {why}"),
            Self::Invalid { field, why } => write!(f, "invalid `{field}`: {why}"),
            Self::UnknownScenario { name, available } => {
                write!(
                    f,
                    "unknown scenario {name:?}; available: {}",
                    available.join(", ")
                )
            }
            Self::Io { path, why } => write!(f, "{path}: {why}"),
            Self::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            Self::Mismatch(why) => write!(f, "checkpoint mismatch: {why}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Shorthand constructor for [`ScenarioError::Schema`].
pub(crate) fn schema(field: impl Into<String>, why: impl Into<String>) -> ScenarioError {
    ScenarioError::Schema {
        field: field.into(),
        why: why.into(),
    }
}

/// Shorthand constructor for [`ScenarioError::Invalid`].
pub(crate) fn invalid(field: impl Into<String>, why: impl Into<String>) -> ScenarioError {
    ScenarioError::Invalid {
        field: field.into(),
        why: why.into(),
    }
}
