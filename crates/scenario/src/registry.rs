//! The scenario registry: built-in packs compiled into the binary plus
//! operator packs loaded from a `--scenario-dir`.
//!
//! Resolution is by name or by path: an argument that looks like a
//! filesystem path (contains a separator or ends in `.json`) is loaded
//! directly, anything else is a registry lookup. Directory packs
//! shadow built-ins of the same name, so an operator can retune a
//! shipped scenario without recompiling.

use std::path::Path;

use crate::error::ScenarioError;
use crate::pack::ScenarioPack;

/// Where a registered pack came from (reported by `--list-scenarios`
/// and `GET /scenarios`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackSource {
    /// Compiled into the binary.
    Builtin,
    /// Loaded from a `--scenario-dir` file.
    Directory,
}

impl PackSource {
    /// The wire name (`builtin` / `directory`).
    pub fn name(self) -> &'static str {
        match self {
            Self::Builtin => "builtin",
            Self::Directory => "directory",
        }
    }
}

/// One registry entry.
#[derive(Debug, Clone)]
pub struct RegisteredPack {
    /// The validated pack.
    pub pack: ScenarioPack,
    /// Built-in or directory-loaded.
    pub source: PackSource,
}

/// The three scenarios every build ships.
const BUILTINS: [&str; 3] = [
    include_str!("../packs/sram-decoder.json"),
    include_str!("../packs/dnn-weight-memory.json"),
    include_str!("../packs/aged-multiplier.json"),
];

/// Name-keyed collection of validated scenario packs.
#[derive(Debug, Clone)]
pub struct ScenarioRegistry {
    /// Sorted by name.
    entries: Vec<RegisteredPack>,
}

impl ScenarioRegistry {
    /// The registry of built-in packs only.
    pub fn builtin() -> Self {
        let mut reg = Self {
            entries: Vec::new(),
        };
        for text in BUILTINS {
            let pack = ScenarioPack::load(text).expect("built-in packs are valid by test");
            reg.insert(pack, PackSource::Builtin);
        }
        reg
    }

    /// The built-in registry plus every `*.json` in `dir`, loaded in
    /// sorted filename order. Directory packs shadow built-ins of the
    /// same name; two directory packs with one name is an error.
    pub fn with_dir(dir: &Path) -> Result<Self, ScenarioError> {
        let mut reg = Self::builtin();
        let io_err = |why: std::io::Error| ScenarioError::Io {
            path: dir.display().to_string(),
            why: why.to_string(),
        };
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .map_err(io_err)?
            .collect::<Result<Vec<_>, _>>()
            .map_err(io_err)?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        paths.sort();
        for path in paths {
            let pack = load_pack_file(&path)?;
            if reg
                .entries
                .iter()
                .any(|e| e.pack.name == pack.name && e.source == PackSource::Directory)
            {
                return Err(ScenarioError::Io {
                    path: path.display().to_string(),
                    why: format!("duplicate scenario name {:?} in directory", pack.name),
                });
            }
            reg.insert(pack, PackSource::Directory);
        }
        Ok(reg)
    }

    /// Adds or shadows an entry, keeping the list sorted by name.
    fn insert(&mut self, pack: ScenarioPack, source: PackSource) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.pack.name == pack.name) {
            *e = RegisteredPack { pack, source };
        } else {
            let at = self.entries.partition_point(|e| e.pack.name < pack.name);
            self.entries.insert(at, RegisteredPack { pack, source });
        }
    }

    /// All entries, sorted by name.
    pub fn entries(&self) -> &[RegisteredPack] {
        &self.entries
    }

    /// All names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.pack.name.clone()).collect()
    }

    /// Looks up a pack by exact name.
    pub fn get(&self, name: &str) -> Option<&RegisteredPack> {
        self.entries.iter().find(|e| e.pack.name == name)
    }

    /// Resolves a CLI/daemon scenario argument: a path-looking string
    /// (`./x.json`, `packs/foo.json`) loads that file, anything else is
    /// a name lookup against the registry.
    pub fn resolve(&self, arg: &str) -> Result<ScenarioPack, ScenarioError> {
        let path_like =
            arg.contains('/') || arg.contains(std::path::MAIN_SEPARATOR) || arg.ends_with(".json");
        if path_like {
            return load_pack_file(Path::new(arg));
        }
        self.get(arg)
            .map(|e| e.pack.clone())
            .ok_or_else(|| ScenarioError::UnknownScenario {
                name: arg.to_string(),
                available: self.names(),
            })
    }
}

/// Loads and validates one pack file.
pub fn load_pack_file(path: &Path) -> Result<ScenarioPack, ScenarioError> {
    let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
        path: path.display().to_string(),
        why: e.to_string(),
    })?;
    ScenarioPack::load(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_load_sorted_and_complete() {
        let reg = ScenarioRegistry::builtin();
        assert_eq!(
            reg.names(),
            ["aged-multiplier", "dnn-weight-memory", "sram-decoder"]
        );
        for e in reg.entries() {
            assert_eq!(e.source, PackSource::Builtin);
            assert!(e.pack.total_elements() > 0);
        }
    }

    #[test]
    fn resolve_by_name_and_unknown_error() {
        let reg = ScenarioRegistry::builtin();
        assert_eq!(reg.resolve("sram-decoder").unwrap().name, "sram-decoder");
        match reg.resolve("no-such") {
            Err(ScenarioError::UnknownScenario { name, available }) => {
                assert_eq!(name, "no-such");
                assert_eq!(available.len(), 3);
            }
            other => panic!("expected UnknownScenario, got {other:?}"),
        }
    }

    #[test]
    fn directory_packs_shadow_builtins() {
        let dir = std::env::temp_dir().join(format!("dh-scenario-reg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let reg = ScenarioRegistry::builtin();
        let mut pack = reg.get("sram-decoder").unwrap().pack.clone();
        pack.epochs = 7;
        std::fs::write(dir.join("override.json"), pack.to_json()).unwrap();
        let merged = ScenarioRegistry::with_dir(&dir).unwrap();
        let e = merged.get("sram-decoder").unwrap();
        assert_eq!(e.source, PackSource::Directory);
        assert_eq!(e.pack.epochs, 7);
        assert_eq!(merged.entries().len(), 3);
        // A path argument bypasses the registry.
        let by_path = merged
            .resolve(dir.join("override.json").to_str().unwrap())
            .unwrap();
        assert_eq!(by_path.epochs, 7);
        std::fs::remove_dir_all(&dir).ok();
    }
}
