//! Property tests for the scenario crate's two correctness contracts:
//!
//! * every columnar epoch kernel is the batched restatement of its
//!   scalar [`dh_bti::WearModel`] reference — within 1e-12 of the
//!   unit-by-unit integration on both the auto-dispatched and the
//!   forced-scalar backend, with the two backends bit-identical; and
//! * the pack document is a fixed point of `parse ∘ to_json` — any
//!   valid pack round-trips identically (same value, same canonical
//!   encoding, same fingerprint), and malformed input of any shape
//!   comes back as a typed error, never a panic.
//!
//! Plus the per-built-in-pack engine pins: serial and parallel
//! integration agree bit-for-bit, and a kill/resume through a DHSP
//! checkpoint lands on the byte-identical end state.

use dh_bti::WearModel;
use dh_scenario::{
    AgedMultiplier, BlockGroup, BlockModel, Corner, EpochCtx, GroupCtx, Maintenance,
    MaintenancePolicy, MultiplierStore, ScenarioError, ScenarioPack, ScenarioRegistry, ScenarioRun,
    SramDecoder, SramStore, WeightMemory, WeightStore, Workload,
};
use proptest::prelude::*;

// ---------------------------------------------------------- constructors
//
// The vendored proptest shim draws scalars, tuples, and vecs; everything
// structured is assembled from those draws by the helpers below.

fn group_ctx(
    (seed, group_index): (u64, u64),
    (vdd_v, temperature_k, variability, maintenance_bias_v): (f64, f64, f64, f64),
) -> GroupCtx {
    GroupCtx {
        seed,
        group_index,
        vdd_v,
        temperature_k,
        variability,
        maintenance_bias_v,
    }
}

/// Decodes one drawn `(activity, flag bits)` schedule entry into the
/// kernel context of 1-based `epoch`. Bit 0 inverts, bit 1 (1-in-4)
/// gates, bit 2 selects active recovery.
fn epoch_ctx(epoch_hours: f64, epoch: u64, (activity, bits): (f64, u8)) -> EpochCtx {
    EpochCtx {
        epoch_hours,
        activity,
        inverted: bits & 1 != 0,
        gated: bits & 2 != 0,
        active_recovery: bits & 4 != 0,
        fail_threshold_mv: 40.0,
        epoch,
    }
}

/// A pack-legal name from index draws.
fn pack_name(ix: &[usize]) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-_";
    ix.iter().map(|i| CHARS[i % CHARS.len()] as char).collect()
}

/// Free-form text (descriptions, corner names) from raw code-point
/// draws: skips the surrogate gap, keeps control characters and quotes
/// so the JSON escaping is exercised on the awkward part of the space.
fn text(points: &[u32]) -> String {
    points.iter().filter_map(|&p| char::from_u32(p)).collect()
}

fn corner(name_points: &[u32], (weight, delay_scale, rate_scale): (f64, f64, f64)) -> Corner {
    let mut name = text(name_points);
    if name.is_empty() {
        name.push('c');
    }
    Corner {
        name,
        weight,
        delay_scale,
        rate_scale,
    }
}

/// The drawn tuple behind one block group: `(model_sel, count, skew)`
/// plus `(vdd_v, temperature_c, variability, base_delay_ps)`.
type BlockDraw = ((u8, u64, f64), (f64, f64, f64, f64));

/// One block group from a drawn tuple; `model_sel` picks the victim
/// model, multiplier groups take their corners from `corners`.
fn block_group(
    corners: &[Corner],
    ((model_sel, count, skew), (vdd_v, temperature_c, variability, base_delay_ps)): BlockDraw,
) -> BlockGroup {
    BlockGroup {
        model: match model_sel % 3 {
            0 => BlockModel::SramDecoder { skew },
            1 => BlockModel::WeightMemory,
            _ => BlockModel::AgedMultiplier {
                base_delay_ps,
                corners: corners.to_vec(),
            },
        },
        count,
        vdd_v,
        temperature_c,
        variability,
    }
}

// --------------------------------------- columnar kernels vs references

/// Runs `step` on the store twice — auto-dispatched and forced-scalar —
/// asserts the two end states are equal via `PartialEq` on the full
/// column set, and returns the result for the reference comparison. The
/// scalar/AVX2 bit-identity is the `dispatch!` contract this crate
/// inherits; flipping the global switch mid-test is safe for exactly
/// that reason.
fn both_backends<S: Clone + PartialEq + std::fmt::Debug>(store: &S, step: impl Fn(&mut S)) -> S {
    let mut auto = store.clone();
    step(&mut auto);
    let mut scalar = store.clone();
    dh_simd::force_scalar(true);
    step(&mut scalar);
    dh_simd::force_scalar(false);
    assert_eq!(auto, scalar, "scalar and dispatched kernels diverge");
    auto
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sram_store_tracks_the_scalar_reference(
        ids in (0u64..u64::MAX, 0u64..8),
        knobs in (0.5f64..1.3, 240.0f64..430.0, 0.0f64..0.3, 0.0f64..0.6),
        skew in 0.1f64..8.0,
        geometry in (0u64..100, 1usize..40),
        hours in 1.0f64..2000.0,
        schedule in collection::vec((0.0f64..1.0, 0u8..8), 1..16),
    ) {
        let g = group_ctx(ids, knobs);
        let (lo, len) = geometry;
        let fresh = SramStore::build(g, skew, lo, len);
        let store = both_backends(&fresh, |s| {
            for (e, &step) in schedule.iter().enumerate() {
                s.step_epoch(epoch_ctx(hours, e as u64 + 1, step));
            }
        });
        let stress = g.stress_condition();
        let (passive, active) = g.recovery_conditions();
        for k in 0..len as u64 {
            let mut unit = SramDecoder::from_group(g, skew, lo + k);
            for (e, &step) in schedule.iter().enumerate() {
                let ctx = epoch_ctx(hours, e as u64 + 1, step);
                unit.run_epoch(ctx, stress, if ctx.active_recovery { active } else { passive });
            }
            let err = (store.delta_vth_mv(k as usize) - unit.delta_vth_mv()).abs();
            prop_assert!(err <= 1e-12, "row {k}: {err:e}");
        }
    }

    #[test]
    fn weight_store_tracks_the_scalar_reference(
        ids in (0u64..u64::MAX, 0u64..8),
        knobs in (0.5f64..1.3, 240.0f64..430.0, 0.0f64..0.3, 0.0f64..0.6),
        trace in collection::vec(0.0f64..1.0, 1..6),
        geometry in (0u64..100, 1usize..40),
        hours in 1.0f64..2000.0,
        schedule in collection::vec((0.0f64..1.0, 0u8..8), 1..16),
    ) {
        let g = group_ctx(ids, knobs);
        let (lo, len) = geometry;
        let fresh = WeightStore::build(g, &trace, lo, len);
        let store = both_backends(&fresh, |s| {
            for (e, &step) in schedule.iter().enumerate() {
                s.step_epoch(epoch_ctx(hours, e as u64 + 1, step));
            }
        });
        let stress = g.stress_condition();
        let (passive, active) = g.recovery_conditions();
        for k in 0..len as u64 {
            let mut unit = WeightMemory::from_group(g, &trace, lo + k);
            for (e, &step) in schedule.iter().enumerate() {
                let ctx = epoch_ctx(hours, e as u64 + 1, step);
                unit.run_epoch(ctx, stress, if ctx.active_recovery { active } else { passive });
            }
            let err = (store.metric(k as usize) - unit.delta_vth_mv()).abs();
            prop_assert!(err <= 1e-12, "bank {k}: {err:e}");
        }
    }

    #[test]
    fn multiplier_store_tracks_the_scalar_reference(
        ids in (0u64..u64::MAX, 0u64..8),
        knobs in (0.5f64..1.3, 240.0f64..430.0, 0.0f64..0.3, 0.0f64..0.6),
        base_delay_ps in 100.0f64..2000.0,
        corner_draws in collection::vec(
            (collection::vec(0u32..0xD7FF, 0..8), (0.01f64..10.0, 0.5f64..2.0, 0.5f64..2.0)),
            1..4,
        ),
        geometry in (0u64..100, 1usize..40),
        hours in 1.0f64..2000.0,
        schedule in collection::vec((0.0f64..1.0, 0u8..8), 1..16),
    ) {
        let g = group_ctx(ids, knobs);
        let (lo, len) = geometry;
        let corners: Vec<Corner> = corner_draws
            .iter()
            .map(|(points, scales)| corner(points, *scales))
            .collect();
        let fresh = MultiplierStore::build(g, base_delay_ps, &corners, lo, len);
        let store = both_backends(&fresh, |s| {
            for (e, &step) in schedule.iter().enumerate() {
                s.step_epoch(epoch_ctx(hours, e as u64 + 1, step));
            }
        });
        let stress = g.stress_condition();
        let (passive, active) = g.recovery_conditions();
        for k in 0..len as u64 {
            let mut unit = AgedMultiplier::from_group(g, base_delay_ps, &corners, lo + k);
            for (e, &step) in schedule.iter().enumerate() {
                let ctx = epoch_ctx(hours, e as u64 + 1, step);
                unit.run_epoch(ctx, stress, if ctx.active_recovery { active } else { passive });
            }
            let err = (store.metric(k as usize) - unit.delta_vth_mv()).abs();
            prop_assert!(err <= 1e-12, "instance {k}: {err:e}");
            let derr = (store.delay_ps(k as usize) - unit.delay_ps()).abs();
            prop_assert!(derr <= 1e-9, "instance {k} delay: {derr:e}");
        }
    }
}

// ---------------------------------------------- pack JSON round-trip

/// Assembles a valid pack from shim-drawable pieces.
#[allow(clippy::type_complexity)]
fn assemble_pack(
    (name_ix, description_points): (Vec<usize>, Vec<u32>),
    (seed, epochs, epoch_hours, shard_size): (u64, u64, f64, u64),
    fail_threshold_mv: f64,
    trace: Vec<f64>,
    (policy_sel, interval_epochs, recovery_bias_v): (u8, u64, f64),
    corner_draws: &[(Vec<u32>, (f64, f64, f64))],
    block_draws: &[((u8, u64, f64), (f64, f64, f64, f64))],
) -> ScenarioPack {
    let corners: Vec<Corner> = corner_draws
        .iter()
        .map(|(points, scales)| corner(points, *scales))
        .collect();
    ScenarioPack {
        name: pack_name(&name_ix),
        description: text(&description_points),
        seed,
        epochs,
        epoch_hours,
        shard_size,
        fail_threshold_mv,
        workload: Workload { trace },
        maintenance: Maintenance {
            policy: match policy_sel % 3 {
                0 => MaintenancePolicy::None,
                1 => MaintenancePolicy::Invert,
                _ => MaintenancePolicy::PowerGate,
            },
            interval_epochs,
            recovery_bias_v,
        },
        blocks: block_draws
            .iter()
            .map(|&draw| block_group(&corners, draw))
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn packs_are_a_fixed_point_of_parse_to_json(
        naming in (collection::vec(0usize..38, 1..24), collection::vec(0u32..0xD7FF, 0..12)),
        grid in (0u64..(1 << 53), 1u64..50, 1.0f64..2000.0, 1u64..512),
        fail_threshold_mv in 1.0f64..200.0,
        trace in collection::vec(0.0f64..1.0, 1..8),
        maintenance in (0u8..3, 1u64..12, 0.0f64..1.0),
        corner_draws in collection::vec(
            (collection::vec(0u32..0xD7FF, 0..8), (0.01f64..10.0, 0.5f64..2.0, 0.5f64..2.0)),
            1..4,
        ),
        block_draws in collection::vec(
            ((0u8..3, 1u64..600, 0.1f64..8.0), (0.5f64..1.5, -55.0f64..225.0, 0.0f64..0.5, 100.0f64..2000.0)),
            1..4,
        ),
    ) {
        let pack = assemble_pack(
            naming,
            grid,
            fail_threshold_mv,
            trace,
            maintenance,
            &corner_draws,
            &block_draws,
        );
        prop_assert!(pack.validate().is_ok(), "generated pack invalid: {:?}", pack.validate());
        let encoded = pack.to_json();
        let again = match ScenarioPack::load(&encoded) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("re-parse failed: {e}"))),
        };
        prop_assert!(pack == again, "value drifted through the round trip");
        prop_assert!(pack.fingerprint() == again.fingerprint());
        prop_assert!(encoded == again.to_json(), "encoding is not canonical");
    }

    #[test]
    fn malformed_documents_never_panic(points in collection::vec(0u32..0xD7FF, 0..200)) {
        // Arbitrary garbage: a typed error or a valid pack, never a panic.
        let _ = ScenarioPack::load(&text(&points));
    }

    #[test]
    fn mutations_of_a_valid_pack_error_cleanly(
        grid in (0u64..(1 << 53), 1u64..50, 1.0f64..2000.0, 1u64..512),
        trace in collection::vec(0.0f64..1.0, 1..8),
        maintenance in (0u8..3, 1u64..12, 0.0f64..1.0),
        block_draws in collection::vec(
            ((0u8..2, 1u64..600, 0.1f64..8.0), (0.5f64..1.5, -55.0f64..225.0, 0.0f64..0.5, 100.0f64..2000.0)),
            1..4,
        ),
        cut in 0usize..10_000,
        flip in 0usize..10_000,
    ) {
        let pack = assemble_pack(
            (vec![0, 1, 2], vec![b'o' as u32, b'k' as u32]),
            grid,
            50.0,
            trace,
            maintenance,
            &[],
            &block_draws,
        );
        let encoded = pack.to_json();
        // Truncations lose a brace or quote: Json / Schema, not a panic.
        let truncated = &encoded[..cut % encoded.len()];
        if let Err(e) = ScenarioPack::load(truncated) {
            prop_assert!(
                e.is_malformed() || matches!(e, ScenarioError::Invalid { .. }),
                "unexpected error class: {e:?}"
            );
        }
        // Single-byte ASCII flips stay valid UTF-8 and must also come
        // back as a typed error (or still parse, e.g. a digit flip).
        let mut bytes = encoded.into_bytes();
        let i = flip % bytes.len();
        bytes[i] = if bytes[i] == b'x' { b'y' } else { b'x' };
        if let Ok(doc) = String::from_utf8(bytes) {
            let _ = ScenarioPack::load(&doc);
        }
    }
}

// ------------------------------------------------- built-in pack engine

/// Every built-in pack, shrunk to a few epochs so the full determinism
/// battery stays fast while still crossing maintenance boundaries.
fn shrunk_builtins() -> Vec<ScenarioPack> {
    let registry = ScenarioRegistry::builtin();
    registry
        .names()
        .iter()
        .map(|name| {
            let mut pack = registry.get(name).unwrap().pack.clone();
            pack.epochs = 9;
            pack.shard_size = 300;
            for b in &mut pack.blocks {
                b.count = b.count.min(700);
            }
            pack
        })
        .collect()
}

#[test]
fn builtin_packs_are_thread_count_invariant() {
    for pack in shrunk_builtins() {
        dh_exec::set_max_threads(Some(1));
        let serial = dh_scenario::run_pack(pack.clone());
        dh_exec::set_max_threads(None);
        let parallel = dh_scenario::run_pack(pack.clone());
        assert_eq!(
            serial.fingerprint, parallel.fingerprint,
            "{}: serial vs parallel",
            pack.name
        );
        assert_eq!(serial, parallel, "{}", pack.name);
    }
}

#[test]
fn builtin_packs_survive_a_kill_and_resume_byte_identically() {
    let dir = std::env::temp_dir().join(format!("dh-scenario-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for pack in shrunk_builtins() {
        let mut straight = ScenarioRun::new(pack.clone());
        straight.run_to_end();

        // "Kill" mid-epoch: step an odd shard count, checkpoint to disk,
        // drop the run, resume from the file, finish.
        let mut stepped = ScenarioRun::new(pack.clone());
        stepped.step(usize::MAX);
        stepped.step(1);
        let path = dir.join(format!("{}.dhsp", pack.name));
        stepped.save_checkpoint(&path).unwrap();
        let interrupted = stepped.progress();
        drop(stepped);

        let mut resumed = ScenarioRun::resume_from(pack.clone(), &path).unwrap();
        assert_eq!(resumed.progress(), interrupted, "{}", pack.name);
        resumed.run_to_end();
        assert_eq!(resumed.report(), straight.report(), "{}", pack.name);
        assert_eq!(
            resumed.encode_checkpoint(),
            straight.encode_checkpoint(),
            "{}: end state not byte-identical",
            pack.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
