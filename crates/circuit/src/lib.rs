//! Circuit substrate: transistors, ring oscillators, and the paper's
//! **assist circuitry** for activating BTI and EM recovery.
//!
//! The paper's Section IV proposes a power-gating-style switch network
//! (its Fig. 8) with three operating modes:
//!
//! * **Normal** — the load is powered conventionally through header/footer
//!   devices;
//! * **EM Active Recovery** — the current through the local VDD/VSS grids is
//!   *reversed* at the same magnitude while the load keeps functioning
//!   (enabling the Fig. 5–7 EM healing during operation);
//! * **BTI Active Recovery** — the idle load's VDD and VSS are *swapped*,
//!   putting every transistor into the negative-bias deep-recovery mode of
//!   Table I.
//!
//! This crate implements that network as a resistive nodal model
//! ([`assist`]), validated against the paper's 28 nm FD-SOI simulation
//! numbers (its Fig. 9), the load-size trade-off study (its Fig. 10,
//! [`sweep`]), plus the measurement-side instruments: an alpha-power-law
//! MOSFET ([`mosfet`]) and the 75-stage ring oscillator used as the BTI
//! test structure and sensor ([`ring_oscillator`]).
//!
//! # Example
//!
//! ```
//! use dh_circuit::assist::{AssistCircuit, Mode};
//!
//! let circuit = AssistCircuit::paper_28nm();
//! let normal = circuit.solve(Mode::Normal).unwrap();
//! let em = circuit.solve(Mode::EmActiveRecovery).unwrap();
//! // Fig. 9(a): grid current reverses at (nearly) the same magnitude.
//! assert!(normal.grid_current.value() > 0.0);
//! assert!(em.grid_current.value() < 0.0);
//! let ratio = (em.grid_current.value() / normal.grid_current.value()).abs();
//! assert!((ratio - 1.0).abs() < 0.05);
//! ```

#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > 0.0)` deliberately catches NaN
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assist;
pub mod error;
pub mod mosfet;
pub mod nodal;
pub mod ring_oscillator;
pub mod ro_array;
pub mod sram;
pub mod sweep;

pub use assist::{AssistCircuit, Mode, ModeSolution};
pub use error::CircuitError;
pub use mosfet::Mosfet;
pub use ring_oscillator::RingOscillator;
