//! SRAM cell aging and **recovery boost** — the microarchitectural
//! baseline the paper builds on.
//!
//! The paper's prior-work section cites Shin et al.'s *recovery boost*
//! [17]: "the idea was to raise the gate voltages of a memory cell in
//! order to put PMOS devices into the recovery enhancement mode", noting
//! that "it was still unclear how much benefit recovery boost could
//! achieve due to lack of experimental data". With the Table I-calibrated
//! recovery model underneath, this module supplies that missing
//! quantification.
//!
//! A 6T cell holds one bit; whichever pull-up PMOS is ON (gate low) is
//! under NBTI stress, so a data-skewed cell ages *asymmetrically* and its
//! static noise margin (SNM) collapses with the ΔVth mismatch. Idle
//! options:
//!
//! * plain retention — the stored value keeps stressing one side;
//! * **recovery boost** — both cell gate nodes are raised, putting both
//!   PMOS into (mild) active recovery while the cell's state is parked
//!   elsewhere.

use dh_bti::{AnalyticBtiModel, BtiDevice, RecoveryCondition, StressCondition};
use dh_units::{Kelvin, Seconds, Volts};

/// The two pull-up PMOS devices of a 6T cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SramCell {
    /// Pull-up on the node storing "0" output (stressed while bit = 0).
    pu_left: BtiDevice,
    /// Pull-up on the complementary node (stressed while bit = 1).
    pu_right: BtiDevice,
    /// Cell supply.
    vdd: Volts,
    /// Fresh static noise margin, millivolts.
    snm_fresh_mv: f64,
}

/// The boost level applied during recovery-boost idle mode: raising the
/// internal gate nodes gives the PMOS pair a modest negative Vgs. (The
/// original proposal boosts by ~a threshold; −150 mV effective is a
/// representative mild setting — far shallower than the assist circuitry's
/// rail swap.)
pub const RECOVERY_BOOST_BIAS: Volts = Volts::new(-0.15);

impl SramCell {
    /// A fresh cell at `vdd` with a typical fresh SNM of ~28 % of VDD.
    pub fn new(model: AnalyticBtiModel, vdd: Volts) -> Self {
        Self {
            pu_left: BtiDevice::new(model),
            pu_right: BtiDevice::new(model),
            vdd,
            snm_fresh_mv: 0.28 * vdd.value() * 1000.0,
        }
    }

    /// A fresh cell with the paper-calibrated model at 0.9 V.
    pub fn paper_calibrated() -> Self {
        Self::new(AnalyticBtiModel::paper_calibrated(), Volts::new(0.9))
    }

    /// Holds `bit` for `dt` at temperature `t`: the ON pull-up stresses,
    /// the OFF one passively recovers.
    pub fn hold(&mut self, bit: bool, dt: Seconds, t: Kelvin) {
        let stress = StressCondition {
            gate_voltage: self.vdd,
            temperature: t,
        };
        let passive = RecoveryCondition {
            gate_voltage: Volts::ZERO,
            temperature: t,
        };
        let (on, off) = if bit {
            (&mut self.pu_right, &mut self.pu_left)
        } else {
            (&mut self.pu_left, &mut self.pu_right)
        };
        on.stress(dt, stress);
        off.recover(dt, passive);
    }

    /// Idles the cell in plain retention of `bit` (same as holding it).
    pub fn idle_retention(&mut self, bit: bool, dt: Seconds, t: Kelvin) {
        self.hold(bit, dt, t);
    }

    /// Idles the cell in *recovery boost* mode: both pull-ups recover at
    /// the boost bias (cell contents are assumed parked/rewritten after).
    pub fn idle_recovery_boost(&mut self, dt: Seconds, t: Kelvin) {
        let cond = RecoveryCondition {
            gate_voltage: RECOVERY_BOOST_BIAS,
            temperature: t,
        };
        self.pu_left.recover(dt, cond);
        self.pu_right.recover(dt, cond);
    }

    /// Threshold shifts of the two pull-ups, millivolts.
    pub fn shifts_mv(&self) -> (f64, f64) {
        (self.pu_left.delta_vth_mv(), self.pu_right.delta_vth_mv())
    }

    /// The ΔVth mismatch between the two sides, millivolts.
    pub fn mismatch_mv(&self) -> f64 {
        let (l, r) = self.shifts_mv();
        (l - r).abs()
    }

    /// The degraded static noise margin, millivolts.
    ///
    /// First-order SNM sensitivity: the common-mode shift costs
    /// ~half a millivolt of SNM per millivolt of ΔVth, and mismatch costs
    /// roughly one-for-one (it skews the butterfly curve directly).
    pub fn snm_mv(&self) -> f64 {
        let (l, r) = self.shifts_mv();
        let common = 0.5 * (l + r);
        (self.snm_fresh_mv - 0.5 * common - self.mismatch_mv()).max(0.0)
    }

    /// Fresh SNM of this cell, millivolts.
    pub fn snm_fresh_mv(&self) -> f64 {
        self.snm_fresh_mv
    }

    /// The fraction of fresh SNM lost so far.
    pub fn snm_loss(&self) -> f64 {
        1.0 - self.snm_mv() / self.snm_fresh_mv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_units::Celsius;

    fn hot() -> Kelvin {
        Celsius::new(85.0).to_kelvin()
    }

    #[test]
    fn fresh_cell_has_full_snm() {
        let cell = SramCell::paper_calibrated();
        assert_eq!(cell.snm_mv(), cell.snm_fresh_mv());
        assert_eq!(cell.mismatch_mv(), 0.0);
        assert_eq!(cell.snm_loss(), 0.0);
    }

    #[test]
    fn skewed_data_creates_mismatch_and_snm_loss() {
        let mut cell = SramCell::paper_calibrated();
        // A cell that stores 0 for a month straight (e.g. a sticky flag).
        for _ in 0..30 {
            cell.hold(false, Seconds::from_days(1.0), hot());
        }
        let (l, r) = cell.shifts_mv();
        assert!(l > r, "stressed side must age more: {l} vs {r}");
        assert!(cell.mismatch_mv() > 1.0);
        assert!(cell.snm_loss() > 0.01);
    }

    #[test]
    fn alternating_data_ages_symmetrically() {
        let mut skewed = SramCell::paper_calibrated();
        let mut balanced = SramCell::paper_calibrated();
        for day in 0..30 {
            skewed.hold(false, Seconds::from_days(1.0), hot());
            balanced.hold(day % 2 == 0, Seconds::from_days(1.0), hot());
        }
        assert!(
            balanced.mismatch_mv() < 0.5 * skewed.mismatch_mv(),
            "balanced {} vs skewed {}",
            balanced.mismatch_mv(),
            skewed.mismatch_mv()
        );
        assert!(balanced.snm_loss() < skewed.snm_loss());
    }

    #[test]
    fn recovery_boost_outheals_plain_retention() {
        // The quantification [17] lacked: same idle window, boost vs
        // retention.
        let mut aged = SramCell::paper_calibrated();
        for _ in 0..30 {
            aged.hold(false, Seconds::from_days(1.0), hot());
        }
        let mut retention = aged.clone();
        let mut boosted = aged;
        retention.idle_retention(false, Seconds::from_hours(8.0), hot());
        boosted.idle_recovery_boost(Seconds::from_hours(8.0), hot());
        assert!(
            boosted.snm_mv() > retention.snm_mv(),
            "boost SNM {:.1} vs retention {:.1}",
            boosted.snm_mv(),
            retention.snm_mv()
        );
        // Boost heals the stressed side.
        assert!(boosted.shifts_mv().0 < retention.shifts_mv().0);
    }

    #[test]
    fn boost_during_idle_recovers_mismatch() {
        let mut cell = SramCell::paper_calibrated();
        for _ in 0..30 {
            cell.hold(false, Seconds::from_days(1.0), hot());
        }
        let before = cell.mismatch_mv();
        cell.idle_recovery_boost(Seconds::from_hours(8.0), hot());
        assert!(
            cell.mismatch_mv() < before,
            "mismatch {before} → {}",
            cell.mismatch_mv()
        );
    }

    #[test]
    fn snm_never_goes_negative() {
        let mut cell = SramCell::paper_calibrated();
        // Absurdly long unbalanced stress.
        for _ in 0..50 {
            cell.hold(
                false,
                Seconds::from_days(30.0),
                Celsius::new(125.0).to_kelvin(),
            );
        }
        assert!(cell.snm_mv() >= 0.0);
        assert!(cell.snm_loss() <= 1.0);
    }
}
