//! The paper's assist circuitry (its Fig. 8): a power-gating-style switch
//! network that supports *Normal*, *EM Active Recovery*, and *BTI Active
//! Recovery* modes.
//!
//! # Topology
//!
//! ```text
//!  VDD ──P1──[G1a]──grid1──[G1b]──P3──┐
//!   │                        │        [LP]  load VDD pin
//!   └───P2──[G2a]──grid2──[G2b]──P4──┘ │
//!            │               │        load
//!  GND ──N1──┘   ┌──N3───────┘         │
//!   │            │                    [LM]  load VSS pin
//!   └───N2──[G1a]│    N4: G1b ── LM ───┘
//! ```
//!
//! * `P1/N1` power the grids with normal polarity, `P2/N2` with reversed
//!   polarity (current through `grid1`/`grid2` flips at the same
//!   magnitude — the EM active-recovery condition of Figs. 5–7);
//! * `P3/N3` connect the load with normal polarity, `P4/N4` cross-connect
//!   it — under *BTI Active Recovery* the idle load's VDD and VSS pins swap,
//!   applying the deep negative-bias recovery condition of Table I to every
//!   transistor in the load.
//!
//! Per mode the network is a resistive circuit (pass devices at full gate
//! drive), solved exactly by [`crate::nodal`]. The paper validates the
//! scheme in 28 nm FD-SOI (its Fig. 9); [`AssistCircuit::paper_28nm`]
//! reproduces those observations: reversed equal-magnitude grid current,
//! swapped load rails at ≈0.8 V / ≈0.2 V, and a 0.2–0.3 V droop.

use core::fmt;

use dh_units::{Amperes, Ohms, Volts};

use crate::error::CircuitError;
use crate::mosfet::Mosfet;
use crate::nodal::NodalNetwork;

/// The eight switch devices of the assist circuitry (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// Header: VDD → VDD-grid (normal polarity).
    P1,
    /// Header: VDD → VSS-grid (reversed polarity).
    P2,
    /// Load connect: VDD-grid → load VDD pin (normal).
    P3,
    /// Load cross-connect: VSS-grid → load VDD pin (reversed/swap).
    P4,
    /// Footer: VSS-grid → GND (normal polarity).
    N1,
    /// Footer: VDD-grid → GND (reversed polarity).
    N2,
    /// Load connect: VSS-grid → load VSS pin (normal).
    N3,
    /// Load cross-connect: VDD-grid → load VSS pin (reversed/swap).
    N4,
}

impl Device {
    /// All devices in Fig. 8 order.
    pub const ALL: [Self; 8] = [
        Self::P1,
        Self::P2,
        Self::P3,
        Self::P4,
        Self::N1,
        Self::N2,
        Self::N3,
        Self::N4,
    ];
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::P1 => "P1",
            Self::P2 => "P2",
            Self::P3 => "P3",
            Self::P4 => "P4",
            Self::N1 => "N1",
            Self::N2 => "N2",
            Self::N3 => "N3",
            Self::N4 => "N4",
        };
        write!(f, "{name}")
    }
}

/// The three operating modes of the assist circuitry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Conventional power-gated operation.
    Normal,
    /// Grid current reversed at equal magnitude; load keeps operating.
    EmActiveRecovery,
    /// Idle load with swapped VDD/VSS (deep BTI recovery).
    BtiActiveRecovery,
}

impl Mode {
    /// All modes.
    pub const ALL: [Self; 3] = [
        Self::Normal,
        Self::EmActiveRecovery,
        Self::BtiActiveRecovery,
    ];

    /// The truth table of Fig. 8(b): which devices are ON in this mode.
    pub fn device_states(self) -> [(Device, bool); 8] {
        use Device::*;
        let on: &[Device] = match self {
            Self::Normal => &[P1, P3, N1, N3],
            Self::EmActiveRecovery => &[P2, P4, N2, N4],
            Self::BtiActiveRecovery => &[P1, P4, N1, N4],
        };
        Device::ALL.map(|d| (d, on.contains(&d)))
    }

    /// Whether a device is ON in this mode.
    pub fn is_on(self, device: Device) -> bool {
        self.device_states().iter().any(|&(d, s)| d == device && s)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Normal => write!(f, "Normal"),
            Self::EmActiveRecovery => write!(f, "EM Active Recovery"),
            Self::BtiActiveRecovery => write!(f, "BTI Active Recovery"),
        }
    }
}

/// The assist circuitry with its load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssistCircuit {
    /// Supply voltage.
    pub vdd: Volts,
    /// Header (PMOS) pass device.
    pub p_device: Mosfet,
    /// Footer (NMOS) pass device.
    pub n_device: Mosfet,
    /// Local grid segment resistance (VDD and VSS grids each).
    pub r_grid: Ohms,
    /// Load resistance while operating (Normal / EM recovery modes).
    pub load_active: Ohms,
    /// Load resistance while idle (BTI recovery mode; leakage).
    pub load_idle: Ohms,
    /// Width multiplier applied to the pass devices (upsizing study).
    pub header_width: f64,
}

/// Node indices in the nodal formulation.
const G1A: usize = 0;
const G1B: usize = 1;
const G2A: usize = 2;
const G2B: usize = 3;
const LP: usize = 4;
const LM: usize = 5;
/// Off-state resistance of a pass device.
const R_OFF: f64 = 1.0e12;

/// Solved operating point for one mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeSolution {
    /// Mode that was solved.
    pub mode: Mode,
    /// Voltage at the load's VDD pin.
    pub load_vdd: Volts,
    /// Voltage at the load's VSS pin.
    pub load_vss: Volts,
    /// Current through the VDD-grid segment; positive in the Normal
    /// direction.
    pub grid_current: Amperes,
    /// Current through the load (always ≥ 0 flowing from its higher pin).
    pub load_current: Amperes,
}

impl ModeSolution {
    /// The supply compression: how far the load's effective supply
    /// (VDD pin − VSS pin) sits below the full rail — the Fig. 9/Fig. 10
    /// headroom cost of the pass devices.
    pub fn droop(&self, vdd: Volts) -> Volts {
        vdd - (self.load_vdd - self.load_vss).abs()
    }

    /// The effective gate-source bias seen by load transistors in BTI
    /// recovery mode (negative = recovery-activating).
    pub fn bti_recovery_bias(&self) -> Volts {
        self.load_vdd - self.load_vss
    }
}

impl AssistCircuit {
    /// The paper's 28 nm FD-SOI configuration: 1 V supply, ≈150/180 Ω pass
    /// devices, a grid segment resistance from published PDN data, and a
    /// parallel-ring-oscillator load.
    pub fn paper_28nm() -> Self {
        let p = Mosfet::n28();
        // NMOS footers sized slightly weaker in this layout.
        let n = Mosfet {
            k_lin: 0.925e-2,
            ..Mosfet::n28()
        };
        Self {
            vdd: Volts::new(1.0),
            p_device: p,
            n_device: n,
            r_grid: Ohms::new(37.0),
            load_active: Ohms::new(1800.0),
            load_idle: Ohms::new(1200.0),
            header_width: 1.0,
        }
    }

    /// Replaces the active-mode load resistance (builder-style).
    #[must_use]
    pub fn with_load_active(mut self, r: Ohms) -> Self {
        self.load_active = r;
        self
    }

    /// Applies a width multiplier to the header/footer devices
    /// (builder-style; the paper's upsizing compensation).
    #[must_use]
    pub fn with_header_width(mut self, width: f64) -> Self {
        self.header_width = width;
        self
    }

    /// Checks that every parameter yields a physical (finite, positive)
    /// resistance before anything is stamped into the nodal matrix.
    fn validate(&self) -> Result<(), CircuitError> {
        let positive = |name: &str, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(CircuitError::InvalidParameter(format!(
                    "{name} must be finite and positive, got {v}"
                )))
            }
        };
        positive("vdd", self.vdd.value())?;
        positive("r_grid", self.r_grid.value())?;
        positive("load_active", self.load_active.value())?;
        positive("load_idle", self.load_idle.value())?;
        positive("header_width", self.header_width)?;
        positive(
            "p_device on-resistance",
            self.p_device.on_resistance(self.vdd).value(),
        )?;
        positive(
            "n_device on-resistance",
            self.n_device.on_resistance(self.vdd).value(),
        )?;
        Ok(())
    }

    fn pass_resistance(&self, device: Device, on: bool) -> f64 {
        if !on {
            return R_OFF;
        }
        let m = match device {
            Device::P1 | Device::P2 | Device::P3 | Device::P4 => &self.p_device,
            _ => &self.n_device,
        };
        m.on_resistance(self.vdd).value() / self.header_width
    }

    /// Solves the DC operating point for a mode.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] when a parameter yields a
    /// non-physical resistance (e.g. a zero `header_width`), and
    /// [`CircuitError::SingularMatrix`] when the resulting network cannot be
    /// solved. The built-in configurations always solve.
    pub fn solve(&self, mode: Mode) -> Result<ModeSolution, CircuitError> {
        self.validate()?;
        let mut net = NodalNetwork::new(6);
        let states = mode.device_states();
        let r = |d: Device| {
            let (_, on) = states[Device::ALL
                .iter()
                .position(|&x| x == d)
                .expect("device in ALL")];
            self.pass_resistance(d, on)
        };
        // Sources through the headers.
        net.stamp_source(G1A, self.vdd.value(), r(Device::P1));
        net.stamp_source(G2A, self.vdd.value(), r(Device::P2));
        // Footers to ground.
        net.stamp_resistor(Some(G2A), None, r(Device::N1));
        net.stamp_resistor(Some(G1A), None, r(Device::N2));
        // Grid segments.
        net.stamp_resistor(Some(G1A), Some(G1B), self.r_grid.value());
        net.stamp_resistor(Some(G2A), Some(G2B), self.r_grid.value());
        // Load connect / cross-connect.
        net.stamp_resistor(Some(G1B), Some(LP), r(Device::P3));
        net.stamp_resistor(Some(G2B), Some(LP), r(Device::P4));
        net.stamp_resistor(Some(G2B), Some(LM), r(Device::N3));
        net.stamp_resistor(Some(G1B), Some(LM), r(Device::N4));
        // The load itself.
        let load = match mode {
            Mode::BtiActiveRecovery => self.load_idle,
            _ => self.load_active,
        };
        net.stamp_resistor(Some(LP), Some(LM), load.value());

        let v = net.solve()?;
        let grid_current = Amperes::new((v[G1A] - v[G1B]) / self.r_grid.value());
        let load_current = Amperes::new((v[LP] - v[LM]).abs() / load.value());
        Ok(ModeSolution {
            mode,
            load_vdd: Volts::new(v[LP]),
            load_vss: Volts::new(v[LM]),
            grid_current,
            load_current,
        })
    }
}

impl Default for AssistCircuit {
    fn default() -> Self {
        Self::paper_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit() -> AssistCircuit {
        AssistCircuit::paper_28nm()
    }

    #[test]
    fn truth_table_has_four_devices_on_per_mode() {
        for mode in Mode::ALL {
            let on = mode.device_states().iter().filter(|(_, s)| *s).count();
            assert_eq!(on, 4, "{mode}");
        }
    }

    #[test]
    fn truth_table_matches_fig8() {
        use Device::*;
        assert!(Mode::Normal.is_on(P1) && Mode::Normal.is_on(P3));
        assert!(Mode::Normal.is_on(N1) && Mode::Normal.is_on(N3));
        assert!(!Mode::Normal.is_on(P2) && !Mode::Normal.is_on(N4));
        assert!(Mode::EmActiveRecovery.is_on(P2) && Mode::EmActiveRecovery.is_on(N2));
        assert!(Mode::EmActiveRecovery.is_on(P4) && Mode::EmActiveRecovery.is_on(N4));
        assert!(!Mode::EmActiveRecovery.is_on(P1));
        assert!(Mode::BtiActiveRecovery.is_on(P1) && Mode::BtiActiveRecovery.is_on(N1));
        assert!(Mode::BtiActiveRecovery.is_on(P4) && Mode::BtiActiveRecovery.is_on(N4));
        assert!(!Mode::BtiActiveRecovery.is_on(P3) && !Mode::BtiActiveRecovery.is_on(N3));
    }

    #[test]
    fn fig9a_grid_current_reverses_at_equal_magnitude() {
        let c = circuit();
        let normal = c.solve(Mode::Normal).unwrap();
        let em = c.solve(Mode::EmActiveRecovery).unwrap();
        assert!(normal.grid_current.value() > 0.0);
        assert!(em.grid_current.value() < 0.0);
        let ratio = (-em.grid_current.value() / normal.grid_current.value() - 1.0).abs();
        assert!(ratio < 1e-6, "magnitude mismatch ratio {ratio}");
        // Fig. 9(a) scale: a few hundred µA.
        let ma = normal.grid_current.value() * 1000.0;
        assert!(ma > 0.2 && ma < 0.7, "grid current {ma} mA");
    }

    #[test]
    fn load_polarity_is_preserved_in_em_recovery_mode() {
        let c = circuit();
        let normal = c.solve(Mode::Normal).unwrap();
        let em = c.solve(Mode::EmActiveRecovery).unwrap();
        assert!(normal.load_vdd > normal.load_vss);
        assert!(em.load_vdd > em.load_vss, "load must keep functioning");
        let dv = (normal.load_vdd - normal.load_vss).value() - (em.load_vdd - em.load_vss).value();
        assert!(dv.abs() < 1e-6, "load supply differs between modes by {dv}");
    }

    #[test]
    fn fig9b_bti_mode_swaps_the_load_rails() {
        let sol = circuit().solve(Mode::BtiActiveRecovery).unwrap();
        // Paper: load VSS node ≈ 0.816 V, load VDD node ≈ 0.223 V.
        assert!(
            (sol.load_vss.value() - 0.82).abs() < 0.06,
            "load VSS = {}",
            sol.load_vss
        );
        assert!(
            (sol.load_vdd.value() - 0.21).abs() < 0.06,
            "load VDD = {}",
            sol.load_vdd
        );
        // The resulting bias is far deeper than the −0.3 V used in the
        // Table I experiments.
        assert!(sol.bti_recovery_bias() < Volts::new(-0.5));
    }

    #[test]
    fn droop_is_in_the_paper_range() {
        let c = circuit();
        let normal = c.solve(Mode::Normal).unwrap();
        let droop = normal.droop(c.vdd).value();
        assert!((0.15..=0.35).contains(&droop), "droop {droop}");
    }

    #[test]
    fn upsizing_headers_reduces_droop() {
        let base = circuit().solve(Mode::Normal).unwrap();
        let upsized = circuit()
            .with_header_width(3.0)
            .solve(Mode::Normal)
            .unwrap();
        assert!(upsized.droop(Volts::new(1.0)) < base.droop(Volts::new(1.0)));
    }

    #[test]
    fn degenerate_parameters_are_rejected_not_panicked() {
        // A zero-width header has infinite pass resistance; before
        // validation this panicked inside the nodal stamping asserts.
        let zero_width = circuit().with_header_width(0.0);
        for mode in Mode::ALL {
            let err = zero_width.solve(mode).unwrap_err();
            assert!(
                matches!(err, CircuitError::InvalidParameter(ref why)
                    if why.contains("header_width")),
                "{mode}: {err}"
            );
        }

        let bad_load = circuit().with_load_active(Ohms::new(f64::NAN));
        assert!(matches!(
            bad_load.solve(Mode::Normal),
            Err(CircuitError::InvalidParameter(_))
        ));
    }

    #[test]
    fn display_names() {
        assert_eq!(Mode::EmActiveRecovery.to_string(), "EM Active Recovery");
        assert_eq!(Device::P3.to_string(), "P3");
    }
}
