//! Error types for the circuit models.

use core::fmt;

/// Error returned by circuit construction and solving.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// The nodal conductance matrix is singular (floating node or all
    /// devices off).
    SingularMatrix,
    /// A parameter is non-physical.
    InvalidParameter(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SingularMatrix => write!(f, "nodal matrix is singular (floating node?)"),
            Self::InvalidParameter(why) => write!(f, "invalid circuit parameter: {why}"),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(CircuitError::SingularMatrix
            .to_string()
            .contains("singular"));
        assert!(CircuitError::InvalidParameter("x".into())
            .to_string()
            .contains('x'));
    }
}
