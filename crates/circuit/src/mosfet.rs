//! Alpha-power-law MOSFET model.
//!
//! The alpha-power law (Sakurai–Newton) captures short-channel saturation
//! current well enough for delay and droop estimation:
//!
//! ```text
//! I_on = k · W · (V_gs − V_th)^α        (saturation)
//! R_on ≈ 1 / (k_lin · W · (V_gs − V_th)) (deep triode, pass device)
//! ```
//!
//! BTI enters through `delta_vth_mv`: the threshold magnitude grows as the
//! device wears out, shrinking the overdrive. `α ≈ 1.3` is typical of the
//! 28 nm-class technology the paper simulates its assist circuitry in.

use dh_units::{Ohms, Volts};

use crate::error::CircuitError;

/// An alpha-power-law MOSFET (widths folded into the transconductance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    /// Fresh threshold voltage magnitude.
    pub vth0: Volts,
    /// Saturation transconductance, A/V^α (width included).
    pub k_sat: f64,
    /// Velocity-saturation exponent α.
    pub alpha: f64,
    /// Linear-region conductance factor, S/V (width included).
    pub k_lin: f64,
    /// BTI-induced threshold shift, millivolts (≥ 0).
    pub delta_vth_mv: f64,
}

impl Mosfet {
    /// A 28 nm-class logic device normalised to unit width: chosen so a
    /// 1 V gate drive gives ≈0.5 mA of saturation current and a ≈150 Ω
    /// pass resistance — the scales used by the paper's assist-circuit
    /// simulation.
    pub fn n28() -> Self {
        Self {
            vth0: Volts::new(0.40),
            k_sat: 0.97e-3,
            alpha: 1.3,
            k_lin: 1.11e-2,
            delta_vth_mv: 0.0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] for non-positive factors
    /// or a negative wearout shift.
    pub fn validated(self) -> Result<Self, CircuitError> {
        for (name, v) in [
            ("vth0", self.vth0.value()),
            ("k_sat", self.k_sat),
            ("alpha", self.alpha),
            ("k_lin", self.k_lin),
        ] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(CircuitError::InvalidParameter(format!(
                    "{name} must be positive, got {v}"
                )));
            }
        }
        if !(self.delta_vth_mv >= 0.0) || !self.delta_vth_mv.is_finite() {
            return Err(CircuitError::InvalidParameter(format!(
                "delta_vth must be non-negative, got {}",
                self.delta_vth_mv
            )));
        }
        Ok(self)
    }

    /// The effective (aged) threshold voltage.
    pub fn vth(&self) -> Volts {
        self.vth0 + Volts::new(self.delta_vth_mv / 1000.0)
    }

    /// Gate overdrive at a gate-source voltage; zero when the device is off.
    pub fn overdrive(&self, vgs: Volts) -> Volts {
        Volts::new((vgs.value() - self.vth().value()).max(0.0))
    }

    /// Saturation on-current at a gate drive, amperes (0 when off).
    pub fn on_current(&self, vgs: Volts) -> f64 {
        let ov = self.overdrive(vgs).value();
        if ov <= 0.0 {
            0.0
        } else {
            self.k_sat * ov.powf(self.alpha)
        }
    }

    /// Pass-device on-resistance at a gate drive.
    ///
    /// Returns an effectively open resistance when the device is off.
    pub fn on_resistance(&self, vgs: Volts) -> Ohms {
        let ov = self.overdrive(vgs).value();
        if ov <= 1e-9 {
            Ohms::new(1.0e12)
        } else {
            Ohms::new(1.0 / (self.k_lin * ov))
        }
    }

    /// Applies a BTI threshold shift (builder-style).
    #[must_use]
    pub fn with_delta_vth_mv(mut self, delta_vth_mv: f64) -> Self {
        self.delta_vth_mv = delta_vth_mv.max(0.0);
        self
    }
}

impl Default for Mosfet {
    fn default() -> Self {
        Self::n28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_device_scales() {
        let m = Mosfet::n28();
        let i = m.on_current(Volts::new(1.0));
        assert!((i - 0.5e-3).abs() < 0.1e-3, "I_on = {i}");
        let r = m.on_resistance(Volts::new(1.0)).value();
        assert!((r - 150.0).abs() < 20.0, "R_on = {r}");
    }

    #[test]
    fn off_device_conducts_nothing() {
        let m = Mosfet::n28();
        assert_eq!(m.on_current(Volts::new(0.2)), 0.0);
        assert!(m.on_resistance(Volts::new(0.2)).value() >= 1e12);
        assert_eq!(m.overdrive(Volts::new(-0.3)), Volts::ZERO);
    }

    #[test]
    fn bti_wearout_weakens_the_device() {
        let fresh = Mosfet::n28();
        let aged = fresh.with_delta_vth_mv(50.0);
        assert!(aged.on_current(Volts::new(1.0)) < fresh.on_current(Volts::new(1.0)));
        assert!(aged.on_resistance(Volts::new(1.0)) > fresh.on_resistance(Volts::new(1.0)));
        assert_eq!(aged.vth(), Volts::new(0.45));
    }

    #[test]
    fn current_is_monotone_in_gate_drive() {
        let m = Mosfet::n28();
        let mut prev = -1.0;
        for mv in (0..=1200).step_by(100) {
            let i = m.on_current(Volts::new(mv as f64 / 1000.0));
            assert!(i >= prev);
            prev = i;
        }
    }

    #[test]
    fn negative_shift_is_clamped_by_builder() {
        let m = Mosfet::n28().with_delta_vth_mv(-5.0);
        assert_eq!(m.delta_vth_mv, 0.0);
    }

    #[test]
    fn validation() {
        let mut m = Mosfet::n28();
        m.alpha = 0.0;
        assert!(m.validated().is_err());
        let mut m = Mosfet::n28();
        m.delta_vth_mv = f64::NAN;
        assert!(m.validated().is_err());
        assert!(Mosfet::n28().validated().is_ok());
    }
}
