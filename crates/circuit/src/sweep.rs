//! Load-size trade-off study (the paper's Fig. 10).
//!
//! The paper sweeps the number of load blocks behind one assist circuit and
//! reports two opposing trends:
//!
//! * **load delay rises** (≈1.8× at 5× load) — more load current through the
//!   fixed header/footer devices means more droop, hence less overdrive;
//! * **mode-switching time falls, at a slower rate** — the rail-swap
//!   transient discharges through the load, whose resistance shrinks with
//!   size faster than its capacitance grows.
//!
//! Delay comes from the actual nodal solution of the assist circuit (load
//! resistance scaled by size) through the alpha-power stage-delay law;
//! switching time from the rail RC with a fixed wiring capacitance plus a
//! per-load-unit capacitance.

use dh_units::{Ohms, Seconds, Volts};

use crate::assist::{AssistCircuit, Mode};
use crate::error::CircuitError;

/// One point of the Fig. 10 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSweepPoint {
    /// Load size (number of parallel load units).
    pub size: usize,
    /// Load supply voltage after droop.
    pub load_voltage: Volts,
    /// Stage delay normalized to size 1.
    pub normalized_delay: f64,
    /// Mode-switching time normalized to size 1.
    pub normalized_switching_time: f64,
    /// Absolute switching time.
    pub switching_time: Seconds,
}

/// Parameters of the Fig. 10 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepConfig {
    /// Load resistance of a single load unit.
    pub unit_load: Ohms,
    /// Fixed rail wiring capacitance, farads.
    pub rail_capacitance_f: f64,
    /// Capacitance added per load unit, farads.
    pub unit_capacitance_f: f64,
    /// Threshold voltage of the load devices.
    pub load_vth: Volts,
    /// Alpha-power exponent of the load devices.
    pub alpha: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            unit_load: Ohms::new(6600.0),
            rail_capacitance_f: 3.0e-12,
            unit_capacitance_f: 1.0e-12,
            load_vth: Volts::new(0.40),
            alpha: 1.3,
        }
    }
}

/// Runs the Fig. 10 sweep over `sizes` parallel load units.
///
/// # Errors
///
/// Returns [`CircuitError`] if a nodal solve fails (degenerate parameters)
/// or if the size-1 load already stalls (no overdrive).
pub fn load_size_sweep(
    circuit: AssistCircuit,
    config: SweepConfig,
    sizes: impl IntoIterator<Item = usize>,
) -> Result<Vec<LoadSweepPoint>, CircuitError> {
    let mut points = Vec::new();
    let mut base_delay = None;
    let mut base_switch = None;
    for size in sizes {
        if size == 0 {
            return Err(CircuitError::InvalidParameter(
                "load size must be >= 1".into(),
            ));
        }
        let n = size as f64;
        let load_r = Ohms::new(config.unit_load.value() / n);
        let sol = circuit.with_load_active(load_r).solve(Mode::Normal)?;
        let v = (sol.load_vdd - sol.load_vss).value();
        let overdrive = v - config.load_vth.value();
        if overdrive <= 0.0 {
            return Err(CircuitError::InvalidParameter(format!(
                "load of size {size} stalls: supply {v:.3} V below threshold"
            )));
        }
        // Alpha-power stage delay ∝ C·V / (V − Vth)^α (C fixed per stage).
        let delay = v / overdrive.powf(config.alpha);
        // Rail swap discharges through the load units.
        let switch_time =
            (config.rail_capacitance_f + n * config.unit_capacitance_f) * load_r.value();

        let base_d = *base_delay.get_or_insert(delay);
        let base_s = *base_switch.get_or_insert(switch_time);
        points.push(LoadSweepPoint {
            size,
            load_voltage: Volts::new(v),
            normalized_delay: delay / base_d,
            normalized_switching_time: switch_time / base_s,
            switching_time: Seconds::new(switch_time),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<LoadSweepPoint> {
        load_size_sweep(AssistCircuit::paper_28nm(), SweepConfig::default(), 1..=5).unwrap()
    }

    #[test]
    fn delay_rises_roughly_to_1_8x_at_size_5() {
        let points = sweep();
        assert_eq!(points.len(), 5);
        assert!((points[0].normalized_delay - 1.0).abs() < 1e-12);
        let last = points.last().unwrap().normalized_delay;
        assert!((1.5..=2.2).contains(&last), "delay at size 5 = {last}");
    }

    #[test]
    fn delay_is_monotone_increasing_in_load_size() {
        let points = sweep();
        for pair in points.windows(2) {
            assert!(pair[1].normalized_delay > pair[0].normalized_delay);
        }
    }

    #[test]
    fn switching_time_falls_with_diminishing_rate() {
        let points = sweep();
        let mut prev_drop = f64::INFINITY;
        for pair in points.windows(2) {
            let drop = pair[0].normalized_switching_time - pair[1].normalized_switching_time;
            assert!(drop > 0.0, "switching time must keep falling");
            assert!(drop <= prev_drop + 1e-12, "rate of fall must not increase");
            prev_drop = drop;
        }
        let last = points.last().unwrap().normalized_switching_time;
        assert!(last > 0.2 && last < 0.8, "switching at size 5 = {last}");
    }

    #[test]
    fn load_voltage_drops_with_size() {
        let points = sweep();
        for pair in points.windows(2) {
            assert!(pair[1].load_voltage < pair[0].load_voltage);
        }
        // Still operational at size 5.
        assert!(points.last().unwrap().load_voltage > Volts::new(0.45));
    }

    #[test]
    fn upsized_headers_flatten_the_delay_curve() {
        // The paper's compensation: upsizing header/footer devices trades
        // area for restored performance.
        let base = sweep();
        let upsized = load_size_sweep(
            AssistCircuit::paper_28nm().with_header_width(3.0),
            SweepConfig::default(),
            1..=5,
        )
        .unwrap();
        assert!(
            upsized.last().unwrap().normalized_delay < base.last().unwrap().normalized_delay,
            "upsizing must reduce the delay penalty"
        );
    }

    #[test]
    fn zero_size_is_rejected() {
        let r = load_size_sweep(AssistCircuit::paper_28nm(), SweepConfig::default(), [0]);
        assert!(r.is_err());
    }

    #[test]
    fn oversized_load_stalls_with_a_clear_error() {
        let config = SweepConfig {
            unit_load: Ohms::new(800.0),
            ..SweepConfig::default()
        }; // giant droop
        let r = load_size_sweep(AssistCircuit::paper_28nm(), config, 1..=8);
        assert!(matches!(r, Err(CircuitError::InvalidParameter(_))));
    }
}
