//! An array of ring-oscillator sensors across a die — the paper's FPGA
//! measurement fabric, generalised into the distributed wearout-sensor
//! array its Fig. 12(b) scheduling loop needs.
//!
//! The paper measures BTI on LUT-mapped ring oscillators in a commercial
//! FPGA; production systems replicate such ROs across the die so that
//! run-time scheduling sees *local* degradation. Each array element here
//! carries process variation (a systematic across-die gradient plus random
//! per-site variation, the standard decomposition), so the array also
//! answers the calibration question real sensor fabrics face: how do you
//! separate wearout from static process spread? Answer, as in practice: by
//! differencing against each site's **time-zero reading** — which this
//! module models explicitly.

use dh_bti::{RecoveryCondition, StressCondition, TrapEnsemble};
use dh_units::rng::standard_normal;
use dh_units::{Hertz, Seconds};

use crate::error::CircuitError;
use crate::ring_oscillator::RingOscillator;

/// One RO sensor site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoSite {
    /// Die coordinates in [0, 1]².
    pub x: f64,
    /// Die coordinates in [0, 1]².
    pub y: f64,
    /// Static process multiplier on this site's fresh frequency.
    pub process_factor: f64,
    /// The time-zero (fresh, post-calibration) frequency reading.
    pub f0: Hertz,
}

/// A calibrated array of RO sensors.
#[derive(Debug, Clone, PartialEq)]
pub struct RoArray {
    ro: RingOscillator,
    sites: Vec<RoSite>,
    /// Optional per-site CET trap ensembles: the Monte-Carlo wear state
    /// behind each sensor's reading (attached by
    /// [`RoArray::with_cet_wear`]).
    wear: Option<Vec<TrapEnsemble>>,
}

/// Process-variation magnitudes for an RO array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoVariation {
    /// Peak-to-peak systematic (across-die gradient) frequency variation.
    pub systematic_pp: f64,
    /// 1-sigma random per-site frequency variation.
    pub random_sigma: f64,
}

impl Default for RoVariation {
    fn default() -> Self {
        // Typical 28–40 nm class numbers: ±3 % systematic, 1 % random.
        Self {
            systematic_pp: 0.06,
            random_sigma: 0.01,
        }
    }
}

impl RoArray {
    /// Builds a `rows × cols` array with the given variation, calibrated at
    /// time zero (every site's fresh frequency is recorded).
    ///
    /// Site `i` draws its random residue from the `(seed, "ro-array", i)`
    /// stream ([`dh_exec::par_map_seeded`]): the sweep parallelises across
    /// sites, the array is bit-identical at any thread count, and a site's
    /// process factor no longer depends on the array dimensions.
    pub fn new(
        ro: RingOscillator,
        rows: usize,
        cols: usize,
        variation: RoVariation,
        seed: u64,
    ) -> Self {
        let f_nominal = ro.frequency(0.0);
        let sites = dh_exec::par_map_seeded(seed, "ro-array", rows * cols, |i, mut rng| {
            let x = if cols > 1 {
                (i % cols) as f64 / (cols - 1) as f64
            } else {
                0.5
            };
            let y = if rows > 1 {
                (i / cols) as f64 / (rows - 1) as f64
            } else {
                0.5
            };
            // A diagonal systematic gradient plus random residue.
            let systematic = variation.systematic_pp * ((x + y) / 2.0 - 0.5);
            let random = variation.random_sigma * standard_normal(&mut rng);
            let process_factor = (1.0 + systematic + random).max(0.5);
            RoSite {
                x,
                y,
                process_factor,
                f0: f_nominal * process_factor,
            }
        });
        Self {
            ro,
            sites,
            wear: None,
        }
    }

    /// Attaches a CET trap ensemble to every site: each is the same
    /// paper-calibrated base (fitted once, memoized) jittered by
    /// `sigma_decades` of per-site parameter variation from the
    /// `(seed, "ro-array-wear", site)` stream, so the array is
    /// bit-identical at any thread count.
    ///
    /// With wear attached, [`RoArray::stress_sites`] and
    /// [`RoArray::recover_sites`] age the whole fabric and
    /// [`RoArray::aged_reading`] reports what each sensor would read.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] if the ensemble
    /// calibration rejects `traps_per_site` (e.g. zero).
    pub fn with_cet_wear(
        mut self,
        traps_per_site: usize,
        sigma_decades: f64,
        seed: u64,
    ) -> Result<Self, CircuitError> {
        let base = TrapEnsemble::paper_calibrated(traps_per_site)
            .map_err(|e| CircuitError::InvalidParameter(format!("CET site wear: {e}")))?;
        let wear =
            dh_exec::par_map_seeded(seed, "ro-array-wear", self.sites.len(), |_, mut rng| {
                base.clone().with_variation(sigma_decades, &mut rng)
            });
        self.wear = Some(wear);
        Ok(self)
    }

    /// Whether per-site CET wear is attached.
    pub fn has_wear(&self) -> bool {
        self.wear.is_some()
    }

    /// Applies `dt` of stress at `cond` to every site's ensemble (no-op
    /// without attached wear). Sites are aged in order — the per-site
    /// trap kernel already fans out across threads, so nesting a second
    /// site-level pool would only oversubscribe the machine.
    pub fn stress_sites(&mut self, dt: Seconds, cond: StressCondition) {
        if let Some(wear) = &mut self.wear {
            for ensemble in wear {
                ensemble.stress(dt, cond);
            }
        }
    }

    /// Applies `dt` of recovery at `cond` to every site's ensemble (no-op
    /// without attached wear).
    pub fn recover_sites(&mut self, dt: Seconds, cond: RecoveryCondition) {
        if let Some(wear) = &mut self.wear {
            for ensemble in wear {
                ensemble.recover(dt, cond);
            }
        }
    }

    /// The local |ΔVth| (mV) of a site's wear state; 0 without wear.
    pub fn site_dvth_mv(&self, site: usize) -> f64 {
        self.wear.as_ref().map_or(0.0, |w| w[site].delta_vth_mv())
    }

    /// The per-site wear ensembles, if attached.
    pub fn site_wear(&self) -> Option<&[TrapEnsemble]> {
        self.wear.as_deref()
    }

    /// The raw frequency site `site` reads given its *current* wear state
    /// — [`RoArray::raw_reading`] evaluated at [`RoArray::site_dvth_mv`].
    pub fn aged_reading(&self, site: usize) -> Hertz {
        self.raw_reading(site, self.site_dvth_mv(site))
    }

    /// A 4×4 array of the paper's 75-stage ROs with default variation.
    pub fn paper_4x4(seed: u64) -> Self {
        Self::new(
            RingOscillator::paper_75_stage(),
            4,
            4,
            RoVariation::default(),
            seed,
        )
    }

    /// Number of sensor sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the array has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The sites.
    pub fn sites(&self) -> &[RoSite] {
        &self.sites
    }

    /// The raw frequency a site would read when its local wearout is
    /// `dvth_mv` — process factor included, as a real counter would see.
    pub fn raw_reading(&self, site: usize, dvth_mv: f64) -> Hertz {
        self.ro.frequency(dvth_mv) * self.sites[site].process_factor
    }

    /// Estimates the local ΔVth (mV) from a raw reading by differencing
    /// against the site's time-zero calibration — cancelling the static
    /// process factor exactly.
    pub fn infer_dvth_mv(&self, site: usize, reading: Hertz) -> Option<f64> {
        let s = &self.sites[site];
        if s.f0.value() <= 0.0 {
            return None;
        }
        // reading/f0 = f(dvth)/f(0): reconstruct a process-free frequency.
        let normalized = self.ro.frequency(0.0) * (reading.value() / s.f0.value());
        self.ro.infer_delta_vth_mv(normalized)
    }

    /// The spread (max − min) of *fresh* readings across the array — the
    /// static process spread an uncalibrated scheduler would mistake for
    /// wearout.
    pub fn fresh_spread_fraction(&self) -> f64 {
        let fs: Vec<f64> = self.sites.iter().map(|s| s.f0.value()).collect();
        let max = fs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = fs.iter().cloned().fold(f64::INFINITY, f64::min);
        (max - min) / max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> RoArray {
        RoArray::paper_4x4(42)
    }

    #[test]
    fn array_has_static_process_spread() {
        let a = array();
        assert_eq!(a.len(), 16);
        let spread = a.fresh_spread_fraction();
        // ±3 % systematic + 1 % random: a few percent peak-to-peak.
        assert!(spread > 0.02 && spread < 0.15, "spread {spread}");
    }

    #[test]
    fn calibration_cancels_process_variation_exactly() {
        let a = array();
        for site in 0..a.len() {
            for dvth in [0.0, 10.0, 35.0] {
                let raw = a.raw_reading(site, dvth);
                let est = a.infer_dvth_mv(site, raw).unwrap();
                assert!(
                    (est - dvth).abs() < 0.01,
                    "site {site}: true {dvth} est {est}"
                );
            }
        }
    }

    #[test]
    fn uncalibrated_inference_would_be_badly_wrong() {
        // Using the nominal (uncalibrated) inversion on a slow-corner site
        // misreads process spread as wearout — the reason the array records
        // time-zero readings.
        let a = array();
        let slow_site = (0..a.len())
            .min_by(|&i, &j| {
                a.sites()[i]
                    .process_factor
                    .total_cmp(&a.sites()[j].process_factor)
            })
            .unwrap();
        let raw = a.raw_reading(slow_site, 0.0);
        let naive = RingOscillator::paper_75_stage()
            .infer_delta_vth_mv(raw)
            .unwrap_or(0.0);
        assert!(
            naive > 2.0,
            "naive estimate should be fooled, got {naive} mV"
        );
        let calibrated = a.infer_dvth_mv(slow_site, raw).unwrap();
        assert!(calibrated < 0.01);
    }

    #[test]
    fn systematic_gradient_is_spatially_ordered() {
        // The diagonal gradient: corner (0,0) is slow, corner (1,1) fast
        // (with random residue small relative to the systematic span).
        let a = RoArray::new(
            RingOscillator::paper_75_stage(),
            8,
            8,
            RoVariation {
                systematic_pp: 0.08,
                random_sigma: 0.002,
            },
            7,
        );
        let f_at = |x: f64, y: f64| {
            a.sites()
                .iter()
                .find(|s| (s.x - x).abs() < 1e-9 && (s.y - y).abs() < 1e-9)
                .expect("corner site")
                .f0
                .value()
        };
        assert!(f_at(1.0, 1.0) > f_at(0.0, 0.0));
    }

    #[test]
    fn seeded_arrays_are_reproducible() {
        let a = RoArray::paper_4x4(9);
        let b = RoArray::paper_4x4(9);
        assert_eq!(a, b);
        let c = RoArray::paper_4x4(10);
        assert_ne!(a, c);
    }

    #[test]
    fn cet_wear_ages_and_recovers_the_fabric() {
        let mut a = array().with_cet_wear(400, 0.2, 11).unwrap();
        assert!(a.has_wear());
        assert_eq!(a.site_wear().unwrap().len(), a.len());
        assert_eq!(a.site_dvth_mv(0), 0.0);

        a.stress_sites(Seconds::from_hours(6.0), StressCondition::ACCELERATED);
        let aged: Vec<f64> = (0..a.len()).map(|s| a.site_dvth_mv(s)).collect();
        assert!(aged.iter().all(|&d| d > 0.0));
        // Per-site variation: not every site ages identically.
        assert!(aged.windows(2).any(|w| w[0] != w[1]));

        // The aged reading, calibrated against f0, must reconstruct the
        // wear state (the whole point of the sensor fabric).
        for site in 0..a.len() {
            let est = a.infer_dvth_mv(site, a.aged_reading(site)).unwrap();
            assert!(
                (est - a.site_dvth_mv(site)).abs() < 0.01,
                "site {site}: wear {} inferred {est}",
                a.site_dvth_mv(site)
            );
        }

        let before: f64 = aged.iter().sum();
        a.recover_sites(
            Seconds::from_hours(2.0),
            RecoveryCondition::ACTIVE_ACCELERATED,
        );
        let after: f64 = (0..a.len()).map(|s| a.site_dvth_mv(s)).sum();
        assert!(after < 0.7 * before, "deep recovery: {before} -> {after}");
    }

    #[test]
    fn cet_wear_rejects_empty_ensembles() {
        assert!(matches!(
            array().with_cet_wear(0, 0.1, 1),
            Err(CircuitError::InvalidParameter(_))
        ));
    }

    #[test]
    fn wearless_array_reads_fresh() {
        let a = array();
        assert!(!a.has_wear());
        assert_eq!(a.site_dvth_mv(3), 0.0);
        assert_eq!(a.aged_reading(3), a.raw_reading(3, 0.0));
    }

    #[test]
    fn degenerate_single_site_array() {
        let a = RoArray::new(
            RingOscillator::paper_75_stage(),
            1,
            1,
            RoVariation::default(),
            1,
        );
        assert_eq!(a.len(), 1);
        assert_eq!(a.sites()[0].x, 0.5);
        let est = a.infer_dvth_mv(0, a.raw_reading(0, 5.0)).unwrap();
        assert!((est - 5.0).abs() < 0.01);
    }
}
