//! A small dense nodal (modified-nodal-analysis) DC solver.
//!
//! The assist circuitry of the paper's Fig. 8 reduces, per mode, to a
//! resistive network with one voltage source; this module solves such
//! networks by stamping conductances into a dense matrix and running
//! Gaussian elimination with partial pivoting. (The PDN crate has its own
//! sparse iterative solver for meshes with thousands of nodes; this one is
//! for small switch networks where a dense solve is simpler and exact.)

use crate::error::CircuitError;

/// A resistive network under construction: `n` unknown node voltages plus
/// ground (node index `usize::MAX` is not used; ground is `None`).
#[derive(Debug, Clone)]
pub struct NodalNetwork {
    n: usize,
    /// Conductance matrix (row-major), n×n.
    g: Vec<f64>,
    /// Current injection vector.
    i: Vec<f64>,
}

impl NodalNetwork {
    /// Creates an empty network with `n` unknown nodes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            g: vec![0.0; n * n],
            i: vec![0.0; n],
        }
    }

    /// Number of unknown nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the network has no unknowns.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Stamps a conductance `g` (siemens) between nodes `a` and `b`;
    /// `None` is ground.
    ///
    /// # Panics
    ///
    /// Panics if a node index is out of range or the conductance is not
    /// finite and non-negative.
    pub fn stamp_conductance(&mut self, a: Option<usize>, b: Option<usize>, g: f64) {
        assert!(
            g.is_finite() && g >= 0.0,
            "conductance must be finite and >= 0, got {g}"
        );
        if let Some(a) = a {
            assert!(a < self.n, "node {a} out of range");
            self.g[a * self.n + a] += g;
        }
        if let Some(b) = b {
            assert!(b < self.n, "node {b} out of range");
            self.g[b * self.n + b] += g;
        }
        if let (Some(a), Some(b)) = (a, b) {
            self.g[a * self.n + b] -= g;
            self.g[b * self.n + a] -= g;
        }
    }

    /// Stamps a resistor (ohms) between nodes; `None` is ground.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is not strictly positive.
    pub fn stamp_resistor(&mut self, a: Option<usize>, b: Option<usize>, r_ohm: f64) {
        assert!(r_ohm > 0.0, "resistance must be positive, got {r_ohm}");
        self.stamp_conductance(a, b, 1.0 / r_ohm);
    }

    /// Stamps an ideal voltage source of `v` volts from ground to node `a`
    /// through a series resistance `r_ohm` (a practical Thevenin source;
    /// keeps the formulation pure-nodal).
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range or the resistance not positive.
    pub fn stamp_source(&mut self, a: usize, v: f64, r_ohm: f64) {
        assert!(a < self.n, "node {a} out of range");
        assert!(r_ohm > 0.0, "source resistance must be positive");
        let g = 1.0 / r_ohm;
        self.g[a * self.n + a] += g;
        self.i[a] += v * g;
    }

    /// Injects a current `i_a` amperes into node `a`.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn inject_current(&mut self, a: usize, i_a: f64) {
        assert!(a < self.n, "node {a} out of range");
        self.i[a] += i_a;
    }

    /// Solves for the node voltages.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SingularMatrix`] if the network has floating
    /// nodes (no conductance path to a source or ground).
    pub fn solve(&self) -> Result<Vec<f64>, CircuitError> {
        let n = self.n;
        let mut a = self.g.clone();
        let mut b = self.i.clone();
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for row in (col + 1)..n {
                let v = a[row * n + col].abs();
                if v > best {
                    best = v;
                    pivot = row;
                }
            }
            if best < 1e-18 {
                return Err(CircuitError::SingularMatrix);
            }
            if pivot != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot * n + k);
                }
                b.swap(col, pivot);
            }
            let diag = a[col * n + col];
            for row in (col + 1)..n {
                let f = a[row * n + col] / diag;
                if f == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= f * a[col * n + k];
                }
                b[row] -= f * b[col];
            }
        }
        let mut x = vec![0.0; n];
        for row in (0..n).rev() {
            let mut sum = b[row];
            for k in (row + 1)..n {
                sum -= a[row * n + k] * x[k];
            }
            x[row] = sum / a[row * n + row];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_divider() {
        // 1 V source through 1 kΩ into node 0, 1 kΩ from node 0 to ground.
        let mut net = NodalNetwork::new(1);
        net.stamp_source(0, 1.0, 1000.0);
        net.stamp_resistor(Some(0), None, 1000.0);
        let v = net.solve().unwrap();
        assert!((v[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_node_ladder() {
        // 1 V — 100 Ω — n0 — 100 Ω — n1 — 100 Ω — gnd: v0 = 2/3, v1 = 1/3.
        let mut net = NodalNetwork::new(2);
        net.stamp_source(0, 1.0, 100.0);
        net.stamp_resistor(Some(0), Some(1), 100.0);
        net.stamp_resistor(Some(1), None, 100.0);
        let v = net.solve().unwrap();
        assert!((v[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((v[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn current_injection() {
        // 1 mA into a 1 kΩ to ground: 1 V.
        let mut net = NodalNetwork::new(1);
        net.inject_current(0, 1e-3);
        net.stamp_resistor(Some(0), None, 1000.0);
        let v = net.solve().unwrap();
        assert!((v[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn floating_node_is_singular() {
        let mut net = NodalNetwork::new(2);
        net.stamp_source(0, 1.0, 100.0);
        net.stamp_resistor(Some(0), None, 100.0);
        // Node 1 floats.
        assert_eq!(net.solve(), Err(CircuitError::SingularMatrix));
    }

    #[test]
    fn kcl_holds_at_every_node() {
        // Random-ish ladder; verify G·x = i.
        let mut net = NodalNetwork::new(4);
        net.stamp_source(0, 1.2, 50.0);
        net.stamp_resistor(Some(0), Some(1), 120.0);
        net.stamp_resistor(Some(1), Some(2), 330.0);
        net.stamp_resistor(Some(2), Some(3), 210.0);
        net.stamp_resistor(Some(3), None, 470.0);
        net.stamp_resistor(Some(1), None, 1000.0);
        let x = net.solve().unwrap();
        for row in 0..4 {
            let sum: f64 = (0..4).map(|k| net.g[row * 4 + k] * x[k]).sum();
            assert!(
                (sum - net.i[row]).abs() < 1e-9,
                "KCL residual at node {row}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_index_panics() {
        let mut net = NodalNetwork::new(1);
        net.stamp_resistor(Some(3), None, 100.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_resistance_panics() {
        let mut net = NodalNetwork::new(1);
        net.stamp_resistor(Some(0), None, 0.0);
    }
}
