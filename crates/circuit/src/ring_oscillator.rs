//! Ring oscillator: the paper's BTI test structure and wearout sensor.
//!
//! The paper measures BTI on "a 75-stage LUT-mapped ring oscillator" in a
//! 40 nm FPGA: the oscillation frequency degrades as BTI raises |Vth| and
//! recovers as the traps empty. The model maps a threshold shift to a
//! frequency through the alpha-power stage delay
//!
//! ```text
//! τ_stage ∝ C·V / (V − Vth − ΔVth)^α,   f = 1 / (2 · N · τ_stage)
//! ```
//!
//! which is monotone and invertible — so the same object doubles as the
//! *BTI sensor* the paper proposes for run-time scheduling ("novel BTI and
//! EM sensors can be employed to track wearout").

use dh_units::{Hertz, Volts};

use crate::error::CircuitError;
use crate::mosfet::Mosfet;

/// A ring-oscillator frequency model with BTI sensitivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingOscillator {
    /// Number of inverting stages (odd in hardware; the model only uses the
    /// count as a divider).
    pub stages: usize,
    /// Supply voltage.
    pub vdd: Volts,
    /// Representative switching device.
    pub device: Mosfet,
    /// Effective stage load capacitance, farads.
    pub stage_capacitance_f: f64,
}

impl RingOscillator {
    /// The paper's 75-stage LUT-mapped ring oscillator, scaled to oscillate
    /// near 50 MHz fresh (typical for a long LUT-based RO at nominal VDD).
    pub fn paper_75_stage() -> Self {
        Self {
            stages: 75,
            vdd: Volts::new(1.0),
            device: Mosfet::n28(),
            stage_capacitance_f: 6.7e-14,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] for a zero stage count or
    /// non-positive supply/capacitance.
    pub fn validated(self) -> Result<Self, CircuitError> {
        if self.stages == 0 {
            return Err(CircuitError::InvalidParameter(
                "stage count must be > 0".into(),
            ));
        }
        if !(self.vdd.value() > 0.0) {
            return Err(CircuitError::InvalidParameter(format!(
                "vdd must be positive, got {}",
                self.vdd
            )));
        }
        if !(self.stage_capacitance_f > 0.0) || !self.stage_capacitance_f.is_finite() {
            return Err(CircuitError::InvalidParameter(format!(
                "stage capacitance must be positive, got {}",
                self.stage_capacitance_f
            )));
        }
        self.device.validated()?;
        Ok(self)
    }

    /// Oscillation frequency for a given BTI threshold shift.
    ///
    /// Returns 0 Hz if the aged threshold leaves no overdrive (oscillation
    /// stalls).
    pub fn frequency(&self, delta_vth_mv: f64) -> Hertz {
        let device = self.device.with_delta_vth_mv(delta_vth_mv);
        let i_on = device.on_current(self.vdd);
        if i_on <= 0.0 {
            return Hertz::ZERO;
        }
        let tau = self.stage_capacitance_f * self.vdd.value() / i_on;
        Hertz::new(1.0 / (2.0 * self.stages as f64 * tau))
    }

    /// Fractional frequency degradation (0 = fresh) at a threshold shift.
    pub fn degradation(&self, delta_vth_mv: f64) -> f64 {
        let fresh = self.frequency(0.0).value();
        if fresh <= 0.0 {
            return 0.0;
        }
        1.0 - self.frequency(delta_vth_mv).value() / fresh
    }

    /// Sensor inversion: estimates the threshold shift (mV) that explains a
    /// measured frequency. Returns `None` for frequencies above fresh or
    /// non-positive.
    pub fn infer_delta_vth_mv(&self, measured: Hertz) -> Option<f64> {
        self.infer_delta_vth_mv_given_fresh(measured, self.frequency(0.0))
    }

    /// [`Self::infer_delta_vth_mv`] with the fresh frequency supplied by
    /// the caller, for tight loops that cache it (the fresh frequency of a
    /// fixed oscillator never changes and costs a `powf` to recompute).
    pub fn infer_delta_vth_mv_given_fresh(&self, measured: Hertz, fresh: Hertz) -> Option<f64> {
        if measured.value() <= 0.0 || measured > fresh {
            return None;
        }
        // f ∝ (V − Vth0 − ΔVth)^α  ⇒  invert in closed form.
        let ov0 = self.vdd.value() - self.device.vth0.value();
        let ratio = (measured.value() / fresh.value()).powf(1.0 / self.device.alpha);
        Some(((1.0 - ratio) * ov0 * 1000.0).max(0.0))
    }
}

impl Default for RingOscillator {
    fn default() -> Self {
        Self::paper_75_stage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ro() -> RingOscillator {
        RingOscillator::paper_75_stage()
    }

    #[test]
    fn fresh_frequency_is_tens_of_mhz() {
        let f = ro().frequency(0.0);
        assert!(
            f.as_mhz() > 20.0 && f.as_mhz() < 120.0,
            "f = {} MHz",
            f.as_mhz()
        );
    }

    #[test]
    fn bti_degrades_frequency_monotonically() {
        let ro = ro();
        let mut prev = f64::INFINITY;
        for mv in [0.0, 10.0, 25.0, 50.0, 100.0] {
            let f = ro.frequency(mv).value();
            assert!(f < prev || mv == 0.0);
            prev = f;
        }
        // 50 mV of BTI on a 0.6 V overdrive: a ~10 % class slowdown.
        let d = ro.degradation(50.0);
        assert!(d > 0.05 && d < 0.2, "degradation {d}");
    }

    #[test]
    fn sensor_inversion_round_trips() {
        let ro = ro();
        for mv in [0.0, 5.0, 17.0, 42.0, 80.0] {
            let f = ro.frequency(mv);
            let est = ro.infer_delta_vth_mv(f).unwrap();
            assert!((est - mv).abs() < 0.01, "mv {mv} est {est}");
        }
    }

    #[test]
    fn sensor_rejects_impossible_measurements() {
        let ro = ro();
        let fresh = ro.frequency(0.0);
        assert!(ro.infer_delta_vth_mv(fresh * 1.1).is_none());
        assert!(ro.infer_delta_vth_mv(Hertz::ZERO).is_none());
    }

    #[test]
    fn oscillation_stalls_when_overdrive_vanishes() {
        let ro = ro();
        let f = ro.frequency(700.0); // ΔVth beyond VDD − Vth0
        assert_eq!(f, Hertz::ZERO);
        assert_eq!(ro.degradation(700.0), 1.0);
    }

    #[test]
    fn validation() {
        let mut r = ro();
        r.stages = 0;
        assert!(r.validated().is_err());
        let mut r = ro();
        r.stage_capacitance_f = -1.0;
        assert!(r.validated().is_err());
        assert!(ro().validated().is_ok());
    }
}
