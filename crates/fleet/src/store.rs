//! The columnar (SoA) chip-state substrate the epoch kernels sweep.
//!
//! [`ChipStore`] holds one contiguous column per chip field for a whole
//! shard, padded to the `dh-simd` lane width, so the epoch loop touches
//! memory linearly instead of hopping across `ChipState` structs. Every
//! value a chip needs that is *constant over its lifetime* — stress
//! durations, EM damage increments, relaxation θ's, the soft-anneal and
//! hardening exponentials — is hoisted into per-chip constant columns at
//! [`ChipStore::reset`] time, leaving the per-epoch kernels with pure
//! column arithmetic plus the two genuinely state-dependent
//! transcendentals (the stress power law and the universal-relaxation
//! curve).
//!
//! The columnar kernels in [`crate::kernel`] replicate the scalar
//! reference ([`crate::chip::ChipState`]) **operation for operation**:
//! every float expression is evaluated in the same order with the same
//! libm calls, so reports are bit-identical to the per-chip path — the
//! property the `fleet_columnar` proptest pins.

use dh_bti::{AnalyticBtiModel, RecoveryCondition, StressCondition};
use dh_circuit::RingOscillator;
use dh_units::{Seconds, Volts};

use crate::chip::ChipSpec;
use crate::sim::FleetConfig;

/// Sentinel in the `failed_epoch` column: the chip is still alive.
pub(crate) const ALIVE: u32 = u32::MAX;

/// `seg_kind` values: no recovery segment open (fresh or stressing),
/// a passive-idle segment, a deep (negative-bias) segment. The values
/// match the order `ChipState` opens segments in; only equality is
/// ever tested.
pub(crate) const SEG_NONE: u32 = 0;
pub(crate) const SEG_PASSIVE: u32 = 1;
pub(crate) const SEG_DEEP: u32 = 2;

/// Per-chip guard bits precomputed at reset (see `ChipStore::flags`).
/// "no-op" bits mirror the `BtiDevice` input guards: a non-positive dt
/// or non-finite condition makes the corresponding call return without
/// touching state.
pub(crate) const F_STRESS_NOOP_N: u32 = 1;
pub(crate) const F_STRESS_NOOP_H: u32 = 1 << 1;
pub(crate) const F_DEEP_NOOP: u32 = 1 << 2;
pub(crate) const F_RUN_IDLE_N: u32 = 1 << 3;
pub(crate) const F_RUN_IDLE_H: u32 = 1 << 4;
pub(crate) const F_SAME_PP: u32 = 1 << 5;
pub(crate) const F_SAME_DD: u32 = 1 << 6;
pub(crate) const F_CROSS_PD: u32 = 1 << 7;

/// Run-wide constants the columnar kernels close over. Everything is
/// `Copy` (no lifetimes) so the struct can cross the `dispatch!` macro's
/// scalar/AVX2 function boundary by value.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ColumnarCtx {
    /// The paper-calibrated analytic BTI model — hoisted once per run
    /// instead of re-solved per chip like `BtiDevice::paper_calibrated`.
    pub model: AnalyticBtiModel,
    pub ro: RingOscillator,
    pub fresh_hz: f64,
    /// Deep-recovery time inside a healing epoch, seconds.
    pub heal_dt: f64,
    /// `a_mv · amplitude_scale(ACCELERATED)` — the reference amplitude
    /// equivalent-age reconstruction divides by when a recovery segment
    /// opens.
    pub a_ref: f64,
    /// Power-law exponent n and the reference's `1.0 / n`.
    pub n: f64,
    pub inv_n: f64,
    pub em_pinned_floor: f64,
    pub fail_guardband: f64,
}

impl ColumnarCtx {
    pub(crate) fn new(config: &FleetConfig) -> Self {
        let model = AnalyticBtiModel::paper_calibrated();
        let law = *model.stress_law();
        let ro = RingOscillator::paper_75_stage();
        let fresh_hz = ro.frequency(0.0).value();
        Self {
            model,
            ro,
            fresh_hz,
            heal_dt: config.epoch.value() * config.heal_fraction.value(),
            a_ref: law.a_mv * law.amplitude_scale(StressCondition::ACCELERATED),
            n: law.n,
            inv_n: 1.0 / law.n,
            em_pinned_floor: config.em_pinned_floor.value(),
            fail_guardband: config.fail_guardband,
        }
    }
}

/// One shard's chip state as structure-of-arrays columns.
///
/// Columns are plain `Vec`s (8-byte aligned, padded to a
/// [`dh_simd::LANES`] multiple) reused across shards via the
/// [`crate::sim::FleetRun`] slab pool, so steady-state simulation
/// allocates nothing. The first block is live state the kernels mutate;
/// the second block is per-chip constants hoisted at reset.
pub(crate) struct ChipStore {
    /// First global chip index covered by this store.
    pub lo: u64,
    /// Chips in `[lo, lo + len)`; columns may be padded past this.
    pub len: usize,

    // ---- live state ---------------------------------------------------
    /// Recoverable |ΔVth| pool, mV.
    pub rec: Vec<f64>,
    /// Soft-permanent |ΔVth| pool, mV.
    pub soft: Vec<f64>,
    /// Hard-permanent |ΔVth| pool, mV.
    pub hard: Vec<f64>,
    /// Continuous-stress window, seconds.
    pub window: Vec<f64>,
    /// Open recovery segment kind ([`SEG_NONE`]/[`SEG_PASSIVE`]/[`SEG_DEEP`]).
    pub seg_kind: Vec<u32>,
    /// Total wearout at segment start, mV.
    pub seg_start: Vec<f64>,
    /// Equivalent stress age at segment start, seconds.
    pub seg_age: Vec<f64>,
    /// Time spent in the open segment, seconds.
    pub seg_elapsed: Vec<f64>,
    /// Miner's-rule EM damage fraction.
    pub em: Vec<f64>,
    /// Worst EM damage ever reached (pinned-floor reference).
    pub em_peak: Vec<f64>,
    /// Worst frequency degradation observed (required guardband).
    pub guardband: Vec<f64>,
    /// Wear score the worst-first selector ranks by (sensed under faults).
    pub score: Vec<f64>,
    /// Epochs stepped; freezes at failure.
    pub epochs_run: Vec<u32>,
    /// Epochs granted a recovery slot.
    pub healed: Vec<u32>,
    /// Epoch index the chip failed at; [`ALIVE`] while alive.
    pub failed_epoch: Vec<u32>,
    /// Bit pattern of the previous sensed score (NaN sentinel initially).
    pub last_bits: Vec<u64>,
    /// Consecutive bit-identical (or missing) sensor readings.
    pub stale: Vec<u32>,
    /// Staleness detection latched this sensor as bad (0/1).
    pub flagged: Vec<u8>,

    // ---- per-chip constants hoisted at reset --------------------------
    /// Wear-scaled stress dt of a normal epoch, seconds.
    pub stress_dt_n: Vec<f64>,
    /// Wear-scaled stress dt of a healing epoch's run fraction.
    pub stress_dt_h: Vec<f64>,
    /// Idle-recovery dt of a normal / healing epoch, seconds.
    pub idle_n: Vec<f64>,
    pub idle_h: Vec<f64>,
    /// `a_mv · amplitude_scale(stress_cond)` — this chip's power-law
    /// amplitude at its operating point.
    pub a_stress: Vec<f64>,
    /// EM damage added by a normal / healing epoch.
    pub em_dn: Vec<f64>,
    pub em_dh: Vec<f64>,
    /// Relaxation θ at the passive / deep recovery condition.
    pub theta_p: Vec<f64>,
    pub theta_d: Vec<f64>,
    /// Soft-anneal factors `exp(-θ/θ₄ · dt / τ_soft)` for every
    /// (segment-θ, dt) pair an epoch can produce: the stored segment may
    /// be passive or deep, the dt is the heal window or either idle span.
    pub sf_p_heal: Vec<f64>,
    pub sf_d_heal: Vec<f64>,
    pub sf_p_idle_n: Vec<f64>,
    pub sf_d_idle_n: Vec<f64>,
    pub sf_p_idle_h: Vec<f64>,
    pub sf_d_idle_h: Vec<f64>,
    /// Matching window-reset factors (equal to the soft factors when
    /// τ_window_reset == τ_soft_anneal, as in the paper calibration).
    pub wf_p_heal: Vec<f64>,
    pub wf_d_heal: Vec<f64>,
    pub wf_p_idle_n: Vec<f64>,
    pub wf_d_idle_n: Vec<f64>,
    pub wf_p_idle_h: Vec<f64>,
    pub wf_d_idle_h: Vec<f64>,
    /// Soft→hard consolidation factors `1 - exp(-(dt/τ_harden))` per
    /// stress-dt flavor.
    pub hf_n: Vec<f64>,
    pub hf_h: Vec<f64>,
    /// Guard / segment-compatibility bits (`F_*`).
    pub flags: Vec<u32>,
}

/// A read-only view over one shard slab's result columns: the snapshot
/// surface the `dh-serve` progress endpoint renders per-shard summaries
/// from without copying columns or materializing per-chip structs.
/// Borrowed from the [`crate::FleetRun`] slab pool via
/// [`crate::FleetRun::with_store_views`], so a view always shows the
/// state the most recently folded shard left behind.
#[derive(Debug, Clone, Copy)]
pub struct StoreView<'a> {
    lo: u64,
    len: usize,
    guardband: &'a [f64],
    failed_epoch: &'a [u32],
    healed: &'a [u32],
    epochs_run: &'a [u32],
}

impl StoreView<'_> {
    /// First global chip index covered by the view.
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Chips in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view covers no chips (a never-used slab).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Chips still alive at the end of the shard's simulated lifetime.
    pub fn alive(&self) -> usize {
        self.failed_epoch[..self.len]
            .iter()
            .filter(|&&e| e == ALIVE)
            .count()
    }

    /// Chips that failed inside the horizon.
    pub fn failed(&self) -> usize {
        self.len - self.alive()
    }

    /// Largest required guardband across the shard (`-inf` when empty).
    pub fn worst_guardband(&self) -> f64 {
        self.guardband[..self.len]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean required guardband across the shard (0 when empty).
    pub fn mean_guardband(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.guardband[..self.len].iter().sum::<f64>() / self.len as f64
    }

    /// Recovery epochs granted across the shard.
    pub fn healed_epochs(&self) -> u64 {
        self.healed[..self.len].iter().map(|&h| u64::from(h)).sum()
    }

    /// Chip-epochs actually stepped across the shard.
    pub fn chip_epochs(&self) -> u64 {
        self.epochs_run[..self.len]
            .iter()
            .map(|&e| u64::from(e))
            .sum()
    }

    /// Chip `k`'s global index and required guardband.
    pub fn chip(&self, k: usize) -> (u64, f64) {
        (self.lo + k as u64, self.guardband[k])
    }
}

impl std::fmt::Debug for ChipStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChipStore")
            .field("lo", &self.lo)
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

impl Default for ChipStore {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! for_each_f64_column {
    ($self:ident, $m:ident) => {
        $m!($self.rec, 0.0);
        $m!($self.soft, 0.0);
        $m!($self.hard, 0.0);
        $m!($self.window, 0.0);
        $m!($self.seg_start, 0.0);
        $m!($self.seg_age, 0.0);
        $m!($self.seg_elapsed, 0.0);
        $m!($self.em, 0.0);
        $m!($self.em_peak, 0.0);
        $m!($self.guardband, 0.0);
        $m!($self.score, 0.0);
        $m!($self.stress_dt_n, 0.0);
        $m!($self.stress_dt_h, 0.0);
        $m!($self.idle_n, 0.0);
        $m!($self.idle_h, 0.0);
        $m!($self.a_stress, 0.0);
        $m!($self.em_dn, 0.0);
        $m!($self.em_dh, 0.0);
        $m!($self.theta_p, 0.0);
        $m!($self.theta_d, 0.0);
        $m!($self.sf_p_heal, 0.0);
        $m!($self.sf_d_heal, 0.0);
        $m!($self.sf_p_idle_n, 0.0);
        $m!($self.sf_d_idle_n, 0.0);
        $m!($self.sf_p_idle_h, 0.0);
        $m!($self.sf_d_idle_h, 0.0);
        $m!($self.wf_p_heal, 0.0);
        $m!($self.wf_d_heal, 0.0);
        $m!($self.wf_p_idle_n, 0.0);
        $m!($self.wf_d_idle_n, 0.0);
        $m!($self.wf_p_idle_h, 0.0);
        $m!($self.wf_d_idle_h, 0.0);
        $m!($self.hf_n, 0.0);
        $m!($self.hf_h, 0.0);
    };
}

impl ChipStore {
    /// Borrows the result columns as a read-only [`StoreView`].
    pub(crate) fn view(&self) -> StoreView<'_> {
        StoreView {
            lo: self.lo,
            len: self.len,
            guardband: &self.guardband,
            failed_epoch: &self.failed_epoch,
            healed: &self.healed,
            epochs_run: &self.epochs_run,
        }
    }

    pub(crate) fn new() -> Self {
        Self {
            lo: 0,
            len: 0,
            rec: Vec::new(),
            soft: Vec::new(),
            hard: Vec::new(),
            window: Vec::new(),
            seg_kind: Vec::new(),
            seg_start: Vec::new(),
            seg_age: Vec::new(),
            seg_elapsed: Vec::new(),
            em: Vec::new(),
            em_peak: Vec::new(),
            guardband: Vec::new(),
            score: Vec::new(),
            epochs_run: Vec::new(),
            healed: Vec::new(),
            failed_epoch: Vec::new(),
            last_bits: Vec::new(),
            stale: Vec::new(),
            flagged: Vec::new(),
            stress_dt_n: Vec::new(),
            stress_dt_h: Vec::new(),
            idle_n: Vec::new(),
            idle_h: Vec::new(),
            a_stress: Vec::new(),
            em_dn: Vec::new(),
            em_dh: Vec::new(),
            theta_p: Vec::new(),
            theta_d: Vec::new(),
            sf_p_heal: Vec::new(),
            sf_d_heal: Vec::new(),
            sf_p_idle_n: Vec::new(),
            sf_d_idle_n: Vec::new(),
            sf_p_idle_h: Vec::new(),
            sf_d_idle_h: Vec::new(),
            wf_p_heal: Vec::new(),
            wf_d_heal: Vec::new(),
            wf_p_idle_n: Vec::new(),
            wf_d_idle_n: Vec::new(),
            wf_p_idle_h: Vec::new(),
            wf_d_idle_h: Vec::new(),
            hf_n: Vec::new(),
            hf_h: Vec::new(),
            flags: Vec::new(),
        }
    }

    /// (Re)initializes the store for the chips `[lo, hi)` of `config`,
    /// reusing column capacity from the previous shard. Hoists every
    /// lifetime-constant per-chip value the epoch kernels need.
    pub(crate) fn reset(&mut self, config: &FleetConfig, cctx: &ColumnarCtx, lo: u64, hi: u64) {
        let len = (hi - lo) as usize;
        // Pad to the SIMD lane width so column tails autovectorize
        // without a scalar epilogue crossing into the next shard's data.
        let padded = len.div_ceil(dh_simd::LANES) * dh_simd::LANES;
        self.lo = lo;
        self.len = len;
        debug_assert!(
            config.total_epochs() < u64::from(u32::MAX),
            "epoch counters are u32 columns"
        );

        macro_rules! fill {
            ($col:expr, $v:expr) => {
                $col.clear();
                $col.resize(padded, $v);
            };
        }
        for_each_f64_column!(self, fill);
        fill!(self.seg_kind, SEG_NONE);
        fill!(self.epochs_run, 0);
        fill!(self.healed, 0);
        fill!(self.failed_epoch, ALIVE);
        fill!(self.last_bits, f64::NAN.to_bits());
        fill!(self.stale, 0);
        fill!(self.flagged, 0);
        fill!(self.flags, 0);
        // Padding chips are marked dead so any lane-width sweep that does
        // read the tail treats them as inert.
        for k in len..padded {
            self.failed_epoch[k] = 0;
        }

        let model = &cctx.model;
        let law = model.stress_law();
        let params = model.permanent_params();
        let theta4 = model.theta4();
        let tau_soft = params.tau_soft_anneal.value();
        let tau_window = params.tau_window_reset.value();
        let tau_eq = params.tau_window_reset == params.tau_soft_anneal;
        let tau_harden = params.tau_harden;
        let epoch = config.epoch.value();
        let heal_dt = cctx.heal_dt;
        let run_heal = epoch - heal_dt;
        let duty = config.em_reversal_duty.value();
        let em_wear_heal = (1.0 - duty) - config.em_heal_efficiency.value() * duty;
        let black = dh_em::black::BlackModel::calibrated_to_paper();
        let bias = config.recovery_bias;

        for k in 0..len {
            let spec = ChipSpec::draw(
                config.seed,
                lo + k as u64,
                config.base_temperature,
                &config.variation,
            );
            let stress_cond = StressCondition {
                gate_voltage: config.vdd,
                temperature: spec.temperature,
            };
            let passive_cond = RecoveryCondition {
                gate_voltage: Volts::ZERO,
                temperature: spec.temperature,
            };
            let deep_cond = RecoveryCondition {
                gate_voltage: bias,
                temperature: spec.temperature,
            };

            // Exactly `ChipState::new`'s EM increments.
            let ttf = black.median_ttf(config.j_local, spec.temperature);
            let util = spec.utilization.value();
            self.em_dn[k] = epoch * util / ttf.value() * spec.em_factor;
            self.em_dh[k] = run_heal * util / ttf.value() * spec.em_factor * em_wear_heal;

            // Exactly `ChipState::step`'s interval arithmetic: stress_time
            // = run_time · util, wear-scaled dt, idle = run_time − stress.
            let st_n = epoch * util;
            let st_h = run_heal * util;
            let sdt_n = st_n * spec.wear_factor;
            let sdt_h = st_h * spec.wear_factor;
            self.stress_dt_n[k] = sdt_n;
            self.stress_dt_h[k] = sdt_h;
            self.idle_n[k] = epoch - st_n;
            self.idle_h[k] = run_heal - st_h;

            self.a_stress[k] = law.a_mv * law.amplitude_scale(stress_cond);
            let theta_p = model.theta(passive_cond);
            let theta_d = model.theta(deep_cond);
            self.theta_p[k] = theta_p;
            self.theta_d[k] = theta_d;

            // `BtiDevice::recover`'s anneal factors for every (stored-θ,
            // dt) pair one epoch can request.
            let depth_p = theta_p / theta4;
            let depth_d = theta_d / theta4;
            let sf = |depth: f64, dt: f64| (-depth * dt / tau_soft).exp();
            let wf = |s: f64, depth: f64, dt: f64| {
                if tau_eq {
                    s
                } else {
                    (-depth * dt / tau_window).exp()
                }
            };
            self.sf_p_heal[k] = sf(depth_p, heal_dt);
            self.sf_d_heal[k] = sf(depth_d, heal_dt);
            self.sf_p_idle_n[k] = sf(depth_p, self.idle_n[k]);
            self.sf_d_idle_n[k] = sf(depth_d, self.idle_n[k]);
            self.sf_p_idle_h[k] = sf(depth_p, self.idle_h[k]);
            self.sf_d_idle_h[k] = sf(depth_d, self.idle_h[k]);
            self.wf_p_heal[k] = wf(self.sf_p_heal[k], depth_p, heal_dt);
            self.wf_d_heal[k] = wf(self.sf_d_heal[k], depth_d, heal_dt);
            self.wf_p_idle_n[k] = wf(self.sf_p_idle_n[k], depth_p, self.idle_n[k]);
            self.wf_d_idle_n[k] = wf(self.sf_d_idle_n[k], depth_d, self.idle_n[k]);
            self.wf_p_idle_h[k] = wf(self.sf_p_idle_h[k], depth_p, self.idle_h[k]);
            self.wf_d_idle_h[k] = wf(self.sf_d_idle_h[k], depth_d, self.idle_h[k]);

            // `apply_stress_totals`'s hardening transfer per dt flavor.
            self.hf_n[k] = 1.0 - (-(Seconds::new(sdt_n) / tau_harden)).exp();
            self.hf_h[k] = 1.0 - (-(Seconds::new(sdt_h) / tau_harden)).exp();

            // Input guards and segment-compatibility predicates, exactly
            // as `BtiDevice` evaluates them per call.
            let mut flags = 0u32;
            if !(sdt_n > 0.0) || !stress_cond.is_finite() {
                flags |= F_STRESS_NOOP_N;
            }
            if !(sdt_h > 0.0) || !stress_cond.is_finite() {
                flags |= F_STRESS_NOOP_H;
            }
            if !(heal_dt > 0.0) || !deep_cond.is_finite() {
                flags |= F_DEEP_NOOP;
            }
            if self.idle_n[k] > 0.0 && passive_cond.is_finite() {
                flags |= F_RUN_IDLE_N;
            }
            if self.idle_h[k] > 0.0 && passive_cond.is_finite() {
                flags |= F_RUN_IDLE_H;
            }
            // `BtiDevice::recover`'s same_segment predicate, specialized
            // to the two conditions a fleet chip ever recovers at. Both
            // compare the chip against itself, so |x − x| < ε reduces to
            // x being finite (NaN/∞ self-differences compare false).
            let same_t = spec.temperature.value().is_finite();
            let bv = bias.value();
            if same_t {
                flags |= F_SAME_PP;
            }
            if same_t && bv.is_finite() {
                flags |= F_SAME_DD;
            }
            if same_t && (0.0 - bv).abs() < 0.010 {
                flags |= F_CROSS_PD;
            }
            self.flags[k] = flags;
        }
    }
}
