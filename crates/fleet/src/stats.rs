//! Streaming one-pass statistics: the aggregate state a million-device
//! run keeps instead of a million samples.
//!
//! Two estimators, both O(1) memory and deterministic for a given input
//! order (which the fleet engine guarantees is canonical chip order):
//!
//! * [`StreamingMoments`] — Welford's single-pass count/mean/M2 update,
//!   numerically stable where the naive sum-of-squares cancels
//!   catastrophically.
//! * [`P2Quantile`] — the P² algorithm of Jain & Chlamtac (CACM 1985):
//!   five markers track a target quantile by piecewise-parabolic height
//!   adjustment. Exact up to 5 observations, an interpolation estimate
//!   after; accuracy is typically well under a percentile for unimodal
//!   distributions.
//!
//! Both serialize their full state bit-exactly for the checkpoint format
//! (`encode`/`decode`), so a resumed run continues the estimate as if it
//! had never stopped.

use crate::error::FleetError;
use crate::wire::{put_f64, put_u64, take_f64, take_u64};

/// A rejected non-finite observation (carries the offending value).
///
/// NaN in particular is insidious here: `NaN.min(x)` propagates, a NaN
/// mean never recovers, and a NaN P² marker height silently corrupts
/// every later quantile estimate. The `try_push` guards turn that into
/// a structured rejection; the fleet layer maps it to
/// [`FleetError::NonFiniteSample`] with shard/chip attribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFinite(pub f64);

impl core::fmt::Display for NonFinite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "non-finite sample {}", self.0)
    }
}

impl std::error::Error for NonFinite {}

/// Welford single-pass moments with min/max tracking.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingMoments {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// [`StreamingMoments::push`] that rejects NaN/Inf instead of
    /// poisoning the running mean, M2, and extrema.
    pub fn try_push(&mut self, x: f64) -> Result<(), NonFinite> {
        if !x.is_finite() {
            return Err(NonFinite(x));
        }
        self.push(x);
        Ok(())
    }

    /// Observations folded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean (0 before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 below two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Appends the full state to `buf` (checkpoint wire format).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.count);
        put_f64(buf, self.mean);
        put_f64(buf, self.m2);
        put_f64(buf, self.min);
        put_f64(buf, self.max);
    }

    /// Reads the state back from the front of `bytes`.
    pub fn decode(bytes: &mut &[u8]) -> Result<Self, FleetError> {
        Ok(Self {
            count: take_u64(bytes, "moments.count")?,
            mean: take_f64(bytes, "moments.mean")?,
            m2: take_f64(bytes, "moments.m2")?,
            min: take_f64(bytes, "moments.min")?,
            max: take_f64(bytes, "moments.max")?,
        })
    }
}

/// A P² (piecewise-parabolic) streaming estimator for one quantile.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    q: f64,
    count: u64,
    /// Marker heights q₁..q₅; doubles as the raw sample buffer for the
    /// first five observations.
    heights: [f64; 5],
    /// Actual marker positions n₁..n₅ (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions n′₁..n′₅.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    rates: [f64; 5],
}

impl P2Quantile {
    /// An estimator for quantile `q` (clamped to (0, 1)).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(1e-6, 1.0 - 1e-6);
        Self {
            q,
            count: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            rates: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
        }
    }

    /// The target quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Observations folded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // Locate the cell, extending the extreme markers if needed.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // Largest k in 0..=3 with heights[k] <= x.
            let mut k = 0;
            for i in 1..4 {
                if self.heights[i] <= x {
                    k = i;
                }
            }
            k
        };
        for p in &mut self.positions[k + 1..] {
            *p += 1.0;
        }
        for (d, r) in self.desired.iter_mut().zip(self.rates) {
            *d += r;
        }

        // Adjust the three interior markers toward their desired ranks.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let room_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let room_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (d >= 1.0 && room_up) || (d <= -1.0 && room_down) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                let h = if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    parabolic
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = h;
                self.positions[i] += d;
            }
        }
    }

    /// [`P2Quantile::push`] that rejects NaN/Inf instead of corrupting
    /// the marker heights (a single NaN breaks the sorted-marker
    /// invariant and every later estimate).
    pub fn try_push(&mut self, x: f64) -> Result<(), NonFinite> {
        if !x.is_finite() {
            return Err(NonFinite(x));
        }
        self.push(x);
        Ok(())
    }

    /// The P² parabolic height prediction for marker `i` moved by `d`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.heights, &self.positions);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// The fallback linear height prediction.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.heights, &self.positions);
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
    }

    /// The current quantile estimate: **exact** up to five observations
    /// (linear interpolation between the sorted order statistics, the
    /// same type-7 rule `quantile()` in R and NumPy default to), the
    /// middle P² marker after; NaN when empty.
    ///
    /// The exact small-n path matters beyond the 5-sample warm-up
    /// window: a tiny run — a dh-serve smoke job, a fleet where only a
    /// couple of chips failed — reports its p50/p90/p99 from one to five
    /// real samples, and the previous nearest-rank rounding answered the
    /// median of `[1, 100]` with `100`.
    pub fn estimate(&self) -> f64 {
        match self.count {
            0 => f64::NAN,
            n @ 1..=5 => {
                let n = n as usize;
                let mut head = [0.0; 5];
                head[..n].copy_from_slice(&self.heights[..n]);
                head[..n].sort_by(f64::total_cmp);
                let rank = self.q * (n - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                let t = rank - lo as f64;
                head[lo] * (1.0 - t) + head[hi] * t
            }
            _ => self.heights[2],
        }
    }

    /// Appends the full state to `buf` (checkpoint wire format).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_f64(buf, self.q);
        put_u64(buf, self.count);
        for arr in [&self.heights, &self.positions, &self.desired, &self.rates] {
            for &v in arr {
                put_f64(buf, v);
            }
        }
    }

    /// Reads the state back from the front of `bytes`.
    pub fn decode(bytes: &mut &[u8]) -> Result<Self, FleetError> {
        let q = take_f64(bytes, "p2.q")?;
        let count = take_u64(bytes, "p2.count")?;
        let mut arrays = [[0.0; 5]; 4];
        for arr in &mut arrays {
            for v in arr.iter_mut() {
                *v = take_f64(bytes, "p2.markers")?;
            }
        }
        if !(0.0..=1.0).contains(&q) {
            return Err(FleetError::Corrupt(format!("p2 quantile {q} out of range")));
        }
        Ok(Self {
            q,
            count,
            heights: arrays[0],
            positions: arrays[1],
            desired: arrays[2],
            rates: arrays[3],
        })
    }
}

/// The full one-pass summary the fleet keeps per distribution: moments
/// plus P² markers for the median, the 90th, and the 99th percentile.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingSummary {
    /// Count/mean/variance/min/max.
    pub moments: StreamingMoments,
    /// Median estimator.
    pub p50: P2Quantile,
    /// 90th-percentile estimator.
    pub p90: P2Quantile,
    /// 99th-percentile estimator.
    pub p99: P2Quantile,
}

impl Default for StreamingSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            moments: StreamingMoments::new(),
            p50: P2Quantile::new(0.50),
            p90: P2Quantile::new(0.90),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Folds one observation into every estimator.
    pub fn push(&mut self, x: f64) {
        self.moments.push(x);
        self.p50.push(x);
        self.p90.push(x);
        self.p99.push(x);
    }

    /// [`StreamingSummary::push`] that rejects NaN/Inf before *any*
    /// estimator sees the sample, so a rejection leaves the whole
    /// summary untouched.
    pub fn try_push(&mut self, x: f64) -> Result<(), NonFinite> {
        if !x.is_finite() {
            return Err(NonFinite(x));
        }
        self.push(x);
        Ok(())
    }

    /// Observations folded so far.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// Freezes the streaming state into plain numbers.
    pub fn finalize(&self) -> SummaryStats {
        SummaryStats {
            count: self.moments.count(),
            mean: self.moments.mean(),
            std_dev: self.moments.std_dev(),
            min: self.moments.min(),
            max: self.moments.max(),
            p50: self.p50.estimate(),
            p90: self.p90.estimate(),
            p99: self.p99.estimate(),
        }
    }

    /// Appends the full state to `buf` (checkpoint wire format).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        self.moments.encode(buf);
        self.p50.encode(buf);
        self.p90.encode(buf);
        self.p99.encode(buf);
    }

    /// Reads the state back from the front of `bytes`.
    pub fn decode(bytes: &mut &[u8]) -> Result<Self, FleetError> {
        Ok(Self {
            moments: StreamingMoments::decode(bytes)?,
            p50: P2Quantile::decode(bytes)?,
            p90: P2Quantile::decode(bytes)?,
            p99: P2Quantile::decode(bytes)?,
        })
    }
}

/// A finalized distribution summary, as carried by [`crate::FleetReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Observations summarized.
    pub count: u64,
    /// Mean (0 when empty).
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

impl SummaryStats {
    /// Folds every field's exact bit pattern into a running FNV-1a hash
    /// (the byte-identity handle reports are compared by).
    pub fn fingerprint(&self, hash: u64) -> u64 {
        use crate::wire::{fnv1a_f64, fnv1a_u64};
        let mut h = fnv1a_u64(hash, self.count);
        for v in [
            self.mean,
            self.std_dev,
            self.min,
            self.max,
            self.p50,
            self.p90,
            self.p99,
        ] {
            h = fnv1a_f64(h, v);
        }
        h
    }

    /// One-line human rendering (`n/a` when empty).
    pub fn render(&self, unit: &str) -> String {
        if self.count == 0 {
            return "n/a (no observations)".to_string();
        }
        format!(
            "mean {:.4}{u} sd {:.4} min {:.4} p50 {:.4} p90 {:.4} p99 {:.4} max {:.4} (n={})",
            self.mean,
            self.std_dev,
            self.min,
            self.p50,
            self.p90,
            self.p99,
            self.max,
            self.count,
            u = unit,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact whole-population quantile by nearest-rank interpolation.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = q * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let t = rank - lo as f64;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }

    #[test]
    fn moments_match_exact_two_pass_statistics() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| ((i * 37 + 11) % 997) as f64 * 0.1)
            .collect();
        let mut m = StreamingMoments::new();
        for &x in &xs {
            m.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((m.mean() - mean).abs() / mean.abs() < 1e-12);
        assert!((m.variance() - var).abs() / var < 1e-10);
        assert_eq!(m.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        assert_eq!(
            m.max(),
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        );
    }

    #[test]
    fn p2_tracks_the_median_of_a_skewed_stream() {
        let mut p = P2Quantile::new(0.5);
        let mut xs = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let x = -(1.0 - u).ln(); // exponential(1)
            p.push(x);
            xs.push(x);
        }
        xs.sort_by(f64::total_cmp);
        let exact = exact_quantile(&xs, 0.5);
        assert!(
            (p.estimate() - exact).abs() < 0.05,
            "p2 {} vs exact {}",
            p.estimate(),
            exact
        );
    }

    #[test]
    fn p2_is_exact_for_tiny_streams() {
        let mut p = P2Quantile::new(0.5);
        for x in [5.0, 1.0, 3.0] {
            p.push(x);
        }
        assert_eq!(p.estimate(), 3.0);
        let mut empty = P2Quantile::new(0.9);
        assert!(empty.estimate().is_nan());
        empty.push(2.5);
        assert_eq!(empty.estimate(), 2.5);
    }

    #[test]
    fn small_n_estimates_interpolate_between_order_statistics() {
        // The median of two samples is their midpoint, not the larger
        // one — the regression nearest-rank rounding used to produce.
        let mut p = P2Quantile::new(0.5);
        p.push(1.0);
        p.push(100.0);
        assert_eq!(p.estimate(), 50.5);

        // Every n in 1..=5 and every fleet quantile matches the exact
        // whole-population interpolation bit for bit, regardless of
        // arrival order.
        let samples = [7.0, -2.0, 11.5, 3.25, 0.5];
        for n in 1..=samples.len() {
            let mut sorted = samples[..n].to_vec();
            sorted.sort_by(f64::total_cmp);
            for q in [0.5, 0.9, 0.99] {
                let mut p = P2Quantile::new(q);
                for &x in &samples[..n] {
                    p.push(x);
                }
                assert_eq!(
                    p.estimate(),
                    exact_quantile(&sorted, q),
                    "n={n} q={q} diverged from the exact order statistics"
                );
            }
        }
    }

    #[test]
    fn tiny_summary_quantiles_are_finite_and_ordered() {
        // The shape a tiny dh-serve smoke job reports: n < 5 must still
        // yield sane, ordered, in-range p50/p90/p99 — never NaN.
        let mut s = StreamingSummary::new();
        for x in [4.0, 1.0, 2.0] {
            s.push(x);
        }
        let stats = s.finalize();
        for v in [stats.p50, stats.p90, stats.p99] {
            assert!(v.is_finite());
            assert!(stats.min <= v && v <= stats.max);
        }
        assert!(stats.p50 <= stats.p90 && stats.p90 <= stats.p99);
        assert_eq!(stats.p50, 2.0);
    }

    #[test]
    fn summary_state_round_trips_bit_exactly_through_the_wire() {
        let mut s = StreamingSummary::new();
        for i in 0..137 {
            s.push((i as f64).sin() * 10.0);
        }
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let mut view = buf.as_slice();
        let back = StreamingSummary::decode(&mut view).unwrap();
        assert!(view.is_empty());
        assert_eq!(s, back);
        // Continuing both from the same state stays identical.
        let mut a = s;
        let mut b = back;
        for i in 0..50 {
            let x = (i as f64).cos();
            a.push(x);
            b.push(x);
        }
        assert_eq!(a.finalize(), b.finalize());
    }

    #[test]
    fn non_finite_samples_are_rejected_without_side_effects() {
        let mut s = StreamingSummary::new();
        for i in 0..64 {
            s.push(f64::from(i) * 0.5);
        }
        let before = s.clone();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            // NaN defeats ==, so compare the carried value by bit pattern.
            assert!(matches!(
                s.try_push(bad),
                Err(NonFinite(v)) if v.to_bits() == bad.to_bits()
            ));
            assert_eq!(s, before, "rejected sample must leave no trace");
        }
        assert!(s.try_push(3.25).is_ok());
        assert_eq!(s.count(), 65);
        // The per-estimator guards behave the same way.
        let mut m = StreamingMoments::new();
        assert!(m.try_push(f64::NAN).is_err());
        assert_eq!(m.count(), 0);
        let mut p = P2Quantile::new(0.5);
        assert!(p.try_push(f64::INFINITY).is_err());
        assert_eq!(p.count(), 0);
    }

    #[test]
    fn truncated_state_is_rejected() {
        let mut s = StreamingSummary::new();
        s.push(1.0);
        let mut buf = Vec::new();
        s.encode(&mut buf);
        buf.truncate(buf.len() - 3);
        let mut view = buf.as_slice();
        assert!(StreamingSummary::decode(&mut view).is_err());
    }
}
