//! The fleet engine: sharded deterministic execution and streaming
//! aggregation.
//!
//! The population is cut into shards of whole maintenance groups. A shard
//! is a pure function of `(config, shard index)` — chips draw their
//! identity from per-chip RNG streams, groups schedule healing from
//! group-local state only — so the shard partitioning is nothing but a
//! work and checkpoint granularity. [`dh_exec::par_map_fold`] executes
//! shards in parallel and folds each one's per-chip outcomes into the
//! [`FleetAccumulator`] **in canonical chip order**, which makes the final
//! [`FleetReport`] bit-identical at any shard size and thread count while
//! memory stays bounded by the in-flight shard window, never O(devices).
//!
//! Two execution modes share that engine. The **strict** mode
//! ([`run_fleet`], [`FleetRun::step`]) treats any anomaly — a non-finite
//! sample, a corrupt checkpoint — as fatal. The **supervised** mode
//! ([`run_fleet_supervised`], [`FleetRun::step_supervised`]) wraps every
//! shard in [`dh_exec::par_map_fold_supervised`]: panicking shards are
//! retried with backoff and quarantined when they keep failing, poisoned
//! samples are rejected at the fold, bad sensors degrade the worst-first
//! schedule to conservative always-heal, and the run completes with a
//! [`DegradedReport`] enumerating everything it survived. With no fault
//! plan (or a no-op one) the supervised path folds the exact same values
//! in the exact same order as the strict path, so its report fingerprint
//! is bit-identical to the baseline.

use std::path::Path;
use std::sync::{Mutex, MutexGuard, PoisonError};

use dh_circuit::RingOscillator;
use dh_em::black::BlackModel;
use dh_exec::RetryPolicy;
use dh_fault::{DegradedReport, FaultPlan, SensorFaultKind, SensorIncident, ShardFailure};
use dh_units::{CurrentDensity, Fraction, Kelvin, Seconds, Volts};

use crate::checkpoint::{AsyncCheckpointer, CheckpointMode, CheckpointStore, Snapshot};
use crate::chip::{ChipContext, ChipOutcome, ChipSpec, ChipState, VariationModel};
use crate::error::FleetError;
use crate::kernel::{
    epoch_step_columns, sensor_sweep_columns, FAULT_DROPPED, FAULT_NONE, FAULT_STUCK,
};
use crate::policy::{FleetPolicy, MaintenanceBudget};
use crate::stats::{StreamingSummary, SummaryStats};
use crate::store::{ChipStore, ColumnarCtx, StoreView, ALIVE};
use crate::wire::{fnv1a, fnv1a_f64, fnv1a_u64, put_u64, take_u64, FNV_OFFSET};

/// Everything that defines a fleet run. Two configs with the same
/// [`FleetConfig::fingerprint`] produce byte-identical reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Population size.
    pub devices: u64,
    /// Root seed; per-chip streams derive from it.
    pub seed: u64,
    /// Simulated lifetime, years.
    pub years: f64,
    /// Scheduling epoch (one maintenance-window cadence).
    pub epoch: Seconds,
    /// Chips per shard (work/checkpoint granularity; must be a multiple
    /// of `group_size`). Has **no effect** on the report.
    pub shard_size: u64,
    /// Chips per maintenance group (a rack sharing one recovery window).
    pub group_size: u64,
    /// The recovery-policy mix: group *g* runs `policies[g % len]`, so a
    /// heterogeneous fleet can A/B schedulers in one run.
    pub policies: Vec<FleetPolicy>,
    /// Recovery slots per group per epoch.
    pub budget: MaintenanceBudget,
    /// Fraction of a healing epoch spent in deep BTI recovery.
    pub heal_fraction: Fraction,
    /// Gate bias during deep recovery (≤ 0 activates recovery).
    pub recovery_bias: Volts,
    /// EM current-reversal duty while a healing epoch runs.
    pub em_reversal_duty: Fraction,
    /// Healing efficiency η of the reversed-current interval.
    pub em_heal_efficiency: Fraction,
    /// Fraction of peak EM damage that healing can never reclaim.
    pub em_pinned_floor: Fraction,
    /// Nominal supply (gate overdrive during stress).
    pub vdd: Volts,
    /// Fleet-median operating temperature.
    pub base_temperature: Kelvin,
    /// Local-interconnect current density at full utilization.
    pub j_local: CurrentDensity,
    /// Frequency degradation that counts as a (parametric) failure.
    pub fail_guardband: f64,
    /// Chip-to-chip variation model.
    pub variation: VariationModel,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            devices: 10_000,
            seed: 7,
            years: 3.0,
            epoch: Seconds::from_hours(168.0),
            shard_size: 1_024,
            group_size: 64,
            policies: vec![FleetPolicy::WorstFirst],
            budget: MaintenanceBudget::default(),
            heal_fraction: Fraction::clamped(0.15),
            recovery_bias: Volts::new(-0.3),
            em_reversal_duty: Fraction::clamped(0.2),
            em_heal_efficiency: Fraction::clamped(0.9),
            em_pinned_floor: Fraction::clamped(0.05),
            vdd: Volts::new(0.9),
            base_temperature: Kelvin::new(85.0 + 273.15),
            j_local: CurrentDensity::from_ma_per_cm2(6.0),
            fail_guardband: 0.10,
            variation: VariationModel::default(),
        }
    }
}

impl FleetConfig {
    /// Validates the geometry and physics knobs.
    pub fn validate(&self) -> Result<(), FleetError> {
        let bad = |why: String| Err(FleetError::InvalidConfig(why));
        if self.devices == 0 {
            return bad("devices must be positive".into());
        }
        if !(self.years > 0.0) || !self.years.is_finite() {
            return bad(format!("years must be positive, got {}", self.years));
        }
        if self.epoch.value() <= 0.0 {
            return bad("epoch must be positive".into());
        }
        if self.group_size == 0 {
            return bad("group_size must be positive".into());
        }
        if self.shard_size == 0 || !self.shard_size.is_multiple_of(self.group_size) {
            return bad(format!(
                "shard_size {} must be a positive multiple of group_size {}",
                self.shard_size, self.group_size
            ));
        }
        if self.policies.is_empty() {
            return bad("policy mix must name at least one policy".into());
        }
        if self.heal_fraction.value() >= 1.0 {
            return bad("heal_fraction must leave time to run".into());
        }
        if !self.fail_guardband.is_finite() || !(self.fail_guardband > 0.0) {
            return bad(format!(
                "fail_guardband must be positive and finite, got {}",
                self.fail_guardband
            ));
        }
        // The physics corner parameters feed transcendental kernels; a
        // NaN/Inf here surfaces epochs later as a poisoned aggregate, so
        // reject it at the boundary with the field named.
        for (name, v) in [
            ("epoch", self.epoch.value()),
            ("recovery_bias", self.recovery_bias.value()),
            ("vdd", self.vdd.value()),
            ("base_temperature", self.base_temperature.value()),
            ("j_local", self.j_local.value()),
        ] {
            if !v.is_finite() {
                return bad(format!("{name} must be finite, got {v}"));
            }
        }
        if self.base_temperature.value() <= 0.0 {
            return bad(format!(
                "base_temperature must be positive kelvin, got {}",
                self.base_temperature.value()
            ));
        }
        for (name, v) in [
            ("variation.process_sigma", self.variation.process_sigma),
            ("variation.em_sigma", self.variation.em_sigma),
            ("variation.temp_sigma_c", self.variation.temp_sigma_c),
            (
                "variation.utilization_mean",
                self.variation.utilization_mean,
            ),
            (
                "variation.utilization_sigma",
                self.variation.utilization_sigma,
            ),
        ] {
            if !v.is_finite() || v < 0.0 {
                return bad(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        Ok(())
    }

    /// Epochs each chip steps through.
    pub fn total_epochs(&self) -> u64 {
        (Seconds::from_years(self.years) / self.epoch)
            .ceil()
            .max(1.0) as u64
    }

    /// Shards in the run.
    pub fn shard_count(&self) -> u64 {
        self.devices.div_ceil(self.shard_size)
    }

    /// Picks a shard size for `workers` parallel workers: about four
    /// shards per worker so the reorder fold never starves behind one
    /// slow shard, rounded up to whole maintenance groups and capped so
    /// one shard's columns stay cache-resident. `shard_size` has no
    /// effect on the report — this is purely a throughput knob, and the
    /// fleet bin / benches use it as their default.
    pub fn auto_shard_size(&self, workers: usize) -> u64 {
        let workers = workers.max(1) as u64;
        let target = self.devices.div_ceil(workers * 4).max(1);
        let groups = target.div_ceil(self.group_size);
        let cap_groups = (65_536 / self.group_size).max(1);
        groups.min(cap_groups) * self.group_size
    }

    /// An FNV-1a hash over every field that influences the simulation,
    /// stored in checkpoints so a resume cannot silently mix two different
    /// runs. `shard_size` is deliberately **included**: the report does
    /// not depend on it, but the shard *cursor* in a checkpoint does.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, b"dh-fleet-config-v1");
        for v in [self.devices, self.seed, self.shard_size, self.group_size] {
            h = fnv1a_u64(h, v);
        }
        h = fnv1a_u64(h, self.policies.len() as u64);
        for p in &self.policies {
            h = fnv1a_u64(h, p.discriminant());
        }
        h = fnv1a_u64(h, self.budget.slots_per_group);
        for v in [
            self.years,
            self.epoch.value(),
            self.heal_fraction.value(),
            self.recovery_bias.value(),
            self.em_reversal_duty.value(),
            self.em_heal_efficiency.value(),
            self.em_pinned_floor.value(),
            self.vdd.value(),
            self.base_temperature.value(),
            self.j_local.value(),
            self.fail_guardband,
            self.variation.process_sigma,
            self.variation.em_sigma,
            self.variation.temp_sigma_c,
            self.variation.utilization_mean,
            self.variation.utilization_sigma,
        ] {
            h = fnv1a_f64(h, v);
        }
        h
    }

    fn context(&self) -> ChipContext {
        let ro = RingOscillator::paper_75_stage();
        let fresh_hz = ro.frequency(0.0).value();
        let duty = self.em_reversal_duty.value();
        ChipContext {
            ro,
            fresh_hz,
            black: BlackModel::calibrated_to_paper(),
            epoch: self.epoch,
            heal_time: Seconds::new(self.epoch.value() * self.heal_fraction.value()),
            vdd: self.vdd,
            recovery_bias: self.recovery_bias,
            j_local: self.j_local,
            em_wear_heal: (1.0 - duty) - self.em_heal_efficiency.value() * duty,
            em_pinned_floor: self.em_pinned_floor.value(),
            fail_guardband: self.fail_guardband,
        }
    }
}

/// What one reference-path shard hands back to the fold.
struct ShardResult {
    outcomes: Vec<ChipOutcome>,
    /// Recovery slots the budget offered across the shard's group-epochs.
    budget_slots: u64,
    /// Sensors staleness detection flagged as bad (empty without a plan).
    incidents: Vec<SensorIncident>,
}

/// The original per-chip (AoS) shard simulation, kept as the measured
/// baseline and the bit-identity reference the columnar kernels are
/// pinned against (`fleet_columnar` proptest, `perf_snapshot`). The
/// engine itself always runs [`simulate_shard_columnar`].
///
/// With a fault `plan`, every live chip's wear sensor is re-read through
/// [`ChipState::sense`] after each epoch step — injected stuck/dropped
/// sensors corrupt the score the worst-first policy ranks by until
/// staleness detection flags them, after which the chip is healed every
/// epoch (conservative degradation, never silent starvation). Without a
/// plan the sensing path is never entered and the shard is byte-identical
/// to a build without fault injection.
fn simulate_shard_reference(
    config: &FleetConfig,
    ctx: &ChipContext,
    shard: u64,
    plan: Option<&FaultPlan>,
) -> ShardResult {
    let lo = shard * config.shard_size;
    let hi = (lo + config.shard_size).min(config.devices);
    let epochs = config.total_epochs();
    let mut outcomes = Vec::with_capacity((hi - lo) as usize);
    let mut budget_slots = 0u64;
    let mut incidents = Vec::new();

    let mut group_lo = lo;
    while group_lo < hi {
        let group_hi = (group_lo + config.group_size).min(hi);
        let group_index = group_lo / config.group_size;
        let policy = config.policies[(group_index % config.policies.len() as u64) as usize];

        let mut chips: Vec<ChipState> = (group_lo..group_hi)
            .map(|i| {
                ChipState::new(
                    ChipSpec::draw(config.seed, i, config.base_temperature, &config.variation),
                    ctx,
                )
            })
            .collect();
        // A chip's sensor fault is part of its (injected) identity:
        // resolved once per chip, constant over the lifetime.
        let faults: Vec<Option<SensorFaultKind>> = match plan {
            Some(p) => (group_lo..group_hi).map(|i| p.sensor_fault(i)).collect(),
            None => Vec::new(),
        };
        let mut selected = vec![false; chips.len()];
        let mut alive = chips.len();
        for epoch in 0..epochs {
            if alive == 0 {
                break;
            }
            let healed = policy.select(epoch, config.budget, &chips, &mut selected);
            budget_slots += config.budget.slots_per_group.min(chips.len() as u64);
            dh_obs::counter!("fleet.chips_healed").add(healed);
            for (chip, &heal) in chips.iter_mut().zip(&selected) {
                if chip.alive() {
                    chip.step(ctx, heal);
                    if !chip.alive() {
                        alive -= 1;
                    }
                }
            }
            if plan.is_some() {
                for (chip, &fault) in chips.iter_mut().zip(&faults) {
                    if chip.alive() && chip.sense(fault) {
                        incidents.push(SensorIncident {
                            chip: chip.spec.index,
                            // Staleness can also latch on a genuinely
                            // frozen score; the detector's verdict is
                            // "stuck" either way.
                            kind: fault.unwrap_or(SensorFaultKind::Stuck),
                            epoch,
                        });
                    }
                }
            }
        }
        outcomes.extend(chips.iter().map(ChipState::outcome));
        group_lo = group_hi;
    }
    ShardResult {
        outcomes,
        budget_slots,
        incidents,
    }
}

/// One shard's reusable working set: the columnar [`ChipStore`] plus
/// every scratch buffer the epoch loop needs. Slabs live in the
/// [`FleetRun`] pool and are recycled across shards, so steady-state
/// simulation performs no per-shard allocation — shards are zero-copy
/// column-range views over the store, never materialized `ChipState`s
/// or per-shard outcome `Vec`s.
#[derive(Debug, Default)]
struct ShardSlab {
    store: ChipStore,
    /// Group-local slot assignment for the current epoch.
    selected: Vec<bool>,
    /// Worst-first ranking scratch.
    ranked: Vec<u32>,
    /// Group-local injected sensor faults (plan runs only) and their
    /// kernel codes.
    faults: Vec<Option<SensorFaultKind>>,
    fault_code: Vec<u8>,
    /// Group-local "sensor first flagged this epoch" marks.
    newly: Vec<u8>,
    incidents: Vec<SensorIncident>,
    budget_slots: u64,
}

/// Locks the slab pool, recovering a poisoned guard. A worker that
/// panics while holding the pool poisons the `Mutex`; the pool only
/// holds recycled capacity (never partially-folded results — those live
/// on the worker's stack and die with it), so the contents are intact
/// and surviving workers must keep going instead of cascading
/// `PoisonError` unwraps out of one supervised-and-retried fault.
fn lock_pool(pool: &Mutex<Vec<ShardSlab>>) -> MutexGuard<'_, Vec<ShardSlab>> {
    pool.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`simulate_shard_reference`] on the columnar store: every maintenance
/// group of shard `shard`, stepped through the full lifetime by the
/// [`crate::kernel`] column sweeps. Pure in `(config, shard)`; the slab
/// only provides reusable capacity. Bit-identical to the reference path
/// by construction (same operations in the same order per chip).
fn simulate_shard_columnar(
    config: &FleetConfig,
    cctx: &ColumnarCtx,
    shard: u64,
    plan: Option<&FaultPlan>,
    slab: &mut ShardSlab,
) {
    let lo = shard * config.shard_size;
    let hi = (lo + config.shard_size).min(config.devices);
    let epochs = config.total_epochs();
    slab.store.reset(config, cctx, lo, hi);
    slab.budget_slots = 0;
    slab.incidents.clear();

    let mut group_lo = lo;
    while group_lo < hi {
        let group_hi = (group_lo + config.group_size).min(hi);
        let glo = (group_lo - lo) as usize;
        let ghi = (group_hi - lo) as usize;
        let len = ghi - glo;
        let group_index = group_lo / config.group_size;
        let policy = config.policies[(group_index % config.policies.len() as u64) as usize];

        slab.selected.clear();
        slab.selected.resize(len, false);
        if let Some(p) = plan {
            // A chip's sensor fault is part of its (injected) identity:
            // resolved once per chip, constant over the lifetime.
            slab.faults.clear();
            slab.fault_code.clear();
            for i in group_lo..group_hi {
                let fault = p.sensor_fault(i);
                slab.fault_code.push(match fault {
                    Some(SensorFaultKind::Stuck) => FAULT_STUCK,
                    Some(SensorFaultKind::Dropped) => FAULT_DROPPED,
                    _ => FAULT_NONE,
                });
                slab.faults.push(fault);
            }
        }

        let mut alive = len as u64;
        for epoch in 0..epochs {
            if alive == 0 {
                break;
            }
            let healed = policy.select_columnar(
                epoch,
                config.budget,
                &slab.store.failed_epoch[glo..ghi],
                &slab.store.score[glo..ghi],
                &slab.store.flagged[glo..ghi],
                &mut slab.selected,
                &mut slab.ranked,
            );
            slab.budget_slots += config.budget.slots_per_group.min(len as u64);
            dh_obs::counter!("fleet.chips_healed").add(healed);
            alive -= epoch_step_columns(&mut slab.store, *cctx, glo, ghi, &slab.selected, epoch);
            if plan.is_some() {
                slab.newly.clear();
                slab.newly.resize(len, 0);
                sensor_sweep_columns(&mut slab.store, glo, ghi, &slab.fault_code, &mut slab.newly);
                for (j, &mark) in slab.newly.iter().enumerate() {
                    if mark != 0 {
                        slab.incidents.push(SensorIncident {
                            chip: group_lo + j as u64,
                            // Staleness can also latch on a genuinely
                            // frozen score; the detector's verdict is
                            // "stuck" either way.
                            kind: slab.faults[j].unwrap_or(SensorFaultKind::Stuck),
                            epoch,
                        });
                    }
                }
            }
        }
        group_lo = group_hi;
    }
}

/// [`poison_outcomes`] against the columnar store: overwrites the same
/// chips' guardband column entries the reference path would poison.
fn poison_store(plan: &FaultPlan, shard: u64, attempt: u32, store: &mut ChipStore) {
    if let Some((offset, kind)) = plan.poison(shard, attempt, store.len as u64) {
        store.guardband[offset as usize] = kind.value();
    }
    if let Some(target) = plan.poisoned_chip() {
        if target >= store.lo && target < store.lo + store.len as u64 {
            store.guardband[(target - store.lo) as usize] = f64::NAN;
        }
    }
}

/// Applies the plan's kernel-output poisoning to a freshly simulated
/// shard: the probabilistic draw (keyed by `(shard, attempt)`, so a
/// retried shard re-rolls) and the directed `poison-chip` target both
/// overwrite a chip's guardband with a non-finite value the fold must
/// reject.
fn poison_outcomes(plan: &FaultPlan, shard: u64, attempt: u32, outcomes: &mut [ChipOutcome]) {
    if let Some((offset, kind)) = plan.poison(shard, attempt, outcomes.len() as u64) {
        outcomes[offset as usize].guardband = kind.value();
    }
    if let Some(target) = plan.poisoned_chip() {
        if let Some(o) = outcomes.iter_mut().find(|o| o.index == target) {
            o.guardband = f64::NAN;
        }
    }
}

/// Reconstructs chip `k`'s [`ChipOutcome`] from the store columns — on
/// the stack, at fold time, so the columnar engine never materializes
/// per-shard outcome `Vec`s. The TTF product `epochs_run * epoch` is the
/// same f64 multiply the reference performs at failure time, so the
/// reconstruction is bit-exact.
fn chip_outcome(store: &ChipStore, k: usize, epoch_s: f64) -> ChipOutcome {
    ChipOutcome {
        index: store.lo + k as u64,
        guardband: store.guardband[k],
        ttf: (store.failed_epoch[k] != ALIVE)
            .then(|| Seconds::new(f64::from(store.epochs_run[k]) * epoch_s)),
        epochs_run: u64::from(store.epochs_run[k]),
        healed_epochs: u64::from(store.healed[k]),
    }
}

/// The strict fold for one columnar shard: every chip in canonical order,
/// aborting at the first non-finite sample (the accumulator is left
/// exactly as the last good chip left it; the shard's budget and the
/// fold counters are only credited on full success, matching the
/// reference fold's abort semantics).
fn fold_slab_strict(
    acc: &mut FleetAccumulator,
    shard_index: u64,
    slab: &ShardSlab,
    epoch_s: f64,
    error: &mut Option<FleetError>,
) {
    let store = &slab.store;
    for k in 0..store.len {
        if let Err(e) = acc.fold_chip(shard_index, &chip_outcome(store, k, epoch_s)) {
            *error = Some(e);
            return;
        }
    }
    acc.budget_chip_epochs += slab.budget_slots;
    dh_obs::counter!("fleet.shards_folded").incr();
    dh_obs::counter!("fleet.devices_folded").add(store.len as u64);
}

/// The O(1)-per-fleet streaming state every chip outcome folds into, in
/// canonical chip order. Fully serializable for checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FleetAccumulator {
    devices_done: u64,
    failed: u64,
    chip_epochs: u64,
    healed_chip_epochs: u64,
    budget_chip_epochs: u64,
    guardband: StreamingSummary,
    ttf_years: StreamingSummary,
}

impl FleetAccumulator {
    fn new() -> Self {
        Self {
            devices_done: 0,
            failed: 0,
            chip_epochs: 0,
            healed_chip_epochs: 0,
            budget_chip_epochs: 0,
            guardband: StreamingSummary::new(),
            ttf_years: StreamingSummary::new(),
        }
    }

    /// Folds one chip's outcome into the aggregates.
    ///
    /// Every sample is validated **before** anything mutates, so a
    /// rejected chip leaves the accumulator exactly as it was — the
    /// supervised fold counts the rejection and keeps going; the strict
    /// fold aborts the run.
    ///
    /// # Errors
    ///
    /// [`FleetError::NonFiniteSample`] when the chip's guardband or TTF
    /// is NaN/Inf.
    fn fold_chip(&mut self, shard: u64, chip: &ChipOutcome) -> Result<(), FleetError> {
        let reject = || FleetError::NonFiniteSample {
            shard,
            chip: chip.index,
        };
        let ttf_years = chip.ttf.map(|t| t.as_years());
        if ttf_years.is_some_and(|y| !y.is_finite()) {
            return Err(reject());
        }
        self.guardband
            .try_push(chip.guardband)
            .map_err(|_| reject())?;
        self.devices_done += 1;
        self.chip_epochs += chip.epochs_run;
        self.healed_chip_epochs += chip.healed_epochs;
        if let Some(years) = ttf_years {
            self.failed += 1;
            self.ttf_years.push(years);
        }
        Ok(())
    }

    /// Appends the full state to `buf` (checkpoint wire format).
    pub(crate) fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.devices_done);
        put_u64(buf, self.failed);
        put_u64(buf, self.chip_epochs);
        put_u64(buf, self.healed_chip_epochs);
        put_u64(buf, self.budget_chip_epochs);
        self.guardband.encode(buf);
        self.ttf_years.encode(buf);
    }

    /// Reads the state back from the front of `bytes`.
    pub(crate) fn decode(bytes: &mut &[u8]) -> Result<Self, FleetError> {
        Ok(Self {
            devices_done: take_u64(bytes, "acc.devices_done")?,
            failed: take_u64(bytes, "acc.failed")?,
            chip_epochs: take_u64(bytes, "acc.chip_epochs")?,
            healed_chip_epochs: take_u64(bytes, "acc.healed_chip_epochs")?,
            budget_chip_epochs: take_u64(bytes, "acc.budget_chip_epochs")?,
            guardband: StreamingSummary::decode(bytes)?,
            ttf_years: StreamingSummary::decode(bytes)?,
        })
    }
}

/// A resumable fleet run: the shard cursor plus the streaming aggregates,
/// the hoisted kernel context, and the pool of reusable shard slabs.
#[derive(Debug)]
pub struct FleetRun {
    config: FleetConfig,
    /// Next shard to fold; shards `0..cursor` are fully aggregated.
    cursor: u64,
    acc: FleetAccumulator,
    /// Everything a supervised run has survived so far. Stays empty on
    /// the strict path (strict runs abort instead of degrading).
    degraded: DegradedReport,
    /// Run-wide kernel constants, built once instead of per step.
    cctx: ColumnarCtx,
    /// Recycled shard working sets (bounded by the in-flight window).
    pool: Mutex<Vec<ShardSlab>>,
}

impl FleetRun {
    fn from_parts(
        config: FleetConfig,
        cursor: u64,
        acc: FleetAccumulator,
        degraded: DegradedReport,
    ) -> Self {
        let cctx = ColumnarCtx::new(&config);
        Self {
            config,
            cursor,
            acc,
            degraded,
            cctx,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Starts a fresh run.
    pub fn new(config: FleetConfig) -> Result<Self, FleetError> {
        config.validate()?;
        Ok(Self::from_parts(
            config,
            0,
            FleetAccumulator::new(),
            DegradedReport::default(),
        ))
    }

    /// Resumes from the newest valid generation of a [`CheckpointStore`]
    /// (a fresh run when no generation exists), recording every skipped
    /// generation in the degraded report. This is the resume path
    /// [`run_fleet_supervised_with`] and the `dh-serve` daemon share: a
    /// corrupted newest generation costs a replay window, never the run.
    ///
    /// # Errors
    ///
    /// Checkpoint I/O, config validation, and
    /// [`FleetError::ConfigMismatch`] when the newest valid generation
    /// belongs to a different config.
    pub fn resume_from_store(
        config: FleetConfig,
        store: &CheckpointStore,
    ) -> Result<Self, FleetError> {
        let (snapshot, fallbacks) = store.read_newest_valid()?;
        let mut run = match snapshot {
            Some(s) => Self::resume(config, s)?,
            None => Self::new(config)?,
        };
        run.degraded.checkpoint_fallbacks.extend(fallbacks);
        Ok(run)
    }

    /// Resumes from a snapshot, verifying it belongs to `config`. The
    /// snapshot's degraded state (quarantines, rejected samples, …)
    /// carries over: a kill/resume cycle cannot launder a degraded run
    /// into a clean one.
    pub fn resume(config: FleetConfig, snapshot: Snapshot) -> Result<Self, FleetError> {
        config.validate()?;
        let expected = config.fingerprint();
        if snapshot.config_fingerprint != expected {
            return Err(FleetError::ConfigMismatch {
                found: snapshot.config_fingerprint,
                expected,
            });
        }
        if snapshot.cursor > config.shard_count() {
            return Err(FleetError::Corrupt(format!(
                "cursor {} beyond the {}-shard run",
                snapshot.cursor,
                config.shard_count()
            )));
        }
        Ok(Self::from_parts(
            config,
            snapshot.cursor,
            snapshot.acc,
            snapshot.degraded,
        ))
    }

    /// The run's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Shards folded so far.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Whether every shard has been folded.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.config.shard_count()
    }

    /// Everything the run has survived so far (empty for a clean run).
    pub fn degraded(&self) -> &DegradedReport {
        &self.degraded
    }

    /// A point-in-time progress view, cheap enough to poll between step
    /// batches: the shard cursor plus the streaming guardband aggregate
    /// frozen as it stands (a partial distribution over the chips folded
    /// so far).
    pub fn progress(&self) -> FleetProgress {
        FleetProgress {
            shards_done: self.cursor,
            shard_count: self.config.shard_count(),
            devices_done: self.acc.devices_done,
            failed: self.acc.failed,
            guardband: self.acc.guardband.finalize(),
        }
    }

    /// Runs `f` over read-only [`StoreView`]s of the pooled shard slabs —
    /// the column state the most recently folded shards left behind.
    /// The pool is locked for the duration of `f` (workers recycling
    /// slabs block on it), so keep `f` short; the daemon uses it to
    /// render per-shard summaries for its progress endpoint.
    pub fn with_store_views<R>(&self, f: impl FnOnce(&[StoreView<'_>]) -> R) -> R {
        let pool = lock_pool(&self.pool);
        let views: Vec<StoreView<'_>> = pool.iter().map(|slab| slab.store.view()).collect();
        f(&views)
    }

    /// Executes and folds up to `max_shards` more shards (all remaining
    /// when saturated) and returns whether the run is now complete.
    ///
    /// Shards run in parallel; their per-chip outcomes fold into the
    /// aggregates in canonical chip order on this thread, so any stepping
    /// pattern — one giant step, shard-by-shard with a checkpoint after
    /// each, killed and resumed — yields bit-identical aggregates.
    ///
    /// This is the strict path: a worker panic propagates and a
    /// non-finite sample aborts the batch with
    /// [`FleetError::NonFiniteSample`] (the cursor does not advance; the
    /// aggregates may hold part of the failed batch, so the run should
    /// be abandoned or resumed from its last checkpoint). Use
    /// [`FleetRun::step_supervised`] to degrade instead of aborting.
    pub fn step(&mut self, max_shards: u64) -> Result<bool, FleetError> {
        let remaining = self.config.shard_count() - self.cursor;
        let batch = remaining.min(max_shards.max(1)) as usize;
        if batch == 0 {
            return Ok(true);
        }
        let _span = dh_obs::span("fleet.step_seconds");
        let started = std::time::Instant::now();
        let first = self.cursor;
        let config = &self.config;
        let cctx = &self.cctx;
        let pool = &self.pool;
        let epoch_s = config.epoch.value();
        let acc = &mut self.acc;
        let mut error: Option<FleetError> = None;
        dh_exec::par_map_fold(
            batch,
            |i| {
                let mut slab = lock_pool(pool).pop().unwrap_or_default();
                simulate_shard_columnar(config, cctx, first + i as u64, None, &mut slab);
                slab
            },
            (),
            |(), i, slab| {
                let shard_index = first + i as u64;
                if error.is_none() {
                    fold_slab_strict(acc, shard_index, &slab, epoch_s, &mut error);
                }
                lock_pool(pool).push(slab);
            },
        );
        if let Some(e) = error {
            return Err(e);
        }
        self.cursor += batch as u64;
        if dh_obs::ENABLED {
            let elapsed = started.elapsed().as_secs_f64();
            let batch_devices = ((first + batch as u64) * self.config.shard_size)
                .min(self.config.devices)
                - first * self.config.shard_size;
            dh_obs::histogram!("fleet.devices_per_sec")
                .record(batch_devices as f64 / elapsed.max(1e-9));
        }
        Ok(self.is_done())
    }

    /// [`FleetRun::step`] under supervision: shard tasks run inside
    /// `catch_unwind`, panicking shards (injected or real) are retried
    /// per `retry` and quarantined when they keep failing, non-finite
    /// samples are rejected at the fold, and every such event lands in
    /// [`FleetRun::degraded`] instead of aborting the run. Returns
    /// whether the run is complete; it cannot fail — that is the point.
    ///
    /// With `plan` absent or a no-op, the fold sequence is identical to
    /// the strict path, so the final report stays bit-identical to an
    /// unsupervised run.
    pub fn step_supervised(
        &mut self,
        max_shards: u64,
        plan: Option<&FaultPlan>,
        retry: &RetryPolicy,
    ) -> bool {
        let remaining = self.config.shard_count() - self.cursor;
        let batch = remaining.min(max_shards.max(1)) as usize;
        if batch == 0 {
            return true;
        }
        let _span = dh_obs::span("fleet.step_seconds");
        let first = self.cursor;
        let config = &self.config;
        let cctx = &self.cctx;
        let pool = &self.pool;
        let epoch_s = config.epoch.value();
        let acc = &mut self.acc;
        let degraded = &mut self.degraded;
        let plan = plan.filter(|p| !p.is_noop());
        let outcome = dh_exec::par_map_fold_supervised(
            batch,
            |i, attempt| {
                let shard = first + i as u64;
                if let Some(p) = plan {
                    if p.shard_panics(shard, attempt) {
                        panic!("injected fault: shard {shard} attempt {attempt}");
                    }
                }
                let mut slab = lock_pool(pool).pop().unwrap_or_default();
                simulate_shard_columnar(config, cctx, shard, plan, &mut slab);
                if let Some(p) = plan {
                    poison_store(p, shard, attempt, &mut slab.store);
                }
                slab
            },
            (),
            |(), i, slab| {
                let shard_index = first + i as u64;
                let store = &slab.store;
                for k in 0..store.len {
                    if acc
                        .fold_chip(shard_index, &chip_outcome(store, k, epoch_s))
                        .is_err()
                    {
                        degraded.rejected_samples += 1;
                        dh_obs::counter!("fleet.rejected_samples").incr();
                    }
                }
                degraded
                    .sensor_incidents
                    .extend(slab.incidents.iter().cloned());
                acc.budget_chip_epochs += slab.budget_slots;
                dh_obs::counter!("fleet.shards_folded").incr();
                dh_obs::counter!("fleet.devices_folded").add(store.len as u64);
                lock_pool(pool).push(slab);
            },
            retry,
        );
        degraded.retries += outcome.retries;
        dh_obs::counter!("fleet.shards_quarantined").add(outcome.failures.len() as u64);
        for f in outcome.failures {
            degraded.quarantined.push(ShardFailure {
                shard: first + f.index as u64,
                attempts: f.attempts,
                error: f.message,
            });
        }
        self.cursor += batch as u64;
        self.is_done()
    }

    /// Captures the current cursor + aggregate + degraded state for a
    /// checkpoint.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            config_fingerprint: self.config.fingerprint(),
            cursor: self.cursor,
            acc: self.acc.clone(),
            degraded: self.degraded.clone(),
        }
    }

    /// Freezes the finished run into a report.
    ///
    /// # Errors
    ///
    /// [`FleetError::NotFinished`] while shards remain.
    pub fn report(&self) -> Result<FleetReport, FleetError> {
        if !self.is_done() {
            return Err(FleetError::NotFinished {
                done: self.cursor,
                total: self.config.shard_count(),
            });
        }
        Ok(make_report(&self.config, &self.acc))
    }
}

/// A point-in-time view of a running fleet simulation, as exposed to
/// progress consumers (the `dh-serve` daemon's status and SSE
/// endpoints). Unlike a [`FleetReport`] this can be taken mid-run; the
/// distributions cover only the chips folded so far.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetProgress {
    /// Shards fully folded.
    pub shards_done: u64,
    /// Total shards in the run.
    pub shard_count: u64,
    /// Chips folded into the aggregates so far.
    pub devices_done: u64,
    /// Chips that failed inside the horizon so far.
    pub failed: u64,
    /// The guardband distribution over the chips folded so far.
    pub guardband: SummaryStats,
}

/// Freezes an accumulator into the deterministic report.
fn make_report(config: &FleetConfig, acc: &FleetAccumulator) -> FleetReport {
    FleetReport {
        devices: acc.devices_done,
        failed: acc.failed,
        epochs_per_device: config.total_epochs(),
        chip_epochs: acc.chip_epochs,
        healed_chip_epochs: acc.healed_chip_epochs,
        budget_chip_epochs: acc.budget_chip_epochs,
        guardband: acc.guardband.finalize(),
        ttf_years: acc.ttf_years.finalize(),
    }
}

/// The deterministic end product of a fleet run. Wall-clock facts
/// (shard timings, devices/sec) live in the `dh-obs` registry, never
/// here, so two runs of the same config compare byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Chips simulated (chips in quarantined shards and chips whose
    /// samples were rejected are **not** counted — see the run's
    /// [`DegradedReport`]).
    pub devices: u64,
    /// Chips that failed inside the horizon (EM damage reached 1 or
    /// degradation crossed the failure threshold).
    pub failed: u64,
    /// Lifetime horizon in epochs.
    pub epochs_per_device: u64,
    /// Chip-epochs actually stepped (failed chips stop early).
    pub chip_epochs: u64,
    /// Chip-epochs that ran a recovery slot.
    pub healed_chip_epochs: u64,
    /// Chip-epochs of recovery the budget offered.
    pub budget_chip_epochs: u64,
    /// Distribution of per-chip required guardbands.
    pub guardband: SummaryStats,
    /// Distribution of failed chips' times to failure, years.
    pub ttf_years: SummaryStats,
}

impl FleetReport {
    /// Fraction of the fleet that failed inside the horizon.
    pub fn failure_rate(&self) -> f64 {
        if self.devices == 0 {
            0.0
        } else {
            self.failed as f64 / self.devices as f64
        }
    }

    /// Fraction of offered recovery slots actually consumed by live chips.
    pub fn budget_utilization(&self) -> f64 {
        if self.budget_chip_epochs == 0 {
            0.0
        } else {
            self.healed_chip_epochs as f64 / self.budget_chip_epochs as f64
        }
    }

    /// An FNV-1a hash over every field's exact bit pattern: the handle the
    /// byte-identity acceptance tests (and the `fleet` bin) compare.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, b"dh-fleet-report-v1");
        for v in [
            self.devices,
            self.failed,
            self.epochs_per_device,
            self.chip_epochs,
            self.healed_chip_epochs,
            self.budget_chip_epochs,
        ] {
            h = fnv1a_u64(h, v);
        }
        h = self.guardband.fingerprint(h);
        h = self.ttf_years.fingerprint(h);
        h
    }

    /// Multi-line human rendering.
    pub fn render(&self) -> String {
        format!(
            "fleet: {} devices x {} epochs ({} chip-epochs stepped)\n\
             failed: {} ({:.3}% of fleet)\n\
             guardband: {}\n\
             ttf:       {}\n\
             healing: {} of {} offered slot-epochs used ({:.1}% budget utilization)\n\
             report fingerprint: {:#018x}",
            self.devices,
            self.epochs_per_device,
            self.chip_epochs,
            self.failed,
            self.failure_rate() * 100.0,
            self.guardband.render(""),
            self.ttf_years.render(" y"),
            self.healed_chip_epochs,
            self.budget_chip_epochs,
            self.budget_utilization() * 100.0,
            self.fingerprint(),
        )
    }
}

/// Runs a fleet to completion in one step (no checkpointing, strict —
/// any anomaly aborts).
///
/// # Errors
///
/// Propagates config validation and [`FleetError::NonFiniteSample`].
pub fn run_fleet(config: &FleetConfig) -> Result<FleetReport, FleetError> {
    let mut run = FleetRun::new(config.clone())?;
    while !run.step(u64::MAX)? {}
    run.report()
}

/// Runs the fleet serially through the per-chip **reference path**
/// ([`simulate_shard_reference`]) with the supervised fold semantics:
/// poisoned samples are rejected into the [`DegradedReport`], sensor
/// incidents are collected, and the run completes. This is the oracle
/// the `fleet_columnar` proptest and `perf_snapshot` pin the columnar
/// engine against — not a production entry point.
///
/// Kill/panic faults in `plan` are ignored (no supervision, no retries:
/// every shard runs exactly once at attempt 1, which is also what the
/// columnar supervised path sees for non-killing plans).
///
/// # Errors
///
/// Propagates config validation.
#[doc(hidden)]
pub fn run_fleet_reference(
    config: &FleetConfig,
    plan: Option<&FaultPlan>,
) -> Result<(FleetReport, DegradedReport), FleetError> {
    config.validate()?;
    let ctx = config.context();
    let plan = plan.filter(|p| !p.is_noop());
    let mut acc = FleetAccumulator::new();
    let mut degraded = DegradedReport::default();
    for shard in 0..config.shard_count() {
        let mut result = simulate_shard_reference(config, &ctx, shard, plan);
        if let Some(p) = plan {
            poison_outcomes(p, shard, 1, &mut result.outcomes);
        }
        for chip in &result.outcomes {
            if acc.fold_chip(shard, chip).is_err() {
                degraded.rejected_samples += 1;
            }
        }
        degraded.sensor_incidents.extend(result.incidents);
        acc.budget_chip_epochs += result.budget_slots;
    }
    Ok((make_report(config, &acc), degraded))
}

/// Runs a fleet with checkpointing: resumes from `path` when a matching
/// snapshot exists, folds `every_shards` shards between checkpoint
/// writes, and leaves the final snapshot on disk next to the report.
/// Writes go through the default [`CheckpointMode::Async`] writer
/// thread; [`run_fleet_checkpointed_with`] picks the mode explicitly.
///
/// # Errors
///
/// Propagates config validation, checkpoint I/O, and any
/// corruption/mismatch in an existing snapshot (a checkpoint for a
/// *different* config is an error, not a silent restart).
pub fn run_fleet_checkpointed(
    config: &FleetConfig,
    path: &Path,
    every_shards: u64,
) -> Result<FleetReport, FleetError> {
    run_fleet_checkpointed_with(config, path, every_shards, CheckpointMode::default())
}

/// [`run_fleet_checkpointed`] with an explicit [`CheckpointMode`]. The
/// two modes leave byte-identical disk state and reports; sync mode
/// exists as the baseline (and for the tests that prove that claim).
///
/// # Errors
///
/// As [`run_fleet_checkpointed`]; in async mode a writer-thread I/O
/// error surfaces at the next checkpoint boundary or at the final
/// drain.
pub fn run_fleet_checkpointed_with(
    config: &FleetConfig,
    path: &Path,
    every_shards: u64,
    mode: CheckpointMode,
) -> Result<FleetReport, FleetError> {
    // One clone total: the match arms move it, and only one arm runs.
    let config = config.clone();
    let mut run = match Snapshot::read_if_exists(path)? {
        Some(snapshot) => FleetRun::resume(config, snapshot)?,
        None => FleetRun::new(config)?,
    };
    match mode {
        CheckpointMode::Sync => {
            while !run.step(every_shards.max(1))? {
                run.snapshot().write(path)?;
            }
            run.snapshot().write(path)?;
        }
        CheckpointMode::Async => {
            let store = CheckpointStore::new(path, 1);
            let mut writer = AsyncCheckpointer::spawn(store, None);
            while !run.step(every_shards.max(1))? {
                writer.submit(run.snapshot())?;
            }
            writer.submit(run.snapshot())?;
            writer.finish()?;
        }
    }
    run.report()
}

/// Runs a fleet to completion under supervision: shard panics are
/// retried and quarantined, poisoned samples rejected, sensor faults
/// tolerated, and (with `checkpoints`) corrupt checkpoint generations
/// fallen back over — the run finishes and tells you what it survived
/// instead of aborting.
///
/// `checkpoints` is the generation store plus the shard stride between
/// writes; resuming picks the newest generation that validates and
/// records every skipped one in the degraded report. `plan` injects
/// deterministic faults (pass `None` for plain supervised execution —
/// the report is then bit-identical to [`run_fleet`]).
///
/// # Errors
///
/// Config validation, checkpoint I/O (injected *corruption* is
/// tolerated; an unwritable disk is not), and a valid checkpoint for a
/// different config ([`FleetError::ConfigMismatch`] — never silently
/// restarted).
pub fn run_fleet_supervised(
    config: &FleetConfig,
    plan: Option<&FaultPlan>,
    retry: &RetryPolicy,
    checkpoints: Option<(&CheckpointStore, u64)>,
) -> Result<(FleetReport, DegradedReport), FleetError> {
    run_fleet_supervised_with(config, plan, retry, checkpoints, CheckpointMode::default())
}

/// [`run_fleet_supervised`] with an explicit [`CheckpointMode`]. Both
/// modes drive [`CheckpointStore::write_injected_with`] through the same
/// write-index sequence, so injected checkpoint corruption (and the
/// multi-generation fallback it exercises) behaves identically; sync
/// mode is the baseline the byte-identity tests compare against.
///
/// # Errors
///
/// As [`run_fleet_supervised`].
pub fn run_fleet_supervised_with(
    config: &FleetConfig,
    plan: Option<&FaultPlan>,
    retry: &RetryPolicy,
    checkpoints: Option<(&CheckpointStore, u64)>,
    mode: CheckpointMode,
) -> Result<(FleetReport, DegradedReport), FleetError> {
    // One clone total: the match arms move it, and only one arm runs.
    let config = config.clone();
    let mut run = match checkpoints {
        Some((store, _)) => FleetRun::resume_from_store(config, store)?,
        None => FleetRun::new(config)?,
    };
    match checkpoints {
        // Write indices count this process's writes from 0, so an
        // injected `ckpt-flip=N` plan corrupts the same generations
        // on every identically-seeded invocation, in either mode.
        // Disk incidents are absorbed only after the final write, so
        // persisted snapshots never contain this process's own disk
        // report and both modes stay byte-identical on disk.
        Some((store, every)) => match mode {
            CheckpointMode::Sync => {
                let mut write_index = 0u64;
                let mut scratch = Vec::new();
                let mut disk = DegradedReport::default();
                while !run.step_supervised(every.max(1), plan, retry) {
                    let outcome = store.write_injected_with(
                        &run.snapshot(),
                        plan,
                        write_index,
                        &mut scratch,
                    )?;
                    disk.absorb(outcome.disk);
                    write_index += 1;
                }
                let outcome =
                    store.write_injected_with(&run.snapshot(), plan, write_index, &mut scratch)?;
                disk.absorb(outcome.disk);
                run.degraded.absorb(disk);
            }
            CheckpointMode::Async => {
                let mut writer = AsyncCheckpointer::spawn((*store).clone(), plan.cloned());
                while !run.step_supervised(every.max(1), plan, retry) {
                    writer.submit(run.snapshot())?;
                }
                writer.submit(run.snapshot())?;
                let disk = writer.finish()?;
                run.degraded.absorb(disk);
            }
        },
        None => while !run.step_supervised(u64::MAX, plan, retry) {},
    }
    let report = run.report()?;
    Ok((report, run.degraded))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(policy: FleetPolicy) -> FleetConfig {
        FleetConfig {
            devices: 96,
            years: 0.4,
            shard_size: 32,
            group_size: 16,
            policies: vec![policy],
            budget: MaintenanceBudget { slots_per_group: 2 },
            ..FleetConfig::default()
        }
    }

    #[test]
    fn reports_are_invariant_to_shard_size() {
        let one = FleetConfig {
            shard_size: 96,
            ..tiny(FleetPolicy::WorstFirst)
        };
        let many = FleetConfig {
            shard_size: 16,
            ..tiny(FleetPolicy::WorstFirst)
        };
        let a = run_fleet(&one).unwrap();
        let b = run_fleet(&many).unwrap();
        // shard_size is in the config fingerprint but must not touch the
        // physics: the reports agree bit for bit. (The fingerprint hashes
        // raw bit patterns, so it also covers the NaN quantiles of an
        // empty TTF distribution, which derived `==` would reject.)
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn healing_policies_beat_no_budget() {
        let mut none = tiny(FleetPolicy::WorstFirst);
        none.budget = MaintenanceBudget { slots_per_group: 0 };
        let unhealed = run_fleet(&none).unwrap();
        let healed = run_fleet(&tiny(FleetPolicy::WorstFirst)).unwrap();
        assert!(
            healed.guardband.mean < unhealed.guardband.mean,
            "healed {} vs unhealed {}",
            healed.guardband.mean,
            unhealed.guardband.mean
        );
        assert_eq!(unhealed.healed_chip_epochs, 0);
        assert!(healed.healed_chip_epochs > 0);
    }

    #[test]
    fn worst_first_spends_its_budget_no_worse_than_static() {
        let wf = run_fleet(&tiny(FleetPolicy::WorstFirst)).unwrap();
        let st = run_fleet(&tiny(FleetPolicy::Static)).unwrap();
        // Static heals the same 2 chips of every 16 forever; worst-first
        // aims its slots at whichever chip is currently worst, so the
        // fleet's worst-case guardband (tracked exactly, not estimated)
        // cannot be worse.
        assert!(
            wf.guardband.max <= st.guardband.max + 1e-12,
            "worst-first max {} vs static {}",
            wf.guardband.max,
            st.guardband.max
        );
    }

    #[test]
    fn policy_mix_assigns_groups_round_robin_and_fingerprints_differ() {
        let mixed = FleetConfig {
            policies: vec![FleetPolicy::WorstFirst, FleetPolicy::Static],
            ..tiny(FleetPolicy::WorstFirst)
        };
        let report = run_fleet(&mixed).unwrap();
        assert_eq!(report.devices, 96);
        assert_ne!(
            mixed.fingerprint(),
            tiny(FleetPolicy::WorstFirst).fingerprint()
        );
    }

    #[test]
    fn stepping_pattern_does_not_change_the_report() {
        let config = tiny(FleetPolicy::RoundRobin);
        let whole = run_fleet(&config).unwrap();
        let mut run = FleetRun::new(config).unwrap();
        while !run.step(1).unwrap() {}
        let stepped = run.report().unwrap();
        assert_eq!(whole.fingerprint(), stepped.fingerprint());
        assert_eq!(whole.render(), stepped.render());
    }

    #[test]
    fn supervised_without_faults_is_bit_identical_to_strict() {
        let config = tiny(FleetPolicy::WorstFirst);
        let strict = run_fleet(&config).unwrap();
        let (supervised, degraded) =
            run_fleet_supervised(&config, None, &RetryPolicy::immediate(3), None).unwrap();
        assert_eq!(strict.fingerprint(), supervised.fingerprint());
        assert!(!degraded.is_degraded(), "{}", degraded.render());
        // A noop plan must also stay on the identical path.
        let plan = FaultPlan::parse("", 9).unwrap();
        let (noop, _) =
            run_fleet_supervised(&config, Some(&plan), &RetryPolicy::immediate(3), None).unwrap();
        assert_eq!(strict.fingerprint(), noop.fingerprint());
    }

    #[test]
    fn killed_shards_are_quarantined_and_the_run_completes() {
        let config = tiny(FleetPolicy::WorstFirst);
        let plan = FaultPlan::parse("kill-shard=1", 11).unwrap();
        let (report, degraded) =
            run_fleet_supervised(&config, Some(&plan), &RetryPolicy::immediate(2), None).unwrap();
        assert_eq!(degraded.quarantined.len(), 1);
        assert_eq!(degraded.quarantined[0].shard, 1);
        assert_eq!(degraded.quarantined[0].attempts, 2);
        assert!(degraded.quarantined[0].error.contains("injected fault"));
        assert_eq!(degraded.retries, 1, "one re-execution before quarantine");
        // The other two 32-chip shards still made it into the aggregate.
        assert_eq!(report.devices, 64);
        assert!(degraded.is_degraded());
    }

    #[test]
    fn poisoned_samples_are_rejected_not_folded() {
        let config = tiny(FleetPolicy::WorstFirst);
        let clean = run_fleet(&config).unwrap();
        let plan = FaultPlan::parse("poison-chip=40", 13).unwrap();
        let (report, degraded) =
            run_fleet_supervised(&config, Some(&plan), &RetryPolicy::immediate(2), None).unwrap();
        assert_eq!(degraded.rejected_samples, 1);
        assert_eq!(report.devices, clean.devices - 1);
        assert!(
            report.guardband.mean.is_finite(),
            "the NaN never reached the aggregates"
        );
    }

    #[test]
    fn stuck_sensors_are_flagged_and_reported() {
        let config = tiny(FleetPolicy::WorstFirst);
        let plan = FaultPlan::parse("stuck-chip=5", 17).unwrap();
        let (report, degraded) =
            run_fleet_supervised(&config, Some(&plan), &RetryPolicy::immediate(2), None).unwrap();
        assert_eq!(report.devices, 96, "no samples lost to a bad sensor");
        let incident = degraded
            .sensor_incidents
            .iter()
            .find(|i| i.chip == 5)
            .expect("chip 5's sensor was flagged");
        assert_eq!(incident.kind, SensorFaultKind::Stuck);
        // Epoch 0 primes the comparator; the four bit-identical repeats
        // that fill the staleness window land on epochs 1..=4.
        assert_eq!(
            incident.epoch,
            u64::from(crate::chip::SENSOR_STALE_EPOCHS),
            "flagged as soon as the staleness window filled"
        );
    }

    #[test]
    fn poisoned_slab_pool_recovers_and_the_run_completes() {
        let config = tiny(FleetPolicy::WorstFirst);
        let clean = run_fleet(&config).unwrap();
        let mut run = FleetRun::new(config).unwrap();
        assert!(!run.step_supervised(1, None, &RetryPolicy::immediate(2)));
        // Poison the pool the way a worker dying mid-recycle would:
        // panic on another thread while holding the guard. (Injected
        // `shard_panics` faults fire before the pool is locked, so this
        // is the only way to actually poison it.)
        let result = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = run.pool.lock().unwrap();
                panic!("injected: worker died holding the slab pool");
            })
            .join()
        });
        assert!(result.is_err(), "the poisoning thread must have panicked");
        assert!(run.pool.lock().is_err(), "the pool mutex is poisoned");
        // Surviving workers recover the guard and finish the run — in
        // both the supervised and the strict stepping path.
        while !run.step_supervised(1, None, &RetryPolicy::immediate(2)) {}
        let supervised = run.report().unwrap();
        assert_eq!(supervised.fingerprint(), clean.fingerprint());
        assert!(!run.degraded().is_degraded());

        let mut strict = FleetRun::new(tiny(FleetPolicy::WorstFirst)).unwrap();
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = strict.pool.lock().unwrap();
                panic!("injected: worker died holding the slab pool");
            })
            .join()
        });
        assert!(strict.pool.lock().is_err());
        while !strict.step(1).unwrap() {}
        assert_eq!(strict.report().unwrap().fingerprint(), clean.fingerprint());
    }

    #[test]
    fn panicking_shard_under_injection_leaves_the_pool_usable() {
        // The chaos path end to end: one shard panics (and is retried
        // then quarantined), the remaining shards keep recycling slabs
        // through the pool and complete into a degraded report.
        let config = tiny(FleetPolicy::WorstFirst);
        let plan = FaultPlan::parse("kill-shard=1", 11).unwrap();
        let mut run = FleetRun::new(config).unwrap();
        while !run.step_supervised(1, Some(&plan), &RetryPolicy::immediate(2)) {}
        assert!(run.pool.lock().is_ok(), "pool must not be poisoned");
        let report = run.report().unwrap();
        assert_eq!(report.devices, 64, "the two surviving shards folded");
        assert!(run.degraded().is_degraded());
        assert_eq!(run.degraded().quarantined.len(), 1);
    }

    #[test]
    fn non_finite_corner_parameters_are_rejected_at_the_boundary() {
        let assert_rejects = |mutate: &dyn Fn(&mut FleetConfig), needle: &str| {
            let mut c = FleetConfig::default();
            mutate(&mut c);
            match c.validate() {
                Err(FleetError::InvalidConfig(why)) => assert!(
                    why.contains(needle),
                    "error {why:?} does not name {needle:?}"
                ),
                other => panic!("expected InvalidConfig({needle}), got {other:?}"),
            }
        };
        assert_rejects(&|c| c.vdd = Volts::new(f64::NAN), "vdd");
        assert_rejects(
            &|c| c.recovery_bias = Volts::new(f64::NEG_INFINITY),
            "recovery_bias",
        );
        assert_rejects(
            &|c| c.base_temperature = Kelvin::new(f64::INFINITY),
            "base_temperature",
        );
        assert_rejects(
            &|c| c.base_temperature = Kelvin::new(-4.0),
            "base_temperature",
        );
        assert_rejects(
            &|c| c.j_local = CurrentDensity::from_ma_per_cm2(f64::NAN),
            "j_local",
        );
        assert_rejects(&|c| c.years = f64::INFINITY, "years");
        assert_rejects(&|c| c.fail_guardband = f64::INFINITY, "fail_guardband");
        assert_rejects(
            &|c| c.variation.process_sigma = f64::NAN,
            "variation.process_sigma",
        );
        assert_rejects(
            &|c| c.variation.utilization_sigma = -0.1,
            "variation.utilization_sigma",
        );
        // And the entry points refuse to run such a config.
        let c = FleetConfig {
            vdd: Volts::new(f64::NAN),
            ..FleetConfig::default()
        };
        assert!(matches!(run_fleet(&c), Err(FleetError::InvalidConfig(_))));
        assert!(FleetRun::new(c).is_err());
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let c = FleetConfig {
            shard_size: 100, // not a multiple of group_size 64
            ..FleetConfig::default()
        };
        assert!(matches!(run_fleet(&c), Err(FleetError::InvalidConfig(_))));
        let c = FleetConfig {
            devices: 0,
            ..FleetConfig::default()
        };
        assert!(FleetRun::new(c).is_err());
        let c = FleetConfig {
            policies: Vec::new(),
            ..FleetConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn report_before_completion_is_refused() {
        let run = FleetRun::new(tiny(FleetPolicy::Static)).unwrap();
        assert!(matches!(
            run.report(),
            Err(FleetError::NotFinished { done: 0, .. })
        ));
    }
}
