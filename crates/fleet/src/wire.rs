//! Little-endian encode/decode primitives for the hand-rolled checkpoint
//! format (the build has no serde): fixed-width integers, `f64` as raw bit
//! patterns (so NaN payloads and signed zeros round-trip bit-exactly), and
//! the FNV-1a hash used for both config fingerprints and file checksums.

use crate::error::FleetError;

/// FNV-1a 64-bit offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a hash.
pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Folds one `u64` (little-endian) into a running FNV-1a hash.
pub(crate) fn fnv1a_u64(hash: u64, v: u64) -> u64 {
    fnv1a(hash, &v.to_le_bytes())
}

/// Folds one `f64` bit pattern into a running FNV-1a hash.
pub(crate) fn fnv1a_f64(hash: u64, v: f64) -> u64 {
    fnv1a_u64(hash, v.to_bits())
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

pub(crate) fn take_u64(bytes: &mut &[u8], what: &str) -> Result<u64, FleetError> {
    if bytes.len() < 8 {
        return Err(FleetError::Corrupt(format!(
            "truncated while reading {what}: {} bytes left",
            bytes.len()
        )));
    }
    let (head, rest) = bytes.split_at(8);
    *bytes = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("8-byte split")))
}

pub(crate) fn take_f64(bytes: &mut &[u8], what: &str) -> Result<f64, FleetError> {
    take_u64(bytes, what).map(f64::from_bits)
}

/// Length-prefixed UTF-8 string (degraded-state sections carry panic
/// messages and fallback reasons).
pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn take_str(bytes: &mut &[u8], what: &str) -> Result<String, FleetError> {
    let len = take_u64(bytes, what)? as usize;
    if bytes.len() < len {
        return Err(FleetError::Corrupt(format!(
            "truncated while reading {what}: {} of {len} string bytes",
            bytes.len()
        )));
    }
    let (head, rest) = bytes.split_at(len);
    *bytes = rest;
    String::from_utf8(head.to_vec())
        .map_err(|_| FleetError::Corrupt(format!("{what} is not valid UTF-8")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_bit_patterns() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        let mut view = buf.as_slice();
        assert_eq!(take_u64(&mut view, "a").unwrap(), u64::MAX);
        assert_eq!(
            take_f64(&mut view, "b").unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(
            take_f64(&mut view, "c").unwrap().to_bits(),
            f64::NAN.to_bits()
        );
        assert!(view.is_empty());
        assert!(take_u64(&mut view, "d").is_err());
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
