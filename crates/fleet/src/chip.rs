//! The per-chip wear model the fleet engine steps 10⁴–10⁶ times over.
//!
//! A fleet chip is deliberately lighter than a full
//! `dh_sched::ManyCoreSystem`: one paper-calibrated analytic
//! [`BtiDevice`] stands in for the chip's critical path and a scalar
//! Miner's-rule accumulator (rate set by the calibrated Black model)
//! stands in for its worst EM wire — the same physics the system layer
//! resolves per core, collapsed to per chip so a million instances step
//! in seconds. Chip-to-chip heterogeneity enters through
//! [`ChipSpec::draw`]: process corner, EM current-density corner,
//! placement temperature, and utilization are drawn from the chip's own
//! RNG stream `(seed, "fleet/chip", index)`, so chip *i* is the **same
//! chip** at any shard size, thread count, or resume point.

use dh_bti::{BtiDevice, RecoveryCondition, StressCondition};
use dh_circuit::RingOscillator;
use dh_em::black::BlackModel;
use dh_fault::SensorFaultKind;
use dh_units::rng::{seeded_stream_rng, standard_normal};
use dh_units::{CurrentDensity, Fraction, Kelvin, Seconds, Volts};

/// The per-chip RNG stream label; combined with the fleet seed and the
/// chip index this fully determines a chip's identity.
pub(crate) const CHIP_STREAM: &str = "fleet/chip";

/// Epochs of bit-identical (or missing) readings before a chip's wear
/// sensor is declared bad and the scheduler stops trusting it. Healthy
/// chips re-measure a continuously evolving score every epoch, so a
/// handful of exact repeats is diagnostic, not coincidence.
pub const SENSOR_STALE_EPOCHS: u32 = 4;

/// Chip-to-chip variation knobs (lognormal corners, Gaussian placement
/// temperature, clamped-Gaussian utilization).
#[derive(Debug, Clone, PartialEq)]
pub struct VariationModel {
    /// σ of the lognormal BTI wear-rate corner (multiplies effective
    /// stress time; ~0.08 ⇒ ±8 % process spread).
    pub process_sigma: f64,
    /// σ of the lognormal EM damage-rate corner (void-growth spread is
    /// famously wide; the paper's population fits use σ ≈ 0.5).
    pub em_sigma: f64,
    /// σ of the Gaussian placement/ambient temperature offset, °C
    /// (hot-aisle vs cold-aisle spread).
    pub temp_sigma_c: f64,
    /// Mean chip utilization (fraction of each epoch spent executing).
    pub utilization_mean: f64,
    /// σ of the Gaussian utilization spread (clamped to [0.05, 1]).
    pub utilization_sigma: f64,
}

impl Default for VariationModel {
    fn default() -> Self {
        Self {
            process_sigma: 0.08,
            em_sigma: 0.5,
            temp_sigma_c: 8.0,
            utilization_mean: 0.6,
            utilization_sigma: 0.15,
        }
    }
}

/// One chip's identity: everything that distinguishes it from its fleet
/// siblings, drawn deterministically from its index.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSpec {
    /// Global chip index in `0..devices`.
    pub index: u64,
    /// Lognormal BTI wear-rate corner (1 = typical).
    pub wear_factor: f64,
    /// Lognormal EM damage-rate corner (1 = typical).
    pub em_factor: f64,
    /// Operating temperature (base + placement offset).
    pub temperature: Kelvin,
    /// Fraction of each epoch this chip spends executing.
    pub utilization: Fraction,
}

impl ChipSpec {
    /// Draws chip `index`'s identity from its dedicated RNG stream.
    ///
    /// The four draws happen in a fixed order from a stream that no other
    /// chip shares, which is what makes every partitioning of the fleet
    /// produce bit-identical chips.
    pub fn draw(seed: u64, index: u64, base_temperature: Kelvin, v: &VariationModel) -> Self {
        let mut rng = seeded_stream_rng(seed, CHIP_STREAM, index);
        let wear_factor = (v.process_sigma * standard_normal(&mut rng)).exp();
        let em_factor = (v.em_sigma * standard_normal(&mut rng)).exp();
        let temperature =
            Kelvin::new(base_temperature.value() + v.temp_sigma_c * standard_normal(&mut rng));
        let utilization = Fraction::clamped(
            (v.utilization_mean + v.utilization_sigma * standard_normal(&mut rng)).max(0.05),
        );
        Self {
            index,
            wear_factor,
            em_factor,
            temperature,
            utilization,
        }
    }
}

/// Run-wide constants every chip steps against, hoisted out of the hot
/// loop (the ring oscillator and Black model are identical across chips;
/// only the operating point varies).
#[derive(Debug)]
pub(crate) struct ChipContext {
    pub ro: RingOscillator,
    pub fresh_hz: f64,
    pub black: BlackModel,
    pub epoch: Seconds,
    /// Deep-recovery time inside a healing epoch.
    pub heal_time: Seconds,
    pub vdd: Volts,
    pub recovery_bias: Volts,
    pub j_local: CurrentDensity,
    /// Miner's-rule wear factor while current reversal runs:
    /// `(1 − d) − η·d` (negative duty share actively heals).
    pub em_wear_heal: f64,
    pub em_pinned_floor: f64,
    pub fail_guardband: f64,
}

/// One chip's live state while its maintenance group steps through the
/// lifetime.
#[derive(Debug, Clone)]
pub(crate) struct ChipState {
    pub spec: ChipSpec,
    device: BtiDevice,
    stress_cond: StressCondition,
    passive_cond: RecoveryCondition,
    deep_cond: RecoveryCondition,
    /// Miner's-rule damage added by one normal epoch.
    em_normal_delta: f64,
    /// Miner's-rule damage added by the run fraction of a healing epoch.
    em_heal_delta: f64,
    pub em_damage: f64,
    em_peak: f64,
    /// Worst frequency degradation observed so far (the chip's required
    /// guardband).
    pub guardband: f64,
    /// Wear score the worst-first selector ranks by. Under fault
    /// injection this is the *sensed* value (a stuck sensor freezes it);
    /// without a fault plan it is always the true score.
    pub score: f64,
    /// Staleness detection latched this chip's sensor as bad; the
    /// scheduler degrades to conservative always-heal for it.
    pub sensor_flagged: bool,
    /// Consecutive epochs the sensed score repeated bit-exactly (or went
    /// missing).
    stale_epochs: u32,
    /// Bit pattern of the previous sensed score (NaN sentinel before the
    /// first reading, which no finite reading can match).
    last_sensed_bits: u64,
    pub epochs_run: u64,
    pub healed_epochs: u64,
    pub failed_at: Option<Seconds>,
}

impl ChipState {
    pub fn new(spec: ChipSpec, ctx: &ChipContext) -> Self {
        let ttf = ctx.black.median_ttf(ctx.j_local, spec.temperature);
        let util = spec.utilization.value();
        let epoch = ctx.epoch.value();
        let run_heal = epoch - ctx.heal_time.value();
        // Both epoch flavors add a constant damage increment for this chip;
        // precomputing them removes the Black-model transcendentals from
        // the per-epoch path entirely.
        let em_normal_delta = epoch * util / ttf.value() * spec.em_factor;
        let em_heal_delta = run_heal * util / ttf.value() * spec.em_factor * ctx.em_wear_heal;
        Self {
            stress_cond: StressCondition {
                gate_voltage: ctx.vdd,
                temperature: spec.temperature,
            },
            passive_cond: RecoveryCondition {
                gate_voltage: Volts::ZERO,
                temperature: spec.temperature,
            },
            deep_cond: RecoveryCondition {
                gate_voltage: ctx.recovery_bias,
                temperature: spec.temperature,
            },
            spec,
            device: BtiDevice::paper_calibrated(),
            em_normal_delta,
            em_heal_delta,
            em_damage: 0.0,
            em_peak: 0.0,
            guardband: 0.0,
            score: 0.0,
            sensor_flagged: false,
            stale_epochs: 0,
            last_sensed_bits: f64::NAN.to_bits(),
            epochs_run: 0,
            healed_epochs: 0,
            failed_at: None,
        }
    }

    pub fn alive(&self) -> bool {
        self.failed_at.is_none()
    }

    /// Steps one epoch: a healing epoch spends `heal_time` behind the rail
    /// swap (deep BTI recovery) and runs with EM current reversal for the
    /// rest; a normal epoch splits between stress at the chip's
    /// utilization and passive idle recovery.
    pub fn step(&mut self, ctx: &ChipContext, heal: bool) {
        debug_assert!(self.alive());
        let epoch = ctx.epoch.value();
        let run_time = if heal {
            self.healed_epochs += 1;
            self.device.recover(ctx.heal_time, self.deep_cond);
            self.em_damage += self.em_heal_delta;
            epoch - ctx.heal_time.value()
        } else {
            self.em_damage += self.em_normal_delta;
            epoch
        };
        let stress_time = run_time * self.spec.utilization.value();
        // The process corner scales effective stress time: a fast-aging
        // corner accumulates wearout as if it had run longer.
        self.device.stress(
            Seconds::new(stress_time * self.spec.wear_factor),
            self.stress_cond,
        );
        let idle_time = run_time - stress_time;
        if idle_time > 0.0 {
            self.device
                .recover(Seconds::new(idle_time), self.passive_cond);
        }

        // Pinned-floor clamp: healing cannot reverse damage below a fixed
        // fraction of the worst damage ever reached (voids re-nucleate).
        self.em_peak = self.em_peak.max(self.em_damage);
        let floor = ctx.em_pinned_floor * self.em_peak;
        self.em_damage = self.em_damage.clamp(floor, 1.0);

        let degradation = 1.0 - ctx.ro.frequency(self.device.delta_vth_mv()).value() / ctx.fresh_hz;
        self.guardband = self.guardband.max(degradation);
        self.score = degradation + self.em_damage;
        self.epochs_run += 1;
        if self.em_damage >= 1.0 || degradation >= ctx.fail_guardband {
            self.failed_at = Some(Seconds::new(self.epochs_run as f64 * epoch));
        }
    }

    /// The score the worst-first selector ranks this chip by: a chip
    /// whose sensor has been flagged ranks worst-of-all, so the
    /// scheduler heals it every epoch rather than silently skipping a
    /// chip it can no longer see (conservative degradation).
    pub(crate) fn rank_score(&self) -> f64 {
        if self.sensor_flagged {
            f64::INFINITY
        } else {
            self.score
        }
    }

    /// Re-reads this chip's wear sensor after an epoch step, applying
    /// `fault` and running staleness detection. Returns `true` on the
    /// epoch the sensor is first flagged as bad.
    ///
    /// Only called when a fault plan is active; fault-free runs keep
    /// [`ChipState::step`]'s exact score and never enter this path, so
    /// their schedules are byte-identical to builds without injection.
    pub(crate) fn sense(&mut self, fault: Option<SensorFaultKind>) -> bool {
        let reading = match fault {
            None | Some(SensorFaultKind::Noisy(_)) => self.score,
            // A latched ring-oscillator monitor reads "fresh" forever.
            Some(SensorFaultKind::Stuck) => 0.0,
            Some(SensorFaultKind::Dropped) => f64::NAN,
        };
        let stale = !reading.is_finite() || reading.to_bits() == self.last_sensed_bits;
        self.stale_epochs = if stale { self.stale_epochs + 1 } else { 0 };
        self.last_sensed_bits = reading.to_bits();
        if reading.is_finite() {
            self.score = reading;
        }
        if !self.sensor_flagged && self.stale_epochs >= SENSOR_STALE_EPOCHS {
            self.sensor_flagged = true;
            return true;
        }
        false
    }

    pub fn outcome(&self) -> ChipOutcome {
        ChipOutcome {
            index: self.spec.index,
            guardband: self.guardband,
            ttf: self.failed_at,
            epochs_run: self.epochs_run,
            healed_epochs: self.healed_epochs,
        }
    }
}

/// What one chip contributes to the fleet aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipOutcome {
    /// Global chip index.
    pub index: u64,
    /// The frequency guardband this chip required over its life.
    pub guardband: f64,
    /// Time to failure (EM damage reached 1 or degradation crossed the
    /// failure threshold); `None` if the chip survived the horizon
    /// (censored).
    pub ttf: Option<Seconds>,
    /// Epochs actually stepped (short of the horizon when failed).
    pub epochs_run: u64,
    /// Epochs this chip was granted a maintenance slot.
    pub healed_epochs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_specs_are_a_pure_function_of_seed_and_index() {
        let v = VariationModel::default();
        let base = Kelvin::new(333.15);
        let a = ChipSpec::draw(42, 17, base, &v);
        let b = ChipSpec::draw(42, 17, base, &v);
        assert_eq!(a, b);
        let c = ChipSpec::draw(42, 18, base, &v);
        assert_ne!(a.wear_factor.to_bits(), c.wear_factor.to_bits());
        let d = ChipSpec::draw(43, 17, base, &v);
        assert_ne!(a.wear_factor.to_bits(), d.wear_factor.to_bits());
    }

    #[test]
    fn variation_spreads_are_centered_where_configured() {
        let v = VariationModel::default();
        let base = Kelvin::new(333.15);
        let n = 2000;
        let mut wear = 0.0;
        let mut util = 0.0;
        for i in 0..n {
            let s = ChipSpec::draw(7, i, base, &v);
            wear += s.wear_factor.ln();
            util += s.utilization.value();
            assert!(s.utilization.value() >= 0.05);
        }
        assert!(
            (wear / n as f64).abs() < 0.02,
            "ln wear mean {}",
            wear / n as f64
        );
        assert!(
            (util / n as f64 - v.utilization_mean).abs() < 0.02,
            "util mean {}",
            util / n as f64
        );
    }
}
