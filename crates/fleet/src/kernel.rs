//! Column-sweep epoch kernels over the [`ChipStore`] columns.
//!
//! Each kernel is compiled twice through [`dh_simd::dispatch!`] — a
//! scalar body and an AVX2-enabled body the compiler may autovectorize —
//! under the crate-wide bit-identity contract: both bodies are the same
//! Rust source, floating-point expressions are never reassociated, and
//! the transcendentals resolve to the same libm symbols, so the two
//! backends produce bit-identical columns (pinned by
//! `dispatch_backends_agree` below and the `fleet_columnar` proptest
//! against the per-chip reference path).
//!
//! The math is a line-for-line transcription of
//! [`crate::chip::ChipState::step`] / `BtiDevice::{stress, recover}` /
//! [`crate::chip::ChipState::sense`] onto columns: same operation order,
//! same guards, same clamps. Anything constant over a chip's lifetime
//! was hoisted into the store's constant columns by
//! [`ChipStore::reset`]; what remains per epoch is the stress power law,
//! the universal-relaxation curve, the ring-oscillator frequency map,
//! and the EM clamp.

use dh_units::Seconds;

use crate::chip::SENSOR_STALE_EPOCHS;
use crate::store::{
    ChipStore, ColumnarCtx, ALIVE, F_CROSS_PD, F_DEEP_NOOP, F_RUN_IDLE_H, F_RUN_IDLE_N, F_SAME_DD,
    F_SAME_PP, F_STRESS_NOOP_H, F_STRESS_NOOP_N, SEG_DEEP, SEG_NONE, SEG_PASSIVE,
};

/// Sensor fault codes for [`sensor_sweep_columns`] (`Noisy` reads the
/// true score, like no fault — the incident kind is resolved host-side).
pub(crate) const FAULT_NONE: u8 = 0;
pub(crate) const FAULT_STUCK: u8 = 1;
pub(crate) const FAULT_DROPPED: u8 = 2;

/// `BtiDevice::stress` + `apply_stress_totals` for chip `i`, with the
/// equivalent-age reconstruction exactly as `StressLaw::advance_wearout`
/// evaluates it. Only called when the reference's input guard passes, so
/// the open recovery segment (if any) is closed.
#[inline(always)]
fn stress_chip(s: &mut ChipStore, ctx: &ColumnarCtx, i: usize, sdt: f64, hf: f64) {
    s.seg_kind[i] = SEG_NONE;
    let a = s.a_stress[i];
    let total = s.rec[i] + s.soft[i] + s.hard[i];
    let age = if total <= 0.0 {
        0.0
    } else {
        (total / a).powf(ctx.inv_n)
    };
    let new_total = a * (age + sdt).powf(ctx.n);
    let generated = (new_total - total).max(0.0);

    let new_window = s.window[i] + sdt;
    let p_target = ctx
        .model
        .permanent_fraction(Seconds::new(new_window))
        .value()
        * new_total;
    let p_current = s.soft[i] + s.hard[i];
    let dp = (p_target - p_current).clamp(0.0, generated);
    s.soft[i] += dp;
    s.rec[i] += generated - dp;

    let transfer = s.soft[i] * hf;
    s.soft[i] -= transfer;
    s.hard[i] += transfer;
    s.window[i] = new_window;
}

/// `BtiDevice::recover` for chip `i` at `call_kind` ∈ {passive, deep}.
/// The `sf_*`/`wf_*` pair passed in is the anneal/window factor column
/// pair for this call's dt; which of the pair applies depends on the θ
/// of the segment that survives the continuation check (the *stored*
/// segment's condition, exactly like the reference).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn recover_chip(
    s: &mut ChipStore,
    ctx: &ColumnarCtx,
    i: usize,
    call_kind: u32,
    dt: f64,
    sf_p: f64,
    sf_d: f64,
    wf_p: f64,
    wf_d: f64,
) {
    let flags = s.flags[i];
    let stored = s.seg_kind[i];
    let continues = match (stored, call_kind) {
        (SEG_PASSIVE, SEG_PASSIVE) => flags & F_SAME_PP != 0,
        (SEG_DEEP, SEG_DEEP) => flags & F_SAME_DD != 0,
        (SEG_PASSIVE, SEG_DEEP) | (SEG_DEEP, SEG_PASSIVE) => flags & F_CROSS_PD != 0,
        _ => false,
    };
    let kind = if continues {
        stored
    } else {
        // New relaxation segment: ξ referenced to the equivalent age of
        // the accumulated wearout at the reference condition, floored at
        // 1 s (f64::max semantics, so a NaN age also floors to 1).
        let total = s.rec[i] + s.soft[i] + s.hard[i];
        let age = if total <= 0.0 {
            0.0
        } else {
            (total / ctx.a_ref).powf(ctx.inv_n)
        };
        s.seg_start[i] = total;
        s.seg_age[i] = age.max(1.0);
        s.seg_elapsed[i] = 0.0;
        s.seg_kind[i] = call_kind;
        call_kind
    };
    let (theta, sf, wf) = if kind == SEG_DEEP {
        (s.theta_d[i], sf_d, wf_d)
    } else {
        (s.theta_p[i], sf_p, wf_p)
    };
    s.soft[i] *= sf;
    s.window[i] *= wf;

    let elapsed = s.seg_elapsed[i] + dt;
    let xi_eff = theta * (elapsed / s.seg_age[i]);
    let r = ctx.model.relaxation().recovery_fraction_at(xi_eff).value();
    let permanent_now = s.soft[i] + s.hard[i];
    let remaining = (s.seg_start[i] * (1.0 - r)).max(permanent_now);
    s.rec[i] = (remaining - permanent_now).max(0.0);
    s.seg_elapsed[i] = elapsed;
}

dh_simd::dispatch! {
    /// Steps every live chip in `[glo, ghi)` through one epoch
    /// (`ChipState::step` on columns). `selected` is group-local (index
    /// `i - glo`) and says which chips hold a recovery slot this epoch.
    /// Returns how many chips failed during this sweep.
    pub(crate) fn epoch_step_columns(
        store: &mut ChipStore,
        ctx: ColumnarCtx,
        glo: usize,
        ghi: usize,
        selected: &[bool],
        epoch_index: u64,
    ) -> u64 {
        let mut newly_failed = 0u64;
        for i in glo..ghi {
            if store.failed_epoch[i] != ALIVE {
                continue;
            }
            let flags = store.flags[i];
            if selected[i - glo] {
                store.healed[i] += 1;
                if flags & F_DEEP_NOOP == 0 {
                    recover_chip(
                        store, &ctx, i, SEG_DEEP, ctx.heal_dt,
                        store.sf_p_heal[i], store.sf_d_heal[i],
                        store.wf_p_heal[i], store.wf_d_heal[i],
                    );
                }
                store.em[i] += store.em_dh[i];
                if flags & F_STRESS_NOOP_H == 0 {
                    stress_chip(store, &ctx, i, store.stress_dt_h[i], store.hf_h[i]);
                }
                if flags & F_RUN_IDLE_H != 0 {
                    recover_chip(
                        store, &ctx, i, SEG_PASSIVE, store.idle_h[i],
                        store.sf_p_idle_h[i], store.sf_d_idle_h[i],
                        store.wf_p_idle_h[i], store.wf_d_idle_h[i],
                    );
                }
            } else {
                store.em[i] += store.em_dn[i];
                if flags & F_STRESS_NOOP_N == 0 {
                    stress_chip(store, &ctx, i, store.stress_dt_n[i], store.hf_n[i]);
                }
                if flags & F_RUN_IDLE_N != 0 {
                    recover_chip(
                        store, &ctx, i, SEG_PASSIVE, store.idle_n[i],
                        store.sf_p_idle_n[i], store.sf_d_idle_n[i],
                        store.wf_p_idle_n[i], store.wf_d_idle_n[i],
                    );
                }
            }

            store.em_peak[i] = store.em_peak[i].max(store.em[i]);
            let floor = ctx.em_pinned_floor * store.em_peak[i];
            store.em[i] = store.em[i].clamp(floor, 1.0);

            let total = store.rec[i] + store.soft[i] + store.hard[i];
            let degradation = 1.0 - ctx.ro.frequency(total).value() / ctx.fresh_hz;
            store.guardband[i] = store.guardband[i].max(degradation);
            store.score[i] = degradation + store.em[i];
            store.epochs_run[i] += 1;
            if store.em[i] >= 1.0 || degradation >= ctx.fail_guardband {
                store.failed_epoch[i] = epoch_index.min(u64::from(u32::MAX) - 1) as u32;
                newly_failed += 1;
            }
        }
        newly_failed
    }
}

dh_simd::dispatch! {
    /// Re-reads every live chip's wear sensor (`ChipState::sense` on
    /// columns). `fault_code` and `newly` are group-local; `newly[j]` is
    /// set on the epoch chip `glo + j`'s sensor is first flagged, and the
    /// host turns those marks into [`dh_fault::SensorIncident`]s in chip
    /// order. Only runs under a fault plan — fault-free runs never call
    /// it, exactly like the reference.
    pub(crate) fn sensor_sweep_columns(
        store: &mut ChipStore,
        glo: usize,
        ghi: usize,
        fault_code: &[u8],
        newly: &mut [u8],
    ) {
        for i in glo..ghi {
            if store.failed_epoch[i] != ALIVE {
                continue;
            }
            let j = i - glo;
            let reading = match fault_code[j] {
                FAULT_STUCK => 0.0,
                FAULT_DROPPED => f64::NAN,
                _ => store.score[i],
            };
            let stale = !reading.is_finite() || reading.to_bits() == store.last_bits[i];
            store.stale[i] = if stale { store.stale[i] + 1 } else { 0 };
            store.last_bits[i] = reading.to_bits();
            if reading.is_finite() {
                store.score[i] = reading;
            }
            if store.flagged[i] == 0 && store.stale[i] >= SENSOR_STALE_EPOCHS {
                store.flagged[i] = 1;
                newly[j] = 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::FleetConfig;

    #[test]
    fn dispatch_backends_agree() {
        // Step a small store a few epochs under both backends and compare
        // every state column bit for bit.
        let config = FleetConfig {
            devices: 16,
            shard_size: 16,
            group_size: 16,
            ..FleetConfig::default()
        };
        let run = |force: bool| {
            dh_simd::force_scalar(force);
            let ctx = ColumnarCtx::new(&config);
            let mut store = ChipStore::new();
            store.reset(&config, &ctx, 0, 16);
            let selected: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
            for e in 0..32 {
                epoch_step_columns(&mut store, ctx, 0, 16, &selected, e);
            }
            dh_simd::force_scalar(false);
            store
        };
        let simd = run(false);
        let scalar = run(true);
        for k in 0..16 {
            assert_eq!(simd.rec[k].to_bits(), scalar.rec[k].to_bits(), "rec[{k}]");
            assert_eq!(simd.soft[k].to_bits(), scalar.soft[k].to_bits());
            assert_eq!(simd.hard[k].to_bits(), scalar.hard[k].to_bits());
            assert_eq!(simd.em[k].to_bits(), scalar.em[k].to_bits());
            assert_eq!(simd.score[k].to_bits(), scalar.score[k].to_bits());
            assert_eq!(simd.guardband[k].to_bits(), scalar.guardband[k].to_bits());
        }
    }
}
