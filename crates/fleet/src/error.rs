//! Fleet-layer errors.

use core::fmt;

/// Everything that can go wrong building, running, checkpointing, or
/// resuming a fleet simulation.
#[derive(Debug)]
pub enum FleetError {
    /// A configuration field is out of range or inconsistent.
    InvalidConfig(String),
    /// A report was requested before every shard was folded.
    NotFinished {
        /// Shards folded so far.
        done: u64,
        /// Total shards in the run.
        total: u64,
    },
    /// Reading or writing a checkpoint file failed.
    Io(String),
    /// A checkpoint's bytes do not parse (bad magic, truncation, or a
    /// checksum mismatch).
    Corrupt(String),
    /// A checkpoint was written by an incompatible snapshot format.
    Version {
        /// The version byte found in the file.
        found: u8,
        /// The version this build writes and reads.
        expected: u8,
    },
    /// A checkpoint belongs to a different [`crate::FleetConfig`] (the
    /// config fingerprint does not match), so resuming from it would
    /// silently mix two different simulations.
    ConfigMismatch {
        /// Fingerprint stored in the checkpoint.
        found: u64,
        /// Fingerprint of the config attempting to resume.
        expected: u64,
    },
    /// A chip produced a NaN/Inf sample that would silently poison the
    /// streaming quantile estimators. Strict runs abort with this error;
    /// supervised runs reject the sample and record it in the
    /// [`dh_fault::DegradedReport`].
    NonFiniteSample {
        /// The shard that produced the sample.
        shard: u64,
        /// The global chip index of the offending outcome.
        chip: u64,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig(why) => write!(f, "invalid fleet config: {why}"),
            Self::NotFinished { done, total } => {
                write!(f, "fleet run not finished: {done}/{total} shards folded")
            }
            Self::Io(why) => write!(f, "checkpoint I/O failed: {why}"),
            Self::Corrupt(why) => write!(f, "checkpoint is corrupt: {why}"),
            Self::Version { found, expected } => {
                write!(
                    f,
                    "checkpoint version {found} (this build reads {expected})"
                )
            }
            Self::ConfigMismatch { found, expected } => write!(
                f,
                "checkpoint fingerprint {found:#018x} does not match config {expected:#018x}"
            ),
            Self::NonFiniteSample { shard, chip } => write!(
                f,
                "chip {chip} (shard {shard}) produced a non-finite sample"
            ),
        }
    }
}

impl std::error::Error for FleetError {}
