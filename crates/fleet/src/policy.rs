//! Fleet-level recovery scheduling: who gets healed when the maintenance
//! window cannot hold everyone.
//!
//! Chips are organized into fixed **maintenance groups** (racks, in
//! datacenter terms): group membership is `index / group_size`, a pure
//! function of the chip index, so the schedule is identical at any shard
//! size or thread count. Each epoch a [`MaintenanceBudget`] grants every
//! group a fixed number of recovery slots and a [`FleetPolicy`] decides
//! which chips fill them — the paper's "in-time scheduled recovery"
//! tradeoff lifted from one chip's cores to a fleet's chips.

use crate::chip::ChipState;

/// How many chips per maintenance group may enter BTI/EM active recovery
/// in one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceBudget {
    /// Recovery slots per group per epoch (0 disables healing entirely).
    pub slots_per_group: u64,
}

impl Default for MaintenanceBudget {
    fn default() -> Self {
        Self { slots_per_group: 8 }
    }
}

/// Which chips inside a group get this epoch's recovery slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FleetPolicy {
    /// A fixed set: the first `slots` chips of the group hold the slots
    /// forever (dedicated hot spares). The naive baseline — everyone else
    /// ages without relief.
    Static,
    /// The most-degraded *surviving* chips (ranked by wear score,
    /// ties broken toward the lower index) get the slots — the
    /// sensor-driven policy a deployment manager would actually run.
    WorstFirst,
    /// The slot window rotates through the group by epoch, so every chip
    /// is healed at the same duty cycle regardless of its condition.
    RoundRobin,
}

impl FleetPolicy {
    /// Stable lowercase name used in metric keys and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Self::Static => "static",
            Self::WorstFirst => "worst-first",
            Self::RoundRobin => "round-robin",
        }
    }

    /// Parses a CLI-style name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "static" => Some(Self::Static),
            "worst-first" => Some(Self::WorstFirst),
            "round-robin" => Some(Self::RoundRobin),
            _ => None,
        }
    }

    /// Stable wire discriminant (config fingerprinting).
    pub(crate) fn discriminant(self) -> u64 {
        match self {
            Self::Static => 0,
            Self::WorstFirst => 1,
            Self::RoundRobin => 2,
        }
    }

    /// Fills `selected` (one flag per group member) with this epoch's slot
    /// assignment for one group and returns how many **live** chips were
    /// granted a slot.
    ///
    /// Only group-local state is consulted (chip states, the epoch index),
    /// never anything shard- or thread-scoped, which is what keeps the
    /// schedule partition-invariant. Static and round-robin model dumb
    /// schedulers faithfully: a slot assigned to a failed chip is wasted,
    /// not reassigned. Worst-first is sensor-driven and only ranks
    /// survivors.
    pub(crate) fn select(
        self,
        epoch: u64,
        budget: MaintenanceBudget,
        chips: &[ChipState],
        selected: &mut [bool],
    ) -> u64 {
        debug_assert_eq!(chips.len(), selected.len());
        selected.fill(false);
        let n = chips.len();
        let slots = (budget.slots_per_group as usize).min(n);
        if slots == 0 {
            return 0;
        }
        let mut healed = 0;
        match self {
            Self::Static => {
                for i in 0..slots {
                    if chips[i].alive() {
                        selected[i] = true;
                        healed += 1;
                    }
                }
            }
            Self::RoundRobin => {
                let start = (epoch as usize * slots) % n;
                for j in 0..slots {
                    let i = (start + j) % n;
                    if chips[i].alive() {
                        selected[i] = true;
                        healed += 1;
                    }
                }
            }
            Self::WorstFirst => {
                let mut ranked: Vec<usize> = (0..n).filter(|&i| chips[i].alive()).collect();
                // rank_score, not score: a chip whose sensor was flagged
                // as bad ranks worst-of-all so it is healed every epoch
                // instead of silently starved.
                ranked.sort_by(|&a, &b| {
                    chips[b]
                        .rank_score()
                        .total_cmp(&chips[a].rank_score())
                        .then(a.cmp(&b))
                });
                for &i in ranked.iter().take(slots) {
                    selected[i] = true;
                    healed += 1;
                }
            }
        }
        healed
    }
}

impl FleetPolicy {
    /// [`FleetPolicy::select`] over [`crate::store::ChipStore`] column
    /// slices: same slot assignment, same tie-breaks, but ranking reads
    /// the score/flagged columns directly and reuses the caller's
    /// `ranked` scratch so the hot loop allocates nothing. `alive` is
    /// the group's `failed_epoch` column ([`crate::store::ALIVE`] =
    /// still alive).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn select_columnar(
        self,
        epoch: u64,
        budget: MaintenanceBudget,
        alive: &[u32],
        score: &[f64],
        flagged: &[u8],
        selected: &mut [bool],
        ranked: &mut Vec<u32>,
    ) -> u64 {
        debug_assert_eq!(alive.len(), selected.len());
        selected.fill(false);
        let n = alive.len();
        let is_alive = |i: usize| alive[i] == crate::store::ALIVE;
        let slots = (budget.slots_per_group as usize).min(n);
        if slots == 0 {
            return 0;
        }
        let mut healed = 0;
        match self {
            Self::Static => {
                for (i, slot) in selected.iter_mut().enumerate().take(slots) {
                    if alive[i] == crate::store::ALIVE {
                        *slot = true;
                        healed += 1;
                    }
                }
            }
            Self::RoundRobin => {
                let start = (epoch as usize * slots) % n;
                for j in 0..slots {
                    let i = (start + j) % n;
                    if is_alive(i) {
                        selected[i] = true;
                        healed += 1;
                    }
                }
            }
            Self::WorstFirst => {
                // rank_score semantics: a flagged sensor ranks worst-of-all
                // so the chip is healed every epoch, never silently starved.
                let rank = |i: u32| {
                    if flagged[i as usize] != 0 {
                        f64::INFINITY
                    } else {
                        score[i as usize]
                    }
                };
                ranked.clear();
                ranked.extend((0..n as u32).filter(|&i| is_alive(i as usize)));
                // The comparator is a total order (index tie-break), so an
                // unstable sort is deterministic here.
                ranked.sort_unstable_by(|&a, &b| rank(b).total_cmp(&rank(a)).then(a.cmp(&b)));
                for &i in ranked.iter().take(slots) {
                    selected[i as usize] = true;
                    healed += 1;
                }
            }
        }
        healed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{ChipContext, ChipSpec, ChipState, VariationModel};
    use dh_circuit::RingOscillator;
    use dh_em::black::BlackModel;
    use dh_units::{CurrentDensity, Kelvin, Seconds, Volts};

    fn context() -> ChipContext {
        let ro = RingOscillator::paper_75_stage();
        let fresh_hz = ro.frequency(0.0).value();
        ChipContext {
            ro,
            fresh_hz,
            black: BlackModel::calibrated_to_paper(),
            epoch: Seconds::from_hours(168.0),
            heal_time: Seconds::from_hours(25.2),
            vdd: Volts::new(0.9),
            recovery_bias: Volts::new(-0.3),
            j_local: CurrentDensity::from_ma_per_cm2(2.5),
            em_wear_heal: 0.8 - 0.9 * 0.2,
            em_pinned_floor: 0.05,
            fail_guardband: 0.1,
        }
    }

    fn group(n: u64) -> Vec<ChipState> {
        let ctx = context();
        (0..n)
            .map(|i| {
                ChipState::new(
                    ChipSpec::draw(9, i, Kelvin::new(333.15), &VariationModel::default()),
                    &ctx,
                )
            })
            .collect()
    }

    #[test]
    fn static_policy_always_picks_the_same_slots() {
        let chips = group(8);
        let budget = MaintenanceBudget { slots_per_group: 3 };
        let mut a = vec![false; 8];
        let mut b = vec![false; 8];
        assert_eq!(FleetPolicy::Static.select(0, budget, &chips, &mut a), 3);
        assert_eq!(FleetPolicy::Static.select(57, budget, &chips, &mut b), 3);
        assert_eq!(a, b);
        assert_eq!(&a[..3], &[true, true, true]);
    }

    #[test]
    fn round_robin_covers_every_chip_at_equal_duty() {
        let chips = group(8);
        let budget = MaintenanceBudget { slots_per_group: 2 };
        let mut counts = [0u32; 8];
        let mut sel = vec![false; 8];
        for epoch in 0..8 {
            FleetPolicy::RoundRobin.select(epoch, budget, &chips, &mut sel);
            for (c, &s) in counts.iter_mut().zip(&sel) {
                *c += u32::from(s);
            }
        }
        assert_eq!(counts, [2; 8], "two full rotations in 8 epochs");
    }

    #[test]
    fn worst_first_ranks_by_score_with_index_tiebreak() {
        let mut chips = group(6);
        chips[4].score = 0.9;
        chips[1].score = 0.5;
        chips[2].score = 0.5;
        let budget = MaintenanceBudget { slots_per_group: 3 };
        let mut sel = vec![false; 6];
        assert_eq!(
            FleetPolicy::WorstFirst.select(0, budget, &chips, &mut sel),
            3
        );
        assert_eq!(sel, [false, true, true, false, true, false]);
    }

    #[test]
    fn dead_chips_waste_static_slots_but_not_worst_first_slots() {
        let mut chips = group(6);
        chips[0].failed_at = Some(Seconds::new(1.0));
        let budget = MaintenanceBudget { slots_per_group: 2 };
        let mut sel = vec![false; 6];
        assert_eq!(FleetPolicy::Static.select(0, budget, &chips, &mut sel), 1);
        assert_eq!(
            FleetPolicy::WorstFirst.select(0, budget, &chips, &mut sel),
            2
        );
        assert!(!sel[0], "dead chip never granted a worst-first slot");
    }

    #[test]
    fn names_round_trip() {
        for p in [
            FleetPolicy::Static,
            FleetPolicy::WorstFirst,
            FleetPolicy::RoundRobin,
        ] {
            assert_eq!(FleetPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(FleetPolicy::parse("nope"), None);
    }
}
