//! Versioned, hand-rolled checkpointing for fleet runs (the build has no
//! serde; the format is a few dozen lines of explicit little-endian
//! fields, which is also what makes it auditable).
//!
//! Layout, all integers little-endian:
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `"DHFL"` |
//! | 4      | 1    | format version (currently 2) |
//! | 5      | 8    | config fingerprint ([`crate::FleetConfig::fingerprint`]) |
//! | 13     | 8    | shard cursor (shards fully folded) |
//! | 21     | 8    | payload length `L` |
//! | 29     | `L`  | [`FleetAccumulator`] state, then the degraded-state section |
//! | 29+L   | 8    | FNV-1a checksum of bytes `0..29+L` |
//!
//! Version 2 appends a degraded-state section to the payload: retry and
//! rejected-sample counts, quarantined shards (with their panic
//! messages), sensor incidents, and checkpoint fallbacks. A kill/resume
//! cycle therefore cannot launder a degraded run into a clean one — the
//! quarantine record survives the process.
//!
//! Writes go through a temp file + atomic rename, so a kill mid-write
//! leaves the previous checkpoint intact — the property the
//! kill-and-resume acceptance test leans on. [`CheckpointStore`] layers
//! generation keeping on top: writes rotate `base ← base.1 ← base.2 …`
//! before landing, and [`CheckpointStore::read_newest_valid`] walks the
//! generations newest-first, skipping (and recording) any that fail
//! validation, so one corrupted write costs a replay window, never the
//! run.

use std::path::{Path, PathBuf};

use dh_fault::{CheckpointFallback, DegradedReport, SensorFaultKind, SensorIncident, ShardFailure};

use crate::error::FleetError;
use crate::sim::FleetAccumulator;
use crate::wire::{fnv1a, put_str, put_u64, take_str, take_u64, FNV_OFFSET};

/// File magic.
pub const MAGIC: [u8; 4] = *b"DHFL";
/// Format version this build writes and reads.
pub const VERSION: u8 = 2;

/// A point-in-time image of a fleet run: everything needed to continue
/// folding shards as if the process had never died.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Fingerprint of the config that produced this state.
    pub config_fingerprint: u64,
    /// Shards fully folded into the aggregates.
    pub cursor: u64,
    /// The streaming aggregate state.
    pub(crate) acc: FleetAccumulator,
    /// Everything the run has survived so far (empty for a clean run).
    pub degraded: DegradedReport,
}

/// Appends the degraded-state section to the payload.
fn encode_degraded(buf: &mut Vec<u8>, d: &DegradedReport) {
    put_u64(buf, d.retries);
    put_u64(buf, d.rejected_samples);
    put_u64(buf, d.quarantined.len() as u64);
    for q in &d.quarantined {
        put_u64(buf, q.shard);
        put_u64(buf, u64::from(q.attempts));
        put_str(buf, &q.error);
    }
    put_u64(buf, d.sensor_incidents.len() as u64);
    for s in &d.sensor_incidents {
        put_u64(buf, s.chip);
        put_u64(buf, u64::from(s.kind.discriminant()));
        put_u64(buf, s.kind.payload().to_bits());
        put_u64(buf, s.epoch);
    }
    put_u64(buf, d.checkpoint_fallbacks.len() as u64);
    for c in &d.checkpoint_fallbacks {
        put_u64(buf, c.generation);
        put_str(buf, &c.reason);
    }
}

/// Reads the degraded-state section back from the front of `bytes`.
fn decode_degraded(bytes: &mut &[u8]) -> Result<DegradedReport, FleetError> {
    let mut d = DegradedReport {
        retries: take_u64(bytes, "degraded.retries")?,
        rejected_samples: take_u64(bytes, "degraded.rejected")?,
        ..DegradedReport::default()
    };
    let n = take_u64(bytes, "degraded.quarantined.len")?;
    for _ in 0..n {
        d.quarantined.push(ShardFailure {
            shard: take_u64(bytes, "degraded.quarantined.shard")?,
            attempts: take_u64(bytes, "degraded.quarantined.attempts")? as u32,
            error: take_str(bytes, "degraded.quarantined.error")?,
        });
    }
    let n = take_u64(bytes, "degraded.incidents.len")?;
    for _ in 0..n {
        let chip = take_u64(bytes, "degraded.incidents.chip")?;
        let disc = take_u64(bytes, "degraded.incidents.kind")?;
        let payload = f64::from_bits(take_u64(bytes, "degraded.incidents.payload")?);
        let epoch = take_u64(bytes, "degraded.incidents.epoch")?;
        let kind = SensorFaultKind::from_wire(disc as u8, payload).ok_or_else(|| {
            FleetError::Corrupt(format!("unknown sensor-fault discriminant {disc}"))
        })?;
        d.sensor_incidents
            .push(SensorIncident { chip, kind, epoch });
    }
    let n = take_u64(bytes, "degraded.fallbacks.len")?;
    for _ in 0..n {
        d.checkpoint_fallbacks.push(CheckpointFallback {
            generation: take_u64(bytes, "degraded.fallbacks.generation")?,
            reason: take_str(bytes, "degraded.fallbacks.reason")?,
        });
    }
    Ok(d)
}

/// Writes `bytes` to `path` atomically (temp file + rename).
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), FleetError> {
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| FleetError::Io(format!("{}: {e}", path.display()));
    std::fs::write(&tmp, bytes).map_err(io)?;
    std::fs::rename(&tmp, path).map_err(io)?;
    dh_obs::counter!("fleet.checkpoint_bytes").add(bytes.len() as u64);
    dh_obs::counter!("fleet.checkpoints_written").incr();
    Ok(())
}

impl Snapshot {
    /// Serializes to the wire format described in the module docs.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        self.acc.encode(&mut payload);
        encode_degraded(&mut payload, &self.degraded);

        let mut buf = Vec::with_capacity(37 + payload.len());
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        put_u64(&mut buf, self.config_fingerprint);
        put_u64(&mut buf, self.cursor);
        put_u64(&mut buf, payload.len() as u64);
        buf.extend_from_slice(&payload);
        let checksum = fnv1a(FNV_OFFSET, &buf);
        put_u64(&mut buf, checksum);
        buf
    }

    /// Parses and fully validates the wire format.
    ///
    /// # Errors
    ///
    /// [`FleetError::Corrupt`] on bad magic, truncation, or checksum
    /// mismatch; [`FleetError::Version`] on a format this build cannot
    /// read.
    pub fn decode(bytes: &[u8]) -> Result<Self, FleetError> {
        if bytes.len() < 37 {
            return Err(FleetError::Corrupt(format!(
                "{} bytes is shorter than the fixed header",
                bytes.len()
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let mut tail = tail;
        let stored = take_u64(&mut tail, "checksum")?;
        let computed = fnv1a(FNV_OFFSET, body);
        if stored != computed {
            return Err(FleetError::Corrupt(format!(
                "checksum {stored:#018x} does not match contents {computed:#018x}"
            )));
        }
        if body[..4] != MAGIC {
            return Err(FleetError::Corrupt(format!(
                "bad magic {:02x?}",
                &body[..4]
            )));
        }
        let version = body[4];
        if version != VERSION {
            return Err(FleetError::Version {
                found: version,
                expected: VERSION,
            });
        }
        let mut view = &body[5..];
        let config_fingerprint = take_u64(&mut view, "config fingerprint")?;
        let cursor = take_u64(&mut view, "cursor")?;
        let payload_len = take_u64(&mut view, "payload length")? as usize;
        if view.len() != payload_len {
            return Err(FleetError::Corrupt(format!(
                "payload length {payload_len} but {} bytes present",
                view.len()
            )));
        }
        let acc = FleetAccumulator::decode(&mut view)?;
        let degraded = decode_degraded(&mut view)?;
        if !view.is_empty() {
            return Err(FleetError::Corrupt(format!(
                "{} trailing payload bytes",
                view.len()
            )));
        }
        Ok(Self {
            config_fingerprint,
            cursor,
            acc,
            degraded,
        })
    }

    /// Writes atomically (temp file + rename) and returns the byte count.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] on any filesystem failure.
    pub fn write(&self, path: &Path) -> Result<u64, FleetError> {
        let bytes = self.encode();
        write_atomic(path, &bytes)?;
        Ok(bytes.len() as u64)
    }

    /// Reads and validates a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] when the file cannot be read; decode errors as
    /// in [`Snapshot::decode`].
    pub fn read(path: &Path) -> Result<Self, FleetError> {
        let bytes =
            std::fs::read(path).map_err(|e| FleetError::Io(format!("{}: {e}", path.display())))?;
        Self::decode(&bytes)
    }

    /// [`Snapshot::read`], but a missing file is `Ok(None)` (fresh start)
    /// while an unreadable or corrupt file stays an error — silently
    /// restarting over a damaged checkpoint would discard real work.
    pub fn read_if_exists(path: &Path) -> Result<Option<Self>, FleetError> {
        match std::fs::read(path) {
            Ok(bytes) => Self::decode(&bytes).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(FleetError::Io(format!("{}: {e}", path.display()))),
        }
    }
}

/// A checkpoint file plus its last `keep - 1` predecessor generations:
/// `base` is the newest, `base.1` the one before it, and so on. One
/// corrupted (or torn, or truncated) write then costs a replay from the
/// previous generation instead of the whole run.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    base: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// A store at `base` keeping `keep` generations (clamped to ≥ 1;
    /// `keep == 1` degenerates to the plain single-file behavior).
    pub fn new(base: impl Into<PathBuf>, keep: usize) -> Self {
        Self {
            base: base.into(),
            keep: keep.max(1),
        }
    }

    /// The newest generation's path.
    pub fn base_path(&self) -> &Path {
        &self.base
    }

    /// Generations kept.
    pub fn keep(&self) -> usize {
        self.keep
    }

    /// The path of generation `generation` (0 = newest).
    pub fn generation_path(&self, generation: usize) -> PathBuf {
        if generation == 0 {
            self.base.clone()
        } else {
            PathBuf::from(format!("{}.{generation}", self.base.display()))
        }
    }

    /// Shifts every generation one slot older (the oldest falls off),
    /// making room for a fresh newest write. Missing generations are
    /// skipped.
    fn rotate(&self) -> Result<(), FleetError> {
        for generation in (0..self.keep.saturating_sub(1)).rev() {
            let from = self.generation_path(generation);
            let to = self.generation_path(generation + 1);
            match std::fs::rename(&from, &to) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(FleetError::Io(format!("{}: {e}", from.display())));
                }
            }
        }
        Ok(())
    }

    /// Rotates the generations and writes `snapshot` as the newest.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] on any filesystem failure.
    pub fn write(&self, snapshot: &Snapshot) -> Result<u64, FleetError> {
        self.rotate()?;
        snapshot.write(&self.base)
    }

    /// [`CheckpointStore::write`] with fault injection: after encoding,
    /// the plan may flip a bit or truncate the bytes before they land on
    /// disk. Returns the byte count and the corruption description (if
    /// one was injected).
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] on any filesystem failure.
    pub fn write_injected(
        &self,
        snapshot: &Snapshot,
        plan: Option<&dh_fault::FaultPlan>,
        write_index: u64,
    ) -> Result<(u64, Option<String>), FleetError> {
        self.rotate()?;
        let mut bytes = snapshot.encode();
        let note = plan.and_then(|p| p.corrupt_checkpoint(write_index, &mut bytes));
        write_atomic(&self.base, &bytes)?;
        Ok((bytes.len() as u64, note))
    }

    /// Walks the generations newest-first and returns the first snapshot
    /// that fully validates, together with a [`CheckpointFallback`]
    /// record for every newer generation that had to be skipped.
    ///
    /// All generations missing (a fresh start) or all invalid both
    /// return `Ok(None)` — the latter with the fallback records that say
    /// why the run is starting over. A snapshot for a *different* config
    /// still validates here; [`crate::FleetRun::resume`] rejects it.
    pub fn read_newest_valid(
        &self,
    ) -> Result<(Option<Snapshot>, Vec<CheckpointFallback>), FleetError> {
        let mut fallbacks = Vec::new();
        for generation in 0..self.keep {
            let path = self.generation_path(generation);
            let bytes = match std::fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => {
                    fallbacks.push(CheckpointFallback {
                        generation: generation as u64,
                        reason: format!("unreadable: {e}"),
                    });
                    continue;
                }
            };
            match Snapshot::decode(&bytes) {
                Ok(snapshot) => {
                    dh_obs::counter!("fleet.checkpoint_fallbacks").add(fallbacks.len() as u64);
                    return Ok((Some(snapshot), fallbacks));
                }
                Err(e) => fallbacks.push(CheckpointFallback {
                    generation: generation as u64,
                    reason: e.to_string(),
                }),
            }
        }
        dh_obs::counter!("fleet.checkpoint_fallbacks").add(fallbacks.len() as u64);
        Ok((None, fallbacks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{FleetConfig, FleetRun};

    fn snapshot_after_one_step() -> (FleetConfig, Snapshot) {
        let config = FleetConfig {
            devices: 64,
            years: 0.2,
            shard_size: 32,
            group_size: 16,
            ..FleetConfig::default()
        };
        let mut run = FleetRun::new(config.clone()).unwrap();
        run.step(1).unwrap();
        (config, run.snapshot())
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dh-fleet-ckpt-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshots_round_trip_bit_exactly() {
        let (_config, mut snap) = snapshot_after_one_step();
        // Populate the degraded section so the round trip covers it.
        snap.degraded.retries = 3;
        snap.degraded.quarantined.push(dh_fault::ShardFailure {
            shard: 1,
            attempts: 3,
            error: "injected fault".to_string(),
        });
        snap.degraded
            .sensor_incidents
            .push(dh_fault::SensorIncident {
                chip: 9,
                kind: SensorFaultKind::Noisy(8.0),
                epoch: 4,
            });
        snap.degraded
            .checkpoint_fallbacks
            .push(dh_fault::CheckpointFallback {
                generation: 0,
                reason: "checksum mismatch".to_string(),
            });
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.cursor, snap.cursor);
        assert_eq!(back.config_fingerprint, snap.config_fingerprint);
        assert_eq!(back.acc, snap.acc);
        assert_eq!(back.degraded, snap.degraded);
        // Re-encoding is byte-identical: the format is canonical.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn corruption_is_detected() {
        let (_config, snap) = snapshot_after_one_step();
        let bytes = snap.encode();

        let mut flipped = bytes.clone();
        flipped[20] ^= 0x40;
        assert!(matches!(
            Snapshot::decode(&flipped),
            Err(FleetError::Corrupt(_))
        ));

        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 5);
        assert!(Snapshot::decode(&truncated).is_err());

        let mut wrong_version = bytes.clone();
        wrong_version[4] = VERSION + 1;
        // Fix the checksum so only the version differs.
        let body_len = wrong_version.len() - 8;
        let sum = crate::wire::fnv1a(crate::wire::FNV_OFFSET, &wrong_version[..body_len]);
        wrong_version[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&wrong_version),
            Err(FleetError::Version { found, expected })
                if found == VERSION + 1 && expected == VERSION
        ));
    }

    #[test]
    fn files_round_trip_and_missing_files_are_none() {
        let (_config, snap) = snapshot_after_one_step();
        let dir = temp_dir("single");
        let path = dir.join("snap.dhfl");
        let bytes = snap.write(&path).unwrap();
        assert_eq!(bytes, snap.encode().len() as u64);
        let back = Snapshot::read(&path).unwrap();
        assert_eq!(back.acc, snap.acc);
        assert!(Snapshot::read_if_exists(&path).unwrap().is_some());
        std::fs::remove_file(&path).unwrap();
        assert!(Snapshot::read_if_exists(&path).unwrap().is_none());
    }

    #[test]
    fn resume_rejects_a_foreign_config() {
        let (config, snap) = snapshot_after_one_step();
        let mut other = config;
        other.seed += 1;
        assert!(matches!(
            FleetRun::resume(other, snap),
            Err(FleetError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn store_rotates_generations_oldest_off_the_end() {
        let (_config, snap) = snapshot_after_one_step();
        let dir = temp_dir("rotate");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), 3);
        // Three writes with distinct cursors: 5, 6, 7.
        for cursor in 5..8 {
            let mut s = snap.clone();
            s.cursor = cursor;
            store.write(&s).unwrap();
        }
        assert_eq!(Snapshot::read(&store.generation_path(0)).unwrap().cursor, 7);
        assert_eq!(Snapshot::read(&store.generation_path(1)).unwrap().cursor, 6);
        assert_eq!(Snapshot::read(&store.generation_path(2)).unwrap().cursor, 5);
        // A fourth write drops cursor 5 off the end.
        let mut s = snap.clone();
        s.cursor = 8;
        store.write(&s).unwrap();
        assert_eq!(Snapshot::read(&store.generation_path(2)).unwrap().cursor, 6);
        assert!(!store.generation_path(3).exists());
    }

    #[test]
    fn read_newest_valid_falls_back_over_corruption() {
        let (_config, snap) = snapshot_after_one_step();
        let dir = temp_dir("fallback");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), 3);
        for cursor in 1..4 {
            let mut s = snap.clone();
            s.cursor = cursor;
            store.write(&s).unwrap();
        }
        // Corrupt the newest generation on disk.
        let newest = store.generation_path(0);
        let mut bytes = std::fs::read(&newest).unwrap();
        bytes[10] ^= 0xff;
        std::fs::write(&newest, &bytes).unwrap();

        let (found, fallbacks) = store.read_newest_valid().unwrap();
        assert_eq!(found.unwrap().cursor, 2, "fell back to generation 1");
        assert_eq!(fallbacks.len(), 1);
        assert_eq!(fallbacks[0].generation, 0);
        assert!(fallbacks[0].reason.contains("checksum"));
    }

    #[test]
    fn all_generations_invalid_restarts_with_the_record() {
        let (_config, snap) = snapshot_after_one_step();
        let dir = temp_dir("all-bad");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), 2);
        store.write(&snap).unwrap();
        store.write(&snap).unwrap();
        for generation in 0..2 {
            std::fs::write(store.generation_path(generation), b"garbage").unwrap();
        }
        let (found, fallbacks) = store.read_newest_valid().unwrap();
        assert!(found.is_none());
        assert_eq!(fallbacks.len(), 2);
    }

    #[test]
    fn missing_generations_are_not_fallbacks() {
        let dir = temp_dir("fresh");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), 3);
        let (found, fallbacks) = store.read_newest_valid().unwrap();
        assert!(found.is_none());
        assert!(fallbacks.is_empty(), "a fresh start is not a fallback");
    }

    #[test]
    fn injected_writes_corrupt_exactly_the_planned_generations() {
        let (_config, snap) = snapshot_after_one_step();
        let dir = temp_dir("inject");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), 2);
        let plan = dh_fault::FaultPlan::parse("ckpt-flip=2", 5).unwrap();
        let (_, note0) = store.write_injected(&snap, Some(&plan), 0).unwrap();
        assert!(note0.is_none());
        assert!(Snapshot::read(&store.generation_path(0)).is_ok());
        let (_, note1) = store.write_injected(&snap, Some(&plan), 1).unwrap();
        assert!(note1.unwrap().contains("flipped bit"));
        assert!(Snapshot::read(&store.generation_path(0)).is_err());
        // The previous (clean) generation still resumes the run.
        let (found, fallbacks) = store.read_newest_valid().unwrap();
        assert!(found.is_some());
        assert_eq!(fallbacks.len(), 1);
    }
}
