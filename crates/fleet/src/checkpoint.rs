//! Versioned, hand-rolled checkpointing for fleet runs (the build has no
//! serde; the format is a few dozen lines of explicit little-endian
//! fields, which is also what makes it auditable).
//!
//! Layout, all integers little-endian:
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `"DHFL"` |
//! | 4      | 1    | format version (currently 3) |
//! | 5      | 8    | config fingerprint ([`crate::FleetConfig::fingerprint`]) |
//! | 13     | 8    | shard cursor (shards fully folded) |
//! | 21     | 8    | payload length `L` |
//! | 29     | `L`  | payload (see below) |
//! | 29+L   | 8    | FNV-1a checksum of bytes `0..29+L` |
//!
//! The **version 3** payload is a sequence of independently checksummed
//! slabs — each a contiguous little-endian dump appended with one
//! `extend_from_slice`-class memcpy, no per-field framing:
//!
//! | field | size | |
//! |-------|------|---|
//! | slab count | 8 | currently 2 |
//! | per slab: tag | 8 | [`SLAB_ACC`] / [`SLAB_DEGRADED`] |
//! | per slab: body length `B` | 8 | |
//! | per slab: body | `B` | the slab's linear state dump |
//! | per slab: checksum | 8 | FNV-1a of the body alone |
//!
//! The per-slab checksums localize corruption (a flipped bit names the
//! slab it hit, under the whole-file checksum that already rejects the
//! file) and let the writer assemble the payload as straight memcpys of
//! pre-encoded state through the [`AsyncCheckpointer`] double buffer.
//!
//! **Version 2** (the legacy format this build still resumes from) holds
//! the same two sections bare: [`FleetAccumulator`] state immediately
//! followed by the degraded-state section, no slab framing. The
//! degraded-state section carries retry and rejected-sample counts,
//! quarantined shards (with their panic messages), sensor incidents, and
//! checkpoint fallbacks, so a kill/resume cycle cannot launder a
//! degraded run into a clean one — the quarantine record survives the
//! process.
//!
//! Writes go through a temp file + atomic rename, so a kill mid-write
//! leaves the previous checkpoint intact — the property the
//! kill-and-resume acceptance test leans on. [`CheckpointStore`] layers
//! generation keeping on top: writes rotate `base ← base.1 ← base.2 …`
//! before landing, and [`CheckpointStore::read_newest_valid`] walks the
//! generations newest-first, skipping (and recording) any that fail
//! validation, so one corrupted write costs a replay window, never the
//! run.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use dh_fault::{
    CheckpointFallback, DegradedReport, DiskFaultKind, DiskIncident, SensorFaultKind,
    SensorIncident, ShardFailure,
};

use crate::error::FleetError;
use crate::sim::FleetAccumulator;
use crate::wire::{fnv1a, put_str, put_u64, take_str, take_u64, FNV_OFFSET};

/// File magic.
pub const MAGIC: [u8; 4] = *b"DHFL";
/// Format version this build writes.
pub const VERSION: u8 = 3;
/// Oldest format version this build still resumes from.
pub const LEGACY_VERSION: u8 = 2;

/// Slab tag: the [`FleetAccumulator`] linear dump.
const SLAB_ACC: u64 = 1;
/// Slab tag: the degraded-state section.
const SLAB_DEGRADED: u64 = 2;

/// A point-in-time image of a fleet run: everything needed to continue
/// folding shards as if the process had never died.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Fingerprint of the config that produced this state.
    pub config_fingerprint: u64,
    /// Shards fully folded into the aggregates.
    pub cursor: u64,
    /// The streaming aggregate state.
    pub(crate) acc: FleetAccumulator,
    /// Everything the run has survived so far (empty for a clean run).
    pub degraded: DegradedReport,
}

/// Appends the degraded-state section to the payload.
fn encode_degraded(buf: &mut Vec<u8>, d: &DegradedReport) {
    put_u64(buf, d.retries);
    put_u64(buf, d.rejected_samples);
    put_u64(buf, d.quarantined.len() as u64);
    for q in &d.quarantined {
        put_u64(buf, q.shard);
        put_u64(buf, u64::from(q.attempts));
        put_str(buf, &q.error);
    }
    put_u64(buf, d.sensor_incidents.len() as u64);
    for s in &d.sensor_incidents {
        put_u64(buf, s.chip);
        put_u64(buf, u64::from(s.kind.discriminant()));
        put_u64(buf, s.kind.payload().to_bits());
        put_u64(buf, s.epoch);
    }
    put_u64(buf, d.checkpoint_fallbacks.len() as u64);
    for c in &d.checkpoint_fallbacks {
        put_u64(buf, c.generation);
        put_str(buf, &c.reason);
    }
    put_u64(buf, d.disk_incidents.len() as u64);
    for i in &d.disk_incidents {
        put_u64(buf, u64::from(i.kind.discriminant()));
        put_u64(buf, i.write_index);
    }
    put_u64(buf, d.retention_trims);
}

/// Reads the degraded-state section back from the front of `bytes`.
fn decode_degraded(bytes: &mut &[u8]) -> Result<DegradedReport, FleetError> {
    let mut d = DegradedReport {
        retries: take_u64(bytes, "degraded.retries")?,
        rejected_samples: take_u64(bytes, "degraded.rejected")?,
        ..DegradedReport::default()
    };
    let n = take_u64(bytes, "degraded.quarantined.len")?;
    for _ in 0..n {
        d.quarantined.push(ShardFailure {
            shard: take_u64(bytes, "degraded.quarantined.shard")?,
            attempts: take_u64(bytes, "degraded.quarantined.attempts")? as u32,
            error: take_str(bytes, "degraded.quarantined.error")?,
        });
    }
    let n = take_u64(bytes, "degraded.incidents.len")?;
    for _ in 0..n {
        let chip = take_u64(bytes, "degraded.incidents.chip")?;
        let disc = take_u64(bytes, "degraded.incidents.kind")?;
        let payload = f64::from_bits(take_u64(bytes, "degraded.incidents.payload")?);
        let epoch = take_u64(bytes, "degraded.incidents.epoch")?;
        let kind = SensorFaultKind::from_wire(disc as u8, payload).ok_or_else(|| {
            FleetError::Corrupt(format!("unknown sensor-fault discriminant {disc}"))
        })?;
        d.sensor_incidents
            .push(SensorIncident { chip, kind, epoch });
    }
    let n = take_u64(bytes, "degraded.fallbacks.len")?;
    for _ in 0..n {
        d.checkpoint_fallbacks.push(CheckpointFallback {
            generation: take_u64(bytes, "degraded.fallbacks.generation")?,
            reason: take_str(bytes, "degraded.fallbacks.reason")?,
        });
    }
    // Files written before disk-fault tracking end here; their disk
    // section is empty rather than corrupt.
    if bytes.is_empty() {
        return Ok(d);
    }
    let n = take_u64(bytes, "degraded.disk.len")?;
    for _ in 0..n {
        let disc = take_u64(bytes, "degraded.disk.kind")?;
        let write_index = take_u64(bytes, "degraded.disk.write_index")?;
        let kind = DiskFaultKind::from_wire(disc as u8).ok_or_else(|| {
            FleetError::Corrupt(format!("unknown disk-fault discriminant {disc}"))
        })?;
        d.disk_incidents.push(DiskIncident { kind, write_index });
    }
    d.retention_trims = take_u64(bytes, "degraded.trims")?;
    Ok(d)
}

/// Appends one v3 slab to `buf`: tag, body length (patched after the
/// fill), the body itself, and the FNV-1a checksum of the body alone.
fn encode_slab(buf: &mut Vec<u8>, tag: u64, fill: impl FnOnce(&mut Vec<u8>)) {
    put_u64(buf, tag);
    let len_at = buf.len();
    put_u64(buf, 0); // body length, patched below
    let start = buf.len();
    fill(buf);
    let body_len = (buf.len() - start) as u64;
    buf[len_at..len_at + 8].copy_from_slice(&body_len.to_le_bytes());
    let checksum = fnv1a(FNV_OFFSET, &buf[start..]);
    put_u64(buf, checksum);
}

/// Splits the next v3 slab off the front of `bytes`, verifying its body
/// checksum, and returns `(tag, body)`.
fn take_slab<'a>(bytes: &mut &'a [u8]) -> Result<(u64, &'a [u8]), FleetError> {
    let tag = take_u64(bytes, "slab.tag")?;
    let body_len = take_u64(bytes, "slab.len")? as usize;
    if bytes.len() < body_len + 8 {
        return Err(FleetError::Corrupt(format!(
            "slab {tag} claims {body_len} bytes but only {} remain",
            bytes.len().saturating_sub(8)
        )));
    }
    let (body, rest) = bytes.split_at(body_len);
    *bytes = rest;
    let stored = take_u64(bytes, "slab.checksum")?;
    let computed = fnv1a(FNV_OFFSET, body);
    if stored != computed {
        return Err(FleetError::Corrupt(format!(
            "slab {tag} checksum {stored:#018x} does not match body {computed:#018x}"
        )));
    }
    Ok((tag, body))
}

/// Writes `bytes` to `path` atomically *and durably*: temp file,
/// fsync, rename, then fsync of the parent directory. Without the two
/// fsyncs the rename can be persisted before the data (a torn write) or
/// the new directory entry lost entirely on power failure — "atomic"
/// would only hold against process death, not against the crashes the
/// checkpoint format exists for.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), FleetError> {
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| FleetError::Io(format!("{}: {e}", path.display()));
    let mut file = std::fs::File::create(&tmp).map_err(io)?;
    file.write_all(bytes).map_err(io)?;
    file.sync_all().map_err(io)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(io)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Persist the directory entry itself. Directories cannot be
        // fsynced on some platforms (e.g. Windows); treat that as
        // best-effort there, but surface real failures on unix.
        match std::fs::File::open(dir).and_then(|d| d.sync_all()) {
            Ok(()) => {}
            Err(e) if cfg!(unix) => return Err(io(e)),
            Err(_) => {}
        }
    }
    dh_obs::counter!("fleet.checkpoint_bytes").add(bytes.len() as u64);
    dh_obs::counter!("fleet.checkpoints_written").incr();
    Ok(())
}

impl Snapshot {
    /// Serializes to the wire format described in the module docs.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// [`Snapshot::encode`] into a caller-owned buffer (cleared first),
    /// so a long run's checkpoint cadence reuses one allocation. The
    /// payload is encoded in place and the length field patched
    /// afterwards — no temporary payload vector either.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        put_u64(buf, self.config_fingerprint);
        put_u64(buf, self.cursor);
        let len_at = buf.len();
        put_u64(buf, 0); // payload length, patched below
        let payload_start = buf.len();
        put_u64(buf, 2); // slab count
        encode_slab(buf, SLAB_ACC, |b| self.acc.encode(b));
        encode_slab(buf, SLAB_DEGRADED, |b| encode_degraded(b, &self.degraded));
        let payload_len = (buf.len() - payload_start) as u64;
        buf[len_at..len_at + 8].copy_from_slice(&payload_len.to_le_bytes());
        let checksum = fnv1a(FNV_OFFSET, buf);
        put_u64(buf, checksum);
    }

    /// Parses and fully validates the wire format.
    ///
    /// # Errors
    ///
    /// [`FleetError::Corrupt`] on bad magic, truncation, or checksum
    /// mismatch; [`FleetError::Version`] on a format this build cannot
    /// read.
    pub fn decode(bytes: &[u8]) -> Result<Self, FleetError> {
        if bytes.len() < 37 {
            return Err(FleetError::Corrupt(format!(
                "{} bytes is shorter than the fixed header",
                bytes.len()
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let mut tail = tail;
        let stored = take_u64(&mut tail, "checksum")?;
        let computed = fnv1a(FNV_OFFSET, body);
        if stored != computed {
            return Err(FleetError::Corrupt(format!(
                "checksum {stored:#018x} does not match contents {computed:#018x}"
            )));
        }
        if body[..4] != MAGIC {
            return Err(FleetError::Corrupt(format!(
                "bad magic {:02x?}",
                &body[..4]
            )));
        }
        let version = body[4];
        if version != VERSION && version != LEGACY_VERSION {
            return Err(FleetError::Version {
                found: version,
                expected: VERSION,
            });
        }
        let mut view = &body[5..];
        let config_fingerprint = take_u64(&mut view, "config fingerprint")?;
        let cursor = take_u64(&mut view, "cursor")?;
        let payload_len = take_u64(&mut view, "payload length")? as usize;
        if view.len() != payload_len {
            return Err(FleetError::Corrupt(format!(
                "payload length {payload_len} but {} bytes present",
                view.len()
            )));
        }
        let (acc, degraded) = if version == LEGACY_VERSION {
            // v2: the two sections bare, back to back, no slab framing.
            (
                FleetAccumulator::decode(&mut view)?,
                decode_degraded(&mut view)?,
            )
        } else {
            let count = take_u64(&mut view, "slab count")?;
            let mut acc = None;
            let mut degraded = None;
            for _ in 0..count {
                let (tag, mut slab) = take_slab(&mut view)?;
                let taken = match tag {
                    SLAB_ACC if acc.is_none() => {
                        acc = Some(FleetAccumulator::decode(&mut slab)?);
                        true
                    }
                    SLAB_DEGRADED if degraded.is_none() => {
                        degraded = Some(decode_degraded(&mut slab)?);
                        true
                    }
                    _ => false,
                };
                if !taken {
                    return Err(FleetError::Corrupt(format!(
                        "unexpected or duplicate slab tag {tag}"
                    )));
                }
                if !slab.is_empty() {
                    return Err(FleetError::Corrupt(format!(
                        "{} trailing bytes in slab {tag}",
                        slab.len()
                    )));
                }
            }
            match (acc, degraded) {
                (Some(a), Some(d)) => (a, d),
                _ => {
                    return Err(FleetError::Corrupt(
                        "v3 payload is missing a required slab".into(),
                    ));
                }
            }
        };
        if !view.is_empty() {
            return Err(FleetError::Corrupt(format!(
                "{} trailing payload bytes",
                view.len()
            )));
        }
        Ok(Self {
            config_fingerprint,
            cursor,
            acc,
            degraded,
        })
    }

    /// Writes atomically (temp file + rename) and returns the byte count.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] on any filesystem failure.
    pub fn write(&self, path: &Path) -> Result<u64, FleetError> {
        let bytes = self.encode();
        write_atomic(path, &bytes)?;
        Ok(bytes.len() as u64)
    }

    /// Reads and validates a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] when the file cannot be read; decode errors as
    /// in [`Snapshot::decode`].
    pub fn read(path: &Path) -> Result<Self, FleetError> {
        let bytes =
            std::fs::read(path).map_err(|e| FleetError::Io(format!("{}: {e}", path.display())))?;
        Self::decode(&bytes)
    }

    /// [`Snapshot::read`], but a missing file is `Ok(None)` (fresh start)
    /// while an unreadable or corrupt file stays an error — silently
    /// restarting over a damaged checkpoint would discard real work.
    pub fn read_if_exists(path: &Path) -> Result<Option<Self>, FleetError> {
        match std::fs::read(path) {
            Ok(bytes) => Self::decode(&bytes).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(FleetError::Io(format!("{}: {e}", path.display()))),
        }
    }
}

/// How long an injected slow write stalls the writing thread — long
/// enough for heartbeat watchdogs to notice a pattern of them, short
/// enough not to dominate a chaos campaign.
const SLOW_WRITE_STALL: std::time::Duration = std::time::Duration::from_millis(100);

/// Bumps the per-kind injected-disk-fault counter.
fn count_disk_fault(kind: DiskFaultKind) {
    match kind {
        DiskFaultKind::Enospc => dh_obs::counter!("fleet.disk_fault_enospc").incr(),
        DiskFaultKind::TornWrite => dh_obs::counter!("fleet.disk_fault_torn").incr(),
        DiskFaultKind::FsyncFail => dh_obs::counter!("fleet.disk_fault_fsync").incr(),
        DiskFaultKind::SlowWrite => dh_obs::counter!("fleet.disk_fault_slow").incr(),
    }
}

/// What one injected checkpoint write did: how many bytes landed (0
/// when the write was suppressed), the content-corruption note, and the
/// disk incidents (plus retention trims) the write survived.
#[derive(Debug, Default)]
pub struct WriteOutcome {
    /// Bytes that reached the disk (0 for ENOSPC / failed fsync).
    pub bytes: u64,
    /// Human-readable description of injected content corruption.
    pub corruption: Option<String>,
    /// Disk incidents and retention trims, ready to absorb into the
    /// run's [`DegradedReport`]. Empty when the disk behaved.
    pub disk: DegradedReport,
}

/// A checkpoint file plus its last `keep - 1` predecessor generations:
/// `base` is the newest, `base.1` the one before it, and so on. One
/// corrupted (or torn, or truncated) write then costs a replay from the
/// previous generation instead of the whole run.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    base: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// A store at `base` keeping `keep` generations (clamped to ≥ 1;
    /// `keep == 1` degenerates to the plain single-file behavior).
    pub fn new(base: impl Into<PathBuf>, keep: usize) -> Self {
        Self {
            base: base.into(),
            keep: keep.max(1),
        }
    }

    /// The newest generation's path.
    pub fn base_path(&self) -> &Path {
        &self.base
    }

    /// Generations kept.
    pub fn keep(&self) -> usize {
        self.keep
    }

    /// The path of generation `generation` (0 = newest).
    pub fn generation_path(&self, generation: usize) -> PathBuf {
        if generation == 0 {
            self.base.clone()
        } else {
            PathBuf::from(format!("{}.{generation}", self.base.display()))
        }
    }

    /// Shifts every generation one slot older (the oldest falls off),
    /// making room for a fresh newest write. Missing generations are
    /// skipped.
    fn rotate(&self) -> Result<(), FleetError> {
        for generation in (0..self.keep.saturating_sub(1)).rev() {
            let from = self.generation_path(generation);
            let to = self.generation_path(generation + 1);
            match std::fs::rename(&from, &to) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(FleetError::Io(format!("{}: {e}", from.display())));
                }
            }
        }
        Ok(())
    }

    /// Rotates the generations and writes `snapshot` as the newest.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] on any filesystem failure.
    pub fn write(&self, snapshot: &Snapshot) -> Result<u64, FleetError> {
        self.rotate()?;
        snapshot.write(&self.base)
    }

    /// Deletes the oldest on-disk generation (never the newest) to
    /// relieve disk pressure. Returns whether anything was removed.
    fn trim_oldest(&self) -> bool {
        for generation in (1..self.keep).rev() {
            if std::fs::remove_file(self.generation_path(generation)).is_ok() {
                return true;
            }
        }
        false
    }

    /// [`CheckpointStore::write`] with fault injection: after encoding,
    /// the plan may flip a bit or truncate the bytes before they land on
    /// disk. Returns the byte count and the corruption description (if
    /// one was injected).
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] on any filesystem failure.
    pub fn write_injected(
        &self,
        snapshot: &Snapshot,
        plan: Option<&dh_fault::FaultPlan>,
        write_index: u64,
    ) -> Result<(u64, Option<String>), FleetError> {
        let outcome = self.write_injected_with(snapshot, plan, write_index, &mut Vec::new())?;
        Ok((outcome.bytes, outcome.corruption))
    }

    /// [`CheckpointStore::write_injected`] encoding into a caller-owned
    /// scratch buffer, so a checkpoint cadence (in particular the
    /// [`AsyncCheckpointer`] writer thread) reuses one allocation across
    /// every write of the run.
    ///
    /// On top of content corruption the plan may inject a *disk* fault
    /// for this write index, each contained rather than fatal:
    ///
    /// - **ENOSPC**: nothing lands; the previous generation stays
    ///   newest and the oldest generation is trimmed to relieve
    ///   pressure.
    /// - **Torn write**: only a seeded prefix of the file reaches the
    ///   disk (resume-time generation fallback absorbs it).
    /// - **Failed fsync**: the write is abandoned before rename; the
    ///   previous generation stays newest.
    /// - **Slow write**: the write stalls briefly, then lands intact.
    ///
    /// Every injected fault is recorded in the returned
    /// [`WriteOutcome::disk`] report instead of surfacing as an error;
    /// only *real* filesystem failures abort.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] on any genuine filesystem failure.
    pub fn write_injected_with(
        &self,
        snapshot: &Snapshot,
        plan: Option<&dh_fault::FaultPlan>,
        write_index: u64,
        scratch: &mut Vec<u8>,
    ) -> Result<WriteOutcome, FleetError> {
        let mut outcome = WriteOutcome::default();
        snapshot.encode_into(scratch);
        outcome.corruption = plan.and_then(|p| p.corrupt_checkpoint(write_index, scratch));
        let fault = plan.and_then(|p| p.disk_fault(write_index));
        if let Some(kind) = fault {
            outcome
                .disk
                .disk_incidents
                .push(DiskIncident { kind, write_index });
            count_disk_fault(kind);
        }
        match fault {
            Some(DiskFaultKind::Enospc) => {
                if self.trim_oldest() {
                    outcome.disk.retention_trims += 1;
                    dh_obs::counter!("fleet.retention_trims").incr();
                }
                return Ok(outcome);
            }
            Some(DiskFaultKind::FsyncFail) => return Ok(outcome),
            Some(DiskFaultKind::TornWrite) => {
                let keep = plan
                    .expect("torn write implies a plan")
                    .torn_length(write_index, scratch.len());
                scratch.truncate(keep);
            }
            Some(DiskFaultKind::SlowWrite) => {
                std::thread::sleep(SLOW_WRITE_STALL);
            }
            None => {}
        }
        self.rotate()?;
        write_atomic(&self.base, scratch)?;
        outcome.bytes = scratch.len() as u64;
        Ok(outcome)
    }

    /// Walks the generations newest-first and returns the first snapshot
    /// that fully validates, together with a [`CheckpointFallback`]
    /// record for every newer generation that had to be skipped.
    ///
    /// All generations missing (a fresh start) or all invalid both
    /// return `Ok(None)` — the latter with the fallback records that say
    /// why the run is starting over. A snapshot for a *different* config
    /// still validates here; [`crate::FleetRun::resume`] rejects it.
    pub fn read_newest_valid(
        &self,
    ) -> Result<(Option<Snapshot>, Vec<CheckpointFallback>), FleetError> {
        let mut fallbacks = Vec::new();
        for generation in 0..self.keep {
            let path = self.generation_path(generation);
            let bytes = match std::fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => {
                    fallbacks.push(CheckpointFallback {
                        generation: generation as u64,
                        reason: format!("unreadable: {e}"),
                    });
                    continue;
                }
            };
            match Snapshot::decode(&bytes) {
                Ok(snapshot) => {
                    dh_obs::counter!("fleet.checkpoint_fallbacks").add(fallbacks.len() as u64);
                    return Ok((Some(snapshot), fallbacks));
                }
                Err(e) => fallbacks.push(CheckpointFallback {
                    generation: generation as u64,
                    reason: e.to_string(),
                }),
            }
        }
        dh_obs::counter!("fleet.checkpoint_fallbacks").add(fallbacks.len() as u64);
        Ok((None, fallbacks))
    }
}

/// How checkpoint writes are scheduled relative to the shard-folding
/// loop.
///
/// Both modes produce the same sequence of `(snapshot, write index)`
/// pairs through the same rotate-then-atomic-write path, so the on-disk
/// generations — and therefore every kill/resume trajectory — are
/// byte-identical; the only difference is *which thread* pays for the
/// encode, checksum, and I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointMode {
    /// Encode, checksum, and write on the folding thread between shard
    /// batches (the pre-async behavior).
    Sync,
    /// Hand each snapshot to a dedicated writer thread over a bounded
    /// double-buffer channel: the folding loop never blocks on disk
    /// unless it laps the writer by two checkpoints.
    #[default]
    Async,
}

impl CheckpointMode {
    /// Parses `"sync"` / `"async"` (CLI flag value).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sync" => Some(Self::Sync),
            "async" => Some(Self::Async),
            _ => None,
        }
    }
}

/// The snapshot a writer-thread job carries, plus its position in the
/// write sequence (fault plans key corruption on the write index, so it
/// must be assigned on the submitting side, in submission order).
struct WriteJob {
    snapshot: Snapshot,
    write_index: u64,
}

/// A dedicated checkpoint writer thread: [`AsyncCheckpointer::submit`]
/// hands over a cheap O(aggregate-state) snapshot clone and returns
/// immediately; the thread does the encode, checksum, generation
/// rotation, and atomic write off the folding hot path, reusing one
/// encode buffer for the whole run.
///
/// Jobs flow through a bounded channel of depth 1 — a double buffer:
/// one checkpoint in flight on the writer plus one queued. Submitting a
/// third before the first lands blocks (backpressure), so a crashed
/// process has lost at most the last two submitted checkpoints, exactly
/// like a sync writer that was two batches behind. Writes happen
/// strictly in submission order with the same write indices a sync loop
/// would use, so the on-disk generation history is byte-identical to
/// [`CheckpointMode::Sync`].
///
/// I/O errors surface at the next [`AsyncCheckpointer::submit`] or at
/// [`AsyncCheckpointer::finish`], which must be called to guarantee the
/// final snapshot is durable before the run's report is trusted.
#[derive(Debug)]
pub struct AsyncCheckpointer {
    tx: Option<std::sync::mpsc::SyncSender<WriteJob>>,
    handle: Option<std::thread::JoinHandle<Result<DegradedReport, FleetError>>>,
    next_index: u64,
}

impl std::fmt::Debug for WriteJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteJob")
            .field("write_index", &self.write_index)
            .finish_non_exhaustive()
    }
}

impl AsyncCheckpointer {
    /// Spawns the writer thread for `store`, threading an optional fault
    /// plan through to [`CheckpointStore::write_injected_with`] so
    /// injected corruption hits the same write indices as in sync mode.
    pub fn spawn(store: CheckpointStore, plan: Option<dh_fault::FaultPlan>) -> Self {
        let (tx, rx) = std::sync::mpsc::sync_channel::<WriteJob>(1);
        let handle = std::thread::Builder::new()
            .name("dh-fleet-ckpt".into())
            .spawn(move || {
                let mut scratch = Vec::new();
                let mut disk = DegradedReport::default();
                for job in rx {
                    let outcome = store.write_injected_with(
                        &job.snapshot,
                        plan.as_ref(),
                        job.write_index,
                        &mut scratch,
                    )?;
                    disk.absorb(outcome.disk);
                }
                Ok(disk)
            })
            .expect("failed to spawn checkpoint writer thread");
        Self {
            tx: Some(tx),
            handle: Some(handle),
            next_index: 0,
        }
    }

    /// Enqueues `snapshot` as the next write. Blocks only when both
    /// double-buffer slots are full.
    ///
    /// # Errors
    ///
    /// The writer thread's [`FleetError::Io`] if it has already died; the
    /// snapshot that triggered the discovery is lost with it (the run
    /// should abort — its durability guarantee is gone).
    pub fn submit(&mut self, snapshot: Snapshot) -> Result<(), FleetError> {
        let job = WriteJob {
            snapshot,
            write_index: self.next_index,
        };
        let tx = self.tx.as_ref().expect("submit after finish");
        if tx.send(job).is_err() {
            // The receiver is gone: the writer bailed on an I/O error.
            // Join it and surface that error instead of a channel error.
            return Err(self.join_writer());
        }
        self.next_index += 1;
        Ok(())
    }

    /// Closes the queue, waits for every submitted write to land, and
    /// returns the disk incidents the writer survived (empty without an
    /// injecting plan).
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] from any submitted write.
    pub fn finish(mut self) -> Result<DegradedReport, FleetError> {
        self.tx = None; // close the channel; the writer drains and exits
        match self.handle.take() {
            Some(handle) => match handle.join() {
                Ok(result) => result,
                Err(_) => Err(FleetError::Io("checkpoint writer panicked".into())),
            },
            None => Ok(DegradedReport::default()),
        }
    }

    /// Joins the (already dead) writer and converts its exit into an
    /// error for the caller.
    fn join_writer(&mut self) -> FleetError {
        match self.handle.take().map(std::thread::JoinHandle::join) {
            Some(Ok(Err(e))) => e,
            Some(Err(_)) => FleetError::Io("checkpoint writer panicked".into()),
            // A clean exit with the channel closed cannot happen while
            // `tx` is still held; treat it as the writer vanishing.
            _ => FleetError::Io("checkpoint writer exited early".into()),
        }
    }
}

impl Drop for AsyncCheckpointer {
    fn drop(&mut self) {
        // Close the queue and wait for in-flight writes so a dropped
        // (not `finish`ed) checkpointer still leaves a consistent disk
        // state; errors here have nowhere to go and are dropped with it.
        self.tx = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{FleetConfig, FleetRun};

    fn snapshot_after_one_step() -> (FleetConfig, Snapshot) {
        let config = FleetConfig {
            devices: 64,
            years: 0.2,
            shard_size: 32,
            group_size: 16,
            ..FleetConfig::default()
        };
        let mut run = FleetRun::new(config.clone()).unwrap();
        run.step(1).unwrap();
        (config, run.snapshot())
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dh-fleet-ckpt-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshots_round_trip_bit_exactly() {
        let (_config, mut snap) = snapshot_after_one_step();
        // Populate the degraded section so the round trip covers it.
        snap.degraded.retries = 3;
        snap.degraded.quarantined.push(dh_fault::ShardFailure {
            shard: 1,
            attempts: 3,
            error: "injected fault".to_string(),
        });
        snap.degraded
            .sensor_incidents
            .push(dh_fault::SensorIncident {
                chip: 9,
                kind: SensorFaultKind::Noisy(8.0),
                epoch: 4,
            });
        snap.degraded
            .checkpoint_fallbacks
            .push(dh_fault::CheckpointFallback {
                generation: 0,
                reason: "checksum mismatch".to_string(),
            });
        snap.degraded.disk_incidents.push(DiskIncident {
            kind: DiskFaultKind::TornWrite,
            write_index: 4,
        });
        snap.degraded.retention_trims = 2;
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.cursor, snap.cursor);
        assert_eq!(back.config_fingerprint, snap.config_fingerprint);
        assert_eq!(back.acc, snap.acc);
        assert_eq!(back.degraded, snap.degraded);
        // Re-encoding is byte-identical: the format is canonical.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn corruption_is_detected() {
        let (_config, snap) = snapshot_after_one_step();
        let bytes = snap.encode();

        let mut flipped = bytes.clone();
        flipped[20] ^= 0x40;
        assert!(matches!(
            Snapshot::decode(&flipped),
            Err(FleetError::Corrupt(_))
        ));

        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 5);
        assert!(Snapshot::decode(&truncated).is_err());

        let mut wrong_version = bytes.clone();
        wrong_version[4] = VERSION + 1;
        // Fix the checksum so only the version differs.
        let body_len = wrong_version.len() - 8;
        let sum = crate::wire::fnv1a(crate::wire::FNV_OFFSET, &wrong_version[..body_len]);
        wrong_version[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&wrong_version),
            Err(FleetError::Version { found, expected })
                if found == VERSION + 1 && expected == VERSION
        ));
    }

    /// Encodes `snap` in the legacy v2 layout (bare sections, no slabs).
    fn encode_v2(snap: &Snapshot) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(LEGACY_VERSION);
        put_u64(&mut buf, snap.config_fingerprint);
        put_u64(&mut buf, snap.cursor);
        let len_at = buf.len();
        put_u64(&mut buf, 0);
        let start = buf.len();
        snap.acc.encode(&mut buf);
        encode_degraded(&mut buf, &snap.degraded);
        let payload_len = (buf.len() - start) as u64;
        buf[len_at..len_at + 8].copy_from_slice(&payload_len.to_le_bytes());
        let sum = fnv1a(FNV_OFFSET, &buf);
        put_u64(&mut buf, sum);
        buf
    }

    #[test]
    fn legacy_v2_snapshots_still_decode() {
        let (_config, mut snap) = snapshot_after_one_step();
        snap.degraded.retries = 2;
        snap.degraded
            .sensor_incidents
            .push(dh_fault::SensorIncident {
                chip: 3,
                kind: SensorFaultKind::Dropped,
                epoch: 7,
            });
        let bytes = encode_v2(&snap);
        assert_eq!(bytes[4], LEGACY_VERSION);
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.cursor, snap.cursor);
        assert_eq!(back.config_fingerprint, snap.config_fingerprint);
        assert_eq!(back.acc, snap.acc);
        assert_eq!(back.degraded, snap.degraded);
        // Re-encoding upgrades to the current version.
        assert_eq!(back.encode()[4], VERSION);
        assert_eq!(back.encode(), snap.encode());
    }

    #[test]
    fn slab_corruption_is_detected_under_a_fixed_file_checksum() {
        let (_config, snap) = snapshot_after_one_step();
        let mut bytes = snap.encode();
        // Flip one bit inside the first slab body (header is 29 bytes,
        // then slab count, tag, and body length precede the body), then
        // re-fix the *file* checksum so only the slab checksum can catch
        // it.
        bytes[29 + 24 + 4] ^= 0x10;
        let body_len = bytes.len() - 8;
        let sum = fnv1a(FNV_OFFSET, &bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        let err = Snapshot::decode(&bytes).unwrap_err();
        assert!(
            matches!(&err, FleetError::Corrupt(m) if m.contains("slab")),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn files_round_trip_and_missing_files_are_none() {
        let (_config, snap) = snapshot_after_one_step();
        let dir = temp_dir("single");
        let path = dir.join("snap.dhfl");
        let bytes = snap.write(&path).unwrap();
        assert_eq!(bytes, snap.encode().len() as u64);
        let back = Snapshot::read(&path).unwrap();
        assert_eq!(back.acc, snap.acc);
        assert!(Snapshot::read_if_exists(&path).unwrap().is_some());
        std::fs::remove_file(&path).unwrap();
        assert!(Snapshot::read_if_exists(&path).unwrap().is_none());
    }

    #[test]
    fn resume_rejects_a_foreign_config() {
        let (config, snap) = snapshot_after_one_step();
        let mut other = config;
        other.seed += 1;
        assert!(matches!(
            FleetRun::resume(other, snap),
            Err(FleetError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn store_rotates_generations_oldest_off_the_end() {
        let (_config, snap) = snapshot_after_one_step();
        let dir = temp_dir("rotate");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), 3);
        // Three writes with distinct cursors: 5, 6, 7.
        for cursor in 5..8 {
            let mut s = snap.clone();
            s.cursor = cursor;
            store.write(&s).unwrap();
        }
        assert_eq!(Snapshot::read(&store.generation_path(0)).unwrap().cursor, 7);
        assert_eq!(Snapshot::read(&store.generation_path(1)).unwrap().cursor, 6);
        assert_eq!(Snapshot::read(&store.generation_path(2)).unwrap().cursor, 5);
        // A fourth write drops cursor 5 off the end.
        let mut s = snap.clone();
        s.cursor = 8;
        store.write(&s).unwrap();
        assert_eq!(Snapshot::read(&store.generation_path(2)).unwrap().cursor, 6);
        assert!(!store.generation_path(3).exists());
    }

    #[test]
    fn async_rotation_retains_exactly_keep_generations() {
        // The `--keep k` contract, across the async writer: after any
        // number of writes, exactly k generations exist — `base` plus
        // `base.1 ..= base.{k-1}` — holding the k newest snapshots in
        // order, and `base.k` never appears (the off-by-one this test
        // pins down).
        let (_config, snap) = snapshot_after_one_step();
        let keep = 3;
        let dir = temp_dir("async-retention");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), keep);
        let mut writer = AsyncCheckpointer::spawn(store.clone(), None);
        for cursor in 1..=7 {
            let mut s = snap.clone();
            s.cursor = cursor;
            writer.submit(s).unwrap();
        }
        writer.finish().unwrap();
        for generation in 0..keep {
            let snap = Snapshot::read(&store.generation_path(generation)).unwrap();
            assert_eq!(
                snap.cursor,
                7 - generation as u64,
                "generation {generation} holds the wrong write"
            );
        }
        assert!(
            !store.generation_path(keep).exists(),
            "a {keep}-generation store must never leave a generation {keep} file"
        );
        assert!(!store.generation_path(keep + 1).exists());
    }

    #[test]
    fn truncated_newest_generation_falls_back_to_the_previous() {
        // A torn write that truncates the newest generation (as opposed
        // to flipping a bit inside it) must cost one replay window, not
        // the run.
        let (_config, snap) = snapshot_after_one_step();
        let dir = temp_dir("truncated-newest");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), 3);
        for cursor in 1..3 {
            let mut s = snap.clone();
            s.cursor = cursor;
            store.write(&s).unwrap();
        }
        let newest = store.generation_path(0);
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

        let (found, fallbacks) = store.read_newest_valid().unwrap();
        assert_eq!(found.unwrap().cursor, 1, "fell back to generation 1");
        assert_eq!(fallbacks.len(), 1);
        assert_eq!(fallbacks[0].generation, 0);
    }

    #[test]
    fn read_newest_valid_falls_back_over_corruption() {
        let (_config, snap) = snapshot_after_one_step();
        let dir = temp_dir("fallback");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), 3);
        for cursor in 1..4 {
            let mut s = snap.clone();
            s.cursor = cursor;
            store.write(&s).unwrap();
        }
        // Corrupt the newest generation on disk.
        let newest = store.generation_path(0);
        let mut bytes = std::fs::read(&newest).unwrap();
        bytes[10] ^= 0xff;
        std::fs::write(&newest, &bytes).unwrap();

        let (found, fallbacks) = store.read_newest_valid().unwrap();
        assert_eq!(found.unwrap().cursor, 2, "fell back to generation 1");
        assert_eq!(fallbacks.len(), 1);
        assert_eq!(fallbacks[0].generation, 0);
        assert!(fallbacks[0].reason.contains("checksum"));
    }

    #[test]
    fn all_generations_invalid_restarts_with_the_record() {
        let (_config, snap) = snapshot_after_one_step();
        let dir = temp_dir("all-bad");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), 2);
        store.write(&snap).unwrap();
        store.write(&snap).unwrap();
        for generation in 0..2 {
            std::fs::write(store.generation_path(generation), b"garbage").unwrap();
        }
        let (found, fallbacks) = store.read_newest_valid().unwrap();
        assert!(found.is_none());
        assert_eq!(fallbacks.len(), 2);
    }

    #[test]
    fn missing_generations_are_not_fallbacks() {
        let dir = temp_dir("fresh");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), 3);
        let (found, fallbacks) = store.read_newest_valid().unwrap();
        assert!(found.is_none());
        assert!(fallbacks.is_empty(), "a fresh start is not a fallback");
    }

    #[test]
    fn async_and_sync_checkpointing_are_byte_identical_on_disk() {
        let config = FleetConfig {
            devices: 96,
            years: 0.3,
            shard_size: 16,
            group_size: 16,
            ..FleetConfig::default()
        };
        let dir = temp_dir("mode-parity");
        let sync_path = dir.join("sync.dhfl");
        let async_path = dir.join("async.dhfl");
        let sync_report =
            crate::sim::run_fleet_checkpointed_with(&config, &sync_path, 1, CheckpointMode::Sync)
                .unwrap();
        let async_report =
            crate::sim::run_fleet_checkpointed_with(&config, &async_path, 1, CheckpointMode::Async)
                .unwrap();
        assert_eq!(sync_report.fingerprint(), async_report.fingerprint());
        assert_eq!(
            std::fs::read(&sync_path).unwrap(),
            std::fs::read(&async_path).unwrap(),
            "final checkpoints must match byte for byte"
        );
    }

    #[test]
    fn async_supervised_matches_sync_under_injected_corruption() {
        let config = FleetConfig {
            devices: 96,
            years: 0.3,
            shard_size: 16,
            group_size: 16,
            ..FleetConfig::default()
        };
        let dir = temp_dir("mode-parity-injected");
        let retry = dh_exec::RetryPolicy::immediate(2);
        let run = |tag: &str, mode: CheckpointMode| {
            let store = CheckpointStore::new(dir.join(format!("{tag}.dhfl")), 3);
            let plan = dh_fault::FaultPlan::parse("ckpt-flip=2", 23).unwrap();
            let out = crate::sim::run_fleet_supervised_with(
                &config,
                Some(&plan),
                &retry,
                Some((&store, 1)),
                mode,
            )
            .unwrap();
            (store, out)
        };
        let (sync_store, (sync_report, sync_degraded)) = run("sync", CheckpointMode::Sync);
        let (async_store, (async_report, async_degraded)) = run("async", CheckpointMode::Async);
        assert_eq!(sync_report.fingerprint(), async_report.fingerprint());
        assert_eq!(sync_degraded, async_degraded);
        for generation in 0..3 {
            assert_eq!(
                std::fs::read(sync_store.generation_path(generation)).unwrap(),
                std::fs::read(async_store.generation_path(generation)).unwrap(),
                "generation {generation} diverged between modes"
            );
        }
        // The plan flipped a bit in write 2 of both histories; the
        // fallback walk lands on the same snapshot either way.
        let (sync_snap, sync_fb) = sync_store.read_newest_valid().unwrap();
        let (async_snap, async_fb) = async_store.read_newest_valid().unwrap();
        assert_eq!(sync_snap.unwrap().cursor, async_snap.unwrap().cursor);
        assert_eq!(sync_fb.len(), async_fb.len());
    }

    #[test]
    fn async_writer_surfaces_io_errors() {
        let dir = temp_dir("async-io-error");
        let missing = dir.join("no-such-subdir").join("snap.dhfl");
        let (_config, snap) = snapshot_after_one_step();
        let mut writer = AsyncCheckpointer::spawn(CheckpointStore::new(&missing, 2), None);
        // The first submit is accepted into the queue; the failure lands
        // on a later submit or on the final drain.
        let mut saw_error = writer.submit(snap.clone()).is_err();
        for _ in 0..4 {
            if writer.submit(snap.clone()).is_err() {
                saw_error = true;
                break;
            }
        }
        let finish = writer.finish();
        assert!(
            saw_error || finish.is_err(),
            "a doomed write path must produce an error before the run is declared durable"
        );
        if let Err(e) = finish {
            assert!(matches!(e, FleetError::Io(_)), "unexpected error: {e}");
        }
    }

    #[test]
    fn encode_into_reuses_the_buffer_and_matches_encode() {
        let (_config, mut snap) = snapshot_after_one_step();
        let mut buf = Vec::new();
        snap.encode_into(&mut buf);
        assert_eq!(buf, snap.encode());
        let capacity = buf.capacity();
        // A second encode of a slightly-advanced snapshot reuses the
        // allocation (same payload size → no growth).
        snap.cursor += 1;
        snap.encode_into(&mut buf);
        assert_eq!(buf.capacity(), capacity);
        assert_eq!(buf, snap.encode());
    }

    #[test]
    fn injected_writes_corrupt_exactly_the_planned_generations() {
        let (_config, snap) = snapshot_after_one_step();
        let dir = temp_dir("inject");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), 2);
        let plan = dh_fault::FaultPlan::parse("ckpt-flip=2", 5).unwrap();
        let (_, note0) = store.write_injected(&snap, Some(&plan), 0).unwrap();
        assert!(note0.is_none());
        assert!(Snapshot::read(&store.generation_path(0)).is_ok());
        let (_, note1) = store.write_injected(&snap, Some(&plan), 1).unwrap();
        assert!(note1.unwrap().contains("flipped bit"));
        assert!(Snapshot::read(&store.generation_path(0)).is_err());
        // The previous (clean) generation still resumes the run.
        let (found, fallbacks) = store.read_newest_valid().unwrap();
        assert!(found.is_some());
        assert_eq!(fallbacks.len(), 1);
    }

    #[test]
    fn degraded_sections_without_disk_fields_still_decode() {
        // Checkpoints written before disk-fault tracking end their
        // degraded section at the fallback list.
        let mut buf = Vec::new();
        put_u64(&mut buf, 2); // retries
        put_u64(&mut buf, 1); // rejected samples
        put_u64(&mut buf, 0); // quarantined
        put_u64(&mut buf, 0); // sensor incidents
        put_u64(&mut buf, 0); // checkpoint fallbacks
        let mut view = buf.as_slice();
        let d = decode_degraded(&mut view).unwrap();
        assert!(view.is_empty());
        assert_eq!(d.retries, 2);
        assert_eq!(d.rejected_samples, 1);
        assert!(d.disk_incidents.is_empty());
        assert_eq!(d.retention_trims, 0);
    }

    #[test]
    fn enospc_keeps_the_previous_generation_and_trims_the_oldest() {
        let (_config, snap) = snapshot_after_one_step();
        let dir = temp_dir("enospc");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), 3);
        for cursor in 1..4 {
            let mut s = snap.clone();
            s.cursor = cursor;
            store.write(&s).unwrap();
        }
        let plan = dh_fault::FaultPlan::parse("disk-full=1", 7).unwrap();
        let mut failed = snap.clone();
        failed.cursor = 99;
        let outcome = store
            .write_injected_with(&failed, Some(&plan), 0, &mut Vec::new())
            .unwrap();
        assert_eq!(outcome.bytes, 0, "nothing must land under ENOSPC");
        assert_eq!(outcome.disk.disk_incidents.len(), 1);
        assert_eq!(outcome.disk.disk_incidents[0].kind, DiskFaultKind::Enospc);
        assert_eq!(outcome.disk.retention_trims, 1);
        // Newest generation untouched; the oldest was trimmed away.
        assert_eq!(Snapshot::read(&store.generation_path(0)).unwrap().cursor, 3);
        assert_eq!(Snapshot::read(&store.generation_path(1)).unwrap().cursor, 2);
        assert!(!store.generation_path(2).exists());
    }

    #[test]
    fn failed_fsync_abandons_the_write_cleanly() {
        let (_config, snap) = snapshot_after_one_step();
        let dir = temp_dir("fsync-fail");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), 2);
        let mut first = snap.clone();
        first.cursor = 1;
        store.write(&first).unwrap();
        let plan = dh_fault::FaultPlan::parse("disk-fsync=1", 7).unwrap();
        let outcome = store
            .write_injected_with(&snap, Some(&plan), 0, &mut Vec::new())
            .unwrap();
        assert_eq!(outcome.bytes, 0);
        assert_eq!(
            outcome.disk.disk_incidents[0].kind,
            DiskFaultKind::FsyncFail
        );
        // No rotation happened: the previous write is still newest and
        // generation 1 never appeared.
        assert_eq!(Snapshot::read(&store.generation_path(0)).unwrap().cursor, 1);
        assert!(!store.generation_path(1).exists());
    }

    #[test]
    fn torn_write_costs_one_generation_not_the_run() {
        let (_config, snap) = snapshot_after_one_step();
        let dir = temp_dir("torn");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), 2);
        let mut first = snap.clone();
        first.cursor = 1;
        store.write(&first).unwrap();
        let plan = dh_fault::FaultPlan::parse("disk-torn=1", 7).unwrap();
        let outcome = store
            .write_injected_with(&snap, Some(&plan), 0, &mut Vec::new())
            .unwrap();
        assert_eq!(
            outcome.disk.disk_incidents[0].kind,
            DiskFaultKind::TornWrite
        );
        assert!(outcome.bytes < snap.encode().len() as u64);
        // The torn newest generation fails validation; resume falls back
        // to the intact previous write.
        let (found, fallbacks) = store.read_newest_valid().unwrap();
        assert_eq!(found.unwrap().cursor, 1);
        assert_eq!(fallbacks.len(), 1);
        assert_eq!(fallbacks[0].generation, 0);
    }

    #[test]
    fn async_writer_reports_disk_incidents_at_finish() {
        let (_config, snap) = snapshot_after_one_step();
        let dir = temp_dir("async-disk");
        let store = CheckpointStore::new(dir.join("snap.dhfl"), 2);
        let plan = dh_fault::FaultPlan::parse("disk-fsync=1", 7).unwrap();
        let mut writer = AsyncCheckpointer::spawn(store, Some(plan));
        for _ in 0..3 {
            writer.submit(snap.clone()).unwrap();
        }
        let disk = writer.finish().unwrap();
        assert_eq!(disk.disk_incidents.len(), 3);
        assert!(disk
            .disk_incidents
            .iter()
            .all(|i| i.kind == DiskFaultKind::FsyncFail));
    }
}
