//! Versioned, hand-rolled checkpointing for fleet runs (the build has no
//! serde; the format is a few dozen lines of explicit little-endian
//! fields, which is also what makes it auditable).
//!
//! Layout, all integers little-endian:
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `"DHFL"` |
//! | 4      | 1    | format version (currently 1) |
//! | 5      | 8    | config fingerprint ([`crate::FleetConfig::fingerprint`]) |
//! | 13     | 8    | shard cursor (shards fully folded) |
//! | 21     | 8    | payload length `L` |
//! | 29     | `L`  | [`FleetAccumulator`] state (`f64`s as raw bit patterns) |
//! | 29+L   | 8    | FNV-1a checksum of bytes `0..29+L` |
//!
//! Writes go through a temp file + atomic rename, so a kill mid-write
//! leaves the previous checkpoint intact — the property the
//! kill-and-resume acceptance test leans on.

use std::path::Path;

use crate::error::FleetError;
use crate::sim::FleetAccumulator;
use crate::wire::{fnv1a, put_u64, take_u64, FNV_OFFSET};

/// File magic.
pub const MAGIC: [u8; 4] = *b"DHFL";
/// Format version this build writes and reads.
pub const VERSION: u8 = 1;

/// A point-in-time image of a fleet run: everything needed to continue
/// folding shards as if the process had never died.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Fingerprint of the config that produced this state.
    pub config_fingerprint: u64,
    /// Shards fully folded into the aggregates.
    pub cursor: u64,
    /// The streaming aggregate state.
    pub(crate) acc: FleetAccumulator,
}

impl Snapshot {
    /// Serializes to the wire format described in the module docs.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        self.acc.encode(&mut payload);

        let mut buf = Vec::with_capacity(37 + payload.len());
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        put_u64(&mut buf, self.config_fingerprint);
        put_u64(&mut buf, self.cursor);
        put_u64(&mut buf, payload.len() as u64);
        buf.extend_from_slice(&payload);
        let checksum = fnv1a(FNV_OFFSET, &buf);
        put_u64(&mut buf, checksum);
        buf
    }

    /// Parses and fully validates the wire format.
    ///
    /// # Errors
    ///
    /// [`FleetError::Corrupt`] on bad magic, truncation, or checksum
    /// mismatch; [`FleetError::Version`] on a format this build cannot
    /// read.
    pub fn decode(bytes: &[u8]) -> Result<Self, FleetError> {
        if bytes.len() < 37 {
            return Err(FleetError::Corrupt(format!(
                "{} bytes is shorter than the fixed header",
                bytes.len()
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let mut tail = tail;
        let stored = take_u64(&mut tail, "checksum")?;
        let computed = fnv1a(FNV_OFFSET, body);
        if stored != computed {
            return Err(FleetError::Corrupt(format!(
                "checksum {stored:#018x} does not match contents {computed:#018x}"
            )));
        }
        if body[..4] != MAGIC {
            return Err(FleetError::Corrupt(format!(
                "bad magic {:02x?}",
                &body[..4]
            )));
        }
        let version = body[4];
        if version != VERSION {
            return Err(FleetError::Version {
                found: version,
                expected: VERSION,
            });
        }
        let mut view = &body[5..];
        let config_fingerprint = take_u64(&mut view, "config fingerprint")?;
        let cursor = take_u64(&mut view, "cursor")?;
        let payload_len = take_u64(&mut view, "payload length")? as usize;
        if view.len() != payload_len {
            return Err(FleetError::Corrupt(format!(
                "payload length {payload_len} but {} bytes present",
                view.len()
            )));
        }
        let acc = FleetAccumulator::decode(&mut view)?;
        if !view.is_empty() {
            return Err(FleetError::Corrupt(format!(
                "{} trailing payload bytes",
                view.len()
            )));
        }
        Ok(Self {
            config_fingerprint,
            cursor,
            acc,
        })
    }

    /// Writes atomically (temp file + rename) and returns the byte count.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] on any filesystem failure.
    pub fn write(&self, path: &Path) -> Result<u64, FleetError> {
        let bytes = self.encode();
        let tmp = path.with_extension("tmp");
        let io = |e: std::io::Error| FleetError::Io(format!("{}: {e}", path.display()));
        std::fs::write(&tmp, &bytes).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)?;
        dh_obs::counter!("fleet.checkpoint_bytes").add(bytes.len() as u64);
        dh_obs::counter!("fleet.checkpoints_written").incr();
        Ok(bytes.len() as u64)
    }

    /// Reads and validates a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] when the file cannot be read; decode errors as
    /// in [`Snapshot::decode`].
    pub fn read(path: &Path) -> Result<Self, FleetError> {
        let bytes =
            std::fs::read(path).map_err(|e| FleetError::Io(format!("{}: {e}", path.display())))?;
        Self::decode(&bytes)
    }

    /// [`Snapshot::read`], but a missing file is `Ok(None)` (fresh start)
    /// while an unreadable or corrupt file stays an error — silently
    /// restarting over a damaged checkpoint would discard real work.
    pub fn read_if_exists(path: &Path) -> Result<Option<Self>, FleetError> {
        match std::fs::read(path) {
            Ok(bytes) => Self::decode(&bytes).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(FleetError::Io(format!("{}: {e}", path.display()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{FleetConfig, FleetRun};

    fn snapshot_after_one_step() -> (FleetConfig, Snapshot) {
        let config = FleetConfig {
            devices: 64,
            years: 0.2,
            shard_size: 32,
            group_size: 16,
            ..FleetConfig::default()
        };
        let mut run = FleetRun::new(config.clone()).unwrap();
        run.step(1);
        (config, run.snapshot())
    }

    #[test]
    fn snapshots_round_trip_bit_exactly() {
        let (_config, snap) = snapshot_after_one_step();
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.cursor, snap.cursor);
        assert_eq!(back.config_fingerprint, snap.config_fingerprint);
        assert_eq!(back.acc, snap.acc);
        // Re-encoding is byte-identical: the format is canonical.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn corruption_is_detected() {
        let (_config, snap) = snapshot_after_one_step();
        let bytes = snap.encode();

        let mut flipped = bytes.clone();
        flipped[20] ^= 0x40;
        assert!(matches!(
            Snapshot::decode(&flipped),
            Err(FleetError::Corrupt(_))
        ));

        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 5);
        assert!(Snapshot::decode(&truncated).is_err());

        let mut wrong_version = bytes.clone();
        wrong_version[4] = VERSION + 1;
        // Fix the checksum so only the version differs.
        let body_len = wrong_version.len() - 8;
        let sum = crate::wire::fnv1a(crate::wire::FNV_OFFSET, &wrong_version[..body_len]);
        wrong_version[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&wrong_version),
            Err(FleetError::Version { found, expected })
                if found == VERSION + 1 && expected == VERSION
        ));
    }

    #[test]
    fn files_round_trip_and_missing_files_are_none() {
        let (_config, snap) = snapshot_after_one_step();
        let dir = std::env::temp_dir().join("dh-fleet-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.dhfl");
        let bytes = snap.write(&path).unwrap();
        assert_eq!(bytes, snap.encode().len() as u64);
        let back = Snapshot::read(&path).unwrap();
        assert_eq!(back.acc, snap.acc);
        assert!(Snapshot::read_if_exists(&path).unwrap().is_some());
        std::fs::remove_file(&path).unwrap();
        assert!(Snapshot::read_if_exists(&path).unwrap().is_none());
    }

    #[test]
    fn resume_rejects_a_foreign_config() {
        let (config, snap) = snapshot_after_one_step();
        let mut other = config;
        other.seed += 1;
        assert!(matches!(
            FleetRun::resume(other, snap),
            Err(FleetError::ConfigMismatch { .. })
        ));
    }
}
