//! Fleet-scale lifetime simulation: the deployment-management layer on top
//! of the per-device physics.
//!
//! The paper's system-level claim is distributional — scheduled BTI/EM
//! active recovery shrinks the wearout guardband *across a population* of
//! chips — and a datacenter operator acts on that distribution under a
//! maintenance budget: only so many machines may be pulled into a recovery
//! window at once. This crate simulates 10⁴–10⁶ heterogeneous chip
//! instances end-to-end to make those statements quantitative:
//!
//! * [`FleetConfig`] describes the population: size, per-chip
//!   process/temperature/workload variation (drawn deterministically from
//!   per-chip RNG streams, so chip *i* is the same chip at any shard size
//!   or thread count), the maintenance-group geometry, and the recovery
//!   policy mix.
//! * The population is partitioned into shards executed in parallel by
//!   `dh-exec`; shard results are folded **in canonical chip order** by
//!   [`dh_exec::par_map_fold`] into streaming one-pass aggregates
//!   ([`stats::StreamingMoments`] and the P² quantile estimators of
//!   [`stats::P2Quantile`]), so memory stays O(shards in flight), never
//!   O(devices), and the final [`FleetReport`] is bit-identical however
//!   the work was partitioned.
//! * [`checkpoint::Snapshot`] is a versioned, hand-rolled binary image of
//!   the shard cursor plus the aggregate state, written atomically at
//!   shard boundaries: a million-device run can be killed and resumed
//!   with a byte-identical final report.
//! * [`run_fleet_supervised`] is the hardened flavor of all of the above:
//!   shard panics are retried and quarantined, non-finite samples
//!   rejected, bad wear sensors degraded to conservative always-heal, and
//!   corrupt checkpoint generations fallen back over — the run completes
//!   with a [`dh_fault::DegradedReport`] instead of aborting.
//! * [`MaintenanceBudget`] caps how many chips per maintenance group may
//!   enter active recovery each epoch and [`FleetPolicy`] selects which —
//!   a fixed set ([`FleetPolicy::Static`]), a rotating window
//!   ([`FleetPolicy::RoundRobin`]), or the most-degraded survivors
//!   ([`FleetPolicy::WorstFirst`]).
//!
//! ```
//! use dh_fleet::{run_fleet, FleetConfig};
//!
//! let config = FleetConfig {
//!     devices: 2_000,
//!     years: 1.0,
//!     ..FleetConfig::default()
//! };
//! let report = run_fleet(&config).unwrap();
//! assert_eq!(report.guardband.count, 2_000);
//! ```

#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > 0.0)` deliberately catches NaN
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod chip;
pub mod error;
pub(crate) mod kernel;
pub mod policy;
pub mod sim;
pub mod stats;
pub(crate) mod store;
pub(crate) mod wire;

pub use checkpoint::{AsyncCheckpointer, CheckpointMode, CheckpointStore, Snapshot, WriteOutcome};
pub use chip::{ChipOutcome, ChipSpec, VariationModel, SENSOR_STALE_EPOCHS};
pub use error::FleetError;
pub use policy::{FleetPolicy, MaintenanceBudget};
pub use sim::{
    run_fleet, run_fleet_checkpointed, run_fleet_checkpointed_with, run_fleet_reference,
    run_fleet_supervised, run_fleet_supervised_with, FleetConfig, FleetProgress, FleetReport,
    FleetRun,
};
pub use stats::{NonFinite, P2Quantile, StreamingMoments, StreamingSummary, SummaryStats};
pub use store::StoreView;

/// Streams the guardbands of a Monte-Carlo seed sweep through the same
/// one-pass aggregation the fleet engine uses, so per-seed
/// ([`dh_sched::lifetime::monte_carlo_guardband`]) and per-chip (fleet)
/// populations are summarized identically.
pub fn summarize_guardbands(outcomes: &[dh_sched::SeedOutcome]) -> SummaryStats {
    let mut summary = StreamingSummary::new();
    for o in outcomes {
        summary.push(o.guardband);
    }
    summary.finalize()
}

#[cfg(test)]
mod tests {
    use dh_sched::lifetime::monte_carlo_guardband;
    use dh_sched::{LifetimeConfig, Policy};

    #[test]
    fn seed_sweeps_flow_through_the_fleet_aggregation_path() {
        let config = LifetimeConfig {
            years: 0.05,
            sample_every: 4,
            ..LifetimeConfig::default()
        };
        let outcomes = monte_carlo_guardband(&config, Policy::PassiveIdle, 0..6).unwrap();
        let stats = super::summarize_guardbands(&outcomes);
        assert_eq!(stats.count, 6);
        let exact_mean = outcomes.iter().map(|o| o.guardband).sum::<f64>() / 6.0;
        assert!((stats.mean - exact_mean).abs() < 1e-12);
        assert!(stats.min <= stats.p50 && stats.p50 <= stats.max);
    }
}
