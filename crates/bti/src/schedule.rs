//! Stress/recovery scheduling experiments (the paper's Fig. 4).
//!
//! Fig. 4 of the paper cycles accelerated stress against active+accelerated
//! recovery at different duty ratios and tracks how the *permanent* BTI
//! component accumulates at the end of each cycle. The headline result: with
//! a balanced 1 h stress : 1 h recovery schedule the permanent component is
//! "practically 0", while longer stress windows let permanent damage
//! consolidate faster than recovery can drain it.

use dh_units::{Seconds, TimeSeries};

use crate::analytic::AnalyticBtiModel;
use crate::condition::{RecoveryCondition, StressCondition};
use crate::device::BtiDevice;

/// A periodic stress-vs-recovery schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CyclicSchedule {
    /// Stress interval per cycle.
    pub stress_time: Seconds,
    /// Recovery interval per cycle.
    pub recovery_time: Seconds,
    /// Condition applied during stress intervals.
    pub stress_condition: StressCondition,
    /// Condition applied during recovery intervals.
    pub recovery_condition: RecoveryCondition,
    /// Number of stress+recovery cycles to run.
    pub cycles: usize,
}

impl CyclicSchedule {
    /// The paper's Fig. 4 schedule: accelerated stress vs condition-4
    /// recovery, `stress_hours` : `recovery_hours`, sized so that the total
    /// stress time matches `total_stress_hours`.
    pub fn fig4(stress_hours: f64, recovery_hours: f64, total_stress_hours: f64) -> Self {
        Self {
            stress_time: Seconds::from_hours(stress_hours),
            recovery_time: Seconds::from_hours(recovery_hours),
            stress_condition: StressCondition::ACCELERATED,
            recovery_condition: RecoveryCondition::ACTIVE_ACCELERATED,
            cycles: (total_stress_hours / stress_hours).round().max(1.0) as usize,
        }
    }

    /// The stress : recovery duty ratio.
    pub fn ratio(&self) -> f64 {
        self.stress_time / self.recovery_time
    }

    /// Wall-clock length of one full cycle.
    pub fn cycle_time(&self) -> Seconds {
        self.stress_time + self.recovery_time
    }
}

/// Per-cycle observation from running a [`CyclicSchedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleOutcome {
    /// 1-based cycle index (the paper's C1, C2, …).
    pub cycle: usize,
    /// Wall-clock time at the end of the cycle.
    pub time: Seconds,
    /// Total |ΔVth| at the end of the cycle, millivolts.
    pub total_mv: f64,
    /// Permanent component at the end of the cycle, millivolts.
    pub permanent_mv: f64,
    /// Consolidated (hard) permanent component, millivolts.
    pub hard_permanent_mv: f64,
}

/// Runs a cyclic schedule on a fresh device, returning the end-of-cycle
/// observations.
pub fn run_schedule(model: AnalyticBtiModel, schedule: &CyclicSchedule) -> Vec<CycleOutcome> {
    let mut device = BtiDevice::new(model);
    let mut out = Vec::with_capacity(schedule.cycles);
    let mut clock = Seconds::ZERO;
    for cycle in 1..=schedule.cycles {
        device.stress(schedule.stress_time, schedule.stress_condition);
        device.recover(schedule.recovery_time, schedule.recovery_condition);
        clock += schedule.cycle_time();
        out.push(CycleOutcome {
            cycle,
            time: clock,
            total_mv: device.delta_vth_mv(),
            permanent_mv: device.permanent_mv(),
            hard_permanent_mv: device.hard_permanent_mv(),
        });
    }
    out
}

/// Runs a schedule and returns the permanent component as a time series
/// (label includes the duty ratio), ready for the Fig. 4 harness.
pub fn permanent_series(model: AnalyticBtiModel, schedule: &CyclicSchedule) -> TimeSeries {
    let mut series = TimeSeries::new(format!(
        "permanent ΔVth (mV), {:.0}h:{:.0}h",
        schedule.stress_time.as_hours(),
        schedule.recovery_time.as_hours()
    ));
    series.push(Seconds::ZERO, 0.0);
    for o in run_schedule(model, schedule) {
        series.push(o.time, o.permanent_mv);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_schedules_have_expected_shape() {
        let s = CyclicSchedule::fig4(1.0, 1.0, 24.0);
        assert_eq!(s.cycles, 24);
        assert!((s.ratio() - 1.0).abs() < 1e-12);
        assert_eq!(s.cycle_time(), Seconds::from_hours(2.0));
        let s = CyclicSchedule::fig4(4.0, 1.0, 24.0);
        assert_eq!(s.cycles, 6);
        assert!((s.ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_schedule_keeps_permanent_near_zero() {
        // The paper's headline Fig. 4 claim.
        let model = AnalyticBtiModel::paper_calibrated();
        let outcomes = run_schedule(model, &CyclicSchedule::fig4(1.0, 1.0, 24.0));
        let last = outcomes.last().unwrap();

        // Reference: permanent component after the same 24 h of stress
        // applied continuously.
        let mut continuous = BtiDevice::new(model);
        continuous.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);

        assert!(
            last.permanent_mv < 0.15 * continuous.permanent_mv(),
            "balanced schedule permanent {} vs continuous {}",
            last.permanent_mv,
            continuous.permanent_mv()
        );
    }

    #[test]
    fn permanent_accumulation_is_monotone_in_stress_ratio() {
        let model = AnalyticBtiModel::paper_calibrated();
        let finals: Vec<f64> = [1.0, 2.0, 4.0]
            .iter()
            .map(|&ratio| {
                run_schedule(model, &CyclicSchedule::fig4(ratio, 1.0, 24.0))
                    .last()
                    .unwrap()
                    .permanent_mv
            })
            .collect();
        assert!(
            finals[0] < finals[1] && finals[1] < finals[2],
            "permanent by ratio: {finals:?}"
        );
    }

    #[test]
    fn permanent_component_is_nondecreasing_over_cycles() {
        let model = AnalyticBtiModel::paper_calibrated();
        let outcomes = run_schedule(model, &CyclicSchedule::fig4(2.0, 1.0, 24.0));
        for pair in outcomes.windows(2) {
            assert!(
                pair[1].hard_permanent_mv >= pair[0].hard_permanent_mv - 1e-12,
                "hard permanent decreased: {pair:?}"
            );
        }
    }

    #[test]
    fn total_wearout_stays_bounded_under_balanced_schedule() {
        // "Brings the aged system back to almost fresh status": the total
        // wearout under a 1:1 schedule must not grow unboundedly — it should
        // stay well below the continuous-stress trajectory.
        let model = AnalyticBtiModel::paper_calibrated();
        let outcomes = run_schedule(model, &CyclicSchedule::fig4(1.0, 1.0, 24.0));
        let last = outcomes.last().unwrap();
        let mut continuous = BtiDevice::new(model);
        continuous.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        assert!(
            last.total_mv < 0.5 * continuous.delta_vth_mv(),
            "scheduled total {} vs continuous {}",
            last.total_mv,
            continuous.delta_vth_mv()
        );
    }

    #[test]
    fn series_rendering_has_one_point_per_cycle_plus_origin() {
        let model = AnalyticBtiModel::paper_calibrated();
        let series = permanent_series(model, &CyclicSchedule::fig4(1.0, 1.0, 8.0));
        assert_eq!(series.len(), 9);
        assert!(series.label().contains("1h:1h"));
    }
}
