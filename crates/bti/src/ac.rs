//! Duty-cycled (AC) BTI stress: wearout vs switching period.
//!
//! The paper states (its §II-B) that beyond the Table I one-shot
//! experiments it studies "the frequency dependence of wearout and
//! recovery". This module provides that experiment on the analytic device:
//! a gate stressed with a fixed ON duty whose period sweeps from hours to
//! seconds, with the OFF phase spent at a configurable recovery condition.
//!
//! Two classic results emerge from the calibrated model:
//!
//! * at a fixed duty, **total wearout decreases as the period shrinks**
//!   (each OFF phase relaxes a larger fraction of the ever-younger
//!   recoverable population — the universal-relaxation ξ = θ·t_off/t_age
//!   grows as the cycle shortens);
//! * the **permanent component collapses once the ON window drops below
//!   the consolidation time** (~2 h), which is exactly the Fig. 4
//!   "in-time recovery" mechanism viewed in the frequency domain.

use dh_units::Seconds;

use crate::analytic::AnalyticBtiModel;
use crate::condition::{RecoveryCondition, StressCondition};
use crate::device::BtiDevice;

/// Outcome of one duty-cycled stress run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycleOutcome {
    /// The switching period (ON + OFF).
    pub period: Seconds,
    /// ON duty (fraction of the period under stress).
    pub duty: f64,
    /// Total |ΔVth| at the end of the run, millivolts.
    pub total_mv: f64,
    /// Permanent component at the end of the run, millivolts.
    pub permanent_mv: f64,
}

/// Runs a duty-cycled stress: `total_stress_time` of cumulative ON time at
/// `stress`, delivered in cycles of `period` with the given ON `duty`; OFF
/// phases recover at `off_condition`.
///
/// # Panics
///
/// Panics if `duty` is outside `(0, 1]` or `period` is not positive.
pub fn duty_cycle_run(
    model: AnalyticBtiModel,
    stress: StressCondition,
    off_condition: RecoveryCondition,
    period: Seconds,
    duty: f64,
    total_stress_time: Seconds,
) -> DutyCycleOutcome {
    assert!(
        duty > 0.0 && duty <= 1.0,
        "duty must be in (0, 1], got {duty}"
    );
    assert!(period.value() > 0.0, "period must be positive");

    let on = period * duty;
    let off = period * (1.0 - duty);
    let cycles = (total_stress_time.value() / on.value()).round().max(1.0) as usize;

    let mut device = BtiDevice::new(model);
    for _ in 0..cycles {
        device.stress(on, stress);
        if off.value() > 0.0 {
            device.recover(off, off_condition);
        }
    }
    DutyCycleOutcome {
        period,
        duty,
        total_mv: device.delta_vth_mv(),
        permanent_mv: device.permanent_mv(),
    }
}

/// Sweeps switching periods at a fixed duty and cumulative stress time.
pub fn period_sweep(
    model: AnalyticBtiModel,
    stress: StressCondition,
    off_condition: RecoveryCondition,
    periods: &[Seconds],
    duty: f64,
    total_stress_time: Seconds,
) -> Vec<DutyCycleOutcome> {
    periods
        .iter()
        .map(|&p| duty_cycle_run(model, stress, off_condition, p, duty, total_stress_time))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(off: RecoveryCondition) -> Vec<DutyCycleOutcome> {
        period_sweep(
            AnalyticBtiModel::paper_calibrated(),
            StressCondition::ACCELERATED,
            off,
            &[
                Seconds::from_hours(16.0),
                Seconds::from_hours(8.0),
                Seconds::from_hours(4.0),
                Seconds::from_hours(2.0),
                Seconds::from_hours(1.0),
            ],
            0.5,
            Seconds::from_hours(24.0),
        )
    }

    #[test]
    fn wearout_decreases_with_switching_frequency() {
        let outs = sweep(RecoveryCondition::ACTIVE_ACCELERATED);
        for pair in outs.windows(2) {
            assert!(
                pair[1].total_mv <= pair[0].total_mv * 1.02,
                "shorter period must not wear more: {pair:?}"
            );
        }
        assert!(
            outs.last().unwrap().total_mv < 0.8 * outs[0].total_mv,
            "fast switching should clearly beat slow: {} vs {}",
            outs.last().unwrap().total_mv,
            outs[0].total_mv
        );
    }

    #[test]
    fn permanent_component_collapses_below_the_consolidation_window() {
        let outs = sweep(RecoveryCondition::ACTIVE_ACCELERATED);
        // ON windows: 8 h, 4 h, 2 h, 1 h, 0.5 h. Consolidation τ ≈ 2 h.
        let slow = outs[0].permanent_mv;
        let fast = outs.last().unwrap().permanent_mv;
        assert!(
            fast < 0.1 * slow,
            "fast cycling permanent {fast} vs slow {slow}"
        );
    }

    #[test]
    fn deep_off_phase_beats_passive_off_phase() {
        let deep = sweep(RecoveryCondition::ACTIVE_ACCELERATED);
        let passive = sweep(RecoveryCondition::PASSIVE);
        for (d, p) in deep.iter().zip(&passive) {
            assert!(
                d.total_mv < p.total_mv,
                "deep OFF must out-heal passive OFF: {d:?} vs {p:?}"
            );
        }
    }

    #[test]
    fn dc_limit_matches_plain_stress() {
        let model = AnalyticBtiModel::paper_calibrated();
        let out = duty_cycle_run(
            model,
            StressCondition::ACCELERATED,
            RecoveryCondition::PASSIVE,
            Seconds::from_hours(24.0),
            1.0,
            Seconds::from_hours(24.0),
        );
        let mut reference = BtiDevice::new(model);
        reference.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        assert!((out.total_mv - reference.delta_vth_mv()).abs() < 1e-6);
        assert!((out.permanent_mv - reference.permanent_mv()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "duty must be in")]
    fn zero_duty_panics() {
        duty_cycle_run(
            AnalyticBtiModel::paper_calibrated(),
            StressCondition::ACCELERATED,
            RecoveryCondition::PASSIVE,
            Seconds::from_hours(1.0),
            0.0,
            Seconds::from_hours(1.0),
        );
    }
}
