//! Capture–emission-time (CET) trap-ensemble BTI model (the paper's
//! Table I "Measurement" column).
//!
//! The ensemble represents the gate-oxide defect population of a device as
//! `N` traps, each with
//!
//! * an **emission time** `τ_e` (at the passive room-temperature reference
//!   condition) drawn from a heavy-tailed distribution spanning ~24 decades,
//! * a **capture time** `τ_c` (at the reference accelerated stress
//!   condition) correlated with `τ_e` — deep, slow-emitting traps are also
//!   slow to capture,
//! * soft (recoverable) and hard (consolidated) occupancy state.
//!
//! A recovery condition scales every emission rate by the acceleration
//! factor θ(V,T) shared with the analytic model, so "permanent" traps are
//! simply those whose `τ_e/θ` exceeds the recovery window — which is exactly
//! why the paper's *activated* recovery (θ ≫ 1) can empty traps passive
//! recovery never touches.
//!
//! Two mechanisms gate the permanent component, mirroring
//! [`crate::analytic::PermanentParams`]:
//!
//! * **window-gated deep capture** — capture into deep traps is a secondary
//!   process that requires sustained stress; its rate is scaled by
//!   `1 − exp(−(t_w/τ_p)^m)` in the continuous-stress window `t_w`. In-time
//!   scheduled recovery resets the window and thereby *prevents* permanent
//!   damage (Fig. 4);
//! * **hardening** — occupied deep traps consolidate (τ ≈ 2 h) after which
//!   no recovery condition can empty them (the >27 % residue of Table I).
//!
//! The emission-time distribution is a piecewise-linear CDF in `log₁₀ τ_e`
//! whose four interior knots are **fitted by simulating the paper's actual
//! measurement protocol** (24 h accelerated stress, 6 h recovery per
//! condition) until the ensemble reproduces the measured recovery
//! percentages.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dh_exec::Memo;
use dh_units::rng::standard_normal;
use rand::Rng;

use dh_units::{Fraction, Seconds};

use crate::acceleration::RecoveryAcceleration;
use crate::analytic::{PermanentParams, StressLaw};
use crate::calibration::{self, TableOneTargets, DEFAULT_BETA};
use crate::condition::{RecoveryCondition, StressCondition};
use crate::error::BtiError;

/// Lower edge of the emission-time distribution, log₁₀ seconds.
const LOG_TAU_MIN: f64 = -2.0;
/// Upper edge of the emission-time distribution, log₁₀ seconds.
const LOG_TAU_MAX: f64 = 22.0;
/// Correlation slope between capture and emission times (log–log).
const CAPTURE_SLOPE: f64 = 0.625;
/// Correlation intercept: log₁₀ τ_c = intercept + slope · log₁₀ τ_e.
const CAPTURE_INTERCEPT: f64 = -7.325;
/// Width (decades) of the shallow→deep transition of the gating sigmoid.
const DEEP_TRANSITION_DECADES: f64 = 0.8;
/// Voltage/temperature exponent mapping stress-amplitude scale to capture
/// rate (capture is more strongly field-accelerated than net wearout).
const CAPTURE_ACCEL_EXPONENT: f64 = 3.0;
/// Traps per parallel work unit in the stress/recover loops. Large enough
/// that chunk hand-out cost vanishes, small enough that a 2000-trap
/// ensemble still load-balances across a many-core box.
const TRAP_CHUNK: usize = 256;

/// Identity of one calibration: the trap count plus the exact bit
/// patterns of every target parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CalibrationKey {
    n_traps: usize,
    bits: [u64; 9],
}

impl CalibrationKey {
    fn new(n_traps: usize, targets: &TableOneTargets) -> Self {
        let f = &targets.fractions;
        Self {
            n_traps,
            bits: [
                f[0].value().to_bits(),
                f[1].value().to_bits(),
                f[2].value().to_bits(),
                f[3].value().to_bits(),
                targets.stress_time.value().to_bits(),
                targets.recovery_time.value().to_bits(),
                targets.room.value().to_bits(),
                targets.hot.value().to_bits(),
                targets.reverse_bias.value().to_bits(),
            ],
        }
    }
}

/// Fitted ensembles, one per distinct `(n_traps, targets)`. The
/// emission-CDF knot fit simulates the full 24 h-stress / 6 h-recovery
/// protocol up to 40 times, so every test, bench, and repro binary that
/// builds an ensemble hits this cache after the first construction.
static CALIBRATIONS: Memo<CalibrationKey, TrapEnsemble> = Memo::new();
/// Knot fits actually executed in this process (cache hits don't count).
static CALIBRATION_FIT_RUNS: AtomicU64 = AtomicU64::new(0);

/// Number of emission-CDF knot fits executed so far in this process.
/// Cache hits in the calibration memo do not increment this — the
/// counter exists so tests and `perf_snapshot` can verify the fit runs
/// once per distinct target set.
pub fn calibration_fit_runs() -> u64 {
    CALIBRATION_FIT_RUNS.load(Ordering::SeqCst)
}

/// One oxide trap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Trap {
    /// log₁₀ emission time at the passive room reference, seconds.
    log_tau_e: f64,
    /// log₁₀ capture time at the reference accelerated stress, seconds.
    log_tau_c: f64,
    /// Soft (recoverable) occupancy probability.
    occ_soft: f64,
    /// Hard (consolidated, unrecoverable) occupancy probability.
    occ_hard: f64,
}

impl Trap {
    fn occupancy(&self) -> f64 {
        self.occ_soft + self.occ_hard
    }
}

/// Calibrated knots of the emission-time CDF: `(log₁₀ τ_e, cumulative
/// probability)` pairs, strictly increasing in both coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct EmissionCdf {
    knots: Vec<(f64, f64)>,
}

impl EmissionCdf {
    fn new(interior: &[(f64, f64)]) -> Self {
        let mut knots = Vec::with_capacity(interior.len() + 2);
        knots.push((LOG_TAU_MIN, 0.0));
        knots.extend_from_slice(interior);
        knots.push((LOG_TAU_MAX, 1.0));
        Self { knots }
    }

    /// Inverse CDF: the log₁₀ τ_e at cumulative probability `p ∈ [0, 1]`.
    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        for pair in self.knots.windows(2) {
            let (x0, p0) = pair[0];
            let (x1, p1) = pair[1];
            if p <= p1 {
                if p1 == p0 {
                    return x0;
                }
                return x0 + (x1 - x0) * (p - p0) / (p1 - p0);
            }
        }
        LOG_TAU_MAX
    }

    /// The interior knots (excluding the fixed endpoints).
    pub fn interior_knots(&self) -> &[(f64, f64)] {
        &self.knots[1..self.knots.len() - 1]
    }
}

/// A CET trap-ensemble BTI device.
#[derive(Debug, Clone, PartialEq)]
pub struct TrapEnsemble {
    traps: Vec<Trap>,
    cdf: EmissionCdf,
    acceleration: RecoveryAcceleration,
    theta4: f64,
    stress_law: StressLaw,
    permanent: PermanentParams,
    /// ΔVth contribution (mV) of one fully occupied trap.
    per_trap_mv: f64,
    /// Continuous-stress window (drives deep-capture gating).
    window: Seconds,
    /// Boundary (log₁₀ τ_e) of the shallow→deep transition.
    deep_edge: f64,
}

impl TrapEnsemble {
    /// Builds an ensemble of `n_traps` calibrated against the paper's
    /// Table I **measurement** column by simulating the measurement protocol.
    ///
    /// Trap parameters are stratified (deterministic) samples of the fitted
    /// distribution; use [`TrapEnsemble::with_variation`] to add
    /// device-to-device randomness.
    ///
    /// # Errors
    ///
    /// Returns [`BtiError::EmptyEnsemble`] if `n_traps == 0`, or
    /// [`BtiError::CalibrationDiverged`] if the protocol fit fails to reach
    /// tolerance (does not happen for the built-in targets; covered by
    /// tests).
    pub fn paper_calibrated(n_traps: usize) -> Result<Self, BtiError> {
        Self::calibrated(n_traps, &TableOneTargets::measurement_column())
    }

    /// Builds an ensemble calibrated against custom Table I-style targets.
    ///
    /// The knot fit is memoized per `(n_traps, targets)`: the first
    /// construction runs the iterative protocol fit, later ones clone the
    /// cached result. Use [`calibration_fit_runs`] to observe the cache.
    ///
    /// # Errors
    ///
    /// See [`TrapEnsemble::paper_calibrated`]; additionally returns
    /// [`BtiError::UnsolvableCalibration`] if the closed-form seed
    /// calibration rejects the targets.
    pub fn calibrated(n_traps: usize, targets: &TableOneTargets) -> Result<Self, BtiError> {
        Self::calibrated_shared(n_traps, targets).map(|fitted| (*fitted).clone())
    }

    /// [`TrapEnsemble::calibrated`] without the final clone: returns the
    /// cached fitted ensemble itself. Two calls with identical arguments
    /// return the same `Arc`, which is also how tests verify the fit runs
    /// once per target set.
    ///
    /// # Errors
    ///
    /// See [`TrapEnsemble::calibrated`]. Errors are not cached — a failing
    /// target set re-runs the fit on every attempt.
    pub fn calibrated_shared(
        n_traps: usize,
        targets: &TableOneTargets,
    ) -> Result<Arc<Self>, BtiError> {
        if n_traps == 0 {
            return Err(BtiError::EmptyEnsemble);
        }
        CALIBRATIONS.try_get_or_insert_with(CalibrationKey::new(n_traps, targets), || {
            CALIBRATION_FIT_RUNS.fetch_add(1, Ordering::SeqCst);
            Self::fit(n_traps, targets)
        })
    }

    /// The actual iterative knot fit behind [`TrapEnsemble::calibrated`].
    fn fit(n_traps: usize, targets: &TableOneTargets) -> Result<Self, BtiError> {
        // Seed the acceleration factors and initial knot positions from the
        // closed-form analytic solution for the same targets.
        let seed = calibration::solve(targets, DEFAULT_BETA)?;
        let acceleration = seed.acceleration;
        let theta4 = acceleration.factor(RecoveryCondition {
            gate_voltage: -targets.reverse_bias,
            temperature: targets.hot,
        });

        let thetas: [f64; 4] = RecoveryCondition::table_one().map(|c| acceleration.factor(c));
        let t_rec = targets.recovery_time.value();
        let mut knots: Vec<(f64, f64)> = thetas
            .iter()
            .zip(targets.fractions)
            .map(|(&theta, p)| ((t_rec * theta).log10(), p.value()))
            .collect();

        let tolerance = 0.0025;
        let mut worst = f64::INFINITY;
        for _ in 0..40 {
            let ensemble = Self::from_knots(n_traps, &knots, acceleration, theta4, targets);
            let simulated = ensemble.simulate_protocol(targets);
            worst = 0.0;
            for i in 0..4 {
                let err = simulated[i] - targets.fractions[i].value();
                worst = worst.max(err.abs());
                // Local CDF slope (probability per decade) around knot i.
                let (lo_x, lo_p) = if i == 0 {
                    (LOG_TAU_MIN, 0.0)
                } else {
                    knots[i - 1]
                };
                let (hi_x, hi_p) = if i == 3 {
                    (LOG_TAU_MAX, 1.0)
                } else {
                    knots[i + 1]
                };
                let slope = ((hi_p - lo_p) / (hi_x - lo_x)).max(1e-4);
                // If the ensemble recovers too much at condition i, push the
                // knot right (slower emission at that quantile). Damped.
                let mut x = knots[i].0 + 0.7 * err / slope;
                let lo = if i == 0 {
                    LOG_TAU_MIN + 0.1
                } else {
                    knots[i - 1].0 + 0.05
                };
                let hi = if i == 3 {
                    LOG_TAU_MAX - 0.1
                } else {
                    knots[i + 1].0 - 0.05
                };
                // A knot squeezed by its neighbours stays ordered.
                if lo < hi {
                    x = x.clamp(lo, hi);
                    knots[i].0 = x;
                }
            }
            if worst < tolerance {
                let mut ensemble = Self::from_knots(n_traps, &knots, acceleration, theta4, targets);
                ensemble.normalize_magnitude(targets);
                return Ok(ensemble);
            }
        }
        Err(BtiError::CalibrationDiverged {
            worst_error: worst,
            tolerance,
        })
    }

    fn from_knots(
        n_traps: usize,
        interior: &[(f64, f64)],
        acceleration: RecoveryAcceleration,
        theta4: f64,
        targets: &TableOneTargets,
    ) -> Self {
        let cdf = EmissionCdf::new(interior);
        // Deep traps are those beyond the deepest calibrated recovery reach.
        let deep_edge = (targets.recovery_time.value() * theta4).log10();
        let traps = (0..n_traps)
            .map(|k| {
                let u = (k as f64 + 0.5) / n_traps as f64;
                let log_tau_e = cdf.quantile(u);
                Trap {
                    log_tau_e,
                    log_tau_c: CAPTURE_INTERCEPT + CAPTURE_SLOPE * log_tau_e,
                    occ_soft: 0.0,
                    occ_hard: 0.0,
                }
            })
            .collect();
        Self {
            traps,
            cdf,
            acceleration,
            theta4,
            stress_law: StressLaw::default(),
            permanent: PermanentParams::default(),
            per_trap_mv: 1.0,
            window: Seconds::ZERO,
            deep_edge,
        }
    }

    /// Scales the per-trap ΔVth contribution so the calibration protocol's
    /// end-of-stress wearout matches the analytic stress law.
    fn normalize_magnitude(&mut self, targets: &TableOneTargets) {
        let mut probe = self.clone();
        probe.per_trap_mv = 1.0;
        probe.stress(targets.stress_time, StressCondition::ACCELERATED);
        let occupied = probe.delta_vth_mv();
        if occupied > 0.0 {
            let want = self
                .stress_law
                .wearout_mv(targets.stress_time, StressCondition::ACCELERATED);
            self.per_trap_mv = want / occupied;
        }
    }

    /// Simulates the Table I protocol and returns the four recovery
    /// fractions in condition order.
    fn simulate_protocol(&self, targets: &TableOneTargets) -> [f64; 4] {
        let mut stressed = self.clone();
        stressed.stress(targets.stress_time, StressCondition::ACCELERATED);
        let w0 = stressed.delta_vth_mv();
        RecoveryCondition::table_one().map(|cond| {
            let mut d = stressed.clone();
            d.recover(targets.recovery_time, cond);
            if w0 > 0.0 {
                (w0 - d.delta_vth_mv()) / w0
            } else {
                0.0
            }
        })
    }

    /// The fitted emission-time CDF.
    pub fn emission_cdf(&self) -> &EmissionCdf {
        &self.cdf
    }

    /// Number of traps.
    pub fn len(&self) -> usize {
        self.traps.len()
    }

    /// Whether the ensemble has no traps (never true for constructed
    /// ensembles).
    pub fn is_empty(&self) -> bool {
        self.traps.is_empty()
    }

    /// Total |ΔVth| in millivolts.
    pub fn delta_vth_mv(&self) -> f64 {
        self.per_trap_mv * self.traps.iter().map(Trap::occupancy).sum::<f64>()
    }

    /// The consolidated (hard) permanent component in millivolts.
    pub fn permanent_mv(&self) -> f64 {
        self.per_trap_mv * self.traps.iter().map(|t| t.occ_hard).sum::<f64>()
    }

    /// Mean trap occupancy (soft + hard), a number in `[0, 1]`.
    pub fn mean_occupancy(&self) -> Fraction {
        if self.traps.is_empty() {
            return Fraction::ZERO;
        }
        Fraction::clamped(
            self.traps.iter().map(Trap::occupancy).sum::<f64>() / self.traps.len() as f64,
        )
    }

    /// Applies `dt` of stress at `cond`.
    pub fn stress(&mut self, dt: Seconds, cond: StressCondition) {
        if dt.value() <= 0.0 {
            return;
        }
        // March in sub-steps so the window gate evolves within long calls.
        let steps = ((dt.value() / 900.0).ceil() as usize).clamp(1, 400);
        let sub = dt.value() / steps as f64;
        let amp = self
            .stress_law
            .amplitude_scale(cond)
            .powf(CAPTURE_ACCEL_EXPONENT)
            .min(1.0e3);
        let tau_h = self.permanent.tau_harden.value();

        // The window/gate trajectory is trap-independent, so compute each
        // sub-step's gate once up front instead of once per trap per step.
        let tau_onset = self.permanent.tau_onset.value();
        let m = self.permanent.m;
        let window0 = self.window.value();
        let gates: Vec<f64> = (0..steps)
            .map(|k| {
                let w = window0 + (k as f64 + 0.5) * sub;
                1.0 - (-((w / tau_onset).powf(m))).exp()
            })
            .collect();
        let harden_step = 1.0 - (-sub / tau_h).exp();
        let deep_edge = self.deep_edge;

        // Traps evolve independently given the gate trajectory, so iterate
        // trap-outer / step-inner: the per-trap `powf` and sigmoid hoist out
        // of the step loop, and fixed-size chunks fan out across threads
        // (identical arithmetic per trap at any worker count).
        dh_exec::par_chunks_mut(&mut self.traps, TRAP_CHUNK, |_, chunk| {
            for trap in chunk {
                let deep = deep_weight_at(deep_edge, trap.log_tau_e);
                let base_rate = amp / 10f64.powf(trap.log_tau_c);
                for &gate in &gates {
                    let rate = base_rate * ((1.0 - deep) + deep * gate);
                    let captured = (1.0 - trap.occupancy()) * (1.0 - (-rate * sub).exp());
                    trap.occ_soft += captured;
                    // Deep occupancy consolidates under continued stress;
                    // like deep capture, consolidation is a secondary
                    // process gated by the continuous-stress window, so
                    // in-time scheduled recovery prevents it.
                    let harden = trap.occ_soft * deep * gate * harden_step;
                    trap.occ_soft -= harden;
                    trap.occ_hard += harden;
                }
            }
        });
        self.window += Seconds::new(sub * steps as f64);
    }

    /// The pre-`dh-exec` stress loop (step-outer, per-trap-per-step `powf`
    /// and `exp`, serial): kept as the measured baseline for
    /// `perf_snapshot`. Not part of the API.
    #[doc(hidden)]
    pub fn stress_reference(&mut self, dt: Seconds, cond: StressCondition) {
        if dt.value() <= 0.0 {
            return;
        }
        let steps = ((dt.value() / 900.0).ceil() as usize).clamp(1, 400);
        let sub = dt.value() / steps as f64;
        let amp = self
            .stress_law
            .amplitude_scale(cond)
            .powf(CAPTURE_ACCEL_EXPONENT)
            .min(1.0e3);
        let tau_h = self.permanent.tau_harden.value();
        for _ in 0..steps {
            let w = self.window.value() + 0.5 * sub;
            let gate =
                1.0 - (-((w / self.permanent.tau_onset.value()).powf(self.permanent.m))).exp();
            let deep_edge = self.deep_edge;
            for trap in &mut self.traps {
                let deep = deep_weight_at(deep_edge, trap.log_tau_e);
                let rate_mult = (1.0 - deep) + deep * gate;
                let rate = amp * rate_mult / 10f64.powf(trap.log_tau_c);
                let captured = (1.0 - trap.occupancy()) * (1.0 - (-rate * sub).exp());
                trap.occ_soft += captured;
                let harden = trap.occ_soft * deep * gate * (1.0 - (-sub / tau_h).exp());
                trap.occ_soft -= harden;
                trap.occ_hard += harden;
            }
            self.window += Seconds::new(sub);
        }
    }

    /// Applies `dt` of recovery at `cond`.
    pub fn recover(&mut self, dt: Seconds, cond: RecoveryCondition) {
        if dt.value() <= 0.0 {
            return;
        }
        let theta = self.acceleration.factor(cond);
        let depth = theta / self.theta4;
        let tau_soft = self.permanent.tau_soft_anneal.value();
        let deep_edge = self.deep_edge;
        let dt_s = dt.value();
        dh_exec::par_chunks_mut(&mut self.traps, TRAP_CHUNK, |_, chunk| {
            for trap in chunk {
                // Emission, rate-scaled by θ.
                let emit_rate = theta / 10f64.powf(trap.log_tau_e);
                // Deep recovery additionally relaxes precursor (soft)
                // occupancy of deep traps before it consolidates.
                let deep = deep_weight_at(deep_edge, trap.log_tau_e);
                let anneal_rate = deep * depth / tau_soft;
                trap.occ_soft *= (-(emit_rate + anneal_rate) * dt_s).exp();
            }
        });
        // Deep recovery resets the continuous-stress window.
        self.window =
            self.window * (-depth * dt.value() / self.permanent.tau_window_reset.value()).exp();
    }

    /// Adds device-to-device variation: jitters every trap's emission and
    /// capture times by log-normal perturbations (`sigma_decades` standard
    /// deviation in log₁₀ space).
    #[must_use]
    pub fn with_variation<R: Rng>(mut self, sigma_decades: f64, rng: &mut R) -> Self {
        for trap in &mut self.traps {
            let ge: f64 = standard_normal(rng);
            let gc: f64 = standard_normal(rng);
            trap.log_tau_e = (trap.log_tau_e + sigma_decades * ge).clamp(LOG_TAU_MIN, LOG_TAU_MAX);
            trap.log_tau_c += sigma_decades * gc;
        }
        self
    }

    /// Runs the Table I protocol on this (fresh) ensemble, returning the
    /// four recovery percentages in condition order — the crate's analogue
    /// of re-running the paper's measurement.
    pub fn table_one_percentages(&self) -> [f64; 4] {
        self.simulate_protocol(&TableOneTargets::measurement_column())
            .map(|f| f * 100.0)
    }
}

/// The deep-trap gating weight: 0 for shallow traps, →1 beyond `deep_edge`.
#[inline]
fn deep_weight_at(deep_edge: f64, log_tau_e: f64) -> f64 {
    1.0 / (1.0 + (-(log_tau_e - deep_edge) / DEEP_TRANSITION_DECADES).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_units::rng::seeded_rng;

    fn ensemble() -> TrapEnsemble {
        TrapEnsemble::paper_calibrated(2000).expect("calibration converges")
    }

    #[test]
    fn calibration_reproduces_measurement_column() {
        let e = ensemble();
        let got = e.table_one_percentages();
        let want = [0.66, 16.7, 28.7, 72.4];
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1.0, "got {got:?} want {want:?}");
        }
    }

    #[test]
    fn empty_ensemble_is_rejected() {
        assert!(matches!(
            TrapEnsemble::paper_calibrated(0),
            Err(BtiError::EmptyEnsemble)
        ));
    }

    #[test]
    fn quantile_function_is_monotone() {
        let e = ensemble();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = e.emission_cdf().quantile(i as f64 / 100.0);
            assert!(q >= prev);
            prev = q;
        }
        assert_eq!(e.emission_cdf().quantile(0.0), LOG_TAU_MIN);
        assert_eq!(e.emission_cdf().quantile(1.0), LOG_TAU_MAX);
    }

    #[test]
    fn stress_magnitude_matches_analytic_law() {
        let mut e = ensemble();
        e.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        let w = e.delta_vth_mv();
        assert!((w - 50.0).abs() < 2.5, "24 h wearout = {w} mV");
    }

    #[test]
    fn extended_deep_recovery_leaves_permanent_residue() {
        // Paper: even with recovery "much longer than 6 hours" under
        // condition 4, >27 % cannot be recovered after a 24 h stress.
        let mut e = ensemble();
        e.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        let w0 = e.delta_vth_mv();
        e.recover(
            Seconds::from_hours(48.0),
            RecoveryCondition::ACTIVE_ACCELERATED,
        );
        let recovered = (w0 - e.delta_vth_mv()) / w0;
        assert!(recovered < 0.80, "48 h deep recovery removed {recovered}");
        assert!(recovered > 0.70);
    }

    #[test]
    fn scheduled_recovery_prevents_permanent_component() {
        // Fig. 4 at trap granularity: 1 h : 1 h cycling leaves almost no
        // consolidated occupancy, continuous stress leaves a lot.
        let fresh = ensemble();

        let mut continuous = fresh.clone();
        continuous.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        let p_cont = continuous.permanent_mv();

        let mut cycled = fresh;
        for _ in 0..24 {
            cycled.stress(Seconds::from_hours(1.0), StressCondition::ACCELERATED);
            cycled.recover(
                Seconds::from_hours(1.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
        }
        let p_cyc = cycled.permanent_mv();
        assert!(
            p_cyc < 0.2 * p_cont,
            "cycled permanent {p_cyc} vs continuous {p_cont}"
        );
    }

    #[test]
    fn passive_recovery_is_slow() {
        let mut e = ensemble();
        e.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        let w0 = e.delta_vth_mv();
        e.recover(Seconds::from_hours(6.0), RecoveryCondition::PASSIVE);
        let r = (w0 - e.delta_vth_mv()) / w0;
        assert!(r < 0.02, "passive recovery {r}");
    }

    #[test]
    fn recovery_ordering_matches_conditions() {
        let mut stressed = ensemble();
        stressed.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        let w0 = stressed.delta_vth_mv();
        let mut rs = Vec::new();
        for cond in RecoveryCondition::table_one() {
            let mut d = stressed.clone();
            d.recover(Seconds::from_hours(6.0), cond);
            rs.push((w0 - d.delta_vth_mv()) / w0);
        }
        assert!(
            rs[0] < rs[1] && rs[1] < rs[3] && rs[0] < rs[2] && rs[2] < rs[3],
            "{rs:?}"
        );
    }

    #[test]
    fn variation_changes_but_does_not_break_the_ensemble() {
        let mut rng = seeded_rng(42, "cet-variation");
        let base = ensemble();
        let varied = base.clone().with_variation(0.3, &mut rng);
        assert_eq!(varied.len(), base.len());
        let mut a = base.clone();
        let mut b = varied;
        a.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        b.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        let (wa, wb) = (a.delta_vth_mv(), b.delta_vth_mv());
        assert!(wa != wb);
        assert!(
            (wa - wb).abs() / wa < 0.2,
            "variation too large: {wa} vs {wb}"
        );
    }

    #[test]
    fn occupancy_stays_in_unit_interval() {
        let mut e = ensemble();
        for _ in 0..10 {
            e.stress(Seconds::from_hours(5.0), StressCondition::ACCELERATED);
            e.recover(
                Seconds::from_hours(1.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
        }
        for t in &e.traps {
            assert!(t.occ_soft >= 0.0 && t.occ_hard >= 0.0);
            assert!(t.occupancy() <= 1.0 + 1e-9);
        }
        assert!(e.mean_occupancy().value() <= 1.0);
    }

    #[test]
    fn calibration_fit_is_memoized() {
        // A trap count no other test or bench uses, so both constructions
        // below resolve against this test's own cache entry.
        let targets = TableOneTargets::measurement_column();
        let before = calibration_fit_runs();
        let a = TrapEnsemble::calibrated_shared(777, &targets).unwrap();
        let b = TrapEnsemble::calibrated_shared(777, &targets).unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "second construction must be a cache hit"
        );
        assert!(
            calibration_fit_runs() > before,
            "first construction must run the fit"
        );
        // The cloning constructor resolves against the same entry.
        let c = TrapEnsemble::calibrated(777, &targets).unwrap();
        assert_eq!(c, *a);
    }

    #[test]
    fn restructured_stress_matches_reference_loop() {
        let mut fast = ensemble();
        let mut reference = fast.clone();
        for hours in [0.2, 1.0, 6.0] {
            fast.stress(Seconds::from_hours(hours), StressCondition::ACCELERATED);
            reference.stress_reference(Seconds::from_hours(hours), StressCondition::ACCELERATED);
            let (wf, wr) = (fast.delta_vth_mv(), reference.delta_vth_mv());
            // Same model, reassociated float ops: agreement to ~1e-9 rel.
            assert!(
                ((wf - wr) / wr).abs() < 1e-9,
                "restructured {wf} vs reference {wr} after {hours} h"
            );
            let (pf, pr) = (fast.permanent_mv(), reference.permanent_mv());
            assert!(
                (pf - pr).abs() <= 1e-9 * pr.abs().max(1.0),
                "permanent {pf} vs {pr}"
            );
        }
    }

    #[test]
    fn zero_duration_operations_are_no_ops() {
        let mut e = ensemble();
        e.stress(Seconds::from_hours(1.0), StressCondition::ACCELERATED);
        let w = e.delta_vth_mv();
        e.stress(Seconds::ZERO, StressCondition::ACCELERATED);
        e.recover(Seconds::ZERO, RecoveryCondition::PASSIVE);
        assert_eq!(e.delta_vth_mv(), w);
    }
}
